#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "apps/aggregate.h"
#include "apps/components.h"
#include "apps/mincut.h"
#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/reference.h"
#include "shortcut/part_routing.h"
#include "test_util.h"
#include "util/random.h"

namespace lcs {
namespace {

using testutil::Sim;

/// Two labelings describe the same partition iff their equivalence classes
/// coincide.
void expect_same_grouping(const std::vector<PartId>& ours,
                          const std::vector<NodeId>& truth) {
  ASSERT_EQ(ours.size(), truth.size());
  std::map<PartId, NodeId> fwd;
  std::map<NodeId, PartId> bwd;
  for (std::size_t v = 0; v < ours.size(); ++v) {
    const auto [it_f, new_f] = fwd.try_emplace(ours[v], truth[v]);
    EXPECT_EQ(it_f->second, truth[v]) << "node " << v;
    const auto [it_b, new_b] = bwd.try_emplace(truth[v], ours[v]);
    EXPECT_EQ(it_b->second, ours[v]) << "node " << v;
  }
}

TEST(Components, FullGraphIsOneComponent) {
  const Graph g = make_grid(7, 7);
  Sim sim(g);
  const std::vector<bool> alive(static_cast<std::size_t>(g.num_edges()),
                                true);
  const auto result = distributed_components(sim.net, sim.tree, alive);
  expect_same_grouping(result.label, connected_components(g, alive));
}

TEST(Components, RandomEdgeSubsetsAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(60, 0.06, seed);
    Sim sim(g);
    Rng rng(seed + 40);
    std::vector<bool> alive(static_cast<std::size_t>(g.num_edges()));
    for (std::size_t e = 0; e < alive.size(); ++e)
      alive[e] = rng.next_bool(0.5);
    const auto result =
        distributed_components(sim.net, sim.tree, alive, seed);
    expect_same_grouping(result.label, connected_components(g, alive));
  }
}

TEST(Components, NoEdgesMeansSingletons) {
  const Graph g = make_grid(5, 5);
  Sim sim(g);
  const std::vector<bool> alive(static_cast<std::size_t>(g.num_edges()),
                                false);
  const auto result = distributed_components(sim.net, sim.tree, alive);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId w = v + 1; w < g.num_nodes(); ++w)
      EXPECT_NE(result.label[static_cast<std::size_t>(v)],
                result.label[static_cast<std::size_t>(w)]);
}

TEST(Mincut, CycleEstimateNearTwo) {
  // λ(cycle) = 2: the estimate must land within the O(log n) guarantee.
  const Graph g = make_cycle(64);
  Sim sim(g);
  const auto result = approx_mincut(sim.net, sim.tree, 5);
  EXPECT_GE(result.estimate, 1u);
  EXPECT_LE(result.estimate, 64u);  // 2 * factor 32 >> log n slack
}

TEST(Mincut, EstimateGrowsWithConnectivity) {
  // A sparse cycle (λ=2) against a dense ER graph (λ ~ np): the dense graph
  // must produce a clearly larger estimate, with the exact value checked
  // against Stoer–Wagner's O(log n) window.
  const Graph sparse = make_cycle(60);
  const Graph dense = make_erdos_renyi(60, 0.4, 3);
  Sim sim_s(sparse), sim_d(dense);
  const auto est_s = approx_mincut(sim_s.net, sim_s.tree, 7);
  const auto est_d = approx_mincut(sim_d.net, sim_d.tree, 7);
  EXPECT_GT(est_d.estimate, est_s.estimate);

  const double lambda_d =
      static_cast<double>(stoer_wagner_mincut(dense));
  const double ratio = static_cast<double>(est_d.estimate) / lambda_d;
  const double log_n = std::log2(60.0);
  EXPECT_GE(ratio, 1.0 / (4.0 * log_n));
  EXPECT_LE(ratio, 4.0 * log_n);
}

TEST(Aggregate, MinAndLeaderAndBroadcast) {
  const Graph g = make_grid(8, 8);
  Sim sim(g);
  const auto p = make_grid_rows_partition(8, 8, 2);
  PartAggregator agg(sim.net, sim.tree, p);

  // min
  congest::PerNode<std::uint64_t> values(
      static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    values[static_cast<std::size_t>(v)] =
        1000 - static_cast<std::uint64_t>(v);
  const auto mins = agg.min(values);
  const auto groups = p.members();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& members = groups[static_cast<std::size_t>(p.part(v))];
    EXPECT_EQ(mins[static_cast<std::size_t>(v)],
              1000 - static_cast<std::uint64_t>(members.back()));
  }

  // leaders
  const auto leaders = agg.leaders();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(leaders[static_cast<std::size_t>(v)],
              groups[static_cast<std::size_t>(p.part(v))].front());

  // broadcast from leaders
  congest::PerNode<std::uint64_t> source(
      static_cast<std::size_t>(g.num_nodes()), kNoValue);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (leaders[static_cast<std::size_t>(v)] == v)
      source[static_cast<std::size_t>(v)] =
          static_cast<std::uint64_t>(p.part(v)) * 7 + 1;
  const auto delivered = agg.broadcast(source);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(delivered[static_cast<std::size_t>(v)],
              static_cast<std::uint64_t>(p.part(v)) * 7 + 1);
}

TEST(Aggregate, WheelArcsFastAggregation) {
  // The quickstart scenario: huge-diameter arcs, tiny-diameter wheel.
  const NodeId n = 129;
  const Graph g = make_wheel(n);
  Sim sim(g, n - 1);
  const auto p = make_cycle_arcs_partition(n, 4);
  PartAggregator agg(sim.net, sim.tree, p);

  const std::int64_t before = sim.net.total_rounds();
  agg.leaders();
  // One aggregation is far cheaper than any arc diameter (~32).
  EXPECT_LT(sim.net.total_rounds() - before, 30);
}

}  // namespace
}  // namespace lcs
