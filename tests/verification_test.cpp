#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/core_fast.h"
#include "shortcut/core_slow.h"
#include "shortcut/existential.h"
#include "shortcut/representation.h"
#include "shortcut/shortcut.h"
#include "shortcut/superstep.h"
#include "shortcut/verification.h"
#include "test_util.h"
#include "util/cast.h"

namespace lcs {
namespace {

using testutil::Sim;
using testutil::central_block_count;

/// Verification must be exact: part_good[j] iff the true block count is at
/// most b_limit (Lemma 3).
void expect_verification_exact(Sim& setup, const Partition& p,
                               Shortcut s, std::int32_t b_limit) {
  const Graph& g = setup.net.graph();
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, std::move(s));
  const NeighborParts neighbor_parts =
      exchange_neighbor_parts(setup.net, p);
  const VerificationResult result = verify_block_parameter(
      setup.net, setup.tree, p, state, b_limit, neighbor_parts);

  for (PartId j = 0; j < p.num_parts; ++j) {
    const std::int32_t truth =
        central_block_count(g, setup.tree, p, state.shortcut, j);
    EXPECT_EQ(result.part_good[static_cast<std::size_t>(j)],
              truth <= b_limit)
        << "part " << j << " true blocks " << truth << " limit " << b_limit;
  }
}

TEST(Verification, ExactOnGreedyShortcutsAcrossThresholdsAndLimits) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = make_erdos_renyi(80, 0.05, seed);
    const auto p = make_random_bfs_partition(g, 10, seed + 4);
    for (const std::int32_t threshold : {0, 1, 3, 8}) {
      for (const std::int32_t b_limit : {1, 2, 4, 8}) {
        Sim setup(g);
        expect_verification_exact(
            setup, p, greedy_blocked_shortcut(g, setup.tree, p, threshold),
            b_limit);
      }
    }
  }
}

TEST(Verification, ExactOnCoreOutputs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = make_grid(9, 9);
    const auto p = make_random_bfs_partition(g, 12, seed);
    Sim setup(g);
    const CoreResult core = core_fast(setup.net, setup.tree, p.part_of,
                                      CoreFastParams{2, 4.0, seed});
    for (const std::int32_t b_limit : {1, 3, 6})
      expect_verification_exact(setup, p, core.shortcut, b_limit);
  }
}

TEST(Verification, FullAncestorAlwaysGoodAtLimitOne) {
  const Graph g = make_grid(8, 8);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 9, 7);
  expect_verification_exact(setup, p,
                            full_ancestor_shortcut(g, setup.tree, p), 1);
}

TEST(Verification, EmptyShortcutSingletonCounts) {
  // With no shortcut edges each part has |Pi| block components; only parts
  // of size <= b_limit pass.
  const Graph g = make_grid(8, 8);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 12, 3);
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  expect_verification_exact(setup, p, std::move(s), 5);
}

TEST(Verification, UnanimousWithinParts) {
  const Graph g = make_erdos_renyi(70, 0.06, 2);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 8, 6);
  const Shortcut s = greedy_blocked_shortcut(g, setup.tree, p, 2);
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, s);
  const NeighborParts neighbor_parts = exchange_neighbor_parts(setup.net, p);
  const VerificationResult result = verify_block_parameter(
      setup.net, setup.tree, p, state, 2, neighbor_parts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId j = p.part(v);
    if (j == kNoPart) continue;
    EXPECT_EQ(result.node_good[static_cast<std::size_t>(v)],
              result.part_good[static_cast<std::size_t>(j)]);
  }
}

TEST(Verification, RoundsWithinLemma6Bound) {
  const Graph g = make_grid(10, 10);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 14, 5);
  const Shortcut s = greedy_blocked_shortcut(g, setup.tree, p, 3);
  std::int32_t c = 1;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    c = std::max(c, util::checked_cast<std::int32_t>(
                        s.parts_on_edge[static_cast<std::size_t>(e)].size()));
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, s);
  const NeighborParts neighbor_parts = exchange_neighbor_parts(setup.net, p);

  for (const std::int32_t b_limit : {1, 4}) {
    const std::int64_t before = setup.net.total_rounds();
    verify_block_parameter(setup.net, setup.tree, p, state, b_limit,
                           neighbor_parts);
    const std::int64_t rounds = setup.net.total_rounds() - before;
    // 4*b_limit + 2 supersteps, each O(D + c); slack factor for the three
    // sub-phases per superstep.
    EXPECT_LE(rounds,
              (4 * b_limit + 4) *
                  (3 * (setup.tree.height + c) + 16))
        << "b_limit " << b_limit;
  }
}

TEST(Verification, AdversarialDumbbellPart) {
  // Hand-built part with exactly two far-apart blocks joined by a long
  // chain of part nodes: block count = 2 + chain singletons. Check exact
  // behaviour at the boundary.
  const NodeId n = 12;
  const Graph g = make_path(n);
  Sim setup(g);
  Partition p;
  p.num_parts = 1;
  p.part_of.assign(static_cast<std::size_t>(n), 0);

  // Shortcut: edges 0-1 and 10-11 only -> blocks: {0,1}, {10,11}, plus
  // singletons 2..9 -> 10 block components.
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  s.parts_on_edge[0] = {0};
  s.parts_on_edge[10] = {0};
  expect_verification_exact(setup, p, s, 9);
  Sim setup2(g);
  expect_verification_exact(setup2, p, std::move(s), 10);
}

}  // namespace
}  // namespace lcs
