#include <gtest/gtest.h>

#include <limits>
#include <queue>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "util/check.h"

namespace lcs {
namespace {

void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).w, b.edge(e).w);
  }
}

/// Degeneracy <= k: repeatedly remove a node of degree <= k; if everything
/// peels off, treewidth <= degeneracy-style bound holds for k-trees.
bool peels_with_degree_at_most(const Graph& g, NodeId k) {
  std::vector<NodeId> degree(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree[v] = g.degree(v);
  std::vector<bool> removed(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> low;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (degree[v] <= k) low.push(v);
  NodeId peeled = 0;
  while (!low.empty()) {
    const NodeId v = low.front();
    low.pop();
    if (removed[static_cast<std::size_t>(v)]) continue;
    removed[static_cast<std::size_t>(v)] = true;
    ++peeled;
    for (const auto& nb : g.neighbors(v)) {
      if (removed[static_cast<std::size_t>(nb.node)]) continue;
      if (--degree[static_cast<std::size_t>(nb.node)] <= k) low.push(nb.node);
    }
  }
  return peeled == g.num_nodes();
}

// ------------------------------------------------------------------ RMAT --

TEST(Rmat, ShapeConnectivityAndDeterminism) {
  const int scale = 7;
  const EdgeId target = 400;
  const Graph g = make_rmat(scale, target, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(g.num_nodes(), NodeId{1} << scale);
  EXPECT_EQ(g.num_edges(), target);
  EXPECT_TRUE(is_connected(g));
  expect_identical(g, make_rmat(scale, target, 0.57, 0.19, 0.19, 5));
}

TEST(Rmat, SkewedProbabilitiesConcentrateDegree) {
  // With heavy mass on quadrant (0,0), low ids should dominate the degree
  // distribution: compare the max degree against a uniform-ish control.
  const Graph skew = make_rmat(8, 1024, 0.7, 0.1, 0.1, 3);
  const Graph flat = make_rmat(8, 1024, 0.25, 0.25, 0.25, 3);
  NodeId max_skew = 0, max_flat = 0;
  for (NodeId v = 0; v < skew.num_nodes(); ++v) {
    max_skew = std::max(max_skew, skew.degree(v));
    max_flat = std::max(max_flat, flat.degree(v));
  }
  EXPECT_GT(max_skew, max_flat);
}

TEST(Rmat, DiagnosesBadParameters) {
  EXPECT_THROW(make_rmat(0, 10, 0.5, 0.2, 0.2, 1), CheckFailure);
  EXPECT_THROW(make_rmat(31, 10, 0.5, 0.2, 0.2, 1), CheckFailure);
  EXPECT_THROW(make_rmat(4, 10, 0.6, 0.3, 0.2, 1), CheckFailure);   // sum > 1
  EXPECT_THROW(make_rmat(4, 10, -0.1, 0.3, 0.2, 1), CheckFailure);  // negative
  EXPECT_THROW(make_rmat(4, 10, 0.5, 0.2, 0.2, 1), CheckFailure);   // < n - 1
  EXPECT_THROW(make_rmat(4, 200, 0.5, 0.2, 0.2, 1), CheckFailure);  // > max
}

// ------------------------------------------------------- Barabasi-Albert --

TEST(BarabasiAlbert, ShapeConnectivityAndDeterminism) {
  const NodeId n = 120, m = 3;
  const Graph g = make_barabasi_albert(n, m, 7);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique + m edges per later node.
  EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < n; ++v) EXPECT_GE(g.degree(v), m);
  expect_identical(g, make_barabasi_albert(n, m, 7));
}

TEST(BarabasiAlbert, GrowsHubs) {
  const Graph g = make_barabasi_albert(400, 2, 11);
  NodeId max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  // Preferential attachment must produce hubs far above the mean (~4).
  EXPECT_GE(max_degree, 12);
}

TEST(BarabasiAlbert, DiagnosesBadParameters) {
  EXPECT_THROW(make_barabasi_albert(5, 0, 1), CheckFailure);
  EXPECT_THROW(make_barabasi_albert(5, 5, 1), CheckFailure);
}

// --------------------------------------------------------- random regular --

TEST(RandomRegular, ExactDegreesConnectivityAndDeterminism) {
  for (const auto& [n, d] : std::vector<std::pair<NodeId, NodeId>>{
           {30, 3}, {64, 4}, {101, 6}, {24, 2}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " d=" + std::to_string(d));
    const Graph g = make_random_regular(n, d, 9);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(n) * d / 2);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
    EXPECT_TRUE(is_connected(g));
    expect_identical(g, make_random_regular(n, d, 9));
  }
}

TEST(RandomRegular, ExpanderHasLogarithmicDiameter) {
  const Graph g = make_random_regular(512, 4, 21);
  EXPECT_LE(diameter_double_sweep(g), 14);
}

TEST(RandomRegular, DiagnosesBadParameters) {
  EXPECT_THROW(make_random_regular(10, 1, 1), CheckFailure);   // d < 2
  EXPECT_THROW(make_random_regular(10, 10, 1), CheckFailure);  // d >= n
  EXPECT_THROW(make_random_regular(7, 3, 1), CheckFailure);    // n*d odd
}

// ------------------------------------------------------------------ ktree --

TEST(Ktree, ShapeTreewidthWitnessAndDeterminism) {
  for (const NodeId k : {1, 2, 3, 5}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const NodeId n = 80;
    const Graph g = make_ktree(n, k, 13);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), k * (k + 1) / 2 + (n - k - 1) * k);
    EXPECT_TRUE(is_connected(g));
    // k-trees are k-degenerate (treewidth exactly k): everything peels off
    // at degree <= k, and the seed (k+1)-clique witnesses treewidth >= k.
    EXPECT_TRUE(peels_with_degree_at_most(g, k));
    EXPECT_FALSE(peels_with_degree_at_most(g, k - 1));
    expect_identical(g, make_ktree(n, k, 13));
  }
}

TEST(Ktree, KEqualsOneIsARandomTree) {
  const Graph g = make_ktree(50, 1, 3);
  EXPECT_EQ(g.num_edges(), 49);
  EXPECT_TRUE(is_connected(g));
}

TEST(Ktree, DiagnosesBadParameters) {
  EXPECT_THROW(make_ktree(3, 0, 1), CheckFailure);
  EXPECT_THROW(make_ktree(3, 3, 1), CheckFailure);  // n < k + 1
}

// ----------------------------------- precondition hardening (regressions) --

TEST(GeneratorChecks, GridOverflowDiagnosed) {
  EXPECT_THROW(make_grid(70000, 70000), CheckFailure);
  EXPECT_THROW(make_torus(70000, 70000), CheckFailure);
}

TEST(GeneratorChecks, DegenerateShapesDiagnosed) {
  EXPECT_THROW(make_grid(0, 5), CheckFailure);
  EXPECT_THROW(make_torus(2, 5), CheckFailure);
  EXPECT_THROW(make_path(0), CheckFailure);
  EXPECT_THROW(make_cycle(2), CheckFailure);
  EXPECT_THROW(make_wheel(3), CheckFailure);
  EXPECT_THROW(make_random_tree(0, 1), CheckFailure);
  EXPECT_THROW(make_random_maze(5, 5, 1.5, 1), CheckFailure);
  EXPECT_THROW(make_erdos_renyi(10, -0.5, 1), CheckFailure);
  EXPECT_THROW(make_genus_grid(5, 5, -1, 1), CheckFailure);
  EXPECT_THROW(make_lower_bound_graph(0, 5), CheckFailure);
  EXPECT_THROW(make_lower_bound_graph(1, 1), CheckFailure);
}

TEST(GeneratorChecks, LowerBoundOverflowDiagnosed) {
  EXPECT_THROW(make_lower_bound_graph(70000, 70000), CheckFailure);
}

TEST(GeneratorChecks, WeightRangeWidthDiagnosed) {
  const Graph g = make_path(4);
  EXPECT_THROW(
      with_random_weights(g, 0, std::numeric_limits<Weight>::max(), 1),
      CheckFailure);
  EXPECT_THROW(with_random_weights(g, 5, 4, 1), CheckFailure);
  // A maximal-but-legal range still works.
  const Graph w = with_random_weights(
      g, 1, std::numeric_limits<Weight>::max(), 1);
  EXPECT_EQ(w.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace lcs
