#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/pair_hash_set.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {
namespace {

/// Order-sensitive digest of the full edge stream (endpoints and weights
/// in construction order). Pinned constants below freeze the per-seed
/// streams: a generator rewrite, an Rng change, or a libm whose log1p
/// rounds differently all fail here loudly instead of silently drifting
/// the committed goldens.
std::uint64_t edge_checksum(const Graph& g) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    h = hash64(h,
               (static_cast<std::uint64_t>(util::checked_cast<std::uint32_t>(ed.u))
                << 32) |
                   util::checked_cast<std::uint32_t>(ed.v));
    h = hash64(h, ed.w);
  }
  return h;
}

void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).w, b.edge(e).w);
  }
}

/// Degeneracy <= k: repeatedly remove a node of degree <= k; if everything
/// peels off, treewidth <= degeneracy-style bound holds for k-trees.
bool peels_with_degree_at_most(const Graph& g, NodeId k) {
  std::vector<NodeId> degree(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree[v] = g.degree(v);
  std::vector<bool> removed(static_cast<std::size_t>(g.num_nodes()), false);
  std::queue<NodeId> low;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (degree[v] <= k) low.push(v);
  NodeId peeled = 0;
  while (!low.empty()) {
    const NodeId v = low.front();
    low.pop();
    if (removed[static_cast<std::size_t>(v)]) continue;
    removed[static_cast<std::size_t>(v)] = true;
    ++peeled;
    for (const auto& nb : g.neighbors(v)) {
      if (removed[static_cast<std::size_t>(nb.node)]) continue;
      if (--degree[static_cast<std::size_t>(nb.node)] <= k) low.push(nb.node);
    }
  }
  return peeled == g.num_nodes();
}

// ----------------------------------------------------------- Erdos-Renyi --

TEST(ErdosRenyi, StreamChecksumPinned) {
  // The geometric-skip sampler's per-seed edge stream, frozen. These
  // values were produced by the commit that introduced the sampler; if a
  // deliberate rewrite changes them, regenerate tests/goldens/ in the same
  // PR (tools/regen_goldens.sh) and update these pins.
  EXPECT_EQ(edge_checksum(make_erdos_renyi(300, 0.02, 5)),
            0x23a8d113e398fe05ULL);
  EXPECT_EQ(edge_checksum(make_erdos_renyi(2000, 2e-3, 7)),
            0xcce1ed2ca0916937ULL);
}

TEST(ErdosRenyi, UntouchedFamiliesChecksumPinned) {
  // These four families do not ride the skip sampler; their streams were
  // pinned from the previous (std::set-dedup) implementation and must stay
  // byte-for-byte identical — the flat pair-hash dedup swap is observable
  // only in speed.
  EXPECT_EQ(edge_checksum(make_random_regular(300, 4, 6)),
            0x5c3426a3e3228e83ULL);
  EXPECT_EQ(edge_checksum(make_barabasi_albert(300, 3, 4)),
            0x527e59edc68b26acULL);
  EXPECT_EQ(edge_checksum(make_ktree(300, 3, 8)), 0xbfc5b644655d939bULL);
  EXPECT_EQ(edge_checksum(make_rmat(8, 768, 0.57, 0.19, 0.19, 3)),
            0x231ad355839d9962ULL);
  EXPECT_EQ(edge_checksum(make_genus_grid(12, 12, 9, 5)),
            0xb9ca2a3a6089a095ULL);
}

TEST(ErdosRenyi, EdgeCountWithinFourSigma) {
  // G(n, p) proper contributes Binomial(C(n, 2), p) successes; the graph
  // also carries the n - 1 spanning-tree edges, minus successes that
  // collide with a tree edge (expected ~ (n - 1) * p). 4 sigma of the
  // binomial plus a collision allowance must bracket the edge count for
  // every seed.
  const NodeId n = 2000;
  const double p = 0.01;
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  const double mu = pairs * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  const double collisions = (n - 1) * p;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE(seed);
    const Graph g = make_erdos_renyi(n, p, seed);
    const double extra = static_cast<double>(g.num_edges()) - (n - 1);
    EXPECT_NEAR(extra, mu - collisions, 4.0 * sigma + collisions);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(ErdosRenyi, ProbabilityZeroIsSpanningTreeOnly) {
  for (const std::uint64_t seed : {1ULL, 9ULL}) {
    const Graph g = make_erdos_renyi(500, 0.0, seed);
    EXPECT_EQ(g.num_edges(), 499);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(ErdosRenyi, ProbabilityOneIsCompleteGraph) {
  const NodeId n = 40;
  const Graph g = make_erdos_renyi(n, 1.0, 3);
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), n - 1);
}

TEST(ErdosRenyi, SubnormalProbabilityTerminates) {
  // p below any representable skip resolution must behave like p = 0, not
  // hang or emit garbage skips.
  const Graph g = make_erdos_renyi(200, 5e-324, 4);
  EXPECT_EQ(g.num_edges(), 199);
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyi, SingleNodeAndTinyGraphs) {
  EXPECT_EQ(make_erdos_renyi(1, 0.5, 1).num_edges(), 0);
  EXPECT_EQ(make_erdos_renyi(2, 1.0, 1).num_edges(), 1);
}

TEST(ErdosRenyi, DeterministicPerSeedAndSeedSensitive) {
  expect_identical(make_erdos_renyi(400, 0.01, 11),
                   make_erdos_renyi(400, 0.01, 11));
  EXPECT_NE(edge_checksum(make_erdos_renyi(400, 0.01, 11)),
            edge_checksum(make_erdos_renyi(400, 0.01, 12)));
}

TEST(ErdosRenyi, DiagnosesEdgeCountOverflow) {
  // 10^5 nodes at p = 0.5 would need ~2.5e9 edges: over the 32-bit id
  // space, diagnosed up front instead of wrapping or exhausting memory.
  EXPECT_THROW(make_erdos_renyi(100000, 0.5, 1), CheckFailure);
}

// ---------------------------------------------------------- PairHashSet --

TEST(PairHashSet, MatchesTreeSetSemantics) {
  PairHashSet flat(8);  // deliberately undersized: forces growth
  std::set<std::pair<NodeId, NodeId>> reference;
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const NodeId a = util::checked_cast<NodeId>(rng.next_below(150));
    const NodeId b = util::checked_cast<NodeId>(rng.next_below(150));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    EXPECT_EQ(flat.insert(a, b),
              reference.emplace(key.first, key.second).second);
    EXPECT_TRUE(flat.contains(a, b));
    EXPECT_TRUE(flat.contains(b, a));  // unordered
  }
  EXPECT_EQ(flat.size(), reference.size());
  EXPECT_FALSE(flat.contains(200, 201));
}

TEST(PairHashSet, ClearKeepsCapacityDropsContent) {
  PairHashSet set(4);
  EXPECT_TRUE(set.insert(1, 2));
  EXPECT_TRUE(set.insert(3, 4));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(1, 2));
  EXPECT_TRUE(set.insert(1, 2));
}

TEST(PairHashSet, DiagnosesSelfLoopsAndNegativeIds) {
  PairHashSet set;
  EXPECT_THROW(set.insert(3, 3), CheckFailure);
  EXPECT_THROW(set.insert(-1, 2), CheckFailure);
}

// ------------------------------------------------------------------ RMAT --

TEST(Rmat, ShapeConnectivityAndDeterminism) {
  const int scale = 7;
  const EdgeId target = 400;
  const Graph g = make_rmat(scale, target, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(g.num_nodes(), NodeId{1} << scale);
  EXPECT_EQ(g.num_edges(), target);
  EXPECT_TRUE(is_connected(g));
  expect_identical(g, make_rmat(scale, target, 0.57, 0.19, 0.19, 5));
}

TEST(Rmat, SkewedProbabilitiesConcentrateDegree) {
  // With heavy mass on quadrant (0,0), low ids should dominate the degree
  // distribution: compare the max degree against a uniform-ish control.
  const Graph skew = make_rmat(8, 1024, 0.7, 0.1, 0.1, 3);
  const Graph flat = make_rmat(8, 1024, 0.25, 0.25, 0.25, 3);
  NodeId max_skew = 0, max_flat = 0;
  for (NodeId v = 0; v < skew.num_nodes(); ++v) {
    max_skew = std::max(max_skew, skew.degree(v));
    max_flat = std::max(max_flat, flat.degree(v));
  }
  EXPECT_GT(max_skew, max_flat);
}

TEST(Rmat, DiagnosesBadParameters) {
  EXPECT_THROW(make_rmat(0, 10, 0.5, 0.2, 0.2, 1), CheckFailure);
  EXPECT_THROW(make_rmat(31, 10, 0.5, 0.2, 0.2, 1), CheckFailure);
  EXPECT_THROW(make_rmat(4, 10, 0.6, 0.3, 0.2, 1), CheckFailure);   // sum > 1
  EXPECT_THROW(make_rmat(4, 10, -0.1, 0.3, 0.2, 1), CheckFailure);  // negative
  EXPECT_THROW(make_rmat(4, 10, 0.5, 0.2, 0.2, 1), CheckFailure);   // < n - 1
  EXPECT_THROW(make_rmat(4, 200, 0.5, 0.2, 0.2, 1), CheckFailure);  // > max
}

// ------------------------------------------------------- Barabasi-Albert --

TEST(BarabasiAlbert, ShapeConnectivityAndDeterminism) {
  const NodeId n = 120, m = 3;
  const Graph g = make_barabasi_albert(n, m, 7);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique + m edges per later node.
  EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < n; ++v) EXPECT_GE(g.degree(v), m);
  expect_identical(g, make_barabasi_albert(n, m, 7));
}

TEST(BarabasiAlbert, GrowsHubs) {
  const Graph g = make_barabasi_albert(400, 2, 11);
  NodeId max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  // Preferential attachment must produce hubs far above the mean (~4).
  EXPECT_GE(max_degree, 12);
}

TEST(BarabasiAlbert, DiagnosesBadParameters) {
  EXPECT_THROW(make_barabasi_albert(5, 0, 1), CheckFailure);
  EXPECT_THROW(make_barabasi_albert(5, 5, 1), CheckFailure);
}

// --------------------------------------------------------- random regular --

TEST(RandomRegular, ExactDegreesConnectivityAndDeterminism) {
  for (const auto& [n, d] : std::vector<std::pair<NodeId, NodeId>>{
           {30, 3}, {64, 4}, {101, 6}, {24, 2}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " d=" + std::to_string(d));
    const Graph g = make_random_regular(n, d, 9);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), util::checked_cast<EdgeId>(n) * d / 2);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
    EXPECT_TRUE(is_connected(g));
    expect_identical(g, make_random_regular(n, d, 9));
  }
}

TEST(RandomRegular, ExpanderHasLogarithmicDiameter) {
  const Graph g = make_random_regular(512, 4, 21);
  EXPECT_LE(diameter_double_sweep(g), 14);
}

TEST(RandomRegular, DiagnosesBadParameters) {
  EXPECT_THROW(make_random_regular(10, 1, 1), CheckFailure);   // d < 2
  EXPECT_THROW(make_random_regular(10, 10, 1), CheckFailure);  // d >= n
  EXPECT_THROW(make_random_regular(7, 3, 1), CheckFailure);    // n*d odd
}

// ------------------------------------------------------------------ ktree --

TEST(Ktree, ShapeTreewidthWitnessAndDeterminism) {
  for (const NodeId k : {1, 2, 3, 5}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const NodeId n = 80;
    const Graph g = make_ktree(n, k, 13);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), k * (k + 1) / 2 + (n - k - 1) * k);
    EXPECT_TRUE(is_connected(g));
    // k-trees are k-degenerate (treewidth exactly k): everything peels off
    // at degree <= k, and the seed (k+1)-clique witnesses treewidth >= k.
    EXPECT_TRUE(peels_with_degree_at_most(g, k));
    EXPECT_FALSE(peels_with_degree_at_most(g, k - 1));
    expect_identical(g, make_ktree(n, k, 13));
  }
}

TEST(Ktree, KEqualsOneIsARandomTree) {
  const Graph g = make_ktree(50, 1, 3);
  EXPECT_EQ(g.num_edges(), 49);
  EXPECT_TRUE(is_connected(g));
}

TEST(Ktree, DiagnosesBadParameters) {
  EXPECT_THROW(make_ktree(3, 0, 1), CheckFailure);
  EXPECT_THROW(make_ktree(3, 3, 1), CheckFailure);  // n < k + 1
}

// ----------------------------------- precondition hardening (regressions) --

TEST(GeneratorChecks, GridOverflowDiagnosed) {
  EXPECT_THROW(make_grid(70000, 70000), CheckFailure);
  EXPECT_THROW(make_torus(70000, 70000), CheckFailure);
}

TEST(GeneratorChecks, DegenerateShapesDiagnosed) {
  EXPECT_THROW(make_grid(0, 5), CheckFailure);
  EXPECT_THROW(make_torus(2, 5), CheckFailure);
  EXPECT_THROW(make_path(0), CheckFailure);
  EXPECT_THROW(make_cycle(2), CheckFailure);
  EXPECT_THROW(make_wheel(3), CheckFailure);
  EXPECT_THROW(make_random_tree(0, 1), CheckFailure);
  EXPECT_THROW(make_random_maze(5, 5, 1.5, 1), CheckFailure);
  EXPECT_THROW(make_erdos_renyi(10, -0.5, 1), CheckFailure);
  EXPECT_THROW(make_genus_grid(5, 5, -1, 1), CheckFailure);
  EXPECT_THROW(make_lower_bound_graph(0, 5), CheckFailure);
  EXPECT_THROW(make_lower_bound_graph(1, 1), CheckFailure);
}

TEST(GeneratorChecks, LowerBoundOverflowDiagnosed) {
  EXPECT_THROW(make_lower_bound_graph(70000, 70000), CheckFailure);
}

TEST(GeneratorChecks, WeightRangeWidthDiagnosed) {
  const Graph g = make_path(4);
  EXPECT_THROW(
      with_random_weights(g, 0, std::numeric_limits<Weight>::max(), 1),
      CheckFailure);
  EXPECT_THROW(with_random_weights(g, 5, 4, 1), CheckFailure);
  // A maximal-but-legal range still works.
  const Graph w = with_random_weights(
      g, 1, std::numeric_limits<Weight>::max(), 1);
  EXPECT_EQ(w.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace lcs
