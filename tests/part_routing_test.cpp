#include <gtest/gtest.h>

#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/part_routing.h"
#include "shortcut/representation.h"
#include "shortcut/shortcut.h"
#include "shortcut/superstep.h"
#include "test_util.h"

namespace lcs {
namespace {

using testutil::Sim;

struct Routed {
  ShortcutState state;
  NeighborParts neighbor_parts;
  std::int32_t b = 0;
  std::int32_t c = 1;
};

Routed prepare(Sim& setup, const Partition& p, std::int32_t threshold) {
  const Graph& g = setup.net.graph();
  Shortcut s = greedy_blocked_shortcut(g, setup.tree, p, threshold);
  Routed r;
  r.b = block_parameter(g, p, s);
  r.c = std::max(congestion(g, p, s), 1);
  r.state = compute_shortcut_state(setup.net, setup.tree, p, std::move(s));
  r.neighbor_parts = exchange_neighbor_parts(setup.net, p);
  return r;
}

TEST(PartRouting, LeaderIsMinimumMemberId) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(80, 0.05, seed);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 9, seed + 1);
    Routed r = prepare(setup, p, 3);

    const auto leaders =
        elect_part_leaders(setup.net, setup.tree, p, r.state,
                           r.neighbor_parts, r.b);
    const auto groups = p.members();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const PartId j = p.part(v);
      if (j == kNoPart) continue;
      EXPECT_EQ(leaders[static_cast<std::size_t>(v)],
                groups[static_cast<std::size_t>(j)].front())
          << "node " << v;
    }
  }
}

TEST(PartRouting, MinFloodComputesPartMinimum) {
  const Graph g = make_grid(9, 9);
  Sim setup(g);
  const auto p = make_grid_rows_partition(9, 9, 3);
  Routed r = prepare(setup, p, 2);

  // Value = a hash-like function of the node id.
  congest::PerNode<std::uint64_t> values(
      static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    values[static_cast<std::size_t>(v)] =
        static_cast<std::uint64_t>((v * 2654435761u) % 100000);

  const auto result = part_min_flood(setup.net, setup.tree, p, r.state,
                                     r.neighbor_parts, r.b, values);

  std::vector<std::uint64_t> expected(
      static_cast<std::size_t>(p.num_parts), kNoValue);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId j = p.part(v);
    expected[static_cast<std::size_t>(j)] =
        std::min(expected[static_cast<std::size_t>(j)],
                 values[static_cast<std::size_t>(v)]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(result[static_cast<std::size_t>(v)],
              expected[static_cast<std::size_t>(p.part(v))]);
}

TEST(PartRouting, BroadcastDeliversLeaderValue) {
  const Graph g = make_erdos_renyi(90, 0.04, 7);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 10, 9);
  Routed r = prepare(setup, p, 4);

  const auto leaders = elect_part_leaders(setup.net, setup.tree, p, r.state,
                                          r.neighbor_parts, r.b);
  congest::PerNode<std::uint64_t> source(
      static_cast<std::size_t>(g.num_nodes()), kNoValue);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (p.part(v) != kNoPart && leaders[static_cast<std::size_t>(v)] == v)
      source[static_cast<std::size_t>(v)] =
          1000 + static_cast<std::uint64_t>(p.part(v));
  }
  const auto result = part_broadcast(setup.net, setup.tree, p, r.state,
                                     r.neighbor_parts, r.b, source);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId j = p.part(v);
    if (j == kNoPart) continue;
    EXPECT_EQ(result[static_cast<std::size_t>(v)],
              1000 + static_cast<std::uint64_t>(j));
  }
}

TEST(PartRouting, WorksOnWheelArcsWithPerfectShortcut) {
  // The motivating example end-to-end: arcs with hub shortcuts elect
  // leaders in O(D + c) per superstep even though arc diameters are huge.
  const NodeId n = 201;
  const Graph g = make_wheel(n);
  Sim setup(g, n - 1);
  const auto p = make_cycle_arcs_partition(n, 8);
  Routed r = prepare(setup, p, 8);
  EXPECT_EQ(r.b, 1);

  const std::int64_t before = setup.net.total_rounds();
  const auto leaders = elect_part_leaders(setup.net, setup.tree, p, r.state,
                                          r.neighbor_parts, r.b);
  const std::int64_t rounds = setup.net.total_rounds() - before;

  const auto groups = p.members();
  for (NodeId v = 0; v < n; ++v) {
    const PartId j = p.part(v);
    if (j == kNoPart) continue;
    EXPECT_EQ(leaders[static_cast<std::size_t>(v)],
              groups[static_cast<std::size_t>(j)].front());
  }
  // One superstep at (D=1ish, c<=9): far below the arc diameter ~25.
  EXPECT_LT(rounds, 25);
}

TEST(PartRouting, RoundsWithinTheorem2Bound) {
  const Graph g = make_grid(12, 12);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 16, 3);
  Routed r = prepare(setup, p, 3);

  const std::int64_t before = setup.net.total_rounds();
  elect_part_leaders(setup.net, setup.tree, p, r.state, r.neighbor_parts,
                     r.b);
  const std::int64_t rounds = setup.net.total_rounds() - before;
  EXPECT_LE(rounds, r.b * (3 * (setup.tree.height + r.c) + 16));
}

TEST(PartRouting, SingletonPartsTrivially) {
  // Every node its own part with an empty shortcut: leaders are the nodes
  // themselves and no messages are needed beyond the (empty) supersteps.
  const Graph g = make_grid(5, 5);
  Sim setup(g);
  const auto p = make_singleton_partition(g.num_nodes());
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, std::move(s));
  const NeighborParts neighbor_parts = exchange_neighbor_parts(setup.net, p);
  const auto leaders = elect_part_leaders(setup.net, setup.tree, p, state,
                                          neighbor_parts, 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(leaders[static_cast<std::size_t>(v)], v);
}

}  // namespace
}  // namespace lcs
