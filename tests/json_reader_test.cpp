#include <gtest/gtest.h>

#include <string>

#include "util/check.h"
#include "util/json_reader.h"

namespace lcs {
namespace {

std::string diagnosis_of(const std::string& text) {
  try {
    parse_json(text);
  } catch (const CheckFailure& e) {
    return e.what();
  }
  return "";
}

TEST(JsonReader, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"s": "hi", "i": -42, "u": 18446744073709551615, "d": 2e-4,)"
      R"( "b": true, "z": null, "a": [1, 2, 3], "o": {"k": false}})");
  EXPECT_EQ(v.find("s", "doc")->as_string("s"), "hi");
  EXPECT_EQ(v.find("i", "doc")->as_int("i"), -42);
  EXPECT_EQ(v.find("u", "doc")->as_uint("u"), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(v.find("d", "doc")->as_double("d"), 2e-4);
  EXPECT_TRUE(v.find("b", "doc")->as_bool("b"));
  EXPECT_TRUE(v.find("z", "doc")->is_null());
  EXPECT_EQ(v.find("a", "doc")->as_array("a").size(), 3u);
  EXPECT_FALSE(
      v.find("o", "doc")->find("k", "o")->as_bool("k"));
  EXPECT_EQ(v.find("missing", "doc"), nullptr);
}

TEST(JsonReader, PreservesRawNumberSpelling) {
  const JsonValue v = parse_json(R"({"p": 2e-4, "n": 100000})");
  EXPECT_EQ(v.find("p", "doc")->raw_number(), "2e-4");
  EXPECT_EQ(v.find("n", "doc")->raw_number(), "100000");
}

TEST(JsonReader, MemberOrderIsPreserved) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = v.as_object("doc");
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonReader, DuplicateKeyDiagnosedByName) {
  // The classic silent misparse: last-wins parsers make these two
  // contradictory fields look like one request.
  const std::string msg =
      diagnosis_of(R"({"algo": "mst", "algo": "mincut"})");
  EXPECT_NE(msg.find("duplicate key \"algo\""), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(JsonReader, DiagnosesCarryLineAndColumn) {
  const std::string msg = diagnosis_of("{\"a\": 1,\n  bogus}");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(JsonReader, RejectsTrailingContent) {
  EXPECT_THROW(parse_json(R"({"a": 1} {"b": 2})"), CheckFailure);
  EXPECT_THROW(parse_json("true false"), CheckFailure);
  // Trailing whitespace is fine.
  EXPECT_NO_THROW(parse_json("{\"a\": 1}  \n\t"));
}

TEST(JsonReader, RejectsSyntaxJsonForbids) {
  EXPECT_THROW(parse_json(""), CheckFailure);
  EXPECT_THROW(parse_json("{'a': 1}"), CheckFailure);       // single quotes
  EXPECT_THROW(parse_json("{a: 1}"), CheckFailure);         // unquoted key
  EXPECT_THROW(parse_json("[1, 2,]"), CheckFailure);        // trailing comma
  EXPECT_THROW(parse_json("{\"a\": 1,}"), CheckFailure);
  EXPECT_THROW(parse_json("[1 2]"), CheckFailure);
  EXPECT_THROW(parse_json("{\"a\" 1}"), CheckFailure);
  EXPECT_THROW(parse_json("// comment\n1"), CheckFailure);
  EXPECT_THROW(parse_json("[1"), CheckFailure);             // unterminated
  EXPECT_THROW(parse_json("\"abc"), CheckFailure);
  EXPECT_THROW(parse_json("\"tab\tinside\""), CheckFailure);  // raw control
}

TEST(JsonReader, RejectsNumbersJsonForbids) {
  EXPECT_THROW(parse_json("+1"), CheckFailure);
  EXPECT_THROW(parse_json("01"), CheckFailure);
  EXPECT_THROW(parse_json(".5"), CheckFailure);
  EXPECT_THROW(parse_json("1."), CheckFailure);
  EXPECT_THROW(parse_json("1e"), CheckFailure);
  EXPECT_THROW(parse_json("0x10"), CheckFailure);
  EXPECT_THROW(parse_json("NaN"), CheckFailure);
  EXPECT_THROW(parse_json("Infinity"), CheckFailure);
  EXPECT_NO_THROW(parse_json("-0.5e+10"));
}

TEST(JsonReader, DecodesEscapesAndSurrogatePairs) {
  const JsonValue v =
      parse_json(R"(["\"\\\/\b\f\n\r\t", "Aé", "😀"])");
  const auto& items = v.as_array("doc");
  EXPECT_EQ(items[0].as_string("item"), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(items[1].as_string("item"), "A\xc3\xa9");
  EXPECT_EQ(items[2].as_string("item"), "\xf0\x9f\x98\x80");
  EXPECT_THROW(parse_json(R"("\q")"), CheckFailure);
  EXPECT_THROW(parse_json(R"("\u12")"), CheckFailure);
  EXPECT_THROW(parse_json(R"("\ud83d")"), CheckFailure);  // lone surrogate
}

TEST(JsonReader, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(parse_json(deep), CheckFailure);
}

TEST(JsonReader, TypedAccessorsDiagnoseAgainstFieldName) {
  const JsonValue v = parse_json(R"({"seed": "abc", "n": 1.5, "neg": -1})");
  try {
    v.find("seed", "doc")->as_int("request field 'seed'");
    FAIL() << "string coerced to int";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("request field 'seed'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(v.find("n", "doc")->as_int("n"), CheckFailure);
  EXPECT_THROW(v.find("neg", "doc")->as_uint("neg"), CheckFailure);
  EXPECT_THROW(v.find("seed", "doc")->as_bool("seed"), CheckFailure);
  EXPECT_THROW(v.as_array("doc"), CheckFailure);
}

}  // namespace
}  // namespace lcs
