/// \file lint_test.cpp
/// Conformance tests for lcs_lint, driven by the self-describing fixture
/// corpus in tests/lint_fixtures/ (see its README.md for the marker
/// syntax). Each fixture declares the repo path it pretends to live at,
/// the exact RULE:LINE findings it must produce, and how many allow()
/// suppressions must be honored.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace lcs::lint {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::string file;          ///< real on-disk fixture path
  std::string pretend_path;  ///< path rule scoping matches against
  std::string source;
  std::vector<std::string> expect;  ///< "RULE:LINE", sorted
  int suppressions = 0;
};

/// Pull `// lint-fixture-*:` markers out of a fixture's leading comments.
Fixture parse_fixture(const fs::path& p) {
  Fixture fx;
  fx.file = p.string();
  std::ifstream in(p, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  fx.source = buf.str();

  std::stringstream lines(fx.source);
  std::string line;
  while (std::getline(lines, line)) {
    const auto value_of = [&](const std::string& key) -> std::string {
      const auto at = line.find(key);
      if (at == std::string::npos) return {};
      std::string v = line.substr(at + key.size());
      const auto b = v.find_first_not_of(" \t");
      if (b == std::string::npos) return {};
      const auto e = v.find_last_not_of(" \t\r");
      return v.substr(b, e - b + 1);
    };
    if (const std::string v = value_of("lint-fixture-path:"); !v.empty()) {
      fx.pretend_path = v;
    } else if (const std::string v = value_of("lint-fixture-expect:");
               !v.empty()) {
      if (v != "none") {
        std::stringstream ss(v);
        std::string item;
        while (ss >> item) fx.expect.push_back(item);
      }
    } else if (const std::string v = value_of("lint-fixture-suppressions:");
               !v.empty()) {
      fx.suppressions = std::stoi(v);
    }
  }
  std::sort(fx.expect.begin(), fx.expect.end());
  return fx;
}

std::vector<fs::path> fixture_files() {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(LCS_LINT_FIXTURE_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".h") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LcsLint, FixtureCorpusMatchesExpectations) {
  const std::vector<fs::path> files = fixture_files();
  ASSERT_FALSE(files.empty()) << "no fixtures under " << LCS_LINT_FIXTURE_DIR;

  for (const fs::path& p : files) {
    const Fixture fx = parse_fixture(p);
    ASSERT_FALSE(fx.pretend_path.empty())
        << p << " is missing its lint-fixture-path marker";

    int used = 0;
    const std::vector<Finding> findings =
        lint_source(fx.pretend_path, fx.source, &used);

    std::vector<std::string> got;
    std::string rendered;
    for (const Finding& f : findings) {
      got.push_back(f.rule + ":" + std::to_string(f.line));
      rendered += "  " + format_finding(f) + "\n";
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, fx.expect) << p << " findings:\n" << rendered;
    EXPECT_EQ(used, fx.suppressions) << p;
  }
}

TEST(LcsLint, EveryRuleHasAViolationFixture) {
  std::set<std::string> covered;
  for (const fs::path& p : fixture_files()) {
    for (const std::string& e : parse_fixture(p).expect)
      covered.insert(e.substr(0, e.find(':')));
  }
  for (const RuleInfo& r : rule_table()) {
    EXPECT_TRUE(covered.count(std::string(r.id)) > 0)
        << "no fixture exercises rule " << r.id;
  }
  EXPECT_TRUE(covered.count("LINT") > 0)
      << "no fixture exercises the pass-hygiene LINT findings";
}

TEST(LcsLint, RealRunsSkipTheFixtureCorpus) {
  // The corpus deliberately violates every rule; the repo-wide walk must
  // never pick it up.
  const LintResult result = lint_paths({LCS_LINT_FIXTURE_DIR});
  EXPECT_EQ(result.files_scanned, 0);
  EXPECT_TRUE(result.findings.empty());
}

TEST(LcsLint, FormatFindingIsStable) {
  const Finding f{"src/x.cpp", 12, 3, "D1", "msg", "do this"};
  EXPECT_EQ(format_finding(f), "src/x.cpp:12:3: D1: msg (fix: do this)");
}

}  // namespace
}  // namespace lcs::lint
