/// \file lint_test.cpp
/// Conformance tests for lcs_lint, driven by the self-describing fixture
/// corpus in tests/lint_fixtures/ (see its README.md for the marker
/// syntax). Flat fixtures declare the repo path they pretend to live at
/// and run through the per-file rules; directory fixtures under
/// project/ are whole pretend repos exercising the include-graph rules
/// (A1-A4, U1) through lint_sources(). Plus unit tests for the lexer's
/// line-splice handling, the outline parser, the include graph, the
/// layer manifest, and the incremental cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/lint.h"
#include "lint/parse.h"

namespace lcs::lint {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::string file;          ///< real on-disk fixture path
  std::string pretend_path;  ///< path rule scoping matches against
  std::string source;
  std::vector<std::string> expect;  ///< "RULE:LINE", sorted
  int suppressions = 0;
};

/// Pull `// lint-fixture-*:` markers out of a fixture's leading comments.
Fixture parse_fixture(const fs::path& p) {
  Fixture fx;
  fx.file = p.string();
  std::ifstream in(p, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  fx.source = buf.str();

  std::stringstream lines(fx.source);
  std::string line;
  while (std::getline(lines, line)) {
    const auto value_of = [&](const std::string& key) -> std::string {
      const auto at = line.find(key);
      if (at == std::string::npos) return {};
      std::string v = line.substr(at + key.size());
      const auto b = v.find_first_not_of(" \t");
      if (b == std::string::npos) return {};
      const auto e = v.find_last_not_of(" \t\r");
      return v.substr(b, e - b + 1);
    };
    if (const std::string v = value_of("lint-fixture-path:"); !v.empty()) {
      fx.pretend_path = v;
    } else if (const std::string v = value_of("lint-fixture-expect:");
               !v.empty()) {
      if (v != "none") {
        std::stringstream ss(v);
        std::string item;
        while (ss >> item) fx.expect.push_back(item);
      }
    } else if (const std::string v = value_of("lint-fixture-suppressions:");
               !v.empty()) {
      fx.suppressions = std::stoi(v);
    }
  }
  std::sort(fx.expect.begin(), fx.expect.end());
  return fx;
}

std::vector<fs::path> fixture_files() {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(LCS_LINT_FIXTURE_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".h") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The project/ fixture dirs: each is a pretend repo for lint_sources().
std::vector<fs::path> project_fixture_dirs() {
  std::vector<fs::path> dirs;
  const fs::path root = fs::path(LCS_LINT_FIXTURE_DIR) / "project";
  for (const auto& e : fs::directory_iterator(root)) {
    if (e.is_directory()) dirs.push_back(e.path());
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

/// Pull the expect / suppression markers out of one source's text.
/// Expect entries come back as "RULE:LINE".
void parse_markers(const std::string& source, std::vector<std::string>* expect,
                   int* suppressions) {
  std::stringstream lines(source);
  std::string line;
  while (std::getline(lines, line)) {
    const auto value_of = [&](const std::string& key) -> std::string {
      const auto at = line.find(key);
      if (at == std::string::npos) return {};
      std::string v = line.substr(at + key.size());
      const auto b = v.find_first_not_of(" \t");
      if (b == std::string::npos) return {};
      const auto e = v.find_last_not_of(" \t\r");
      return v.substr(b, e - b + 1);
    };
    if (const std::string v = value_of("lint-fixture-expect:"); !v.empty()) {
      if (v != "none") {
        std::stringstream ss(v);
        std::string item;
        while (ss >> item) expect->push_back(item);
      }
    } else if (const std::string v = value_of("lint-fixture-suppressions:");
               !v.empty()) {
      *suppressions += std::stoi(v);
    }
  }
}

TEST(LcsLint, FixtureCorpusMatchesExpectations) {
  const std::vector<fs::path> files = fixture_files();
  ASSERT_FALSE(files.empty()) << "no fixtures under " << LCS_LINT_FIXTURE_DIR;

  for (const fs::path& p : files) {
    const Fixture fx = parse_fixture(p);
    ASSERT_FALSE(fx.pretend_path.empty())
        << p << " is missing its lint-fixture-path marker";

    int used = 0;
    const std::vector<Finding> findings =
        lint_source(fx.pretend_path, fx.source, &used);

    std::vector<std::string> got;
    std::string rendered;
    for (const Finding& f : findings) {
      got.push_back(f.rule + ":" + std::to_string(f.line));
      rendered += "  " + format_finding(f) + "\n";
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, fx.expect) << p << " findings:\n" << rendered;
    EXPECT_EQ(used, fx.suppressions) << p;
  }
}

TEST(LcsLint, EveryRuleHasAViolationFixture) {
  std::set<std::string> covered;
  for (const fs::path& p : fixture_files()) {
    for (const std::string& e : parse_fixture(p).expect)
      covered.insert(e.substr(0, e.find(':')));
  }
  // Project-rule violations live in the directory fixtures.
  for (const fs::path& dir : project_fixture_dirs()) {
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      std::vector<std::string> expect;
      int sups = 0;
      parse_markers(slurp(e.path()), &expect, &sups);
      for (const std::string& x : expect)
        covered.insert(x.substr(0, x.find(':')));
    }
  }
  for (const RuleInfo& r : rule_table()) {
    EXPECT_TRUE(covered.count(std::string(r.id)) > 0)
        << "no fixture exercises rule " << r.id;
  }
  EXPECT_TRUE(covered.count("LINT") > 0)
      << "no fixture exercises the pass-hygiene LINT findings";
}

TEST(LcsLint, ProjectFixtureDirsMatchExpectations) {
  const std::vector<fs::path> dirs = project_fixture_dirs();
  // violation/clean/suppressed/stale for each of A1-A4, U1.
  ASSERT_EQ(dirs.size(), 20u);

  for (const fs::path& dir : dirs) {
    Options options;
    const fs::path layers = dir / "layers.txt";
    if (fs::exists(layers)) options.layers_text = slurp(layers);

    std::vector<SourceFile> files;
    std::vector<std::string> expect;
    int want_sups = 0;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".cpp" && ext != ".h") continue;
      const std::string rel = fs::relative(e.path(), dir).generic_string();
      std::string source = slurp(e.path());
      std::vector<std::string> file_expect;
      parse_markers(source, &file_expect, &want_sups);
      for (const std::string& x : file_expect) expect.push_back(rel + ":" + x);
      files.push_back(SourceFile{rel, std::move(source)});
    }
    ASSERT_FALSE(files.empty()) << dir;

    const LintResult result = lint_sources(files, options);
    std::vector<std::string> got;
    std::string rendered;
    for (const Finding& f : result.findings) {
      got.push_back(f.file + ":" + f.rule + ":" + std::to_string(f.line));
      rendered += "  " + format_finding(f) + "\n";
    }
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << dir << " findings:\n" << rendered;
    EXPECT_EQ(result.suppressions_used, want_sups) << dir;
  }
}

TEST(LcsLint, RuleTableFixtureCountsMatchCorpus) {
  // The fixtures= column in rule_table() (and thus --list-rules and the
  // README) is pinned to what is actually on disk.
  std::map<std::string, int> on_disk;
  for (const fs::path& p : fixture_files()) {
    const std::string name = p.stem().string();
    const auto us = name.find('_');
    if (us != std::string::npos) on_disk[name.substr(0, us)] += 1;
  }
  for (const fs::path& dir : project_fixture_dirs()) {
    const std::string name = dir.filename().string();
    const auto us = name.find('_');
    if (us != std::string::npos) on_disk[name.substr(0, us)] += 1;
  }
  for (const RuleInfo& r : rule_table()) {
    std::string key(r.id);
    for (char& c : key) {
      if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
    }
    EXPECT_EQ(on_disk[key], r.fixtures)
        << "rule " << r.id << ": rule_table() says " << r.fixtures
        << " fixtures, corpus has " << on_disk[key];
  }
  EXPECT_EQ(on_disk["lint"], 2) << "LINT pass-hygiene fixture count drifted";
}

TEST(LcsLint, RealRunsSkipTheFixtureCorpus) {
  // The corpus deliberately violates every rule; the repo-wide walk must
  // never pick it up.
  const LintResult result = lint_paths({LCS_LINT_FIXTURE_DIR});
  EXPECT_EQ(result.files_scanned, 0);
  EXPECT_TRUE(result.findings.empty());
}

TEST(LcsLint, FormatFindingIsStable) {
  const Finding f{"src/x.cpp", 12, 3, "D1", "msg", "do this"};
  EXPECT_EQ(format_finding(f), "src/x.cpp:12:3: D1: msg (fix: do this)");
}

// ---------------------------------------------------------------------------
// Lexer: phase-2 backslash line splices.
// ---------------------------------------------------------------------------

TEST(LcsLexer, SpliceJoinsTokensAcrossPhysicalLines) {
  std::string storage;
  const std::vector<Token> toks = lex("int th\\\nread = 1;", &storage);
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[1].text, "thread");  // rejoined across the splice
  EXPECT_EQ(toks[1].line, 1);         // anchored at the first physical line
  EXPECT_EQ(toks[1].col, 5);
}

TEST(LcsLexer, SpliceWithCrLfAndPositionsAfterIt) {
  std::string storage;
  const std::vector<Token> toks = lex("int a\\\r\nb;\nint c;", &storage);
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[1].text, "ab");
  // Tokens after the splice keep their *physical* positions.
  EXPECT_EQ(toks[3].text, "int");
  EXPECT_EQ(toks[3].line, 3);
  EXPECT_EQ(toks[3].col, 1);
  EXPECT_TRUE(toks[3].bol);
}

TEST(LcsLexer, WithoutStorageNoSpliceIsPerformed) {
  const std::vector<Token> toks = lex("int th\\\nread;");
  // Legacy mode: the two identifier halves stay separate tokens.
  bool joined = false;
  for (const Token& t : toks) {
    if (t.text == "thread") joined = true;
  }
  EXPECT_FALSE(joined);
}

TEST(LcsLexer, BolMarksFirstTokenOfEachLogicalLine) {
  const std::vector<Token> toks = lex("#define X 1\nint y;");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_TRUE(toks[0].bol);   // '#'
  EXPECT_FALSE(toks[1].bol);  // 'define'
  EXPECT_TRUE(toks[4].bol);   // 'int' on line 2
}

// ---------------------------------------------------------------------------
// Include graph.
// ---------------------------------------------------------------------------

TEST(IncludeKey, CanonicalizesToLastMarkerComponent) {
  EXPECT_EQ(include_key("/root/repo/src/util/x.h"), "src/util/x.h");
  EXPECT_EQ(include_key("tools/lcs_lint.cpp"), "tools/lcs_lint.cpp");
  EXPECT_EQ(include_key("/abs/tests/a_test.cpp"), "tests/a_test.cpp");
  EXPECT_EQ(include_key("no_marker.h"), "no_marker.h");
}

TEST(IncludeGraphT, ExtractIncludesSeesQuotedAndAngled) {
  std::string storage;
  const auto toks =
      lex("#include \"util/a.h\"\n#include <vector>\nint x;", &storage);
  const std::vector<IncludeDirective> incs = extract_includes(toks);
  ASSERT_EQ(incs.size(), 2u);
  EXPECT_EQ(incs[0].target, "util/a.h");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[0].line, 1);
  EXPECT_EQ(incs[1].target, "vector");
  EXPECT_TRUE(incs[1].angled);
}

TEST(IncludeGraphT, ClosureFollowsTransitiveEdges) {
  const auto inc = [](std::string t) {
    return IncludeDirective{std::move(t), 1, 1, false};
  };
  const IncludeGraph g = IncludeGraph::build({
      {"src/a.h", {inc("b.h")}},
      {"src/b.h", {inc("c.h")}},
      {"src/c.h", {}},
  });
  EXPECT_TRUE(g.cycles().empty());
  const int a = g.node_of("src/a.h");
  const int c = g.node_of("src/c.h");
  ASSERT_GE(a, 0);
  ASSERT_GE(c, 0);
  const auto reach = g.closure();
  const auto& ra = reach[static_cast<std::size_t>(a)];
  EXPECT_NE(std::find(ra.begin(), ra.end(), c), ra.end())
      << "a.h should reach c.h through b.h";
}

TEST(IncludeGraphT, PlantedCycleIsDetectedDeterministically) {
  const auto inc = [](std::string t) {
    return IncludeDirective{std::move(t), 3, 1, false};
  };
  const IncludeGraph g = IncludeGraph::build({
      {"src/x.h", {inc("y.h")}},
      {"src/y.h", {inc("x.h")}},
      {"src/z.h", {inc("x.h")}},  // feeds the cycle but is not in it
  });
  const auto cycles = g.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 2u);
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(cycles[0][0])], "src/x.h");
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(cycles[0][1])], "src/y.h");
}

TEST(LayerManifestT, LongestPrefixWinsAndErrorsAreSoft) {
  std::string err;
  const LayerManifest m = LayerManifest::parse(
      "# comment\n"
      "layer algo src/shortcut\n"
      "layer backend src/shortcut/backend\n",
      &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(m.layers().size(), 2u);
  EXPECT_EQ(m.layer_of("src/shortcut/find.h"), 0);
  EXPECT_EQ(m.layer_of("src/shortcut/backend/disjoint.h"), 1);
  EXPECT_EQ(m.layer_of("src/graph/graph.h"), -1);

  const LayerManifest bad = LayerManifest::parse("nonsense here\n", &err);
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(bad.layers().empty());
}

TEST(LayerManifestT, CommittedManifestParsesAndCoversTheTree) {
  const fs::path p = fs::path(LCS_LINT_SRC_DIR) / "src" / "lint" /
                     "layers.txt";
  ASSERT_TRUE(fs::exists(p)) << p;
  std::string err;
  const LayerManifest m = LayerManifest::parse(slurp(p), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GE(m.layers().size(), 8u);
  // Spot-check the ordering the A1 rule enforces.
  EXPECT_LT(m.layer_of("src/util/check.h"), m.layer_of("src/graph/graph.h"));
  EXPECT_LT(m.layer_of("src/graph/graph.h"),
            m.layer_of("src/driver/run_driver.h"));
  EXPECT_LT(m.layer_of("src/driver/run_driver.h"),
            m.layer_of("tools/lcs_run.cpp"));
}

// ---------------------------------------------------------------------------
// Outline parser / symbol index.
// ---------------------------------------------------------------------------

TEST(ParseOutline, RecoversNamespaceScopeDecls) {
  std::string storage;
  const auto toks = lex(
      "#pragma once\n"
      "namespace lcs::util {\n"
      "struct Foo { int member; };\n"
      "class Bar;\n"
      "using Alias = int;\n"
      "int helper(int x);\n"
      "static int hidden() { return 1; }\n"
      "namespace { int anon_var = 2; }\n"
      "}  // namespace lcs::util\n"
      "#define MACRO_ONE(a) (helper(a))\n",
      &storage);
  const Outline o = parse_outline(toks);

  std::map<std::string, const Decl*> by_name;
  for (const Decl& d : o.decls) by_name[d.name] = &d;

  ASSERT_TRUE(by_name.count("Foo"));
  EXPECT_EQ(by_name["Foo"]->kind, DeclKind::kType);
  EXPECT_TRUE(by_name["Foo"]->is_definition);
  EXPECT_EQ(by_name["Foo"]->ns, "lcs::util");
  EXPECT_FALSE(by_name.count("member"));  // members are not exports

  ASSERT_TRUE(by_name.count("Bar"));
  EXPECT_FALSE(by_name["Bar"]->is_definition);  // forward declaration

  ASSERT_TRUE(by_name.count("Alias"));
  EXPECT_EQ(by_name["Alias"]->kind, DeclKind::kAlias);

  ASSERT_TRUE(by_name.count("helper"));
  EXPECT_EQ(by_name["helper"]->kind, DeclKind::kFunction);
  EXPECT_FALSE(by_name["helper"]->is_definition);

  ASSERT_TRUE(by_name.count("hidden"));
  EXPECT_TRUE(by_name["hidden"]->file_local);  // static

  ASSERT_TRUE(by_name.count("anon_var"));
  EXPECT_TRUE(by_name["anon_var"]->file_local);  // anonymous namespace

  ASSERT_TRUE(by_name.count("MACRO_ONE"));
  EXPECT_EQ(by_name["MACRO_ONE"]->kind, DeclKind::kMacro);
  const auto mb = o.macro_body_refs.find("MACRO_ONE");
  ASSERT_NE(mb, o.macro_body_refs.end());
  EXPECT_NE(std::find(mb->second.begin(), mb->second.end(), "helper"),
            mb->second.end());
}

TEST(CollectRefs, CountsUsesAndExcludesNoise) {
  std::string storage;
  const auto toks = lex(
      "#include <vector>\n"
      "// Widget in a comment does not count\n"
      "const char* s = \"Widget in a string\";\n"
      "Widget make(Widget w) { return w.clone(); }\n"
      "std::vector<int> v;\n",
      &storage);
  const std::vector<Ref> refs = collect_refs(toks);

  std::map<std::string, const Ref*> by_name;
  for (const Ref& r : refs) by_name[r.name] = &r;

  ASSERT_TRUE(by_name.count("Widget"));
  EXPECT_EQ(by_name["Widget"]->count, 2);  // decl position + param type
  EXPECT_EQ(by_name["Widget"]->line, 4);   // first occurrence
  EXPECT_FALSE(by_name.count("vector"));   // include + std:: qualified
  EXPECT_FALSE(by_name.count("clone"));    // member access
}

// ---------------------------------------------------------------------------
// Incremental cache.
// ---------------------------------------------------------------------------

TEST(LcsLint, WarmCacheRunRelexesNothingAndFindingsMatch) {
  const fs::path cache =
      fs::temp_directory_path() /
      ("lcs_lint_cache_test_" + std::to_string(::getpid()) + ".json");
  std::error_code ec;
  fs::remove(cache, ec);

  Options options;
  options.cache_file = cache.string();
  // b.cpp carries a deliberate A4 finding so the warm run proves findings
  // replay from the cache, not just counters.
  const std::vector<SourceFile> files = {
      {"src/a.h", "#pragma once\nstruct AThing { int v = 0; };\n"},
      {"src/b.cpp", "#include \"a.h\"\nint main() { return 0; }\n"},
      {"src/c.cpp",
       "#include \"a.h\"\nstatic AThing keep_alive() { return {}; }\n"},
  };
  const auto formatted = [](const LintResult& r) {
    std::vector<std::string> out;
    for (const Finding& f : r.findings) out.push_back(format_finding(f));
    return out;
  };

  const LintResult cold = lint_sources(files, options);
  EXPECT_EQ(cold.files_scanned, 3);
  EXPECT_EQ(cold.files_lexed, 3);
  EXPECT_EQ(cold.cache_hits, 0);
  ASSERT_EQ(cold.findings.size(), 1u);
  EXPECT_EQ(cold.findings[0].rule, "A4");

  const LintResult warm = lint_sources(files, options);
  EXPECT_EQ(warm.files_scanned, 3);
  EXPECT_EQ(warm.files_lexed, 0) << "warm run must not re-lex";
  EXPECT_EQ(warm.cache_hits, 3);
  EXPECT_EQ(formatted(cold), formatted(warm));

  // A corrupt cache degrades to a cold run, never a failure.
  {
    std::ofstream out(cache, std::ios::binary | std::ios::trunc);
    out << "{not json";
  }
  const LintResult recovered = lint_sources(files, options);
  EXPECT_EQ(recovered.files_lexed, 3);
  EXPECT_EQ(recovered.cache_hits, 0);
  EXPECT_EQ(formatted(recovered), formatted(cold));

  // A changed file misses; the untouched ones still hit.
  std::vector<SourceFile> edited = files;
  edited[1].source += "// trailing comment\n";
  const LintResult partial = lint_sources(edited, options);
  EXPECT_EQ(partial.files_lexed, 1);
  EXPECT_EQ(partial.cache_hits, 2);

  fs::remove(cache, ec);
}

// ---------------------------------------------------------------------------
// Pinned surfaces: --list-rules, --json, README rule rows.
// ---------------------------------------------------------------------------

TEST(LcsLint, ListRulesMatchesGolden) {
  const fs::path golden =
      fs::path(LCS_LINT_SRC_DIR) / "tests" / "goldens" / "lint_list_rules.txt";
  ASSERT_TRUE(fs::exists(golden))
      << golden << " missing — regenerate with: lcs_lint --list-rules";
  EXPECT_EQ(format_rule_table(), slurp(golden))
      << "--list-rules drifted; regenerate tests/goldens/lint_list_rules.txt";
}

TEST(LcsLint, FindingsJsonMatchesGolden) {
  // One tiny project with one deliberate A4 finding pins the whole
  // machine-readable schema: key order, counters, finding fields.
  const std::vector<SourceFile> files = {
      {"src/a.h", "#pragma once\nstruct AThing { int v = 0; };\n"},
      {"src/b.cpp", "#include \"a.h\"\nint main() { return 0; }\n"},
      {"src/c.cpp",
       "#include \"a.h\"\nstatic AThing keep_alive() { return {}; }\n"},
  };
  const LintResult result = lint_sources(files, {});
  const fs::path golden =
      fs::path(LCS_LINT_SRC_DIR) / "tests" / "goldens" / "lint_findings.json";
  ASSERT_TRUE(fs::exists(golden)) << golden << " missing";
  EXPECT_EQ(format_findings_json(result), slurp(golden))
      << "findings JSON schema drifted; this is a breaking change for "
         "consumers — update tests/goldens/lint_findings.json deliberately";
}

TEST(LcsLint, ReadmeDocumentsEveryRule) {
  const std::string readme =
      slurp(fs::path(LCS_LINT_SRC_DIR) / "src" / "lint" / "README.md");
  ASSERT_FALSE(readme.empty());
  for (const RuleInfo& r : rule_table()) {
    EXPECT_NE(readme.find("| `" + std::string(r.id) + "` |"),
              std::string::npos)
        << "src/lint/README.md has no table row for rule " << r.id;
  }
  EXPECT_NE(readme.find("| `LINT` |"), std::string::npos)
      << "src/lint/README.md has no table row for the LINT pseudo-rule";
}

}  // namespace
}  // namespace lcs::lint
