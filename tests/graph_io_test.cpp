#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {
namespace {

/// Byte-identical adjacency and weights: same node/edge counts, same edge
/// records (id order included), same CSR neighbor lists.
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u) << "edge " << e;
    EXPECT_EQ(a.edge(e).v, b.edge(e).v) << "edge " << e;
    EXPECT_EQ(a.edge(e).w, b.edge(e).w) << "edge " << e;
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].node, nb[i].node) << "node " << v << " slot " << i;
      EXPECT_EQ(na[i].edge, nb[i].edge) << "node " << v << " slot " << i;
    }
  }
}

/// One representative instance of every generator family.
std::vector<std::pair<std::string, Graph>> all_families() {
  std::vector<std::pair<std::string, Graph>> fams;
  fams.emplace_back("grid", make_grid(7, 5));
  fams.emplace_back("torus", make_torus(5, 4));
  fams.emplace_back("genus", make_genus_grid(6, 6, 4, 11));
  fams.emplace_back("path", make_path(17));
  fams.emplace_back("cycle", make_cycle(12));
  fams.emplace_back("tree", make_random_tree(40, 3));
  fams.emplace_back("maze", make_random_maze(8, 8, 0.4, 5));
  fams.emplace_back("er", make_erdos_renyi(60, 0.06, 7));
  fams.emplace_back("wheel", make_wheel(19));
  fams.emplace_back("lb", make_lower_bound_graph(5, 6));
  fams.emplace_back("rmat", make_rmat(6, 160, 0.57, 0.19, 0.19, 9));
  fams.emplace_back("ba", make_barabasi_albert(50, 3, 13));
  fams.emplace_back("rreg", make_random_regular(30, 4, 15));
  fams.emplace_back("ktree", make_ktree(40, 3, 17));
  fams.emplace_back("weighted", with_random_weights(make_grid(5, 5), 1,
                                                    1000000007ULL, 23));
  return fams;
}

TEST(BinaryCache, RoundTripsEveryFamily) {
  for (const auto& [name, g] : all_families()) {
    SCOPED_TRACE(name);
    std::stringstream buf;
    write_binary(g, buf);
    const Graph back = read_binary(buf);
    expect_same_graph(g, back);
  }
}

TEST(BinaryCache, RoundTripsThroughFiles) {
  const std::string path = testing::TempDir() + "lcs_io_roundtrip.bin";
  const Graph g = make_genus_grid(9, 9, 3, 2);
  save_binary(g, path);
  expect_same_graph(g, load_binary(path));
  // Extension dispatch picks the binary reader for .bin.
  expect_same_graph(g, load_graph(path));
  std::remove(path.c_str());
}

TEST(BinaryCache, RejectsBadMagic) {
  std::stringstream buf;
  write_binary(make_grid(3, 3), buf);
  std::string bytes = buf.str();
  bytes[0] = 'X';
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_binary(corrupted), CheckFailure);
}

TEST(BinaryCache, RejectsUnknownVersion) {
  std::stringstream buf;
  write_binary(make_grid(3, 3), buf);
  std::string bytes = buf.str();
  bytes[4] = util::truncate_cast<char>(kBinaryGraphVersion + 1);  // little-endian LSB
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_binary(corrupted), CheckFailure);
}

TEST(BinaryCache, RejectsTruncation) {
  std::stringstream buf;
  write_binary(make_grid(4, 4), buf);
  const std::string bytes = buf.str();
  // Chop in the header and in the edge payload.
  for (const std::size_t keep : {std::size_t{10}, bytes.size() - 5}) {
    std::stringstream truncated(bytes.substr(0, keep));
    EXPECT_THROW(read_binary(truncated), CheckFailure) << "keep=" << keep;
  }
}

TEST(BinaryCache, RejectsTruncationAtEverySection) {
  // Every strict prefix must be diagnosed, whichever section the EOF lands
  // in: magic, version, reserved, node count, edge count, or any byte of
  // the edge payload.
  std::stringstream buf;
  write_binary(make_grid(4, 4), buf);
  const std::string bytes = buf.str();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::stringstream truncated(bytes.substr(0, keep));
    EXPECT_THROW(read_binary(truncated), CheckFailure) << "keep=" << keep;
  }
  // The full buffer still parses — the loop above really was strict prefixes.
  std::stringstream whole(bytes);
  expect_same_graph(make_grid(4, 4), read_binary(whole));
}

TEST(BinaryCache, TruncationDiagnosisNamesTheEdge) {
  std::stringstream buf;
  write_binary(make_path(5), buf);  // 4 edges, 16 bytes each after the header
  const std::string bytes = buf.str();
  // EOF mid-way through edge 2's record (header is 28 bytes).
  std::stringstream truncated(bytes.substr(0, 28 + 2 * 16 + 7));
  try {
    (void)read_binary(truncated);
    FAIL() << "truncated body parsed";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("edge 2 of 4"), std::string::npos)
        << e.what();
  }
}

TEST(BinaryCache, RejectsOutOfRangeEndpoint) {
  std::stringstream buf;
  write_binary(make_path(3), buf);
  std::string bytes = buf.str();
  // Header is 4 magic + 4 version + 4 reserved + 8 n + 8 m = 28 bytes;
  // first edge's u is next. Point it past n.
  bytes[28] = 100;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_binary(corrupted), CheckFailure);
}

TEST(BinaryCache, BundleSectionsRoundTrip) {
  const Graph g = make_grid(6, 4);
  Partition p;
  p.num_parts = 3;
  p.part_of.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.part_of[v] = v % 3;
  const BundleMeta meta{"grid:w=6,h=4", "grid"};

  std::stringstream buf;
  write_binary_bundle(
      g, {{kSectionPartition, encode_partition(p)},
          {kSectionMeta, encode_bundle_meta(meta)}},
      buf);
  const GraphBundle bundle = read_binary_bundle(buf);
  expect_same_graph(g, bundle.graph);
  ASSERT_NE(bundle.find(kSectionPartition), nullptr);
  ASSERT_NE(bundle.find(kSectionMeta), nullptr);
  const Partition back =
      decode_partition(bundle.find(kSectionPartition)->bytes, g.num_nodes());
  EXPECT_EQ(back.num_parts, p.num_parts);
  EXPECT_EQ(back.part_of, p.part_of);
  const BundleMeta meta_back =
      decode_bundle_meta(bundle.find(kSectionMeta)->bytes);
  EXPECT_EQ(meta_back.spec, meta.spec);
  EXPECT_EQ(meta_back.family, meta.family);
}

TEST(BinaryCache, UnknownSectionTagsAreSkippedNotFatal) {
  // Forward compatibility within a version: a file written by a newer
  // build with an extra section still loads; the section is preserved by
  // the bundle reader and ignored by the graph-only reader.
  const Graph g = make_path(6);
  std::stringstream buf;
  write_binary_bundle(g, {{0x58585858, "opaque-bytes"}}, buf);
  const std::string bytes = buf.str();
  {
    std::stringstream in(bytes);
    expect_same_graph(g, read_binary(in));
  }
  std::stringstream in(bytes);
  const GraphBundle bundle = read_binary_bundle(in);
  ASSERT_NE(bundle.find(0x58585858), nullptr);
  EXPECT_EQ(bundle.find(0x58585858)->bytes, "opaque-bytes");
}

TEST(BinaryCache, Version1FilesStillLoad) {
  // A v1 file is exactly a v2 file minus the section block: rewrite the
  // version field and drop the trailing u32 section_count (0).
  const Graph g = make_grid(5, 3);
  std::stringstream buf;
  write_binary(g, buf);
  std::string bytes = buf.str();
  bytes[4] = 1;
  bytes.resize(bytes.size() - 4);
  std::stringstream v1(bytes);
  expect_same_graph(g, read_binary(v1));
  // And the bundle reader reports no sections for it.
  std::stringstream v1_again(bytes);
  EXPECT_TRUE(read_binary_bundle(v1_again).sections.empty());
}

TEST(BinaryCache, SectionBlockTruncationIsDiagnosed) {
  const Graph g = make_path(4);
  std::stringstream buf;
  write_binary_bundle(g, {{kSectionMeta, encode_bundle_meta({"s", "f"})}},
                      buf);
  const std::string bytes = buf.str();
  // Every strict prefix that cuts into the section block must throw.
  const std::size_t graph_only = [&] {
    std::stringstream plain;
    write_binary_bundle(g, {}, plain);
    return plain.str().size() - 4;  // minus the empty section count
  }();
  for (std::size_t keep = graph_only; keep < bytes.size(); ++keep) {
    std::stringstream truncated(bytes.substr(0, keep));
    EXPECT_THROW(read_binary_bundle(truncated), CheckFailure)
        << "keep=" << keep;
  }
}

TEST(BinaryCache, PartitionCodecValidates) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 1, 1, kNoPart};
  const std::string bytes = encode_partition(p);
  const Partition back = decode_partition(bytes, 4);
  EXPECT_EQ(back.num_parts, 2);
  EXPECT_EQ(back.part_of, p.part_of);
  // Node-count mismatch (stale cache for a different graph) is diagnosed.
  EXPECT_THROW(decode_partition(bytes, 5), CheckFailure);
  // Truncation is diagnosed.
  EXPECT_THROW(decode_partition(std::string_view(bytes).substr(
                   0, bytes.size() - 2), 4),
               CheckFailure);
}

TEST(BinaryCache, AtomicSaveLeavesNoTempFileBehind) {
  const std::string path = testing::TempDir() + "lcs_io_atomic.bin";
  const Graph g = make_grid(4, 4);
  save_binary(g, path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  expect_same_graph(g, load_binary(path));
  // Overwriting an existing cache is atomic too.
  save_binary(make_grid(5, 5), path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  expect_same_graph(make_grid(5, 5), load_binary(path));
  std::remove(path.c_str());
}

TEST(EdgeList, ParsesWeightsCommentsAndDirective) {
  std::stringstream in(
      "# comment line\n"
      "nodes 5\n"
      "0 1 7\n"
      "1 2\n"
      "\n"
      "2 3 9  # trailing comment\n"
      "0 4\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.edge(0).w, 7u);
  EXPECT_EQ(g.edge(1).w, 1u);
  EXPECT_EQ(g.edge(2).w, 9u);
}

TEST(EdgeList, InfersNodeCountFromMaxId) {
  std::stringstream in("0 3\n3 1\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 4);
}

TEST(EdgeList, DiagnosesMalformedLines) {
  {
    std::stringstream in("0 1 2 3\n");
    EXPECT_THROW(read_edge_list(in), CheckFailure);
  }
  {
    std::stringstream in("0 x\n");
    EXPECT_THROW(read_edge_list(in), CheckFailure);
  }
  {
    std::stringstream in("-1 2\n");
    EXPECT_THROW(read_edge_list(in), CheckFailure);
  }
}

TEST(Dimacs, ParsesAndCollapsesSymmetricDuplicates) {
  std::stringstream in(
      "c a DIMACS shortest-path style file\n"
      "p sp 4 5\n"
      "a 1 2 10\n"
      "a 2 1 99\n"  // symmetric duplicate: first weight wins
      "a 2 3 20\n"
      "e 3 4\n"
      "a 1 4 5\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.edge(0).u, 0);
  EXPECT_EQ(g.edge(0).v, 1);
  EXPECT_EQ(g.edge(0).w, 10u);
  EXPECT_EQ(g.edge(1).w, 20u);
  EXPECT_EQ(g.edge(2).w, 1u);   // 'e' line: unit weight
  EXPECT_EQ(g.edge(3).w, 5u);
}

TEST(Dimacs, DiagnosesStructuralErrors) {
  {
    std::stringstream in("a 1 2\n");  // edge before problem line
    EXPECT_THROW(read_dimacs(in), CheckFailure);
  }
  {
    std::stringstream in("p sp 3 1\na 1 4\n");  // id out of range
    EXPECT_THROW(read_dimacs(in), CheckFailure);
  }
  {
    std::stringstream in("p sp 3 1\nz 1 2\n");  // unknown line type
    EXPECT_THROW(read_dimacs(in), CheckFailure);
  }
  {
    std::stringstream in("c only comments\n");  // no problem line
    EXPECT_THROW(read_dimacs(in), CheckFailure);
  }
}

}  // namespace
}  // namespace lcs
