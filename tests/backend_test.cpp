/// Tests for the ShortcutBackend registry (shortcut/backend/): registration
/// invariants, applicability, and every built-in construction against the
/// shortcut oracles.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/network.h"
#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"
#include "tree/bfs_tree.h"
#include "tree/spanning_tree.h"
#include "util/check.h"

namespace lcs::backend {
namespace {

TEST(BackendRegistry, BuiltinsComeFirstAndResolveByName) {
  const std::vector<Backend>& all = backends();
  ASSERT_GE(all.size(), 3u);
  EXPECT_EQ(all[0].name, "hiz16");
  EXPECT_EQ(all[1].name, "kkoi19");
  EXPECT_EQ(all[2].name, "naive");
  EXPECT_EQ(std::string(kDefaultBackend), "hiz16");
  for (const Backend& b : all) {
    const Backend* found = find_backend(b.name);
    ASSERT_NE(found, nullptr) << b.name;
    EXPECT_EQ(found->name, b.name);
    EXPECT_FALSE(b.paper.empty()) << b.name;
    EXPECT_FALSE(b.summary.empty()) << b.name;
  }
  EXPECT_EQ(find_backend("frobnicate"), nullptr);
}

TEST(BackendRegistry, RejectsCollidingAndIncompleteRegistrations) {
  Backend dup;
  dup.name = "hiz16";
  dup.applicable = [](const scenario::Scenario&) { return std::string(); };
  dup.construct = [](const BackendInput&) { return BackendOutput{}; };
  EXPECT_THROW(register_backend(dup), CheckFailure);
  Backend incomplete;
  incomplete.name = "no-construct";
  incomplete.applicable = dup.applicable;
  EXPECT_THROW(register_backend(incomplete), CheckFailure);
}

TEST(BackendRegistry, ApplicabilityGatesKkoi19ToKtree) {
  const auto ktree = scenario::make_scenario("ktree:n=40,k=3,seed=2");
  const auto grid = scenario::make_scenario("grid:w=5,h=5");
  EXPECT_EQ(find_backend("kkoi19")->applicable(ktree), "");
  EXPECT_NE(find_backend("kkoi19")->applicable(grid), "");
  EXPECT_EQ(applicable_backend_names(ktree),
            (std::vector<std::string>{"hiz16", "kkoi19", "naive"}));
  EXPECT_EQ(applicable_backend_names(grid),
            (std::vector<std::string>{"hiz16", "naive"}));
  EXPECT_EQ(registered_backend_names().substr(0, 20), "hiz16, kkoi19, naive");
}

/// Run `name` on `sc` the way the driver does: engine + BFS tree, then the
/// backend's construct.
BackendOutput run_backend(const std::string& name,
                          const scenario::Scenario& sc, std::uint64_t seed) {
  const Backend* b = find_backend(name);
  EXPECT_NE(b, nullptr) << name;
  congest::Network net(sc.graph);
  const SpanningTree bfs_tree = build_bfs_tree(net, /*root=*/0);
  return b->construct({sc, net, bfs_tree, seed});
}

TEST(BackendConstruct, Hiz16MatchesTheDirectPipeline) {
  const auto sc = scenario::make_scenario("er:n=80,deg=5,seed=3");
  const BackendOutput out = run_backend("hiz16", sc, /*seed=*/7);

  congest::Network net(sc.graph);
  const SpanningTree tree = build_bfs_tree(net, /*root=*/0);
  FindShortcutParams params;
  params.seed = 7;
  const FindShortcutResult direct =
      find_shortcut_doubling(net, tree, sc.partition, params);
  EXPECT_EQ(out.shortcut.parts_on_edge, direct.state.shortcut.parts_on_edge);
  EXPECT_EQ(out.find_stats.iterations, direct.stats.iterations);
  EXPECT_EQ(out.find_stats.trials, direct.stats.trials);
  EXPECT_EQ(out.find_stats.used_c, direct.stats.used_c);
  EXPECT_EQ(out.find_stats.used_b, direct.stats.used_b);
  EXPECT_EQ(out.find_stats.rounds, direct.stats.rounds);
  EXPECT_EQ(out.tree.root, tree.root);
  EXPECT_EQ(out.tree.parent_edge, tree.parent_edge);
  EXPECT_TRUE(out.stats.empty());
}

TEST(BackendConstruct, NaiveIsAValidBlockOneShortcutOnTheBfsTree) {
  const auto sc = scenario::make_scenario("ktree:n=60,k=3,seed=2");
  const BackendOutput out = run_backend("naive", sc, /*seed=*/7);
  EXPECT_EQ(out.tree.root, 0);  // the BFS tree, unchanged
  validate_shortcut(sc.graph, out.tree, sc.partition, out.shortcut);
  // Every Hi is one Steiner subtree: connected, so block parameter 1.
  EXPECT_EQ(block_parameter(sc.graph, sc.partition, out.shortcut), 1);
  ASSERT_EQ(out.stats.size(), 1u);
  EXPECT_EQ(out.stats[0].first, "steiner_edges");
  EXPECT_GT(out.stats[0].second, 0);
}

TEST(BackendConstruct, Kkoi19BuildsAValidShortcutOnItsEliminationTree) {
  const auto sc = scenario::make_scenario("ktree:n=60,k=3,seed=2");
  const BackendOutput out = run_backend("kkoi19", sc, /*seed=*/7);
  validate_spanning_tree(sc.graph, out.tree);
  validate_shortcut(sc.graph, out.tree, sc.partition, out.shortcut);
  EXPECT_EQ(block_parameter(sc.graph, sc.partition, out.shortcut), 1);
  // Greedy min-degree elimination on a 3-tree finds width exactly 3.
  ASSERT_EQ(out.stats.size(), 2u);
  EXPECT_EQ(out.stats[0].first, "width");
  EXPECT_EQ(out.stats[0].second, 3);
  EXPECT_EQ(out.stats[1].first, "steiner_edges");
  EXPECT_GT(out.stats[1].second, 0);
}

TEST(BackendConstruct, DeterministicAcrossRepeats) {
  const auto sc = scenario::make_scenario("ktree:n=60,k=3,seed=2");
  for (const char* name : {"hiz16", "kkoi19", "naive"}) {
    SCOPED_TRACE(name);
    const BackendOutput a = run_backend(name, sc, /*seed=*/7);
    const BackendOutput b = run_backend(name, sc, /*seed=*/7);
    EXPECT_EQ(a.shortcut.parts_on_edge, b.shortcut.parts_on_edge);
    EXPECT_EQ(a.tree.parent_edge, b.tree.parent_edge);
    EXPECT_EQ(a.stats, b.stats);
  }
}

}  // namespace
}  // namespace lcs::backend
