#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"
#include "test_util.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {
namespace {

using testutil::Sim;

/// End-to-end checks of Theorem 3's guarantees for a given scenario:
/// validity, block parameter <= 3b, congestion <= O(c log N).
void expect_theorem3(const Graph& g, const Partition& p,
                     const FindShortcutParams& params) {
  Sim setup(g);
  const FindShortcutResult result =
      find_shortcut(setup.net, setup.tree, p, params);
  const Shortcut& s = result.state.shortcut;
  validate_shortcut(g, setup.tree, p, s);

  EXPECT_LE(block_parameter(g, p, s), 3 * params.b);
  // Congestion: at most (8c + 1) per iteration (CoreFast), 2c+1 (CoreSlow).
  const std::int32_t per_iter = params.use_fast ? 8 * params.c : 2 * params.c;
  EXPECT_LE(congestion(g, p, s),
            result.stats.iterations * per_iter + 1);
  // Iterations: O(log N) with decent slack.
  const double log_n = std::log2(std::max<double>(2.0, p.num_parts));
  EXPECT_LE(result.stats.iterations, util::checked_trunc<std::int32_t>(2 * log_n) + 8);
}

TEST(FindShortcut, GridWithRowPartsKnownParams) {
  const Graph g = make_grid(10, 10);
  const auto p = make_grid_rows_partition(10, 10, 2);
  // Existential parameters measured centrally.
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const auto point = best_existential_for_block(g, tree, p, 4);
  FindShortcutParams params;
  params.c = std::max(point.congestion, 1);
  params.b = point.block;
  expect_theorem3(g, p, params);
}

TEST(FindShortcut, RandomGraphsAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(90, 0.05, seed);
    const auto p = make_random_bfs_partition(g, 10, seed + 3);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto point = best_existential_for_block(g, tree, p, 4);
    FindShortcutParams params;
    params.c = std::max(point.congestion, 1);
    params.b = point.block;
    params.seed = seed + 11;
    expect_theorem3(g, p, params);
  }
}

TEST(FindShortcut, CoreSlowVariantIsDeterministic) {
  const Graph g = make_grid(8, 8);
  const auto p = make_random_bfs_partition(g, 8, 2);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const auto point = best_existential_for_block(g, tree, p, 4);
  FindShortcutParams params;
  params.c = std::max(point.congestion, 1);
  params.b = point.block;
  params.use_fast = false;
  expect_theorem3(g, p, params);

  Sim s1(g), s2(g);
  const auto r1 = find_shortcut(s1.net, s1.tree, p, params);
  const auto r2 = find_shortcut(s2.net, s2.tree, p, params);
  EXPECT_EQ(r1.state.shortcut.parts_on_edge, r2.state.shortcut.parts_on_edge);
  EXPECT_EQ(s1.net.total_rounds(), s2.net.total_rounds());
}

TEST(FindShortcut, ThrowsWhenBudgetTooSmall) {
  // A hard instance with (c, b) = (1, 1) assumed: the lower-bound graph
  // cannot satisfy everyone at congestion O(1) and 3 blocks.
  const NodeId k = 8;
  const Graph g = make_lower_bound_graph(k, k);
  const auto p = make_lower_bound_partition(k, k, g.num_nodes());
  Sim setup(g, g.num_nodes() - 1);
  FindShortcutParams params;
  params.c = 1;
  params.b = 1;
  params.max_iterations = 6;
  EXPECT_THROW(find_shortcut(setup.net, setup.tree, p, params), CheckFailure);
}

TEST(FindShortcutDoubling, ConvergesWithoutKnownParameters) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = make_grid(9, 9);
    const auto p = make_random_bfs_partition(g, 9, seed);
    Sim setup(g);
    FindShortcutParams params;
    params.seed = seed;
    const auto result =
        find_shortcut_doubling(setup.net, setup.tree, p, params);
    validate_shortcut(g, setup.tree, p, result.state.shortcut);
    EXPECT_GE(result.stats.trials, 1);
    EXPECT_LE(block_parameter(g, p, result.state.shortcut),
              3 * result.stats.used_b);
  }
}

TEST(FindShortcutDoubling, FindsBetterThanTheoryOnWheel) {
  // Appendix A's observation: doubling discovers the (c, b) = (2, 1)-ish
  // wheel shortcut immediately, far below any genus-based bound.
  const NodeId n = 101;
  const Graph g = make_wheel(n);
  const auto p = make_cycle_arcs_partition(n, 10);
  Sim setup(g, n - 1);
  FindShortcutParams params;
  const auto result = find_shortcut_doubling(setup.net, setup.tree, p, params);
  EXPECT_LE(result.stats.used_c, 4);
  EXPECT_LE(congestion(g, p, result.state.shortcut), 16);
  EXPECT_LE(block_parameter(g, p, result.state.shortcut), 3);
}

TEST(FindShortcutDoubling, HandlesLowerBoundGraph) {
  // Even the pathological instance terminates — with proportionally larger
  // discovered parameters.
  const NodeId k = 8;
  const Graph g = make_lower_bound_graph(k, k);
  const auto p = make_lower_bound_partition(k, k, g.num_nodes());
  Sim setup(g, g.num_nodes() - 1);
  FindShortcutParams params;
  const auto result = find_shortcut_doubling(setup.net, setup.tree, p, params);
  validate_shortcut(g, setup.tree, p, result.state.shortcut);
  EXPECT_LE(block_parameter(g, p, result.state.shortcut),
            3 * result.stats.used_b);
}

TEST(FindShortcut, SinglePartWholeGraph) {
  const Graph g = make_grid(6, 6);
  const auto p = make_whole_graph_partition(g.num_nodes());
  Sim setup(g);
  FindShortcutParams params;
  params.c = 1;
  params.b = 1;
  const auto result = find_shortcut(setup.net, setup.tree, p, params);
  validate_shortcut(g, setup.tree, p, result.state.shortcut);
  EXPECT_LE(block_parameter(g, p, result.state.shortcut), 3);
}

TEST(FindShortcut, SingletonPartsAreTriviallySatisfied) {
  const Graph g = make_grid(6, 6);
  const auto p = make_singleton_partition(g.num_nodes());
  Sim setup(g);
  FindShortcutParams params;
  params.c = 1;
  params.b = 1;
  const auto result = find_shortcut(setup.net, setup.tree, p, params);
  // Every part is one node: one block component, done in one iteration.
  EXPECT_EQ(result.stats.iterations, 1);
  EXPECT_LE(block_parameter(g, p, result.state.shortcut), 3);
}

}  // namespace
}  // namespace lcs
