#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"

namespace lcs {
namespace {

TEST(Existential, FullAncestorHasBlockParameterOne) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(60, 0.07, seed);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 7, seed);
    const Shortcut s = full_ancestor_shortcut(g, tree, p);
    validate_shortcut(g, tree, p, s);
    // Every subgraph contains the root, so it is one connected block.
    EXPECT_EQ(block_parameter(g, p, s), 1);
  }
}

TEST(Existential, FullAncestorCoversRootPaths) {
  // Path rooted at 0 with one part at the far end: every edge on the way
  // must be assigned to it.
  const Graph g = make_path(6);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  Partition p;
  p.num_parts = 1;
  p.part_of = {kNoPart, kNoPart, kNoPart, kNoPart, 0, 0};
  const Shortcut s = full_ancestor_shortcut(g, tree, p);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_TRUE(s.edge_used_by(e, 0)) << "edge " << e;
}

TEST(Existential, GreedyRespectsThreshold) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_grid(8, 8);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 10, seed);
    for (const std::int32_t threshold : {1, 2, 5}) {
      const Shortcut s = greedy_blocked_shortcut(g, tree, p, threshold);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        EXPECT_LE(util::checked_cast<std::int32_t>(
                      s.parts_on_edge[static_cast<std::size_t>(e)].size()),
                  threshold);
      }
    }
  }
}

TEST(Existential, ZeroThresholdAssignsNothing) {
  const Graph g = make_grid(5, 5);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const auto p = make_random_bfs_partition(g, 4, 1);
  const Shortcut s = greedy_blocked_shortcut(g, tree, p, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_TRUE(s.parts_on_edge[static_cast<std::size_t>(e)].empty());
}

TEST(Existential, BlockParameterDecreasesAlongSweep) {
  // Raising the threshold can only help: the sweep's block parameter is
  // non-increasing and ends at 1 (the full-ancestor point).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(80, 0.05, seed);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 12, seed + 7);
    const auto points = pareto_sweep(g, tree, p);
    ASSERT_FALSE(points.empty());
    for (std::size_t k = 1; k < points.size(); ++k)
      EXPECT_LE(points[k].block, points[k - 1].block) << "seed " << seed;
    EXPECT_EQ(points.back().block, 1);
  }
}

TEST(Existential, SweepCongestionBoundedByThreshold) {
  const Graph g = make_grid(10, 10);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const auto p = make_random_bfs_partition(g, 15, 3);
  for (const auto& point : pareto_sweep(g, tree, p)) {
    // Definition-1 congestion also counts the part owning both endpoints,
    // hence the +1.
    EXPECT_LE(point.congestion, point.threshold + 1);
  }
}

TEST(Existential, BestForBlockPicksCheapestPoint) {
  const Graph g = make_grid(9, 9);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const auto p = make_grid_rows_partition(9, 9, 1);
  const auto loose = best_existential_for_block(g, tree, p, 1000);
  const auto tight = best_existential_for_block(g, tree, p, 1);
  EXPECT_LE(loose.congestion, tight.congestion);
  EXPECT_LE(loose.block, 1000);
  EXPECT_EQ(tight.block, 1);
}

TEST(Existential, WheelAdmitsPerfectShortcut) {
  // On the wheel graph rooted at the hub, arcs get (c, b) = (1, 1): each
  // arc's ancestor edges are its own hub spokes.
  const NodeId n = 65;
  const Graph g = make_wheel(n);
  const SpanningTree tree = reference_bfs_tree(g, n - 1);  // root = hub
  const auto p = make_cycle_arcs_partition(n, 8);
  const auto best = best_existential_for_block(g, tree, p, 1);
  EXPECT_EQ(best.block, 1);
  EXPECT_LE(best.congestion, 2);
}

TEST(Existential, LowerBoundGraphHasNoCheapShortcut) {
  // On the Peleg–Rubinovich graph, congestion + block*depth must be large:
  // at block budget 1 every path floods the tree, congesting root edges by
  // ~num_paths.
  const NodeId k = 12;
  const Graph g = make_lower_bound_graph(k, k);
  const SpanningTree tree = reference_bfs_tree(g, g.num_nodes() - 1);
  const auto p = make_lower_bound_partition(k, k, g.num_nodes());
  const auto best = best_existential_for_block(g, tree, p, 1);
  EXPECT_GE(best.congestion, k / 2);
}

}  // namespace
}  // namespace lcs
