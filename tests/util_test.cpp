#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/random.h"
#include "util/sorted.h"
#include "util/stats.h"
#include "util/table.h"

namespace lcs {
namespace {

TEST(Check, PassesOnTrueCondition) {
  EXPECT_NO_THROW(LCS_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Sorted, KeysItemsAndElementsComeBackInKeyOrder) {
  std::unordered_map<int, std::string> m = {{3, "c"}, {1, "a"}, {2, "b"}};
  EXPECT_EQ(util::sorted_keys(m), (std::vector<int>{1, 2, 3}));
  const auto items = util::sorted_items(m);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1);
  EXPECT_EQ(items[0].second, "a");
  EXPECT_EQ(items[2].first, 3);
  EXPECT_EQ(items[2].second, "c");
  std::unordered_set<int> s = {5, 4, 6};
  EXPECT_EQ(util::sorted_elements(s), (std::vector<int>{4, 5, 6}));
}

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    LCS_CHECK(false, "custom context");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CheckFailure);
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_in(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (rng.next_bool(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NextBoolTotalOnEdgeCaseProbabilities) {
  Rng rng(3);
  // p <= 0 and p >= 1 return without consuming the stream or hanging.
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_FALSE(rng.next_bool(-0.0));
  EXPECT_FALSE(rng.next_bool(-1.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  EXPECT_TRUE(rng.next_bool(2.0));
  // Subnormal p: one draw, essentially always false (u < 5e-324 needs a
  // zero mantissa draw), never UB.
  constexpr double kSubnormal = 5e-324;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(rng.next_bool(kSubnormal));
}

TEST(GeometricSkip, ExtremeProbabilitiesNeverHangOrDraw) {
  Rng rng(5);
  const std::uint64_t stream_probe = Rng(5)();
  const GeometricSkip always(1.0);
  const GeometricSkip never(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(always.next(rng), 1u);
    EXPECT_EQ(never.next(rng), GeometricSkip::kNever);
  }
  // Neither consumed any randomness.
  EXPECT_EQ(rng(), stream_probe);
}

TEST(GeometricSkip, SubnormalProbabilitySaturatesToNever) {
  Rng rng(9);
  const GeometricSkip skip(5e-324);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t s = skip.next(rng);
    // Any skip this p can produce overflows the indexable range (mean
    // 1/p ~ 2e323 trials), so next() saturates instead of wrapping.
    EXPECT_EQ(s, GeometricSkip::kNever);
  }
}

TEST(GeometricSkip, RejectsOutOfRangeProbability) {
  EXPECT_THROW(GeometricSkip(-0.1), CheckFailure);
  EXPECT_THROW(GeometricSkip(1.1), CheckFailure);
}

TEST(GeometricSkip, MatchesGeometricMoments) {
  // Mean of Geometric(p) on {1, 2, ...} is 1/p; check calibration at a few
  // probabilities with a generous tolerance (n = 20000 draws).
  for (const double p : {0.5, 0.1, 0.01}) {
    SCOPED_TRACE(p);
    Rng rng(17);
    const GeometricSkip skip(p);
    const int draws = 20000;
    double sum = 0;
    std::uint64_t min_seen = GeometricSkip::kNever;
    for (int i = 0; i < draws; ++i) {
      const std::uint64_t s = skip.next(rng);
      ASSERT_GE(s, 1u);
      ASSERT_NE(s, GeometricSkip::kNever);
      min_seen = std::min(min_seen, s);
      sum += static_cast<double>(s);
    }
    EXPECT_EQ(min_seen, 1u);  // successes on the very next trial do occur
    const double mean = sum / draws;
    // 6 sigma of the sample mean: sigma = sqrt(1-p)/p / sqrt(draws).
    const double tol = 6.0 * std::sqrt(1.0 - p) / p / std::sqrt(double(draws));
    EXPECT_NEAR(mean, 1.0 / p, tol);
  }
}

TEST(GeometricSkip, DeterministicPerSeed) {
  Rng a(23), b(23);
  const GeometricSkip skip(0.037);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(skip.next(a), skip.next(b));
}

TEST(Hash64, DeterministicAndSeedSensitive) {
  EXPECT_EQ(hash64(1, 2), hash64(1, 2));
  EXPECT_NE(hash64(1, 2), hash64(2, 2));
  EXPECT_NE(hash64(1, 2), hash64(1, 3));
  EXPECT_EQ(hash64(5, 6, 7), hash64(5, 6, 7));
  EXPECT_NE(hash64(5, 6, 7), hash64(5, 7, 6));
}

TEST(HashCoin, ExtremesAndCalibration) {
  EXPECT_FALSE(hash_coin(9, 1, 0.0));
  EXPECT_TRUE(hash_coin(9, 1, 1.0));
  int hits = 0;
  const int trials = 20000;
  for (int k = 0; k < trials; ++k)
    if (hash_coin(123, static_cast<std::uint64_t>(k), 0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(HashCoin, SharedRandomnessAgreesAcrossCallers) {
  // The property the protocols rely on: any two "nodes" evaluating the coin
  // for the same (seed, part) get the same answer.
  for (std::uint64_t part = 0; part < 50; ++part)
    EXPECT_EQ(hash_coin(77, part, 0.5), hash_coin(77, part, 0.5));
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), CheckFailure);
  EXPECT_THROW(s.percentile(50), CheckFailure);
}

TEST(Table, AlignsColumnsAndRejectsBadRows) {
  Table t({"name", "value"});
  t.begin_row().cell(std::string("x")).cell(std::int64_t{12});
  t.begin_row().cell(std::string("long-name")).cell(3.5);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("3.500"), std::string::npos);

  Table bad({"a", "b"});
  bad.begin_row().cell(std::string("only-one"));
  std::ostringstream sink;
  EXPECT_THROW(bad.print(sink), CheckFailure);
}

}  // namespace
}  // namespace lcs
