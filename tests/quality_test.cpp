/// Hand-computed oracle tests for the Steiner-subtree quality helpers in
/// shortcut/quality.h — the shared vocabulary of the shortcut backends and
/// the dynamic churn metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/quality.h"
#include "tree/spanning_tree.h"
#include "util/check.h"

namespace lcs {
namespace {

TEST(SteinerSubtree, PathEndpointsSpanTheWholePath) {
  // Path 0-1-2-3-4 (edge e connects e and e+1). Members {0, 4} need every
  // edge; members {1, 3} need exactly the middle two.
  Graph g(5, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  EXPECT_EQ(steiner_subtree_edges(g, tree, {0, 4}),
            (std::vector<EdgeId>{0, 1, 2, 3}));
  EXPECT_EQ(steiner_subtree_edges(g, tree, {1, 3}),
            (std::vector<EdgeId>{1, 2}));
}

TEST(SteinerSubtree, StarLeavesMeetAtTheCenter) {
  // Star centered at 0 with leaves 1..4 (edge e = (0, e+1)). Two leaves
  // need their two legs; the subtree of {center, leaf} is one leg.
  Graph g(5, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  EXPECT_EQ(steiner_subtree_edges(g, tree, {1, 4}),
            (std::vector<EdgeId>{0, 3}));
  EXPECT_EQ(steiner_subtree_edges(g, tree, {0, 2}),
            (std::vector<EdgeId>{1}));
  EXPECT_EQ(steiner_subtree_edges(g, tree, {2, 3, 4}),
            (std::vector<EdgeId>{1, 2, 3}));
}

TEST(SteinerSubtree, BranchesWithoutMembersAreExcluded) {
  // Rooted at 0:    0
  //               /   \        edges: 0=(0,1) 1=(0,2) 2=(1,3) 3=(1,4)
  //              1     2
  //             / \ .
  //            3   4
  // Members {3, 4} meet at 1 — node 0 and the 0-2 branch stay out.
  Graph g(5, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {1, 4, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  EXPECT_EQ(steiner_subtree_edges(g, tree, {3, 4}),
            (std::vector<EdgeId>{2, 3}));
  // Adding 2 as a member pulls in the path through the root.
  EXPECT_EQ(steiner_subtree_edges(g, tree, {2, 3, 4}),
            (std::vector<EdgeId>{0, 1, 2, 3}));
}

TEST(SteinerSubtree, FewerThanTwoMembersSpanNothing) {
  Graph g(3, {{0, 1, 1}, {1, 2, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  EXPECT_TRUE(steiner_subtree_edges(g, tree, {}).empty());
  EXPECT_TRUE(steiner_subtree_edges(g, tree, {2}).empty());
}

TEST(SteinerSubtree, OnlyTreeEdgesAreUsed) {
  // 4-cycle: the BFS tree from 0 omits one cycle edge; the Steiner subtree
  // of the two far corners must route over tree edges only.
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  for (const EdgeId e : steiner_subtree_edges(g, tree, {1, 3}))
    EXPECT_TRUE(tree.is_tree_edge(e)) << "non-tree edge " << e;
}

TEST(SteinerSubtree, DiagnosesBadMembers) {
  Graph g(3, {{0, 1, 1}, {1, 2, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  EXPECT_THROW((void)steiner_subtree_edges(g, tree, {0, 7}), CheckFailure);
  EXPECT_THROW((void)steiner_subtree_edges(g, tree, {1, 1}), CheckFailure);
}

TEST(SteinerSubtree, AgreesWithForestPartQuality) {
  // The per-part Steiner edge sets, overlaid, must reproduce the
  // forest-quality congestion measured on the same tree: same subtrees,
  // two formulations.
  Graph g(7, {{0, 1, 1},
              {0, 2, 1},
              {1, 3, 1},
              {1, 4, 1},
              {2, 5, 1},
              {2, 6, 1}});
  const SpanningTree tree = reference_bfs_tree(g, 0);
  const std::vector<PartId> part_of = {kNoPart, 0, 1, 0, 1, 0, 1};
  std::vector<std::vector<NodeId>> members(2);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (part_of[static_cast<std::size_t>(v)] != kNoPart)
      members[static_cast<std::size_t>(
          part_of[static_cast<std::size_t>(v)])].push_back(v);

  std::vector<std::int32_t> load(static_cast<std::size_t>(g.num_edges()), 0);
  std::int32_t max_load = 0;
  for (const auto& m : members) {
    for (const EdgeId e : steiner_subtree_edges(g, tree, m)) {
      ++load[static_cast<std::size_t>(e)];
      max_load = std::max(max_load, load[static_cast<std::size_t>(e)]);
    }
  }
  std::vector<bool> forest(static_cast<std::size_t>(g.num_edges()), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    forest[static_cast<std::size_t>(e)] = tree.is_tree_edge(e);
  const ForestQuality q = forest_part_quality(g, part_of, forest);
  EXPECT_EQ(q.congestion, max_load);
  // Hand value: both parts route through the root, sharing edges 0 and 1.
  EXPECT_EQ(max_load, 2);
}

}  // namespace
}  // namespace lcs
