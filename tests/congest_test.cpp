#include <gtest/gtest.h>

#include <algorithm>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "stress_util.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {
namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::PhaseStats;
using congest::Process;

/// Floods a token from node 0; records the round each node first hears it.
class FloodProcess final : public Process {
 public:
  explicit FloodProcess(NodeId id) : id_(id) {}
  std::int64_t heard_round = -1;

  void on_start(Context& ctx) override {
    if (id_ != 0) return;
    heard_round = 0;
    for (const auto& nb : ctx.neighbors()) ctx.send(nb.edge, Message(1));
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    if (heard_round >= 0 || inbox.empty()) return;
    heard_round = ctx.round() + 1;  // distance = delivery round + 1
    for (const auto& nb : ctx.neighbors()) {
      const bool from_sender =
          std::any_of(inbox.begin(), inbox.end(),
                      [&](const Incoming& in) { return in.edge == nb.edge; });
      if (!from_sender) ctx.send(nb.edge, Message(1));
    }
  }

 private:
  NodeId id_;
};

TEST(Network, FloodTakesEccentricityRounds) {
  const Graph g = make_path(10);
  Network net(g);
  std::vector<FloodProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  // Token reaches node 9 after 9 rounds.
  EXPECT_EQ(procs[9].heard_round, 9);
  EXPECT_EQ(stats.rounds, 9);
  EXPECT_EQ(stats.messages, 9);
  EXPECT_EQ(net.total_rounds(), 9);
}

TEST(Network, FloodDistanceMatchesBfsOnGrid) {
  const Graph g = make_grid(5, 5);
  Network net(g);
  std::vector<FloodProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  congest::run_phase(net, procs);
  // Node (4,4) = id 24 is 8 hops from node 0.
  EXPECT_EQ(procs[24].heard_round, 8);
}

/// Sends two messages over the same edge in one round — must be rejected.
class DoubleSendProcess final : public Process {
 public:
  explicit DoubleSendProcess(NodeId id) : id_(id) {}
  void on_start(Context& ctx) override {
    if (id_ != 0) return;
    ctx.send(ctx.neighbors().front().edge, Message(1));
    ctx.send(ctx.neighbors().front().edge, Message(2));
  }
  void on_round(Context&, std::span<const Incoming>) override {}

 private:
  NodeId id_;
};

TEST(Network, RejectsTwoSendsOnOneEdgePerRound) {
  const Graph g = make_path(2);
  Network net(g);
  std::vector<DoubleSendProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
}

/// Both directions of one edge in the same round are fine.
class PingPongProcess final : public Process {
 public:
  explicit PingPongProcess(NodeId id) : id_(id) {}
  int received = 0;
  void on_start(Context& ctx) override {
    ctx.send(ctx.neighbors().front().edge, Message(7));
  }
  void on_round(Context&, std::span<const Incoming> inbox) override {
    received += util::checked_cast<int>(inbox.size());
  }

 private:
  NodeId id_;
};

TEST(Network, BothDirectionsOfAnEdgeAreIndependent) {
  const Graph g = make_path(2);
  Network net(g);
  std::vector<PingPongProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  EXPECT_EQ(procs[0].received, 1);
  EXPECT_EQ(procs[1].received, 1);
  EXPECT_EQ(stats.messages, 2);
}

/// Sends over an edge not incident to the sender.
class ForeignEdgeProcess final : public Process {
 public:
  explicit ForeignEdgeProcess(NodeId id) : id_(id) {}
  void on_start(Context& ctx) override {
    if (id_ == 0) ctx.send(1, Message(1));  // edge 1 connects nodes 1-2
  }
  void on_round(Context&, std::span<const Incoming>) override {}

 private:
  NodeId id_;
};

TEST(Network, RejectsNonIncidentSend) {
  const Graph g = make_path(3);
  Network net(g);
  std::vector<ForeignEdgeProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
}

/// Wakes itself k times without any messages.
class SelfWakeProcess final : public Process {
 public:
  explicit SelfWakeProcess(NodeId id) : id_(id) {}
  int invocations = 0;
  void on_start(Context& ctx) override {
    if (id_ == 0) ctx.wake_next_round();
  }
  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    EXPECT_TRUE(inbox.empty());
    ++invocations;
    if (invocations < 3) ctx.wake_next_round();
  }

 private:
  NodeId id_;
};

TEST(Network, WakeupsDriveRoundsWithoutMessages) {
  const Graph g = make_path(2);
  Network net(g);
  std::vector<SelfWakeProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  EXPECT_EQ(procs[0].invocations, 3);
  EXPECT_EQ(stats.rounds, 3);
  EXPECT_EQ(stats.messages, 0);
}

/// Never stops waking itself: must trip the round limit.
class LivelockProcess final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.wake_next_round(); }
  void on_round(Context& ctx, std::span<const Incoming>) override {
    ctx.wake_next_round();
  }
};

TEST(Network, RoundLimitCatchesNonQuiescence) {
  const Graph g = make_path(2);
  Network net(g);
  std::vector<LivelockProcess> procs(2);
  EXPECT_THROW(congest::run_phase(net, procs, /*max_rounds=*/100),
               CheckFailure);
}

TEST(Network, ChargedRoundsAccumulateWithLabels) {
  const Graph g = make_path(2);
  Network net(g);
  net.charge(5, "seed-broadcast");
  net.charge(3, "termination");
  net.charge(2, "seed-broadcast");
  EXPECT_EQ(net.total_rounds(), 10);
  EXPECT_EQ(net.charged_rounds().at("seed-broadcast"), 7);
  EXPECT_EQ(net.charged_rounds().at("termination"), 3);
  net.reset_accounting();
  EXPECT_EQ(net.total_rounds(), 0);
  EXPECT_TRUE(net.charged_rounds().empty());
}

TEST(Network, AccountingAccumulatesAcrossPhases) {
  const Graph g = make_path(4);
  Network net(g);
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<FloodProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    congest::run_phase(net, procs);
  }
  EXPECT_EQ(net.total_rounds(), 3 * 3);
  EXPECT_EQ(net.total_messages(), 3 * 3);
}

// ---------------------------------------------------------------------------
// Engine semantics stress test: the slab/epoch engine must match a direct
// reimplementation of the historical vector-of-vectors engine — identical
// PhaseStats and identical per-node delivery order — on a randomized
// multi-phase workload over several topologies. The harness lives in
// stress_util.h, shared with the parallel determinism suite.

using testutil::DeliveryRecord;
using testutil::reference_run;
using testutil::StressBehavior;
using testutil::StressProcess;

void run_stress_comparison(const Graph& g, bool validate) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Network net(g);
  net.set_validate(validate);
  // Multiple phases on one Network exercise the epoch-stamped reuse of all
  // per-phase state (nothing is reset O(n) between phases).
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    const StressBehavior behavior{0x5eed0000 + phase};

    std::vector<std::vector<DeliveryRecord>> got_logs(n);
    std::vector<StressProcess> procs;
    procs.reserve(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      procs.emplace_back(v, behavior, &got_logs[static_cast<std::size_t>(v)]);
    const PhaseStats got = congest::run_phase(net, procs);

    std::vector<std::vector<DeliveryRecord>> want_logs(n);
    const PhaseStats want = reference_run(g, behavior, want_logs);

    EXPECT_EQ(got.rounds, want.rounds) << "phase " << phase;
    EXPECT_EQ(got.messages, want.messages) << "phase " << phase;
    ASSERT_EQ(got_logs, want_logs) << "phase " << phase;
  }
}

TEST(NetworkStress, MatchesReferenceEngineOnGrid) {
  run_stress_comparison(make_grid(9, 7), /*validate=*/true);
}

TEST(NetworkStress, MatchesReferenceEngineOnErdosRenyi) {
  run_stress_comparison(make_erdos_renyi(150, 0.06, 11), /*validate=*/true);
}

TEST(NetworkStress, MatchesReferenceEngineOnWheelHub) {
  // The hub's degree exceeds the send path's adjacency-scan cutoff, so
  // this exercises the O(1) endpoint-lookup branch too.
  run_stress_comparison(make_wheel(40), /*validate=*/true);
}

TEST(NetworkStress, MatchesReferenceEngineWithValidationOff) {
  run_stress_comparison(make_grid(8, 8), /*validate=*/false);
}

TEST(Network, DoubleSendFiresInValidateMode) {
  const Graph g = make_path(2);
  Network net(g);
  net.set_validate(true);
  std::vector<DoubleSendProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
}

TEST(Network, DoubleSendIsNotDiagnosedWithValidationOff) {
  // With validation off the CONGEST checks are skipped entirely: the
  // violating phase runs to completion and both messages are delivered.
  const Graph g = make_path(2);
  Network net(g);
  net.set_validate(false);
  std::vector<DoubleSendProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  EXPECT_EQ(stats.messages, 2);
}

TEST(Network, RecoversAfterAbortedPhase) {
  // A phase that dies mid-flight (CONGEST violation) leaves messages in
  // the fill slab; the next run on the same Network must start clean.
  const Graph g = make_path(4);
  Network net(g);
  {
    std::vector<DoubleSendProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
  }
  std::vector<FloodProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  EXPECT_EQ(stats.rounds, 3);
  EXPECT_EQ(stats.messages, 3);
  EXPECT_EQ(procs[3].heard_round, 3);
}

TEST(Message, PayloadIsBounded) {
  // Compile-time guarantee that a message cannot grow beyond O(log n) bits:
  // the payload is a fixed array of words.
  static_assert(Message::kMaxWords == 3);
  static_assert(sizeof(Message::words) == 3 * sizeof(std::uint64_t));
  SUCCEED();
}

}  // namespace
}  // namespace lcs
