#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "driver/run_driver.h"
#include "graph/graph.h"
#include "scenario/scenario.h"
#include "serve/cache.h"
#include "shortcut/persist.h"
#include "util/check.h"

namespace lcs {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

driver::RunHooks hooks_for(serve::ScenarioCache& scenarios,
                           serve::ShortcutRecordCache& records) {
  driver::RunHooks hooks;
  hooks.resolve_scenario = [&scenarios](const std::string& spec) {
    return scenarios.resolve(spec);
  };
  hooks.find_shortcut_record = [&records](const driver::ShortcutCacheKey& key,
                                          const scenario::Scenario& sc) {
    return records.find(key, sc);
  };
  hooks.store_shortcut_record =
      [&records](const driver::ShortcutCacheKey& key,
                 const scenario::Scenario& sc,
                 const std::shared_ptr<const ShortcutRunRecord>& record) {
        records.store(key, sc, record);
      };
  return hooks;
}

TEST(ScenarioCache, MemoryThenDiskThenGenerate) {
  const std::string dir = fresh_dir("lcs_scen_cache");
  {
    serve::ScenarioCache cache(dir);
    const auto a = cache.resolve("grid:w=6,h=5");
    const auto b = cache.resolve("grid:w=6,h=5");
    EXPECT_EQ(a.get(), b.get());  // one canonical object
    const auto s = cache.stats();
    EXPECT_EQ(s.generated, 1);
    EXPECT_EQ(s.memory_hits, 1);
    EXPECT_EQ(s.disk_loads, 0);
  }
  {
    // A new process (new cache object) over the same directory: pure I/O.
    serve::ScenarioCache cache(dir);
    const auto sc = cache.resolve("grid:w=6,h=5");
    EXPECT_EQ(sc->spec, "grid:w=6,h=5");
    EXPECT_EQ(sc->family, "grid");
    EXPECT_EQ(sc->graph.num_nodes(), 30);
    const auto s = cache.stats();
    EXPECT_EQ(s.generated, 0);
    EXPECT_EQ(s.disk_loads, 1);
  }
  fs::remove_all(dir);
}

TEST(ScenarioCache, DiskEntriesMatchDirectGeneration) {
  const std::string dir = fresh_dir("lcs_scen_cache_eq");
  const char* spec = "er:n=60,deg=4,seed=9,parts=5";
  serve::ScenarioCache cold(dir);
  const auto generated = cold.resolve(spec);
  serve::ScenarioCache warm(dir);
  const auto loaded = warm.resolve(spec);
  ASSERT_EQ(warm.stats().generated, 0);
  ASSERT_EQ(generated->graph.num_edges(), loaded->graph.num_edges());
  for (EdgeId e = 0; e < generated->graph.num_edges(); ++e) {
    EXPECT_EQ(generated->graph.edge(e).u, loaded->graph.edge(e).u);
    EXPECT_EQ(generated->graph.edge(e).v, loaded->graph.edge(e).v);
    EXPECT_EQ(generated->graph.edge(e).w, loaded->graph.edge(e).w);
  }
  EXPECT_EQ(generated->partition.num_parts, loaded->partition.num_parts);
  EXPECT_EQ(generated->partition.part_of, loaded->partition.part_of);
  fs::remove_all(dir);
}

TEST(ScenarioCache, CorruptEntryDegradesToRegeneration) {
  const std::string dir = fresh_dir("lcs_scen_cache_bad");
  {
    serve::ScenarioCache cache(dir);
    (void)cache.resolve("grid:w=5,h=5");  // warm / regenerate the entry
  }
  // Truncate the one cache file: a torn/corrupt entry.
  std::string entry;
  for (const auto& f : fs::directory_iterator(dir))
    entry = f.path().string();
  ASSERT_FALSE(entry.empty());
  fs::resize_file(entry, fs::file_size(entry) / 2);
  {
    serve::ScenarioCache cache(dir);
    const auto sc = cache.resolve("grid:w=5,h=5");
    EXPECT_EQ(sc->graph.num_nodes(), 25);
    const auto s = cache.stats();
    EXPECT_EQ(s.disk_load_failures, 1);
    EXPECT_EQ(s.generated, 1);  // recomputed, not served torn
  }
  // The regeneration rewrote the entry: next start is warm again.
  {
    serve::ScenarioCache cache(dir);
    (void)cache.resolve("grid:w=5,h=5");  // warm / regenerate the entry
    EXPECT_EQ(cache.stats().disk_loads, 1);
    EXPECT_EQ(cache.stats().generated, 0);
  }
  fs::remove_all(dir);
}

TEST(ServeDriver, WarmShortcutRunIsByteIdenticalWithZeroConstruction) {
  const std::string dir = fresh_dir("lcs_record_cache");
  driver::RunOptions o;
  o.algo = "shortcut";
  o.scenario = "grid:w=8,h=8";
  o.validate = true;
  o.timing = false;

  std::string cold_doc;
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    const int rc =
        driver::run_document(o, hooks_for(scenarios, records), cold_doc);
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(records.stats().constructed, 1);
  }
  // Baseline: no hooks at all (the lcs_run path).
  std::string oneshot_doc;
  EXPECT_EQ(driver::run_document(o, driver::RunHooks{}, oneshot_doc), 0);
  EXPECT_EQ(cold_doc, oneshot_doc);

  // Warm start: same document, zero generation, zero construction.
  std::string warm_doc;
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    const auto hooks = hooks_for(scenarios, records);
    EXPECT_EQ(driver::run_document(o, hooks, warm_doc), 0);
    EXPECT_EQ(scenarios.stats().generated, 0);
    EXPECT_EQ(records.stats().constructed, 0);
    EXPECT_EQ(records.stats().disk_loads, 1);
    // And a repeat inside the process hits the memo.
    std::string again;
    EXPECT_EQ(driver::run_document(o, hooks, again), 0);
    EXPECT_EQ(records.stats().memory_hits, 1);
    EXPECT_EQ(again, warm_doc);
  }
  EXPECT_EQ(warm_doc, cold_doc);
  fs::remove_all(dir);
}

TEST(ServeDriver, CorruptRecordDegradesToReconstruction) {
  const std::string dir = fresh_dir("lcs_record_cache_bad");
  driver::RunOptions o;
  o.algo = "shortcut";
  o.scenario = "grid:w=6,h=6";
  o.timing = false;

  std::string cold_doc;
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    driver::run_document(o, hooks_for(scenarios, records), cold_doc);
  }
  for (const auto& f : fs::directory_iterator(dir)) {
    const std::string p = f.path().string();
    if (p.size() > 5 && p.substr(p.size() - 5) == ".lcss")
      fs::resize_file(p, fs::file_size(p) / 2);
  }
  std::string warm_doc;
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    EXPECT_EQ(driver::run_document(o, hooks_for(scenarios, records), warm_doc),
              0);
    EXPECT_EQ(records.stats().disk_load_failures, 1);
    EXPECT_EQ(records.stats().constructed, 1);
  }
  EXPECT_EQ(warm_doc, cold_doc);
  fs::remove_all(dir);
}

TEST(ServeDriver, SeedAndPartitionChangesMissTheCache) {
  const std::string dir = fresh_dir("lcs_record_cache_keys");
  serve::ScenarioCache scenarios(dir);
  serve::ShortcutRecordCache records(dir);
  const auto hooks = hooks_for(scenarios, records);

  driver::RunOptions o;
  o.algo = "shortcut";
  o.scenario = "grid:w=6,h=6";
  o.timing = false;
  std::string doc;
  driver::run_document(o, hooks, doc);
  o.seed = 2;
  driver::run_document(o, hooks, doc);
  EXPECT_EQ(records.stats().constructed, 2);  // different seed, new record
  o.seed = 1;
  o.scenario = "grid:w=6,h=6,pseed=7";  // same graph, different partition
  driver::run_document(o, hooks, doc);
  EXPECT_EQ(records.stats().constructed, 3);
  fs::remove_all(dir);
}

TEST(ServeDriver, BackendChangesMissTheCacheAndWarmStartServesAll) {
  const std::string dir = fresh_dir("lcs_record_cache_backends");
  driver::RunOptions o;
  o.algo = "shortcut";
  o.scenario = "ktree:n=40,k=3,seed=2";  // every built-in backend applies
  o.timing = false;
  std::vector<std::string> cold_docs;
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    const auto hooks = hooks_for(scenarios, records);
    for (const char* backend : {"", "naive", "kkoi19"}) {
      o.backend = backend;
      std::string doc;
      EXPECT_EQ(driver::run_document(o, hooks, doc), 0);
      cold_docs.push_back(std::move(doc));
    }
    // Three distinct records: backend is part of the cache key.
    EXPECT_EQ(records.stats().constructed, 3);
    // An explicit --backend=hiz16 resolves to the default's record.
    o.backend = "hiz16";
    std::string doc;
    EXPECT_EQ(driver::run_document(o, hooks, doc), 0);
    EXPECT_EQ(records.stats().constructed, 3);
    EXPECT_EQ(records.stats().memory_hits, 1);
    EXPECT_EQ(doc, cold_docs[0]);
  }
  // Warm start: all three backends answered from disk, zero construction.
  {
    serve::ScenarioCache scenarios(dir);
    serve::ShortcutRecordCache records(dir);
    const auto hooks = hooks_for(scenarios, records);
    std::size_t i = 0;
    for (const char* backend : {"", "naive", "kkoi19"}) {
      o.backend = backend;
      std::string doc;
      EXPECT_EQ(driver::run_document(o, hooks, doc), 0);
      EXPECT_EQ(doc, cold_docs[i++]) << backend;
    }
    EXPECT_EQ(records.stats().constructed, 0);
    EXPECT_EQ(records.stats().disk_loads, 3);
  }
  fs::remove_all(dir);
}

TEST(ServeDriver, ErrorDocumentsAreDeterministic) {
  driver::RunOptions o;
  o.algo = "nonsense";
  o.scenario = "grid";
  std::string ignored;
  std::string message;
  try {
    driver::run_document(o, driver::RunHooks{}, ignored);
    FAIL() << "unknown algo accepted";
  } catch (const CheckFailure& e) {
    message = e.what();
  }
  const std::string doc1 = driver::error_document("check_failure", message, 2);
  const std::string doc2 = driver::error_document("check_failure", message, 2);
  EXPECT_EQ(doc1, doc2);
  EXPECT_NE(doc1.find("\"error\""), std::string::npos);
  EXPECT_NE(doc1.find("nonsense"), std::string::npos);
}

TEST(ServeDriver, SpecHashIsStableAcrossRuns) {
  // Cache file names embed this hash; a drifting hash function would
  // silently orphan every on-disk entry. Pin the FNV-1a constants.
  EXPECT_EQ(driver::spec_hash(""), 14695981039346656037ull);
  EXPECT_EQ(driver::spec_hash("a"), 12638187200555641996ull);
  const std::uint64_t h = driver::spec_hash("grid:w=8,h=8");
  EXPECT_EQ(h, driver::spec_hash("grid:w=8,h=8"));
  EXPECT_NE(h, driver::spec_hash("grid:w=8,h=9"));
}

}  // namespace
}  // namespace lcs
