/// \file parallel_determinism_test.cpp
/// The parallel engine's determinism contract (network.h, "Parallel
/// mode"): at every thread count, `PhaseStats`, per-node inbox contents,
/// delivery order, the accounting totals, and the validation diagnostics
/// must be bit-identical to the sequential engine — which in turn matches
/// the historical vector-of-vectors reference. Exercised on the PR-1
/// randomized stress harness (stress_util.h) over several topologies, on
/// multi-phase reuse of one Network, on aborted phases, on mid-life thread
/// count switches, and end to end on the shortcut-Boruvka MST pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reference.h"
#include "mst/boruvka_shortcut.h"
#include "mst/mwoe.h"
#include "stress_util.h"
#include "test_util.h"
#include "util/check.h"

namespace lcs {
namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::PhaseStats;
using congest::Process;
using testutil::DeliveryRecord;
using testutil::reference_run;
using testutil::StressBehavior;
using testutil::StressProcess;

/// Everything one stress run observes: per-phase stats, per-node delivery
/// logs (one vector per node, in delivery order), and the accounting
/// totals after all phases.
struct StressObservation {
  std::vector<PhaseStats> phase_stats;
  std::vector<std::vector<DeliveryRecord>> logs;
  std::int64_t total_rounds = 0;
  std::int64_t total_messages = 0;
};

/// Variations of one stress run that must not change any observable.
struct StressOptions {
  int threads = 1;
  bool validate = true;
  int phases = 3;
  /// Adaptive-fallback threshold: 0 pins every round to the parallel
  /// promotion path; kDefaultParallelRoundThreshold leaves the engine's
  /// own tiny-round fallback in charge; small positive values make rounds
  /// flip between the paths inside one phase.
  std::int64_t threshold = Network::kDefaultParallelRoundThreshold;
  /// Send/wake dice (see StressBehavior); the default is the PR-1 load.
  std::uint64_t start_send_mod = 4;
  std::uint64_t round_send_mod = 3;
  std::uint64_t wake_mod = 4;
};

StressBehavior behavior_for(const StressOptions& opt, int phase) {
  return StressBehavior{0x5eed0000 + static_cast<std::uint64_t>(phase),
                        opt.start_send_mod, opt.round_send_mod, opt.wake_mod};
}

/// Run `opt.phases` stress phases on one Network. Multiple phases on one
/// Network exercise the epoch-stamped reuse of all per-phase state,
/// including the lane slabs and the per-range merge structures.
StressObservation run_stress(const Graph& g, const StressOptions& opt) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  StressObservation obs;
  obs.logs.resize(n);
  Network net(g);
  net.set_validate(opt.validate);
  net.set_threads(opt.threads);
  net.set_parallel_round_threshold(opt.threshold);
  for (int phase = 0; phase < opt.phases; ++phase) {
    const StressBehavior behavior = behavior_for(opt, phase);
    std::vector<StressProcess> procs;
    procs.reserve(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      procs.emplace_back(v, behavior, &obs.logs[static_cast<std::size_t>(v)]);
    obs.phase_stats.push_back(congest::run_phase(net, procs));
  }
  obs.total_rounds = net.total_rounds();
  obs.total_messages = net.total_messages();
  return obs;
}

StressObservation run_stress(const Graph& g, int threads, bool validate,
                             int phases = 3) {
  return run_stress(
      g, StressOptions{.threads = threads, .validate = validate,
                       .phases = phases});
}

void expect_identical(const StressObservation& got,
                      const StressObservation& want, int threads) {
  ASSERT_EQ(got.phase_stats.size(), want.phase_stats.size());
  for (std::size_t p = 0; p < want.phase_stats.size(); ++p) {
    EXPECT_EQ(got.phase_stats[p].rounds, want.phase_stats[p].rounds)
        << "threads=" << threads << " phase " << p;
    EXPECT_EQ(got.phase_stats[p].messages, want.phase_stats[p].messages)
        << "threads=" << threads << " phase " << p;
  }
  EXPECT_EQ(got.total_rounds, want.total_rounds) << "threads=" << threads;
  EXPECT_EQ(got.total_messages, want.total_messages) << "threads=" << threads;
  ASSERT_EQ(got.logs, want.logs) << "threads=" << threads;
}

/// The acceptance matrix: sequential observation (itself checked against
/// the historical reference engine) vs 2, 3, and 8 threads, each at three
/// fallback thresholds — 0 (every round takes the parallel promotion
/// path), 48 (rounds flip between the parallel and sequential paths
/// inside one phase, exercising the lane/fill-slab handovers), and the
/// default (tiny rounds fall back on their own).
void run_determinism_matrix(const Graph& g, bool validate) {
  const StressObservation seq = run_stress(g, /*threads=*/1, validate);

  // Anchor the sequential engine to the vector-of-vectors ground truth on
  // the first phase's workload.
  std::vector<std::vector<DeliveryRecord>> ref_logs(
      static_cast<std::size_t>(g.num_nodes()));
  const PhaseStats ref = reference_run(g, StressBehavior{0x5eed0000}, ref_logs);
  EXPECT_EQ(seq.phase_stats.front().rounds, ref.rounds);
  EXPECT_EQ(seq.phase_stats.front().messages, ref.messages);

  for (const int threads : {2, 3, 8}) {
    for (const std::int64_t threshold :
         {std::int64_t{0}, std::int64_t{48},
          Network::kDefaultParallelRoundThreshold}) {
      const StressObservation par = run_stress(
          g, StressOptions{.threads = threads, .validate = validate,
                           .threshold = threshold});
      expect_identical(par, seq, threads);
    }
  }
}

TEST(ParallelDeterminism, MatchesSequentialOnGrid) {
  run_determinism_matrix(make_grid(9, 7), /*validate=*/true);
}

TEST(ParallelDeterminism, MatchesSequentialOnErdosRenyi) {
  run_determinism_matrix(make_erdos_renyi(150, 0.06, 11), /*validate=*/true);
}

TEST(ParallelDeterminism, MatchesSequentialOnWheelHub) {
  // The hub's degree exceeds the send path's adjacency-scan cutoff, so the
  // workers also take the O(1) endpoint-lookup branch.
  run_determinism_matrix(make_wheel(40), /*validate=*/true);
}

TEST(ParallelDeterminism, MatchesSequentialWithValidationOff) {
  run_determinism_matrix(make_grid(8, 8), /*validate=*/false);
}

TEST(ParallelDeterminism, HardwareConcurrencyRequestMatchesSequential) {
  // set_threads(0) resolves to the hardware concurrency — whatever that
  // is on this machine, the observables must not change.
  const Graph g = make_erdos_renyi(120, 0.06, 7);
  Network probe(g);
  probe.set_threads(0);
  EXPECT_GE(probe.threads(), 1);
  const StressObservation seq = run_stress(g, 1, /*validate=*/true);
  const StressObservation hw = run_stress(
      g, StressOptions{.threads = 0, .threshold = 0});  // pin parallel path
  expect_identical(hw, seq, probe.threads());
}

TEST(ParallelPromotion, HeavyTrafficMatchesSequentialEverywhere) {
  // The parallel-promotion acceptance workload: dense dice on a ~deg-12
  // random graph give thousands of messages per round and multi-message
  // inboxes, so the range-partitioned merge, the per-segment sort, and
  // the parallel counting scatter all run with real work in every bucket.
  const Graph g = make_erdos_renyi(600, 0.02, 13);
  const StressOptions seq_opt{.threads = 1, .start_send_mod = 2,
                              .round_send_mod = 2, .wake_mod = 3};
  const StressObservation seq = run_stress(g, seq_opt);

  std::vector<std::vector<DeliveryRecord>> ref_logs(
      static_cast<std::size_t>(g.num_nodes()));
  const PhaseStats ref =
      reference_run(g, behavior_for(seq_opt, 0), ref_logs);
  ASSERT_EQ(seq.phase_stats.front().rounds, ref.rounds);
  ASSERT_EQ(seq.phase_stats.front().messages, ref.messages);

  for (const int threads : {2, 3, 8}) {
    for (const bool validate : {true, false}) {
      StressOptions opt = seq_opt;
      opt.threads = threads;
      opt.validate = validate;
      opt.threshold = 0;
      expect_identical(run_stress(g, opt), seq, threads);
    }
  }
}

TEST(ParallelPromotion, ThresholdCrossingsInsideOnePhaseMatchSequential) {
  // Thresholds chosen around the stress workload's per-round volume, so
  // one phase repeatedly hands the pending sends between the worker lanes
  // and the sequential fill slab in both directions.
  const Graph g = make_erdos_renyi(200, 0.04, 9);
  const StressObservation seq = run_stress(g, 1, /*validate=*/true);
  for (const std::int64_t threshold : {16, 64, 160, 400, 1000}) {
    const StressObservation par = run_stress(
        g, StressOptions{.threads = 3, .threshold = threshold});
    expect_identical(par, seq, 3);
  }
}

TEST(ParallelDeterminism, ThreadCountSwitchesMidLifeKeepObservables) {
  // One Network, one phase per (thread count, fallback threshold) pair,
  // in an order that grows and shrinks the pool and flips promotion
  // between the parallel and fallback paths. Every phase must reproduce
  // the stats and logs of the corresponding all-sequential run.
  const Graph g = make_grid(10, 6);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const StressObservation seq = run_stress(g, 1, /*validate=*/true, 4);

  StressObservation got;
  got.logs.resize(n);
  Network net(g);
  const int schedule[] = {1, 4, 2, 8};
  const std::int64_t thresholds[] = {
      Network::kDefaultParallelRoundThreshold, 0, 48, 0};
  for (int phase = 0; phase < 4; ++phase) {
    net.set_threads(schedule[phase]);
    net.set_parallel_round_threshold(thresholds[phase]);
    const StressBehavior behavior{0x5eed0000 + static_cast<std::uint64_t>(phase)};
    std::vector<StressProcess> procs;
    procs.reserve(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      procs.emplace_back(v, behavior, &got.logs[static_cast<std::size_t>(v)]);
    got.phase_stats.push_back(congest::run_phase(net, procs));
  }
  got.total_rounds = net.total_rounds();
  got.total_messages = net.total_messages();
  expect_identical(got, seq, /*threads=*/-1);
}

// ---------------------------------------------------------------------------
// CONGEST faithfulness checks in parallel mode: the same violations that
// the sequential engine diagnoses must be diagnosed at every thread count
// (the double-send check runs in the deterministic lane merge; the
// incidence checks run inside the workers).

class DoubleSendProcess final : public Process {
 public:
  explicit DoubleSendProcess(NodeId id) : id_(id) {}
  void on_start(Context& ctx) override {
    if (id_ != 0) return;
    ctx.send(ctx.neighbors().front().edge, Message(1));
    ctx.send(ctx.neighbors().front().edge, Message(2));
  }
  void on_round(Context&, std::span<const Incoming>) override {}

 private:
  NodeId id_;
};

class ForeignEdgeProcess final : public Process {
 public:
  explicit ForeignEdgeProcess(NodeId id) : id_(id) {}
  void on_start(Context& ctx) override {
    if (id_ == 0) ctx.send(1, Message(1));  // edge 1 connects nodes 1-2
  }
  void on_round(Context&, std::span<const Incoming>) override {}

 private:
  NodeId id_;
};

TEST(ParallelValidation, DoubleSendThrowsAtEveryThreadCount) {
  const Graph g = make_path(4);
  for (const int threads : {2, 3, 8}) {
    Network net(g);
    net.set_threads(threads);
    net.set_parallel_round_threshold(0);  // pin the parallel merge path
    std::vector<DoubleSendProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    EXPECT_THROW(congest::run_phase(net, procs), CheckFailure)
        << "threads=" << threads;
  }
}

TEST(ParallelValidation, NonIncidentSendThrowsAtEveryThreadCount) {
  const Graph g = make_path(3);
  for (const int threads : {2, 8}) {
    Network net(g);
    net.set_threads(threads);
    net.set_parallel_round_threshold(0);  // incidence checks in the workers
    std::vector<ForeignEdgeProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    EXPECT_THROW(congest::run_phase(net, procs), CheckFailure)
        << "threads=" << threads;
  }
}

TEST(ParallelValidation, ValidationOffDeliversViolationLikeSequential) {
  // With validation off the parallel engine, like the sequential one,
  // skips the checks entirely and delivers both messages.
  const Graph g = make_path(2);
  Network net(g);
  net.set_validate(false);
  net.set_threads(3);
  net.set_parallel_round_threshold(0);
  std::vector<DoubleSendProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  const PhaseStats stats = congest::run_phase(net, procs);
  EXPECT_EQ(stats.messages, 2);
}

TEST(ParallelValidation, RecoversAfterAbortedParallelPhase) {
  // An aborted parallel phase leaves messages in the worker lanes; the
  // next run on the same Network must start clean — at any thread count.
  const Graph g = make_path(4);
  Network net(g);
  net.set_threads(3);
  net.set_parallel_round_threshold(0);
  {
    std::vector<DoubleSendProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
  }
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<DeliveryRecord>> logs(n);
  const StressBehavior behavior{0x5eed0000};
  std::vector<StressProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    procs.emplace_back(v, behavior, &logs[static_cast<std::size_t>(v)]);
  const PhaseStats got = congest::run_phase(net, procs);

  std::vector<std::vector<DeliveryRecord>> want_logs(n);
  const PhaseStats want = reference_run(g, behavior, want_logs);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.messages, want.messages);
  EXPECT_EQ(logs, want_logs);
}

// ---------------------------------------------------------------------------
// Phase-state guards: knobs that resize or re-route live round state must
// be unusable from inside a running phase, and a diagnosed attempt must
// not wedge the network.

class MidPhaseSetThreadsProcess final : public Process {
 public:
  MidPhaseSetThreadsProcess(NodeId id, Network* net) : id_(id), net_(net) {}
  void on_start(Context& ctx) override {
    if (id_ == 0) ctx.send(ctx.neighbors().front().edge, Message(1));
  }
  void on_round(Context&, std::span<const Incoming>) override {
    net_->set_threads(2);  // documented misuse: must be diagnosed
  }

 private:
  NodeId id_;
  Network* net_;
};

TEST(NetworkGuards, SetThreadsInsideRunningPhaseThrows) {
  const Graph g = make_path(4);
  for (const int threads : {1, 3}) {
    Network net(g);
    net.set_threads(threads);
    net.set_parallel_round_threshold(0);
    std::vector<MidPhaseSetThreadsProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v, &net);
    try {
      congest::run_phase(net, procs);
      FAIL() << "set_threads inside a phase must throw (threads=" << threads
             << ")";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("set_threads"), std::string::npos);
    }
    // The guard flag must clear on the aborted phase, so the knob works
    // again between phases and the network is still usable.
    net.set_threads(2);
    std::vector<std::vector<DeliveryRecord>> logs(
        static_cast<std::size_t>(g.num_nodes()));
    const StressBehavior behavior{0x5eed0000};
    std::vector<StressProcess> stress;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      stress.emplace_back(v, behavior, &logs[static_cast<std::size_t>(v)]);
    const PhaseStats got = congest::run_phase(net, stress);
    std::vector<std::vector<DeliveryRecord>> want_logs(
        static_cast<std::size_t>(g.num_nodes()));
    const PhaseStats want = reference_run(g, behavior, want_logs);
    EXPECT_EQ(got.rounds, want.rounds);
    EXPECT_EQ(got.messages, want.messages);
    EXPECT_EQ(logs, want_logs);
  }
}

class MidPhaseSetThresholdProcess final : public Process {
 public:
  MidPhaseSetThresholdProcess(NodeId id, Network* net) : id_(id), net_(net) {}
  void on_start(Context& ctx) override {
    if (id_ == 0) ctx.send(ctx.neighbors().front().edge, Message(1));
  }
  void on_round(Context&, std::span<const Incoming>) override {
    net_->set_parallel_round_threshold(7);
  }

 private:
  NodeId id_;
  Network* net_;
};

TEST(NetworkGuards, SetParallelThresholdInsideRunningPhaseThrows) {
  const Graph g = make_path(3);
  Network net(g);
  std::vector<MidPhaseSetThresholdProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v, &net);
  EXPECT_THROW(congest::run_phase(net, procs), CheckFailure);
}

// ---------------------------------------------------------------------------
// Engine limits: a node's per-round inbox count saturating at 2^31 - 1
// must be diagnosed at the send that would overflow it — on the
// sequential path and in the parallel merge replay — never wrap silently.
// NetworkTestPeer primes the counter; actually sending 2^31 messages
// would need a ~100 GB slab.

class InboxOverflowProcess final : public Process {
 public:
  InboxOverflowProcess(NodeId id, Network* net) : id_(id), net_(net) {}
  void on_start(Context& ctx) override {
    if (id_ != 0) return;
    congest::NetworkTestPeer::prime_inbox_count(
        *net_, ctx.neighbors().front().node, INT32_MAX);
    ctx.send(ctx.neighbors().front().edge, Message(1));
  }
  void on_round(Context&, std::span<const Incoming>) override {}

 private:
  NodeId id_;
  Network* net_;
};

TEST(NetworkLimits, PerNodeInboxOverflowDiagnosedSequential) {
  const Graph g = make_path(3);
  Network net(g);
  std::vector<InboxOverflowProcess> procs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v, &net);
  try {
    congest::run_phase(net, procs);
    FAIL() << "inbox overflow must be diagnosed";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("engine limit"), std::string::npos);
  }
}

TEST(NetworkLimits, PerNodeInboxOverflowDiagnosedInParallelMerge) {
  const Graph g = make_path(3);
  for (const int threads : {2, 8}) {
    Network net(g);
    net.set_threads(threads);
    net.set_parallel_round_threshold(0);  // count replay runs in the merge
    std::vector<InboxOverflowProcess> procs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v, &net);
    try {
      congest::run_phase(net, procs);
      FAIL() << "inbox overflow must be diagnosed (threads=" << threads
             << ")";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("engine limit"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// 31-bit epoch-stamp wrap: stamps written at small tick32 values in an
// early phase must never alias post-wrap ticks, which count up from small
// values again. advance_tick's O(n) refill on the wrap is what prevents
// it; these runs cross the wrap mid-workload and must reproduce an
// untouched-tick run bit for bit.

TEST(NetworkTickWrap, ObservablesSurviveStampWrapMidRun) {
  const Graph g = make_erdos_renyi(90, 0.07, 5);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const StressObservation want = run_stress(g, 1, /*validate=*/true);

  for (const int threads : {1, 3}) {
    StressObservation got;
    got.logs.resize(n);
    Network net(g);
    net.set_threads(threads);
    if (threads > 1) net.set_parallel_round_threshold(0);
    for (int phase = 0; phase < 3; ++phase) {
      if (phase == 1) {
        // Phase 0 stamped nodes at small tick32 values; restart the epoch
        // just below the wrap so phases 1-2 cross it while those stale
        // stamps are still in node_state_.
        congest::NetworkTestPeer::set_tick(net, (std::int64_t{1} << 31) - 4);
      }
      const StressBehavior behavior{0x5eed0000 +
                                    static_cast<std::uint64_t>(phase)};
      std::vector<StressProcess> procs;
      procs.reserve(n);
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        procs.emplace_back(v, behavior, &got.logs[static_cast<std::size_t>(v)]);
      got.phase_stats.push_back(congest::run_phase(net, procs));
    }
    got.total_rounds = net.total_rounds();
    got.total_messages = net.total_messages();
    // The run really crossed the wrap (the refill path executed).
    EXPECT_GT(congest::NetworkTestPeer::tick(net), std::int64_t{1} << 31)
        << "threads=" << threads;
    expect_identical(got, want, threads);
  }
}

// ---------------------------------------------------------------------------
// End-to-end pipeline invariance: the shortcut-Boruvka MST — BFS tree
// build, FindShortcut with doubling, MWOE routing, merges — on a
// multi-threaded Network must reproduce the sequential run bit for bit:
// same tree, same MST, same phase/round/message accounting.

TEST(ParallelPipeline, ShortcutMstIsThreadCountInvariant) {
  const Graph g = with_random_weights(make_grid(7, 7), 1, 1000, 3);
  const MstResult truth = kruskal_mst(g);

  testutil::Sim seq(g, 0, /*threads=*/1);
  const DistributedMst want = mst_boruvka_shortcut(seq.net, seq.tree);

  for (const int threads : {2, 3, 8}) {
    testutil::Sim sim(g, 0, threads);
    EXPECT_EQ(sim.tree.parent, seq.tree.parent) << "threads=" << threads;
    EXPECT_EQ(sim.tree.depth, seq.tree.depth) << "threads=" << threads;
    const DistributedMst got = mst_boruvka_shortcut(sim.net, sim.tree);
    EXPECT_EQ(got.edges, truth.edges) << "threads=" << threads;
    EXPECT_EQ(got.edges, want.edges) << "threads=" << threads;
    EXPECT_EQ(got.total_weight, want.total_weight) << "threads=" << threads;
    EXPECT_EQ(got.phases, want.phases) << "threads=" << threads;
    EXPECT_EQ(got.rounds, want.rounds) << "threads=" << threads;
    EXPECT_EQ(sim.net.total_rounds(), seq.net.total_rounds())
        << "threads=" << threads;
    EXPECT_EQ(sim.net.total_messages(), seq.net.total_messages())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace lcs
