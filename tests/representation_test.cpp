#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/representation.h"
#include "shortcut/shortcut.h"
#include "test_util.h"

namespace lcs {
namespace {

using testutil::Sim;
using testutil::central_components;

void expect_representation_correct(const Graph& g, const Partition& p,
                                   std::int32_t threshold) {
  Sim setup(g);
  const Shortcut s = greedy_blocked_shortcut(g, setup.tree, p, threshold);
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, s);

  for (PartId j = 0; j < p.num_parts; ++j) {
    for (const auto& comp : central_components(g, setup.tree, p, s, j)) {
      // Every edge slot of the component must name the true root and depth.
      for (const EdgeId e : comp.edges) {
        const auto& list = s.parts_on_edge[static_cast<std::size_t>(e)];
        const auto it = std::lower_bound(list.begin(), list.end(), j);
        ASSERT_TRUE(it != list.end() && *it == j);
        const auto idx = static_cast<std::size_t>(it - list.begin());
        EXPECT_EQ(state.root_id_on_edge[static_cast<std::size_t>(e)][idx],
                  comp.root);
        EXPECT_EQ(state.root_depth_on_edge[static_cast<std::size_t>(e)][idx],
                  setup.tree.depth[static_cast<std::size_t>(comp.root)]);
      }
      // Part members of the component must know their block root.
      for (const NodeId v : comp.nodes) {
        if (p.part(v) != j) continue;
        EXPECT_EQ(state.own_block_root[static_cast<std::size_t>(v)],
                  comp.root);
        EXPECT_EQ(state.own_block_root_depth[static_cast<std::size_t>(v)],
                  setup.tree.depth[static_cast<std::size_t>(comp.root)]);
        EXPECT_EQ(state.own_singleton[static_cast<std::size_t>(v)],
                  comp.edges.empty());
      }
    }
  }
}

TEST(Representation, GridRowsPartition) {
  expect_representation_correct(make_grid(8, 8),
                                make_grid_rows_partition(8, 8, 2), 3);
}

TEST(Representation, RandomGraphsAcrossSeedsAndThresholds) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(80, 0.05, seed);
    const auto p = make_random_bfs_partition(g, 9, seed + 3);
    for (const std::int32_t threshold : {1, 4})
      expect_representation_correct(g, p, threshold);
  }
}

TEST(Representation, SingletonsRootThemselves) {
  // Threshold 0: no edges assigned anywhere; every part node is a
  // singleton component rooted at itself.
  const Graph g = make_grid(6, 6);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 5, 2);
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, s);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NE(p.part(v), kNoPart);
    EXPECT_EQ(state.own_block_root[static_cast<std::size_t>(v)], v);
    EXPECT_TRUE(state.own_singleton[static_cast<std::size_t>(v)]);
    EXPECT_EQ(state.own_block_root_depth[static_cast<std::size_t>(v)],
              setup.tree.depth[static_cast<std::size_t>(v)]);
  }
}

TEST(Representation, UnassignedNodesHaveNoBlock) {
  const Graph g = make_wheel(33);
  Sim setup(g);
  const auto p = make_cycle_arcs_partition(33, 4);
  const Shortcut s = full_ancestor_shortcut(g, setup.tree, p);
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, s);
  const NodeId hub = 32;
  EXPECT_EQ(p.part(hub), kNoPart);
  EXPECT_EQ(state.own_block_root[static_cast<std::size_t>(hub)], kNoNode);
}

}  // namespace
}  // namespace lcs
