#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/persist.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {
namespace {

/// A small but non-trivial record: real scenario, real BFS tree, and a
/// hand-placed (valid) shortcut with part lists on a few tree edges.
ShortcutRunRecord sample_record(const scenario::Scenario& sc) {
  ShortcutRunRecord rec;
  rec.spec_hash = 11;
  rec.partition_hash = 22;
  rec.seed = 33;
  rec.backend = "hiz16";
  rec.tree = reference_bfs_tree(sc.graph, 0);
  rec.shortcut.parts_on_edge.resize(sc.graph.num_edges());
  int placed = 0;
  for (EdgeId e = 0; e < sc.graph.num_edges() && placed < 3; ++e) {
    if (!rec.tree.is_tree_edge(e)) continue;
    const PartId other =
        util::checked_cast<PartId>(1 + placed % (sc.partition.num_parts - 1));
    rec.shortcut.parts_on_edge[e] = {0, other};
    ++placed;
  }
  validate_shortcut(sc.graph, rec.tree, sc.partition, rec.shortcut);
  rec.stats = {7, 2, 4, 8, 12345};
  rec.setup_rounds = 10;
  rec.setup_messages = 20;
  rec.algo_rounds = 30;
  rec.algo_messages = 40;
  rec.charges = {{"core", 100}, {"verify", 50}};
  rec.backend_stats = {{"width", 3}, {"steiner_edges", 17}};
  return rec;
}

void expect_same_record(const ShortcutRunRecord& a,
                        const ShortcutRunRecord& b) {
  EXPECT_EQ(a.spec_hash, b.spec_hash);
  EXPECT_EQ(a.partition_hash, b.partition_hash);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.tree.root, b.tree.root);
  EXPECT_EQ(a.tree.parent_edge, b.tree.parent_edge);
  EXPECT_EQ(a.tree.parent, b.tree.parent);
  EXPECT_EQ(a.tree.depth, b.tree.depth);
  EXPECT_EQ(a.tree.height, b.tree.height);
  EXPECT_EQ(a.shortcut.parts_on_edge, b.shortcut.parts_on_edge);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.trials, b.stats.trials);
  EXPECT_EQ(a.stats.used_c, b.stats.used_c);
  EXPECT_EQ(a.stats.used_b, b.stats.used_b);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.setup_rounds, b.setup_rounds);
  EXPECT_EQ(a.setup_messages, b.setup_messages);
  EXPECT_EQ(a.algo_rounds, b.algo_rounds);
  EXPECT_EQ(a.algo_messages, b.algo_messages);
  EXPECT_EQ(a.charges, b.charges);
  EXPECT_EQ(a.backend_stats, b.backend_stats);
}

TEST(TreeFromParentEdges, RebuildsTheReferenceTree) {
  const scenario::Scenario sc = scenario::make_scenario("grid:w=7,h=5");
  const SpanningTree original = reference_bfs_tree(sc.graph, 0);
  const SpanningTree rebuilt =
      tree_from_parent_edges(sc.graph, original.root, original.parent_edge);
  validate_spanning_tree(sc.graph, rebuilt);
  EXPECT_EQ(rebuilt.root, original.root);
  EXPECT_EQ(rebuilt.parent, original.parent);
  EXPECT_EQ(rebuilt.depth, original.depth);
  EXPECT_EQ(rebuilt.height, original.height);
  for (EdgeId e = 0; e < sc.graph.num_edges(); ++e)
    EXPECT_EQ(rebuilt.is_tree_edge(e), original.is_tree_edge(e)) << e;
  // Children lists are rebuilt sorted by edge id — deterministic without
  // recording discovery order.
  for (NodeId v = 0; v < sc.graph.num_nodes(); ++v) {
    const auto& kids = rebuilt.children_edges[v];
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end())) << "node " << v;
  }
}

TEST(TreeFromParentEdges, DiagnosesStructuralViolations) {
  const scenario::Scenario sc = scenario::make_scenario("path:n=3");
  const Graph& g = sc.graph;  // edges: 0 = (0,1), 1 = (1,2)
  // Root out of range.
  EXPECT_THROW(tree_from_parent_edges(g, 99, {kNoEdge, 0, 1}), CheckFailure);
  // Root must have no parent edge.
  EXPECT_THROW(tree_from_parent_edges(g, 0, {0, 0, 1}), CheckFailure);
  // Non-root node without a parent edge (disconnected).
  EXPECT_THROW(tree_from_parent_edges(g, 0, {kNoEdge, 0, kNoEdge}),
               CheckFailure);
  // Parent edge not incident to the node.
  EXPECT_THROW(tree_from_parent_edges(g, 0, {kNoEdge, 0, 0}), CheckFailure);
  // 1 and 2 parent each other through edge 1: a cycle unreachable from the
  // root.
  EXPECT_THROW(tree_from_parent_edges(g, 0, {kNoEdge, 1, 1}), CheckFailure);
  // Wrong array length.
  EXPECT_THROW(tree_from_parent_edges(g, 0, {kNoEdge, 0}), CheckFailure);
}

TEST(ShortcutRecord, EncodeDecodeRoundTrips) {
  const scenario::Scenario sc = scenario::make_scenario("grid:w=6,h=4");
  const ShortcutRunRecord rec = sample_record(sc);
  const std::string bytes = encode_shortcut_record(rec);
  const ShortcutRunRecord back =
      decode_shortcut_record(bytes, sc.graph, rec.spec_hash,
                             rec.partition_hash, rec.backend);
  expect_same_record(rec, back);
  // The rebuilt tree is fully usable, not just field-equal.
  validate_spanning_tree(sc.graph, back.tree);
  validate_shortcut(sc.graph, back.tree, sc.partition, back.shortcut);
}

TEST(ShortcutRecord, KeyMismatchIsDiagnosedNotServed) {
  const scenario::Scenario sc = scenario::make_scenario("grid:w=5,h=5");
  const ShortcutRunRecord rec = sample_record(sc);
  const std::string bytes = encode_shortcut_record(rec);
  EXPECT_THROW(decode_shortcut_record(bytes, sc.graph, rec.spec_hash + 1,
                                      rec.partition_hash, rec.backend),
               CheckFailure);
  EXPECT_THROW(decode_shortcut_record(bytes, sc.graph, rec.spec_hash,
                                      rec.partition_hash + 1, rec.backend),
               CheckFailure);
  // A graph of a different size is a stale-cache symptom, same treatment.
  const scenario::Scenario other = scenario::make_scenario("grid:w=4,h=4");
  EXPECT_THROW(decode_shortcut_record(bytes, other.graph, rec.spec_hash,
                                      rec.partition_hash, rec.backend),
               CheckFailure);
}

TEST(ShortcutRecord, BackendMismatchIsDiagnosedNotServed) {
  // A record cached under one backend must never answer a request naming
  // another — the congestion numbers would be the wrong construction's.
  const scenario::Scenario sc = scenario::make_scenario("grid:w=5,h=5");
  const ShortcutRunRecord rec = sample_record(sc);
  const std::string bytes = encode_shortcut_record(rec);
  try {
    (void)decode_shortcut_record(bytes, sc.graph, rec.spec_hash,
                                 rec.partition_hash, "kkoi19");
    FAIL() << "backend mismatch served";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("backend mismatch"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("kkoi19"), std::string::npos)
        << e.what();
  }
}

TEST(ShortcutRecord, EveryTruncationIsDiagnosed) {
  const scenario::Scenario sc = scenario::make_scenario("grid:w=4,h=3");
  const ShortcutRunRecord rec = sample_record(sc);
  const std::string bytes = encode_shortcut_record(rec);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW(
        decode_shortcut_record(bytes.substr(0, keep), sc.graph, rec.spec_hash,
                               rec.partition_hash, rec.backend),
        CheckFailure)
        << "keep=" << keep;
  }
  // Trailing garbage after a complete record is rejected too.
  EXPECT_THROW(decode_shortcut_record(bytes + "x", sc.graph, rec.spec_hash,
                                      rec.partition_hash, rec.backend),
               CheckFailure);
}

TEST(ShortcutRecord, FileRoundTripAndVersionRejection) {
  const scenario::Scenario sc = scenario::make_scenario("grid:w=5,h=4");
  const ShortcutRunRecord rec = sample_record(sc);
  const std::string path = testing::TempDir() + "lcs_persist_record.lcss";
  save_shortcut_record(rec, path);
  // The atomic write left no temp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  expect_same_record(rec, load_shortcut_record(path, sc.graph, rec.spec_hash,
                                               rec.partition_hash,
                                               rec.backend));

  // Other format versions are rejected by name, never guessed at — both a
  // future version and a stale v1 file (pre-backend layout: parsing it as
  // v2 would misread the tree root as string length).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (const std::uint32_t bad_version : {kShortcutRecordVersion + 1, 1u}) {
    bytes[4] = util::truncate_cast<char>(bad_version);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      (void)load_shortcut_record(path, sc.graph, rec.spec_hash,
                                 rec.partition_hash, rec.backend);
      FAIL() << "version " << bad_version << " parsed";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported shortcut record "
                                           "version " +
                                           std::to_string(bad_version)),
                std::string::npos)
          << e.what();
    }
  }
  bytes[0] = 'X';  // and bad magic
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_shortcut_record(path, sc.graph, rec.spec_hash,
                                    rec.partition_hash, rec.backend),
               CheckFailure);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lcs
