/// \file test_util.h
/// Shared helpers for the shortcut-module tests: distributed setup
/// boilerplate and centralized ground-truth computations.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/union_find.h"
#include "shortcut/shortcut.h"
#include "tree/bfs_tree.h"
#include "tree/spanning_tree.h"

namespace lcs::testutil {

/// Graph + simulator + distributed BFS tree, ready for shortcut phases.
/// `threads` selects the engine's worker count (Network::set_threads) and
/// is applied before the BFS construction so the tree build itself runs on
/// the requested thread count too. Threaded Sims pin the adaptive
/// fallback threshold to 0: the test graphs are small enough that the
/// default threshold would silently route every round onto the sequential
/// path, and these suites exist to exercise the parallel one.
struct Sim {
  const Graph* graph;
  congest::Network net;
  SpanningTree tree;

  explicit Sim(const Graph& g, NodeId root = 0, int threads = 1)
      : graph(&g),
        net(g),
        tree((net.set_threads(threads),
              threads != 1 ? net.set_parallel_round_threshold(0) : void(),
              build_bfs_tree(net, root))) {}
};

/// One block component of a part, computed centrally.
struct CentralComponent {
  std::vector<NodeId> nodes;   ///< sorted; all endpoints of `edges`
  std::vector<EdgeId> edges;   ///< sorted
  NodeId root = kNoNode;       ///< unique minimum-depth node
  bool touches_part = false;   ///< intersects Pi (block component proper)
};

/// All components of (V, Hi) that contain at least one edge or one Pi node
/// (singleton Pi nodes appear as edge-less components).
inline std::vector<CentralComponent> central_components(
    const Graph& g, const SpanningTree& tree, const Partition& p,
    const Shortcut& s, PartId part) {
  const auto edges = s.edges_of_parts(p.num_parts);
  const auto& part_edges = edges[static_cast<std::size_t>(part)];

  std::vector<NodeId> involved;
  for (const EdgeId e : part_edges) {
    involved.push_back(g.edge(e).u);
    involved.push_back(g.edge(e).v);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (p.part(v) == part) involved.push_back(v);
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());

  auto index_of = [&](NodeId v) {
    return static_cast<std::size_t>(
        std::lower_bound(involved.begin(), involved.end(), v) -
        involved.begin());
  };
  UnionFind uf(involved.size());
  for (const EdgeId e : part_edges)
    uf.unite(index_of(g.edge(e).u), index_of(g.edge(e).v));

  std::map<std::size_t, CentralComponent> by_root;
  for (const NodeId v : involved) {
    auto& comp = by_root[uf.find(index_of(v))];
    comp.nodes.push_back(v);
    if (p.part(v) == part) comp.touches_part = true;
  }
  for (const EdgeId e : part_edges)
    by_root[uf.find(index_of(g.edge(e).u))].edges.push_back(e);

  std::vector<CentralComponent> result;
  for (auto& [_, comp] : by_root) {
    std::sort(comp.nodes.begin(), comp.nodes.end());
    std::sort(comp.edges.begin(), comp.edges.end());
    comp.root = *std::min_element(
        comp.nodes.begin(), comp.nodes.end(), [&](NodeId a, NodeId b) {
          return tree.depth[static_cast<std::size_t>(a)] <
                 tree.depth[static_cast<std::size_t>(b)];
        });
    result.push_back(std::move(comp));
  }
  return result;
}

/// Centralized count of block components (Definition 3) for one part.
inline std::int32_t central_block_count(const Graph& g,
                                        const SpanningTree& tree,
                                        const Partition& p, const Shortcut& s,
                                        PartId part) {
  std::int32_t count = 0;
  for (const auto& comp : central_components(g, tree, p, s, part))
    if (comp.touches_part) ++count;
  return count;
}

}  // namespace lcs::testutil
