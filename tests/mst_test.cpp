#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reference.h"
#include "mst/boruvka_intra.h"
#include "mst/boruvka_shortcut.h"
#include "mst/mwoe.h"
#include "mst/pipeline.h"
#include "test_util.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {
namespace {

using testutil::Sim;

/// All three distributed variants must reproduce the unique (weight, id)
/// MST exactly.
void expect_all_variants_match_kruskal(const Graph& g, std::uint64_t seed) {
  const MstResult truth = kruskal_mst(g);

  {
    Sim sim(g);
    ShortcutMstOptions options;
    options.seed = seed;
    const DistributedMst mst =
        mst_boruvka_shortcut(sim.net, sim.tree, options);
    EXPECT_EQ(mst.edges, truth.edges) << "shortcut variant";
    EXPECT_EQ(mst.total_weight, truth.total_weight);
  }
  {
    Sim sim(g);
    const DistributedMst mst = mst_boruvka_intra(sim.net, sim.tree, seed);
    EXPECT_EQ(mst.edges, truth.edges) << "intra variant";
    EXPECT_EQ(mst.total_weight, truth.total_weight);
  }
  {
    Sim sim(g);
    const DistributedMst mst = mst_pipeline(sim.net, sim.tree);
    EXPECT_EQ(mst.edges, truth.edges) << "pipeline variant";
    EXPECT_EQ(mst.total_weight, truth.total_weight);
  }
}

TEST(Mwoe, PackRoundTripsAndOrders) {
  const auto a = pack_candidate(5, 100);
  const auto b = pack_candidate(5, 101);
  const auto c = pack_candidate(6, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(candidate_weight(a), 5u);
  EXPECT_EQ(candidate_edge(a), 100);
  EXPECT_THROW(pack_candidate(std::uint64_t{1} << 32, 0), CheckFailure);
}

TEST(Mwoe, CoinIsSharedAndPhaseDependent) {
  EXPECT_EQ(is_head(7, 3, 1), is_head(7, 3, 1));
  bool differs = false;
  for (std::int32_t phase = 0; phase < 64 && !differs; ++phase)
    differs = is_head(7, 3, phase) != is_head(7, 4, phase);
  EXPECT_TRUE(differs);
}

TEST(Mst, PathGraph) {
  expect_all_variants_match_kruskal(
      with_random_weights(make_path(24), 1, 100, 5), 1);
}

TEST(Mst, CycleGraph) {
  expect_all_variants_match_kruskal(
      with_random_weights(make_cycle(25), 1, 100, 6), 2);
}

TEST(Mst, GridsWithRandomWeights) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    expect_all_variants_match_kruskal(
        with_random_weights(make_grid(7, 7), 1, 1000, seed), seed + 3);
  }
}

TEST(Mst, DuplicateWeightsResolvedByEdgeId) {
  // All weights equal: the unique MST under (w, id) is still well-defined.
  expect_all_variants_match_kruskal(make_grid(6, 6), 4);
}

TEST(Mst, ErdosRenyiAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    expect_all_variants_match_kruskal(
        with_random_weights(make_erdos_renyi(70, 0.07, seed), 1, 500,
                            seed + 9),
        seed);
  }
}

TEST(Mst, WheelGraph) {
  expect_all_variants_match_kruskal(
      with_random_weights(make_wheel(40), 1, 300, 2), 7);
}

TEST(Mst, TorusAndGenusGrid) {
  expect_all_variants_match_kruskal(
      with_random_weights(make_torus(6, 6), 1, 99, 1), 11);
  expect_all_variants_match_kruskal(
      with_random_weights(make_genus_grid(6, 6, 4, 3), 1, 99, 2), 12);
}

TEST(Mst, LowerBoundGraph) {
  const Graph g =
      with_random_weights(make_lower_bound_graph(6, 6), 1, 200, 8);
  expect_all_variants_match_kruskal(g, 13);
}

TEST(Mst, SingleNodeAndSingleEdge) {
  expect_all_variants_match_kruskal(make_path(1), 1);
  expect_all_variants_match_kruskal(make_path(2), 1);
}

/// Wheel with light cycle edges and heavy spokes: Boruvka fragments grow as
/// long arcs (the hub joins last), the worst case for intra-fragment
/// flooding while the wheel diameter stays 2.
Graph make_arc_forcing_wheel(NodeId n, std::uint64_t seed) {
  const Graph base = make_wheel(n);
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(base.num_edges()));
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    Graph::Edge ed = base.edge(e);
    const bool spoke = ed.u == n - 1 || ed.v == n - 1;
    ed.w = spoke ? 100000 + rng.next_below(1000) : 1 + rng.next_below(1000);
    edges.push_back(ed);
  }
  return Graph(n, std::move(edges));
}

TEST(Mst, ShortcutRoundsScaleWithDiameterNotSize) {
  // On wheels (D = 2) the shortcut variant's rounds must stay nearly flat
  // as n quadruples, while the intra baseline — forced to flood along
  // growing arc fragments — scales with the arc length (Section 1.2's gap).
  const Graph small = make_arc_forcing_wheel(129, 3);
  const Graph large = make_arc_forcing_wheel(513, 3);

  auto run = [](const Graph& g, bool use_shortcut) {
    Sim sim(g);
    const DistributedMst mst = use_shortcut
                                   ? mst_boruvka_shortcut(sim.net, sim.tree)
                                   : mst_boruvka_intra(sim.net, sim.tree);
    EXPECT_EQ(mst.total_weight, kruskal_mst(g).total_weight);
    return mst.rounds;
  };

  const double shortcut_growth = static_cast<double>(run(large, true)) /
                                 static_cast<double>(run(small, true));
  const double intra_growth = static_cast<double>(run(large, false)) /
                              static_cast<double>(run(small, false));
  EXPECT_LT(shortcut_growth, 2.5);  // polylog growth on constant diameter
  EXPECT_GT(intra_growth, 2.0);     // pays the growing arc diameters
}

TEST(Mst, DeterministicForFixedSeed) {
  const Graph g = with_random_weights(make_grid(6, 6), 1, 50, 9);
  Sim s1(g), s2(g);
  ShortcutMstOptions options;
  options.seed = 123;
  const DistributedMst m1 = mst_boruvka_shortcut(s1.net, s1.tree, options);
  const DistributedMst m2 = mst_boruvka_shortcut(s2.net, s2.tree, options);
  EXPECT_EQ(m1.edges, m2.edges);
  EXPECT_EQ(s1.net.total_rounds(), s2.net.total_rounds());
}

TEST(Mst, PhaseCountLogarithmic) {
  const Graph g = with_random_weights(make_grid(10, 10), 1, 1000, 4);
  Sim sim(g);
  const DistributedMst mst = mst_boruvka_shortcut(sim.net, sim.tree);
  EXPECT_LE(mst.phases, 8 * 7 + 20);  // cap from the implementation
  EXPECT_GE(mst.phases, 3);           // cannot finish in O(1) phases
}

}  // namespace
}  // namespace lcs
