#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {
namespace {

TEST(Partition, MembersGroupsNodes) {
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 1, 0, kNoPart, 1};
  const auto groups = p.members();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<NodeId>{1, 4}));
}

TEST(Partition, ValidateAcceptsConnectedParts) {
  const Graph g = make_grid(4, 4);
  const auto p = make_grid_rows_partition(4, 4, 2);
  EXPECT_NO_THROW(validate_partition(g, p));
}

TEST(Partition, ValidateRejectsDisconnectedPart) {
  const Graph g = make_path(4);
  Partition p;
  p.num_parts = 1;
  p.part_of = {0, kNoPart, 0, kNoPart};  // {0,2} not connected in the path
  EXPECT_THROW(validate_partition(g, p), CheckFailure);
}

TEST(Partition, ValidateRejectsEmptyPart) {
  const Graph g = make_path(3);
  Partition p;
  p.num_parts = 2;
  p.part_of = {0, 0, 0};  // part 1 empty
  EXPECT_THROW(validate_partition(g, p), CheckFailure);
}

TEST(Partition, SingletonAndWholeGraph) {
  const Graph g = make_grid(3, 3);
  const auto singles = make_singleton_partition(9);
  EXPECT_EQ(singles.num_parts, 9);
  validate_partition(g, singles);
  const auto whole = make_whole_graph_partition(9);
  EXPECT_EQ(whole.num_parts, 1);
  validate_partition(g, whole);
}

TEST(Partition, RandomBfsPartitionCoversAndConnects) {
  const Graph g = make_grid(10, 10);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto p = make_random_bfs_partition(g, 7, seed);
    EXPECT_EQ(p.num_parts, 7);
    validate_partition(g, p);
    EXPECT_TRUE(std::none_of(p.part_of.begin(), p.part_of.end(),
                             [](PartId i) { return i == kNoPart; }));
  }
}

TEST(Partition, ForestSplitPartitionConnects) {
  const Graph g = make_erdos_renyi(80, 0.05, 1);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto p = make_forest_split_partition(g, 9, seed);
    EXPECT_EQ(p.num_parts, 9);
    validate_partition(g, p);
  }
}

TEST(Partition, GridRowsPartition) {
  const auto p = make_grid_rows_partition(6, 9, 3);
  EXPECT_EQ(p.num_parts, 3);
  validate_partition(make_grid(6, 9), p);
  EXPECT_EQ(p.part(0), 0);
  EXPECT_EQ(p.part(6 * 8), 2);  // last row
}

TEST(Partition, SnakePartitionConnectedAndBalanced) {
  const NodeId w = 16, h = 16;
  const Graph g = make_grid(w, h);
  const auto p = make_snake_partition(w, h, 4);
  EXPECT_EQ(p.num_parts, 4);
  validate_partition(g, p);
  const auto groups = p.members();
  for (const auto& members : groups) EXPECT_EQ(members.size(), 64u);
}

TEST(Partition, WheelArcsHaveDiameterFarExceedingGraphDiameter) {
  // The motivating example: D = 2 but each arc part has induced diameter
  // ~ n/k. Communication restricted to a part is ~n/k times slower than the
  // graph allows — this is the gap shortcuts close.
  const NodeId n = 101;
  const Graph g = make_wheel(n);
  EXPECT_EQ(diameter_exact(g), 2);
  const auto p = make_cycle_arcs_partition(n, 4);
  validate_partition(g, p);
  EXPECT_EQ(p.num_parts, 4);
  EXPECT_GE(max_part_diameter(g, p), 24);
  // Hub is unassigned.
  EXPECT_EQ(p.part(n - 1), kNoPart);
}

TEST(Partition, LowerBoundPartitionPathsAreParts) {
  const NodeId paths = 6, len = 6;
  const Graph g = make_lower_bound_graph(paths, len);
  const auto p = make_lower_bound_partition(paths, len, g.num_nodes());
  EXPECT_EQ(p.num_parts, paths);
  validate_partition(g, p);
  // Tree nodes stay unassigned.
  const auto assigned = util::checked_cast<NodeId>(
      std::count_if(p.part_of.begin(), p.part_of.end(),
                    [](PartId i) { return i != kNoPart; }));
  EXPECT_EQ(assigned, paths * len);
}

}  // namespace
}  // namespace lcs
