/// Unit and stress tests for the dynamic subsystem: incremental
/// components/MSF maintenance under churn, mutation diagnostics, and the
/// verified-mirror harness — including deliberate corruption of the fast
/// structure to prove the mirror catches it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/verified.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reference.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs::dynamic {
namespace {

Graph small_weighted(std::uint64_t seed) {
  return with_random_weights(make_erdos_renyi(40, 0.12, seed), 1, 9, seed + 1);
}

TEST(DynamicGraph, InitialStateMatchesKruskal) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = small_weighted(seed);
    DynamicGraph dg(g);
    const MstResult truth = kruskal_mst(g);
    EXPECT_EQ(dg.msf_weight(), truth.total_weight) << "seed " << seed;
    std::vector<std::uint64_t> truth_seqs(truth.edges.begin(),
                                          truth.edges.end());
    EXPECT_EQ(dg.msf_seqs(), truth_seqs) << "seed " << seed;
    EXPECT_EQ(dg.num_components(), dg.msf_components());
  }
}

TEST(DynamicGraph, InsertGrowsThenSwaps) {
  // 0 -1- 1 -4- 2    3 isolated
  Graph g(4, {{0, 1, 1}, {1, 2, 4}});
  DynamicGraph dg(g);
  EXPECT_EQ(dg.num_components(), 2);
  EXPECT_EQ(dg.msf_weight(), 5u);

  dg.insert_edge(2, 3, 2);  // joins {3}: grow
  EXPECT_EQ(dg.num_components(), 1);
  EXPECT_EQ(dg.counters().msf_grows, 1);
  EXPECT_EQ(dg.msf_weight(), 7u);

  dg.insert_edge(0, 2, 2);  // closes 0-1-2; evicts the weight-4 edge
  EXPECT_EQ(dg.counters().msf_swaps, 1);
  EXPECT_EQ(dg.msf_weight(), 5u);

  dg.insert_edge(0, 3, 9);  // cycle, but heavier than everything on it
  EXPECT_EQ(dg.counters().msf_swaps, 1);
  EXPECT_EQ(dg.msf_weight(), 5u);
  EXPECT_EQ(dg.num_edges(), 5);
}

TEST(DynamicGraph, DeleteReplacesThenSplits) {
  // Cycle 0-1-2-3-0; the weight-5 edge is the one non-forest edge.
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 5}});
  DynamicGraph dg(g);
  EXPECT_EQ(dg.num_components(), 1);
  EXPECT_EQ(dg.msf_weight(), 3u);

  dg.delete_edge(0, 1);  // forest edge; cut {0} | {1,2,3} crossed by 0-3
  EXPECT_EQ(dg.counters().msf_replacements, 1);
  EXPECT_EQ(dg.counters().msf_splits, 0);
  EXPECT_EQ(dg.num_components(), 1);
  EXPECT_EQ(dg.counters().uf_rebuilds, 0);  // connectivity survived
  EXPECT_EQ(dg.msf_weight(), 7u);

  dg.delete_edge(0, 3);  // now a bridge: the component splits
  EXPECT_EQ(dg.counters().msf_splits, 1);
  EXPECT_EQ(dg.num_components(), 2);          // triggers the epoch rebuild
  EXPECT_EQ(dg.counters().uf_rebuilds, 1);
  EXPECT_EQ(dg.msf_weight(), 2u);

  dg.delete_edge(1, 2);  // non-forest? no — forest edge, splits again
  EXPECT_EQ(dg.num_components(), 3);
  EXPECT_EQ(dg.counters().uf_rebuilds, 2);
}

TEST(DynamicGraph, DiagnosesBadMutations) {
  Graph g(3, {{0, 1, 1}});
  DynamicGraph dg(g);
  EXPECT_THROW(dg.insert_edge(0, 1, 2), CheckFailure);   // duplicate
  EXPECT_THROW(dg.insert_edge(1, 0, 2), CheckFailure);   // same, reversed
  EXPECT_THROW(dg.insert_edge(1, 1, 2), CheckFailure);   // self-loop
  EXPECT_THROW(dg.insert_edge(0, 3, 2), CheckFailure);   // out of range
  EXPECT_THROW(dg.insert_edge(-1, 0, 2), CheckFailure);  // out of range
  EXPECT_THROW(dg.delete_edge(1, 2), CheckFailure);      // nonexistent
  EXPECT_THROW(dg.delete_edge(0, 3), CheckFailure);      // out of range
  // Diagnoses did not corrupt anything.
  EXPECT_EQ(dg.num_edges(), 1);
  EXPECT_EQ(dg.num_components(), 2);
}

TEST(DynamicGraph, DeleteThenReinsertIsFresh) {
  Graph g(2, {{0, 1, 3}});
  DynamicGraph dg(g);
  dg.delete_edge(0, 1);
  EXPECT_EQ(dg.num_components(), 2);
  dg.insert_edge(0, 1, 7);  // not a duplicate: the old edge is gone
  EXPECT_EQ(dg.num_components(), 1);
  EXPECT_EQ(dg.msf_weight(), 7u);
  // The reinserted edge got a fresh sequence number.
  EXPECT_EQ(dg.edge_between(0, 1).seq, 1u);
}

TEST(VerifiedDynamicGraph, StressAgainstOraclesEveryStep) {
  // Random mutation stream over a small weighted graph, full oracle
  // comparison after every mutation. Any divergence throws.
  const Graph g = small_weighted(11);
  const NodeId n = g.num_nodes();
  VerifiedDynamicGraph vg(g, VerifyMode::kEveryStep);
  Rng rng(99);
  for (int step = 0; step < 400; ++step) {
    if (rng.next_bool(0.45) && vg.fast().num_edges() > 0) {
      const auto pick = vg.fast().live_edge(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(vg.fast().num_edges()))));
      vg.delete_edge(pick.u, pick.v);
    } else {
      const NodeId u =
          util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
      const NodeId v =
          util::checked_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v || vg.fast().has_edge(u, v)) continue;
      vg.insert_edge(u, v, 1 + rng.next_below(9));
    }
  }
  EXPECT_EQ(vg.mutations(), vg.full_verifications() - 1);  // +1 from the ctor
  vg.full_verify();
}

TEST(VerifiedDynamicGraph, SampledModeVerifiesOnSchedule) {
  Graph g(6, {{0, 1, 1}, {1, 2, 1}});
  VerifiedDynamicGraph vg(g, VerifyMode::kSampled, /*sample_period=*/4);
  EXPECT_EQ(vg.full_verifications(), 0);
  vg.insert_edge(2, 3, 1);
  vg.insert_edge(3, 4, 1);
  vg.insert_edge(4, 5, 1);
  EXPECT_EQ(vg.full_verifications(), 0);  // cheap local checks only so far
  vg.insert_edge(0, 5, 1);                // 4th mutation
  EXPECT_EQ(vg.full_verifications(), 1);
  vg.delete_edge(0, 5);
  EXPECT_EQ(vg.full_verifications(), 1);
  EXPECT_EQ(vg.mutations(), 5);
}

TEST(VerifiedDynamicGraph, CatchesCachedWeightCorruption) {
  VerifiedDynamicGraph vg(small_weighted(5));
  vg.fast().debug_add_msf_weight(1);  // silent fast-structure rot
  EXPECT_THROW(vg.full_verify(), CheckFailure);
}

TEST(VerifiedDynamicGraph, CatchesBypassedMutation) {
  // Mutating the fast structure behind the harness's back diverges it from
  // the mirror; the full check pins it down.
  VerifiedDynamicGraph vg(small_weighted(6));
  const auto victim = vg.fast().live_edge(0);
  vg.fast().delete_edge(victim.u, victim.v);
  EXPECT_THROW(vg.full_verify(), CheckFailure);
}

TEST(VerifiedDynamicGraph, CheapCheckCatchesBypassEvenWhenSampled) {
  // In sampled mode the full oracle runs rarely, but the per-mutation local
  // check (edge counts agree) still fires on the very next mutation.
  VerifiedDynamicGraph vg(small_weighted(7), VerifyMode::kSampled,
                          /*sample_period=*/1000000);
  const auto victim = vg.fast().live_edge(0);
  vg.fast().delete_edge(victim.u, victim.v);
  EXPECT_THROW(vg.insert_edge(victim.u, victim.v, 1), CheckFailure);
}

}  // namespace
}  // namespace lcs::dynamic
