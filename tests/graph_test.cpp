#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "util/check.h"

namespace lcs {
namespace {

TEST(Graph, BasicAdjacency) {
  Graph g(4, {{0, 1, 5}, {1, 2, 7}, {2, 3, 9}, {0, 3, 1}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.other_endpoint(0, 0), 1);
  EXPECT_EQ(g.other_endpoint(0, 1), 0);
  EXPECT_EQ(g.edge(1).w, 7u);
  EXPECT_EQ(g.total_weight(), 22u);
}

TEST(Graph, NormalizesEndpointOrder) {
  Graph g(3, {{2, 0, 1}});
  EXPECT_EQ(g.edge(0).u, 0);
  EXPECT_EQ(g.edge(0).v, 2);
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(Graph(3, {{1, 1, 1}}), CheckFailure);
}

TEST(Graph, RejectsParallelEdges) {
  EXPECT_THROW(Graph(3, {{0, 1, 1}, {1, 0, 2}}), CheckFailure);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph(3, {{0, 3, 1}}), CheckFailure);
}

TEST(Graph, WeightKeyBreaksTiesById) {
  Graph g(3, {{0, 1, 5}, {1, 2, 5}});
  EXPECT_LT(g.weight_key(0), g.weight_key(1));
}

TEST(Generators, GridShape) {
  const Graph g = make_grid(5, 3);
  EXPECT_EQ(g.num_nodes(), 15);
  // Horizontal: 4*3, vertical: 5*2.
  EXPECT_EQ(g.num_edges(), 12 + 10);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5 + 3 - 2);
}

TEST(Generators, GridIsPlanarSized) {
  const Graph g = make_grid(20, 20);
  // Planar bound |E| <= 3n - 6.
  EXPECT_LE(g.num_edges(), 3 * g.num_nodes() - 6);
}

TEST(Generators, TorusShape) {
  const Graph g = make_torus(5, 4);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.num_edges(), 2 * 20);  // every node adds right+down edges
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5 / 2 + 4 / 2);
}

TEST(Generators, TorusRejectsDegenerate) {
  EXPECT_THROW(make_torus(2, 5), CheckFailure);
}

TEST(Generators, GenusGridAddsExactlyGChords) {
  const Graph base = make_grid(10, 10);
  for (int genus : {0, 1, 5, 12}) {
    const Graph g = make_genus_grid(10, 10, genus, 99);
    EXPECT_EQ(g.num_nodes(), base.num_nodes());
    EXPECT_EQ(g.num_edges(), base.num_edges() + genus);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, PathAndCycle) {
  const Graph path = make_path(10);
  EXPECT_EQ(path.num_edges(), 9);
  EXPECT_EQ(diameter_exact(path), 9);
  const Graph cycle = make_cycle(10);
  EXPECT_EQ(cycle.num_edges(), 10);
  EXPECT_EQ(diameter_exact(cycle), 5);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = make_random_tree(50, seed);
    EXPECT_EQ(g.num_edges(), 49);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomMazeConnectedAndPlanarSized) {
  for (double keep : {0.0, 0.3, 1.0}) {
    const Graph g = make_random_maze(12, 9, keep, 5);
    EXPECT_EQ(g.num_nodes(), 108);
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.num_edges(), g.num_nodes() - 1);
    EXPECT_LE(g.num_edges(), 3 * g.num_nodes() - 6);
  }
  // keep=1 must reproduce the full grid's edge count.
  EXPECT_EQ(make_random_maze(12, 9, 1.0, 5).num_edges(),
            make_grid(12, 9).num_edges());
}

TEST(Generators, ErdosRenyiConnectedAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(100, 0.02, seed);
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.num_edges(), 99);
  }
}

TEST(Generators, LowerBoundGraphStructure) {
  const NodeId paths = 8, len = 8;
  const Graph g = make_lower_bound_graph(paths, len);
  EXPECT_TRUE(is_connected(g));
  // Paths + tree leaves + internal tree nodes (len - 1 for a binary tree
  // built by repeated pairing of 8 leaves: 4+2+1).
  EXPECT_EQ(g.num_nodes(), paths * len + len + (len - 1));
  // Diameter is logarithmic in len, not linear.
  EXPECT_LE(diameter_exact(g), 2 * 8 + 4);
  // Path nodes exist where expected.
  EXPECT_EQ(lower_bound_path_node(len, 0, 0), 0);
  EXPECT_EQ(lower_bound_path_node(len, 2, 3), 2 * len + 3);
}

TEST(Generators, WithRandomWeightsPreservesTopology) {
  const Graph g = make_grid(6, 6);
  const Graph w = with_random_weights(g, 10, 20, 3);
  ASSERT_EQ(w.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(w.edge(e).u, g.edge(e).u);
    EXPECT_EQ(w.edge(e).v, g.edge(e).v);
    EXPECT_GE(w.edge(e).w, 10u);
    EXPECT_LE(w.edge(e).w, 20u);
  }
}

TEST(Metrics, BfsDistancesOnGrid) {
  const Graph g = make_grid(4, 4);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[3], 3);               // same row
  EXPECT_EQ(dist[12], 3);              // same column
  EXPECT_EQ(dist[15], 6);              // opposite corner
}

TEST(Metrics, DoubleSweepExactOnTreesAndPaths) {
  EXPECT_EQ(diameter_double_sweep(make_path(37)), 36);
  for (std::uint64_t seed : {4ULL, 9ULL}) {
    const Graph t = make_random_tree(200, seed);
    EXPECT_EQ(diameter_double_sweep(t), diameter_exact(t));
  }
}

TEST(Metrics, DoubleSweepNeverExceedsExact) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(60, 0.05, seed);
    EXPECT_LE(diameter_double_sweep(g), diameter_exact(g));
  }
}

}  // namespace
}  // namespace lcs
