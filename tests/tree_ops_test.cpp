#include <gtest/gtest.h>

#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "shortcut/tree_ops.h"
#include "test_util.h"

namespace lcs {
namespace {

using testutil::Sim;

TEST(TreeOps, BroadcastWordReachesAllNodes) {
  const Graph g = make_grid(7, 7);
  Sim setup(g);
  const auto words =
      broadcast_word_from_root(setup.net, setup.tree, 0xDEADBEEFULL);
  for (const auto w : words) EXPECT_EQ(w, 0xDEADBEEFULL);
}

TEST(TreeOps, BroadcastTakesHeightRounds) {
  const Graph g = make_path(30);
  Sim setup(g);  // rooted at 0, height 29
  const std::int64_t before = setup.net.total_rounds();
  broadcast_word_from_root(setup.net, setup.tree, 5);
  EXPECT_EQ(setup.net.total_rounds() - before, 29);
}

TEST(TreeOps, GlobalOrAllFalse) {
  const Graph g = make_grid(6, 6);
  Sim setup(g);
  congest::PerNode<bool> bits(static_cast<std::size_t>(g.num_nodes()), false);
  EXPECT_FALSE(global_or(setup.net, setup.tree, bits));
}

TEST(TreeOps, GlobalOrSingleDeepBit) {
  const Graph g = make_path(25);
  Sim setup(g);
  congest::PerNode<bool> bits(static_cast<std::size_t>(g.num_nodes()), false);
  bits[24] = true;  // farthest leaf
  EXPECT_TRUE(global_or(setup.net, setup.tree, bits));
}

TEST(TreeOps, GlobalOrRootOnlyBit) {
  const Graph g = make_grid(5, 5);
  Sim setup(g);
  congest::PerNode<bool> bits(static_cast<std::size_t>(g.num_nodes()), false);
  bits[0] = true;
  EXPECT_TRUE(global_or(setup.net, setup.tree, bits));
}

TEST(TreeOps, GlobalOrRoundsLinearInHeight) {
  const Graph g = make_path(40);
  Sim setup(g);
  congest::PerNode<bool> bits(static_cast<std::size_t>(g.num_nodes()), true);
  const std::int64_t before = setup.net.total_rounds();
  global_or(setup.net, setup.tree, bits);
  EXPECT_LE(setup.net.total_rounds() - before, 2 * setup.tree.height + 4);
}

TEST(TreeOps, SingleNodeGraph) {
  const Graph g = make_path(1);
  Sim setup(g);
  congest::PerNode<bool> bits{true};
  EXPECT_TRUE(global_or(setup.net, setup.tree, bits));
  bits[0] = false;
  EXPECT_FALSE(global_or(setup.net, setup.tree, bits));
}

}  // namespace
}  // namespace lcs
