#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "util/check.h"

namespace lcs {
namespace {

using scenario::make_scenario;
using scenario::parse_spec;
using scenario::Scenario;

void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_EQ(a.edge(e).w, b.edge(e).w);
  }
}

TEST(SpecParser, FamilyAndParams) {
  auto args = parse_spec("er:n=100000,p=2e-4,seed=7");
  EXPECT_EQ(args.family(), "er");
  EXPECT_EQ(args.require_int("n"), 100000);
  EXPECT_DOUBLE_EQ(args.require_double("p"), 2e-4);
  EXPECT_EQ(args.get_uint("seed", 1), 7u);
  args.check_all_consumed();
}

TEST(SpecParser, BareFamilyHasNoParams) {
  auto args = parse_spec("grid");
  EXPECT_EQ(args.family(), "grid");
  args.check_all_consumed();
}

TEST(SpecParser, FilePathIsFirstToken) {
  auto args = parse_spec("file:graphs/road.bin,parts=16");
  EXPECT_EQ(args.family(), "file");
  EXPECT_EQ(args.get_string("path", ""), "graphs/road.bin");
  EXPECT_EQ(args.require_int("parts"), 16);
  args.check_all_consumed();
}

TEST(SpecParser, DiagnosesGrammarErrors) {
  EXPECT_THROW(parse_spec(""), CheckFailure);
  EXPECT_THROW(parse_spec(":n=4"), CheckFailure);
  EXPECT_THROW(parse_spec("grid:w"), CheckFailure);
  EXPECT_THROW(parse_spec("grid:=4"), CheckFailure);
  EXPECT_THROW(parse_spec("grid:w=4,,h=4"), CheckFailure);
  EXPECT_THROW(parse_spec("grid:w=4,w=5"), CheckFailure);  // duplicate key
}

TEST(SpecParser, DiagnosesMalformedValues) {
  auto args = parse_spec("grid:w=abc");
  EXPECT_THROW(args.get_int("w", 1), CheckFailure);
}

TEST(Registry, UnknownFamilyAndUnknownParamDiagnosed) {
  EXPECT_THROW(make_scenario("no-such-family:n=4"), CheckFailure);
  EXPECT_THROW(make_scenario("grid:w=4,bogus=1"), CheckFailure);
}

TEST(Registry, UnknownParamDiagnosisNamesKeyAndAcceptedSet) {
  try {
    make_scenario("grid:w=4,bogus=1");
    FAIL() << "unknown key accepted";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("accepted:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("w"), std::string::npos) << msg;
    EXPECT_NE(msg.find("parts"), std::string::npos) << msg;  // common key
  }
}

TEST(Registry, EveryBuiltinFamilyRejectsUnknownAndDuplicateKeys) {
  // Per-family regression: a misspelled parameter must be diagnosed by
  // name (never silently defaulted), and a duplicated one must be
  // rejected at parse time for every family.
  for (const auto& family : scenario::families()) {
    if (family.name == "file") continue;  // needs a real path
    SCOPED_TRACE(family.name);
    EXPECT_FALSE(family.param_keys.empty())
        << "builtin family must declare its parameter keys";
    try {
      make_scenario(family.name + ":zzz_bogus=1");
      FAIL() << "unknown key accepted by " << family.name;
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("zzz_bogus"), std::string::npos)
          << e.what();
    }
    EXPECT_THROW(make_scenario(family.name + ":seed=1,seed=2"), CheckFailure);
  }
}

TEST(Registry, FamilyLookupAndAcceptedKeys) {
  const scenario::Family* grid = scenario::find_family("grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(scenario::find_family("no-such-family"), nullptr);

  const auto accepted = scenario::accepted_param_keys(*grid);
  for (const std::string& key : grid->param_keys)
    EXPECT_NE(std::find(accepted.begin(), accepted.end(), key),
              accepted.end())
        << key;
  for (const std::string& key : scenario::common_param_keys())
    EXPECT_NE(std::find(accepted.begin(), accepted.end(), key),
              accepted.end())
        << key;

  // A family that declared nothing opts out of pre-expansion checks.
  scenario::Family undeclared = *grid;
  undeclared.param_keys.clear();
  EXPECT_TRUE(scenario::accepted_param_keys(undeclared).empty());
}

TEST(Registry, DeclaredKeysMatchWhatBuildersConsume) {
  // Every declared key must actually be accepted by its family's builder
  // (with the default spec as a base); a key in `param_keys` that the
  // builder does not consume would make the pre-expansion sweep check lie.
  for (const auto& family : scenario::families()) {
    if (family.name == "file") continue;
    for (const std::string& key : family.param_keys) {
      SCOPED_TRACE(family.name + ":" + key);
      if (key == "path") continue;  // value is a filesystem path
      // `deg` vs `p`/`m` style alternatives can conflict; a consumed key
      // never produces an "unknown parameter" diagnosis, though it may
      // produce a value/conflict one. Distinguish by message.
      try {
        make_scenario(family.name + ":" + key + "=3");
      } catch (const CheckFailure& e) {
        EXPECT_EQ(std::string(e.what()).find("unknown parameter"),
                  std::string::npos)
            << e.what();
      }
    }
  }
}

TEST(Registry, EveryBuiltinFamilyResolvesWithDefaults) {
  for (const auto& family : scenario::families()) {
    if (family.name == "file") continue;  // needs a real path
    SCOPED_TRACE(family.name);
    const Scenario sc = make_scenario(family.name);
    EXPECT_EQ(sc.family, family.name);
    EXPECT_GE(sc.graph.num_nodes(), 1);
    EXPECT_TRUE(is_connected(sc.graph));
    EXPECT_GE(sc.partition.num_parts, 1);
    validate_partition(sc.graph, sc.partition);
  }
}

TEST(Registry, SameSpecIsBitIdentical) {
  const char* specs[] = {
      "grid:w=9,h=7",
      "er:n=80,deg=5,seed=3",
      "rmat:scale=6,deg=6,seed=4",
      "ba:n=70,m=2,seed=5",
      "rreg:n=40,d=4,seed=6",
      "ktree:n=60,k=2,seed=7",
      "wheel:n=33,arcs=4",
      "lb:paths=4,len=5",
  };
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const Scenario a = make_scenario(spec);
    const Scenario b = make_scenario(spec);
    expect_identical(a.graph, b.graph);
    ASSERT_EQ(a.partition.num_parts, b.partition.num_parts);
    EXPECT_EQ(a.partition.part_of, b.partition.part_of);
  }
}

TEST(Registry, PartsOverrideAndPseed) {
  const Scenario sc = make_scenario("grid:w=10,parts=5,pseed=9");
  EXPECT_EQ(sc.partition.num_parts, 5);
  validate_partition(sc.graph, sc.partition);
  // Different pseed must move the partition (same graph).
  const Scenario other = make_scenario("grid:w=10,parts=5,pseed=10");
  expect_identical(sc.graph, other.graph);
  EXPECT_NE(sc.partition.part_of, other.partition.part_of);
}

TEST(Registry, GridRowsPartition) {
  const Scenario sc = make_scenario("grid:w=8,h=6,rows=2");
  EXPECT_EQ(sc.partition.num_parts, 3);
  validate_partition(sc.graph, sc.partition);
}

TEST(Registry, WheelKeepsHubUnassigned) {
  const Scenario sc = make_scenario("wheel:n=33,arcs=4");
  EXPECT_EQ(sc.partition.num_parts, 4);
  EXPECT_EQ(sc.partition.part(32), kNoPart);
}

TEST(Registry, WeightsParamReweights) {
  const Scenario sc = make_scenario("path:n=6,weights=5-5");
  for (EdgeId e = 0; e < sc.graph.num_edges(); ++e)
    EXPECT_EQ(sc.graph.edge(e).w, 5u);
  EXPECT_THROW(make_scenario("path:n=6,weights=nonsense"), CheckFailure);
}

TEST(Registry, ErDegAndExplicitPAgree) {
  const Scenario by_deg = make_scenario("er:n=100,deg=5,seed=3");
  const Scenario by_p = make_scenario("er:n=100,p=0.05,seed=3");
  expect_identical(by_deg.graph, by_p.graph);
}

TEST(Registry, FileScenarioRoundTrips) {
  const std::string path = testing::TempDir() + "lcs_scenario_corpus.bin";
  const Scenario source = make_scenario("ktree:n=50,k=3,seed=2");
  save_binary(source.graph, path);
  const Scenario loaded = make_scenario("file:" + path + ",parts=6");
  expect_identical(source.graph, loaded.graph);
  EXPECT_EQ(loaded.family, "file");
  EXPECT_EQ(loaded.partition.num_parts, 6);
  std::remove(path.c_str());
}

TEST(Registry, FileScenarioDiagnosesMissingAndDisconnected) {
  EXPECT_THROW(make_scenario("file:/nonexistent/nowhere.bin"), CheckFailure);
  // A disconnected corpus is rejected up front.
  const std::string path = testing::TempDir() + "lcs_scenario_disc.txt";
  {
    std::ofstream out(path);
    out << "nodes 4\n0 1\n2 3\n";
  }
  EXPECT_THROW(make_scenario("file:" + path), CheckFailure);
  std::remove(path.c_str());
}

TEST(Registry, RegisterFamilyRejectsDuplicates) {
  EXPECT_THROW(scenario::register_family(
                   {"grid", "", "",
                    [](scenario::SpecArgs&) {
                      return scenario::FamilyResult{make_scenario("path:n=2").graph,
                                                    std::nullopt};
                    },
                    /*param_keys=*/{}}),
               CheckFailure);
}

}  // namespace
}  // namespace lcs
