#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reference.h"
#include "graph/union_find.h"
#include "util/random.h"

namespace lcs {
namespace {

TEST(UnionFindTest, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.component_size(1), 2u);
}

TEST(Kruskal, PathMstIsWholePath) {
  const Graph g = make_path(6);
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.edges.size(), 5u);
  EXPECT_EQ(mst.total_weight, 5u);
}

TEST(Kruskal, PicksCheapEdges) {
  // Triangle with one heavy edge: MST must skip it.
  Graph g(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 100}});
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.total_weight, 2u);
  EXPECT_EQ(mst.edges, (std::vector<EdgeId>{0, 1}));
}

TEST(Kruskal, TieBreaksByEdgeIdDeterministically) {
  // Square with all-equal weights: the unique MST under (w, id) order is
  // edges {0, 1, 2}.
  Graph g(4, {{0, 1, 7}, {1, 2, 7}, {2, 3, 7}, {3, 0, 7}});
  const auto mst = kruskal_mst(g);
  EXPECT_EQ(mst.edges, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(Kruskal, MstWeightIsMinimalAgainstRandomSpanningTrees) {
  const Graph g =
      with_random_weights(make_erdos_renyi(30, 0.15, 3), 1, 1000, 4);
  const auto mst = kruskal_mst(g);
  // Any random spanning tree must weigh at least as much.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
    std::iota(order.begin(), order.end(), EdgeId{0});
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
    Weight total = 0;
    for (const EdgeId e : order) {
      const auto& ed = g.edge(e);
      if (uf.unite(static_cast<std::size_t>(ed.u),
                   static_cast<std::size_t>(ed.v)))
        total += ed.w;
    }
    EXPECT_GE(total, mst.total_weight);
  }
}

TEST(Components, LabelsByMinimumNodeId) {
  Graph g(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], 0);
  EXPECT_EQ(comp[1], 0);
  EXPECT_EQ(comp[2], 0);
  EXPECT_EQ(comp[3], 3);
  EXPECT_EQ(comp[4], 3);
  EXPECT_EQ(comp[5], 5);
}

TEST(Components, RespectsEdgeFilter) {
  const Graph g = make_path(5);
  std::vector<bool> alive = {true, false, true, true};
  const auto comp = connected_components(g, alive);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
  EXPECT_EQ(comp[2], comp[4]);
}

TEST(StoerWagner, CycleHasCutTwo) {
  EXPECT_EQ(stoer_wagner_mincut(make_cycle(8)), 2u);
}

TEST(StoerWagner, PathHasCutOne) {
  EXPECT_EQ(stoer_wagner_mincut(make_path(8)), 1u);
}

TEST(StoerWagner, WeightedBottleneck) {
  // Two triangles joined by a single light edge.
  Graph g(6, {{0, 1, 10}, {1, 2, 10}, {0, 2, 10},
              {3, 4, 10}, {4, 5, 10}, {3, 5, 10},
              {2, 3, 3}});
  EXPECT_EQ(stoer_wagner_mincut(g), 3u);
}

TEST(StoerWagner, MatchesBruteForceOnSmallRandomGraphs) {
  // Brute force over all 2^(n-1) bipartitions for tiny n.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g =
        with_random_weights(make_erdos_renyi(9, 0.35, seed), 1, 9, seed + 50);
    Weight best = ~0ULL;
    const NodeId n = g.num_nodes();
    for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
      // Node n-1 fixed on side 0; mask selects sides of nodes 0..n-2.
      Weight cut = 0;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& ed = g.edge(e);
        const bool su = ed.u < n - 1 && ((mask >> ed.u) & 1u);
        const bool sv = ed.v < n - 1 && ((mask >> ed.v) & 1u);
        if (su != sv) cut += ed.w;
      }
      best = std::min(best, cut);
    }
    EXPECT_EQ(stoer_wagner_mincut(g), best) << "seed " << seed;
  }
}

TEST(StoerWagner, GridCutIsolatesACorner) {
  // A grid's global min cut severs a degree-2 corner node.
  EXPECT_EQ(stoer_wagner_mincut(make_grid(4, 7)), 2u);
}

TEST(StoerWagner, TorusCutIsolatesANode) {
  // Every torus node has degree 4 and that is the cheapest cut.
  EXPECT_EQ(stoer_wagner_mincut(make_torus(5, 5)), 4u);
}

}  // namespace
}  // namespace lcs
