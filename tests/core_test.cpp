#include <gtest/gtest.h>

#include "congest/process.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/core_fast.h"
#include "shortcut/core_slow.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace lcs {
namespace {

using testutil::Sim;
using testutil::central_block_count;

/// Count the parts whose tentative subgraph has at most 3*b_opt block
/// components, where b_opt is the existential block parameter at the same
/// congestion budget (the Lemma 5/7 "good part" notion).
std::int32_t count_good_parts(const Graph& g, const SpanningTree& tree,
                              const Partition& p, const Shortcut& s,
                              std::int32_t b_opt) {
  std::int32_t good = 0;
  for (PartId j = 0; j < p.num_parts; ++j)
    if (central_block_count(g, tree, p, s, j) <= 3 * b_opt) ++good;
  return good;
}

TEST(CoreSlow, MatchesCentralizedGreedyExactly) {
  // CoreSlow is deterministic and must reproduce the centralized bottom-up
  // greedy with threshold 2c, edge for edge.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(90, 0.05, seed);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 12, seed + 1);
    for (const std::int32_t c : {1, 2, 4}) {
      const CoreResult result =
          core_slow(setup.net, setup.tree, p.part_of, c);
      const Shortcut expected =
          greedy_blocked_shortcut(g, setup.tree, p, 2 * c);
      EXPECT_EQ(result.shortcut.parts_on_edge, expected.parts_on_edge)
          << "seed " << seed << " c " << c;
    }
  }
}

TEST(CoreSlow, CongestionAtMost2c) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_grid(10, 10);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 15, seed);
    for (const std::int32_t c : {1, 3}) {
      const CoreResult result =
          core_slow(setup.net, setup.tree, p.part_of, c);
      EXPECT_LE(congestion(g, p, result.shortcut), 2 * c);
    }
  }
}

TEST(CoreSlow, HalfTheParnersAreGoodAtExistentialBudget) {
  // Lemma 7: if a (c, b) shortcut exists, CoreSlow(c) leaves >= N/2 parts
  // with <= 3b blocks. Use the centralized sweep to find an existential
  // (c, b) pair, then check the guarantee.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(100, 0.05, seed);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 14, seed + 2);
    for (const auto& point : pareto_sweep(g, setup.tree, p)) {
      const std::int32_t c = std::max(point.congestion, 1);
      const CoreResult result =
          core_slow(setup.net, setup.tree, p.part_of, c);
      const std::int32_t good = count_good_parts(g, setup.tree, p,
                                                 result.shortcut, point.block);
      EXPECT_GE(good, (p.num_parts + 1) / 2)
          << "seed " << seed << " c " << c << " b " << point.block;
    }
  }
}

TEST(CoreSlow, RoundsWithinDcBound) {
  const Graph g = make_grid(12, 12);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 20, 3);
  for (const std::int32_t c : {1, 4}) {
    const std::int64_t before = setup.net.total_rounds();
    core_slow(setup.net, setup.tree, p.part_of, c);
    const std::int64_t rounds = setup.net.total_rounds() - before;
    EXPECT_LE(rounds, 3 * (setup.tree.height + 2) * (2 * c + 2));
  }
}

TEST(CoreSlow, InactiveNodesClaimNothing) {
  // Parts marked kNoPart must not appear in the output (the FindShortcut
  // iteration contract).
  const Graph g = make_grid(8, 8);
  Sim setup(g);
  auto p = make_random_bfs_partition(g, 8, 4);
  congest::PerNode<PartId> active = p.part_of;
  for (auto& j : active)
    if (j % 2 == 0) j = kNoPart;  // retire even parts
  const CoreResult result = core_slow(setup.net, setup.tree, active, 2);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    for (const PartId j :
         result.shortcut.parts_on_edge[static_cast<std::size_t>(e)])
      EXPECT_EQ(j % 2, 1);
}

TEST(CoreFast, CongestionAtMost8cAcrossSeeds) {
  const Graph g = make_grid(10, 10);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 15, 1);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    for (const std::int32_t c : {1, 3}) {
      const CoreResult result = core_fast(setup.net, setup.tree, p.part_of,
                                          CoreFastParams{c, 4.0, seed});
      EXPECT_LE(congestion(g, p, result.shortcut), 8 * c)
          << "seed " << seed << " c " << c;
    }
  }
}

TEST(CoreFast, HalfThePartsAreGoodAtExistentialBudget) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(100, 0.05, seed);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 14, seed + 2);
    const auto point = best_existential_for_block(g, setup.tree, p, 4);
    const std::int32_t c = std::max(point.congestion, 1);
    const CoreResult result = core_fast(setup.net, setup.tree, p.part_of,
                                        CoreFastParams{c, 4.0, seed + 77});
    const std::int32_t good =
        count_good_parts(g, setup.tree, p, result.shortcut, point.block);
    EXPECT_GE(good, (p.num_parts + 1) / 2) << "seed " << seed;
  }
}

TEST(CoreFast, SamplingProbabilityClampsAndScales) {
  EXPECT_DOUBLE_EQ(core_fast_sampling_probability(1024, 1, 4.0), 1.0);
  const double p1 = core_fast_sampling_probability(1024, 100, 4.0);
  const double p2 = core_fast_sampling_probability(1024, 200, 4.0);
  EXPECT_NEAR(p1, 4.0 * 10.0 / 200.0, 1e-12);
  EXPECT_NEAR(p1 / p2, 2.0, 1e-9);
}

TEST(CoreFast, DeterministicGivenSeed) {
  const Graph g = make_grid(8, 8);
  const auto p = make_random_bfs_partition(g, 10, 5);
  Sim s1(g), s2(g);
  const CoreResult r1 =
      core_fast(s1.net, s1.tree, p.part_of, CoreFastParams{2, 4.0, 42});
  const CoreResult r2 =
      core_fast(s2.net, s2.tree, p.part_of, CoreFastParams{2, 4.0, 42});
  EXPECT_EQ(r1.shortcut.parts_on_edge, r2.shortcut.parts_on_edge);
  EXPECT_EQ(s1.net.total_rounds(), s2.net.total_rounds());
}

TEST(CoreFast, LargeCongestionBudgetAssignsEverything) {
  // With c >= c_full nothing is ever unusable: every part gets its full
  // ancestor subgraph (block parameter 1).
  const Graph g = make_grid(7, 7);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 6, 3);
  const Shortcut full = full_ancestor_shortcut(g, setup.tree, p);
  const std::int32_t c_full = congestion(g, p, full);
  const CoreResult result = core_fast(setup.net, setup.tree, p.part_of,
                                      CoreFastParams{c_full, 4.0, 9});
  EXPECT_EQ(result.shortcut.parts_on_edge, full.parts_on_edge);
  EXPECT_EQ(block_parameter(g, p, result.shortcut), 1);
}

TEST(CoreFast, UnusableEdgesBlockPropagation) {
  // On the lower-bound graph with tiny c, the tree edges above the columns
  // must saturate: the computed shortcut keeps congestion <= 8c even though
  // k parts would like every top edge.
  const NodeId k = 10;
  const Graph g = make_lower_bound_graph(k, k);
  Sim setup(g, g.num_nodes() - 1);
  const auto p = make_lower_bound_partition(k, k, g.num_nodes());
  const CoreResult result =
      core_fast(setup.net, setup.tree, p.part_of, CoreFastParams{1, 4.0, 3});
  EXPECT_LE(congestion(g, p, result.shortcut), 8);
}

}  // namespace
}  // namespace lcs
