// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: S2:6 S2:8
// A phase-2 backslash line splice hides the forbidden name across two
// physical lines; the lexer must rejoin them (and report the finding at
// the first physical line of the spliced token run).
#include <thread>

void fx() { std::th\
read t([] {}); t.join(); }
