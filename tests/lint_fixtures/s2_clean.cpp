// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
#include "util/worker_pool.h"

void fx(lcs::WorkerPool& pool) {
  pool.parallel_for(0, 8, [](int) {});
}
