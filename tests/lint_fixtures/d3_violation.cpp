// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: D3:6 D3:9
#include <cstdint>
#include <set>

std::uintptr_t key_of(const int* p);

// Ordering a set by raw pointer value: allocator-dependent.
std::set<int*, std::less<int*>> order_by_address;
