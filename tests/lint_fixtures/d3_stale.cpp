// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:5

// The pointer-keyed map was replaced by id keys; the allow remains.
// lcs-lint: allow(D3) arena diagnostics
int arena_tag_for_id(int id);
