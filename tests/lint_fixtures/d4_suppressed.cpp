// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1

double fx(double wall_ms_a, double wall_ms_b) {
  double wall_ms = wall_ms_a;
  // lcs-lint: allow(D4) timing report field: never compared to goldens
  wall_ms += wall_ms_b;
  return wall_ms;
}
