// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: S1:5 S1:6

int fx(long big) {
  const int a = static_cast<int>(big);
  const unsigned char b = static_cast<unsigned char>(big);
  return a + b;
}
