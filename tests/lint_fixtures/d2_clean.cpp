// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
#include "util/random.h"

std::uint64_t fx() {
  return lcs::hash64(42, 7, 0);
}
