// lint-fixture-expect: LINT:5
#include "mid/mid.h"
#include "util/base.h"

// lcs-lint: allow(A3) stale — the direct include above already fixed this
int main() {
  MidThing m;
  BaseThing b;
  return m.base.v + b.v;
}
