#include "util/low.h"

int main() {
  LowThing low;
  return low.v;
}
