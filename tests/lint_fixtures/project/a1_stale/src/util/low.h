// lint-fixture-expect: LINT:4
#pragma once

// lcs-lint: allow(A1) stale — the include it excused was removed
struct LowThing {
  int v = 0;
};
