// lint-fixture-expect: LINT:4
#pragma once

// lcs-lint: allow(A2) stale — the cycle this excused was broken
struct XThing {
  int v = 0;
};
