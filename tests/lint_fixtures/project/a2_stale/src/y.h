#pragma once
#include "x.h"

struct YThing {
  XThing x;
};
