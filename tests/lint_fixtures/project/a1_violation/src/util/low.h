// lint-fixture-expect: A1:3
#pragma once
#include "driver/high.h"

struct LowThing {
  HighThing inner;
};
