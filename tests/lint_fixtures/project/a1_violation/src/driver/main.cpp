#include "driver/high.h"
#include "util/low.h"

int main() {
  LowThing low;
  HighThing high;
  return low.inner.v + high.v;
}
