// lint-fixture-suppressions: 1
#pragma once

inline int orphan_helper() { return 42; }  // lcs-lint: allow(U1) public extension point, callers live downstream
