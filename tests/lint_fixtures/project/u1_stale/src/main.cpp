#include "util/orphan.h"

int main() { return orphan_helper(); }
