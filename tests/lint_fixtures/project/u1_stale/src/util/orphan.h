// lint-fixture-expect: LINT:4
#pragma once

// lcs-lint: allow(U1) stale — main() references the helper now
inline int orphan_helper() { return 42; }
