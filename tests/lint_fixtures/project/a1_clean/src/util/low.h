#pragma once

struct LowThing {
  int v = 0;
};
