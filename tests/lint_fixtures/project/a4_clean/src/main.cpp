#include "util/base.h"

int main() {
  BaseThing b;
  return b.v;
}
