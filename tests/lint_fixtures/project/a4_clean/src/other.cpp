#include "util/base.h"

static int use_base() {
  BaseThing b;
  return b.v;
}
