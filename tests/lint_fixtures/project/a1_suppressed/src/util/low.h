// lint-fixture-suppressions: 1
#pragma once
#include "driver/high.h"  // lcs-lint: allow(A1) migration shim until HighThing moves down a layer

struct LowThing {
  HighThing inner;
};
