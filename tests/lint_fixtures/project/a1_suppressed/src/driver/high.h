#pragma once

struct HighThing {
  int v = 0;
};
