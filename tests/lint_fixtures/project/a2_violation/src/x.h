// lint-fixture-expect: A2:3
#pragma once
#include "y.h"

struct XThing {
  YThing* peer = nullptr;
};
