// lint-fixture-expect: A3:6
#include "mid/mid.h"

int main() {
  MidThing m;
  BaseThing b;
  return m.base.v + b.v;
}
