// lint-fixture-expect: A4:2
#include "util/base.h"

int main() { return 0; }
