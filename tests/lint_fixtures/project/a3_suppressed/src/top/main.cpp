// lint-fixture-suppressions: 1
#include "mid/mid.h"

int main() {
  MidThing m;
  BaseThing b;  // lcs-lint: allow(A3) mid.h is the documented umbrella API here
  return m.base.v + b.v;
}
