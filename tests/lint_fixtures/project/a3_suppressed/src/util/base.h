#pragma once

struct BaseThing {
  int v = 0;
};
