#pragma once
#include "util/base.h"

struct MidThing {
  BaseThing base;
};
