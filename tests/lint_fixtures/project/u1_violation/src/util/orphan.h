// lint-fixture-expect: U1:4
#pragma once

inline int orphan_helper() { return 42; }
