#pragma once

struct XThing {
  int v = 0;
};
