#include "x.h"
#include "y.h"

int main() {
  XThing x;
  YThing y;
  x.peer = &y;
  y.peer = &x;
  return 0;
}
