// lint-fixture-suppressions: 1
#include "util/base.h"  // lcs-lint: allow(A4) kept for the doc example below

int main() { return 0; }
