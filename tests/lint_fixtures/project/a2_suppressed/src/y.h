#pragma once
#include "x.h"

struct YThing {
  XThing* peer = nullptr;
};
