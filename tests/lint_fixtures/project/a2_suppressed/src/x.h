// lint-fixture-suppressions: 1
#pragma once
#include "y.h"  // lcs-lint: allow(A2) known knot, the split is tracked in ROADMAP.md

struct XThing {
  YThing* peer = nullptr;
};
