#include "mid/mid.h"
#include "util/base.h"

int main() {
  MidThing m;
  BaseThing b;
  return m.base.v + b.v;
}
