// lint-fixture-expect: LINT:4
#include "util/base.h"

// lcs-lint: allow(A4) stale — the include below is used now
int main() {
  BaseThing b;
  return b.v;
}
