// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: none
#include <atomic>
#include <vector>

#include "util/worker_pool.h"

void fx(lcs::util::WorkerPool& pool, std::vector<int>& slots) {
  std::atomic<int> cursor{0};
  pool.run(4, [&](int w) {
    // Per-worker slot: each worker owns slots[w], no write is shared.
    slots[w] = w * 2;
    // Atomic cursor: contended, but not a data race and not an order
    // the merge depends on.
    const int i = cursor.fetch_add(1);
    int local = w;
    local += i;
    slots[w] += local;
  });
}
