// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1
#include <unordered_map>

bool fx() {
  std::unordered_map<int, int> counts;
  // lcs-lint: allow(D1) presence check only: result does not depend on order
  return counts.begin() == counts.end();
}
