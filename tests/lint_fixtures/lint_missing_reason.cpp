// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:5 S1:6

int fx(long big) {
  // lcs-lint: allow(S1)
  return static_cast<int>(big);
}
