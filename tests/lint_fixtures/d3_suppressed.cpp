// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1
#include <cstdint>

// lcs-lint: allow(D3) debug-only arena diagnostics, never serialized
std::uintptr_t arena_tag(const void* p);
