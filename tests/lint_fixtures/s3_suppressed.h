// lint-fixture-path: src/graph/io.h
// lint-fixture-expect: none
// lint-fixture-suppressions: 1
#include <string>

namespace lcs {
// lcs-lint: allow(S3) fire-and-forget advisory write; failure is benign
bool try_touch(const std::string& path);
}
