// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: none
#include <cstdint>
#include <vector>

double fx(const std::vector<std::int64_t>& xs) {
  std::int64_t total = 0;
  for (const std::int64_t x : xs) total += x;
  return static_cast<double>(total);
}
