// lint-fixture-path: src/graph/io.h
// lint-fixture-expect: LINT:7
#include <string>

namespace lcs {
// the declaration below gained [[nodiscard]]; the allow was left behind
// lcs-lint: allow(S3) fire-and-forget advisory write
[[nodiscard]] bool try_touch(const std::string& path);
}
