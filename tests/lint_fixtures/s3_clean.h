// lint-fixture-path: src/graph/io.h
// lint-fixture-expect: none
#include <string>

namespace lcs {
[[nodiscard]] bool write_graph(const std::string& path);
void log_note(const std::string& text);
}
