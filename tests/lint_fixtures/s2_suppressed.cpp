// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 2
// lcs-lint: allow(S2) fixture: exercising the include suppression path
#include <thread>

void fx() {
  // lcs-lint: allow(S2) watchdog thread: joins before any observable
  std::thread t([] {});
  t.join();
}
