// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: LINT:6

int fx(int a, int b) {
  int total = a;
  // lcs-lint: allow(D4) timing report field
  total += b;
  return total;
}
