// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1

int fx(long big) {
  // lcs-lint: allow(S1) value proven in range by the caller's LCS_CHECK
  return static_cast<int>(big);
}
