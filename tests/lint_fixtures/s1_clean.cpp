// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
#include "util/cast.h"

int fx(long big) {
  const int a = lcs::util::checked_cast<int>(big);
  const auto b = lcs::util::truncate_cast<unsigned char>(big);
  return a + b;
}
