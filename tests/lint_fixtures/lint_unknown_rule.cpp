// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:5 S1:6

int fx(long big) {
  // lcs-lint: allow(Z9) no such rule
  return static_cast<int>(big);
}
