// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:6

long fx(long big) {
  // the narrowing below migrated to checked_cast; the allow was left behind
  // lcs-lint: allow(S1) value proven in range
  return big;
}
