// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: S4:12 S4:13
#include <vector>

#include "util/worker_pool.h"

void fx(lcs::util::WorkerPool& pool, std::vector<int>& sink) {
  int total = 0;
  pool.run(4, [&](int w) {
    // Both writes race: `total` and `sink` are shared state captured by
    // reference, mutated concurrently by every worker.
    total += w;
    sink.push_back(w);
  });
}
