// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: D4:8 D4:10
#include <numeric>
#include <vector>

double fx(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  (void)total;
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
