// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: D2:7 D2:8
#include <chrono>
#include <cstdlib>

long fx() {
  const long a = std::rand();
  const auto t0 = std::chrono::steady_clock::now();
  return a + t0.time_since_epoch().count();
}
