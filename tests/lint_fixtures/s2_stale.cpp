// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:5

void fx() {
  // lcs-lint: allow(S2) the watchdog thread was removed
}
