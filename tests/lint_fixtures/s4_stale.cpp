// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: LINT:9
#include <vector>

#include "util/worker_pool.h"

void fx(lcs::util::WorkerPool& pool, std::vector<int>& slots) {
  pool.run(4, [&](int w) {
    // lcs-lint: allow(S4) stale — the subscript write below is already clean
    slots[w] = w;
  });
}
