// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: S2:3 S2:6
#include <thread>

void fx() {
  std::thread t([] {});
  t.join();
}
