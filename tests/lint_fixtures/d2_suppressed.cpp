// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1
#include <chrono>

double fx_wall_ms() {
  // lcs-lint: allow(D2) wall_ms report field: explicitly timed, not logic
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}
