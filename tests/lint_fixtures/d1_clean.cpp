// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
#include <map>
#include <unordered_map>

#include "util/sorted.h"

int fx() {
  std::unordered_map<int, int> counts;
  counts[3] = 7;
  int total = 0;
  for (const int k : lcs::util::sorted_keys(counts)) total += k;
  std::map<int, int> ordered;
  for (const auto& kv : ordered) total += kv.second;
  return total;
}
