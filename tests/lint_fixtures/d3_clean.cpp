// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: none
#include <set>

// Key on stable ids, not addresses.
std::set<int> order_by_id;
int key_of(int node_id);
