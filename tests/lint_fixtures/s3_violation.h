// lint-fixture-path: src/graph/io.h
// lint-fixture-expect: S3:6
#include <string>

namespace lcs {
bool write_graph(const std::string& path);
}
