// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:6

int fx() {
  // the timed block was deleted; the allow outlived it
  // lcs-lint: allow(D2) wall_ms report field: explicitly timed
  return 0;
}
