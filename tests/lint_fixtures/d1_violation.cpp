// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: D1:8 D1:9 D1:10
#include <unordered_map>
#include <unordered_set>

void fx() {
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) (void)kv;
  auto it = counts.begin();
  std::unordered_map<int, int>::iterator jt = counts.end();
  (void)it;
  (void)jt;
}
