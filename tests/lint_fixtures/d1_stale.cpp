// lint-fixture-path: src/shortcut/fx.cpp
// lint-fixture-expect: LINT:7
#include <unordered_map>

int fx() {
  std::unordered_map<int, int> counts;
  // lcs-lint: allow(D1) stale: the iteration below was rewritten long ago
  return counts.empty() ? 0 : 1;
}
