// lint-fixture-path: src/congest/fx.cpp
// lint-fixture-expect: none
// lint-fixture-suppressions: 1
#include "util/worker_pool.h"

void fx(lcs::util::WorkerPool& pool) {
  int total = 0;
  pool.run(1, [&](int w) {
    // lcs-lint: allow(S4) single-worker pool in this path, no concurrency
    total += w;
  });
  (void)total;
}
