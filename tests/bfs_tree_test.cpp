#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "tree/bfs_tree.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"

namespace lcs {
namespace {

void expect_bfs_tree_correct(const Graph& g, NodeId root) {
  congest::Network net(g);
  const SpanningTree tree = build_bfs_tree(net, root);
  validate_spanning_tree(g, tree);

  // Depths must equal true hop distances (BFS optimality).
  const auto dist = bfs_distances(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              dist[static_cast<std::size_t>(v)])
        << "node " << v;

  // Rounds: the protocol is O(D) — explore wave + replies + echo.
  const std::int32_t ecc = *std::max_element(dist.begin(), dist.end());
  EXPECT_LE(net.total_rounds(), 4 * (ecc + 2)) << "BFS took too many rounds";
}

TEST(BfsTree, Path) { expect_bfs_tree_correct(make_path(20), 0); }

TEST(BfsTree, PathFromMiddle) { expect_bfs_tree_correct(make_path(21), 10); }

TEST(BfsTree, Cycle) { expect_bfs_tree_correct(make_cycle(17), 3); }

TEST(BfsTree, Grid) { expect_bfs_tree_correct(make_grid(9, 7), 0); }

TEST(BfsTree, Torus) { expect_bfs_tree_correct(make_torus(6, 8), 5); }

TEST(BfsTree, SingleNode) { expect_bfs_tree_correct(make_path(1), 0); }

TEST(BfsTree, TwoNodes) { expect_bfs_tree_correct(make_path(2), 1); }

TEST(BfsTree, RandomGraphsAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_bfs_tree_correct(make_erdos_renyi(120, 0.04, seed), 0);
  }
}

TEST(BfsTree, RandomTreesAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_bfs_tree_correct(make_random_tree(150, seed),
                            util::checked_cast<NodeId>(seed * 7 % 150));
  }
}

TEST(BfsTree, LowerBoundGraph) {
  expect_bfs_tree_correct(make_lower_bound_graph(10, 10), 0);
}

TEST(BfsTree, DeterministicAcrossRuns) {
  const Graph g = make_erdos_renyi(80, 0.06, 5);
  congest::Network net1(g), net2(g);
  const SpanningTree t1 = build_bfs_tree(net1, 0);
  const SpanningTree t2 = build_bfs_tree(net2, 0);
  EXPECT_EQ(t1.parent, t2.parent);
  EXPECT_EQ(t1.depth, t2.depth);
  EXPECT_EQ(net1.total_rounds(), net2.total_rounds());
}

TEST(BfsTree, HeightEqualsRootEccentricity) {
  const Graph g = make_grid(8, 8);
  congest::Network net(g);
  const SpanningTree tree = build_bfs_tree(net, 0);
  EXPECT_EQ(tree.height, 14);  // corner-to-corner
}

TEST(ReferenceBfs, AgreesWithDistributedDepths) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(60, 0.08, seed);
    congest::Network net(g);
    const SpanningTree dist_tree = build_bfs_tree(net, 2);
    const SpanningTree ref_tree = reference_bfs_tree(g, 2);
    validate_spanning_tree(g, ref_tree);
    EXPECT_EQ(dist_tree.depth, ref_tree.depth);
    EXPECT_EQ(dist_tree.height, ref_tree.height);
  }
}

}  // namespace
}  // namespace lcs
