#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "util/check.h"
#include "util/json_writer.h"

namespace lcs {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  body(w);
  return out.str();
}

TEST(JsonWriter, CompactObjectAndArray) {
  const std::string got = compact([](JsonWriter& w) {
    w.begin_object();
    w.kv("a", std::int64_t{1});
    w.key("b").begin_array().value(std::int64_t{2}).value("x").end_array();
    w.key("c").begin_object().kv("d", true).end_object();
    w.end_object();
  });
  EXPECT_EQ(got, R"({"a":1,"b":[2,"x"],"c":{"d":true}})");
}

TEST(JsonWriter, IndentedOutput) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object().kv("k", std::int64_t{7}).end_object();
  w.finish();
  EXPECT_EQ(out.str(), "{\n  \"k\": 7\n}\n");
}

TEST(JsonWriter, StringEscaping) {
  const std::string got = compact([](JsonWriter& w) {
    w.value(std::string_view("q\"b\\n\nt\tc\x01z"));
  });
  EXPECT_EQ(got, R"("q\"b\\n\nt\tc\u0001z")");
}

TEST(JsonWriter, IntegerExtremes) {
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.value(std::numeric_limits<std::int64_t>::min());
            }),
            "-9223372036854775808");
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.value(std::numeric_limits<std::uint64_t>::max());
            }),
            "18446744073709551615");
}

TEST(JsonWriter, DoubleShortestRoundTrip) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(0.1); }), "0.1");
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(2e-4); }), "2e-04");
}

TEST(JsonWriter, NullAndBool) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.null(); }), "null");
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(false); }), "false");
}

TEST(JsonWriter, DiagnosesValueWithoutKey) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  EXPECT_THROW(w.value(std::int64_t{1}), CheckFailure);
}

TEST(JsonWriter, DiagnosesMismatchedEnd) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  EXPECT_THROW(w.end_object(), CheckFailure);
}

TEST(JsonWriter, DiagnosesDanglingKey) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object().key("k");
  EXPECT_THROW(w.end_object(), CheckFailure);
}

TEST(JsonWriter, DiagnosesEarlyFinish) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  EXPECT_THROW(w.finish(), CheckFailure);
}

TEST(JsonWriter, DiagnosesNonFiniteDouble) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  EXPECT_THROW(w.value(std::nan("")), CheckFailure);
}

TEST(JsonWriter, DiagnosesSecondTopLevelValue) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.value(std::int64_t{1});
  EXPECT_THROW(w.value(std::int64_t{2}), CheckFailure);
}

}  // namespace
}  // namespace lcs
