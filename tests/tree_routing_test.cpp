#include <gtest/gtest.h>

#include <map>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/representation.h"
#include "shortcut/shortcut.h"
#include "shortcut/tree_routing.h"
#include "test_util.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"

namespace lcs {
namespace {

using testutil::CentralComponent;
using testutil::Sim;
using testutil::central_components;

/// Shared scenario: graph + partition + greedy shortcut at a threshold.
struct Scenario {
  Graph g;
  Partition p;
  Shortcut s;
  std::int32_t max_ids_per_edge = 0;

  Scenario(Graph graph, Partition part, const SpanningTree& tree,
           std::int32_t threshold)
      : g(std::move(graph)), p(std::move(part)) {
    s = greedy_blocked_shortcut(g, tree, p, threshold);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      max_ids_per_edge = std::max(
          max_ids_per_edge,
          util::checked_cast<std::int32_t>(
              s.parts_on_edge[static_cast<std::size_t>(e)].size()));
  }
};

TEST(TreeRouting, BroadcastReachesEveryComponentNodeExactlyOnce) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(90, 0.05, seed);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 10, seed + 5);
    Scenario sc(g, p, setup.tree, 4);

    // (node, part) -> received values.
    std::map<std::pair<NodeId, PartId>, std::vector<std::uint64_t>> seen;
    run_component_broadcast(
        setup.net, setup.tree, sc.s,
        [](NodeId root, PartId j) {
          return (static_cast<std::uint64_t>(root) << 20) |
                 static_cast<std::uint64_t>(j);
        },
        [&](NodeId v, PartId j, std::uint64_t value, std::int32_t) {
          seen[{v, j}].push_back(value);
        });

    for (PartId j = 0; j < p.num_parts; ++j) {
      for (const auto& comp : central_components(g, setup.tree, p, sc.s, j)) {
        if (comp.edges.empty()) continue;  // singletons: engine not involved
        const std::uint64_t expected =
            (static_cast<std::uint64_t>(comp.root) << 20) |
            static_cast<std::uint64_t>(j);
        for (const NodeId v : comp.nodes) {
          const auto it = seen.find({v, j});
          ASSERT_NE(it, seen.end()) << "node " << v << " part " << j;
          ASSERT_EQ(it->second.size(), 1u) << "duplicate delivery";
          EXPECT_EQ(it->second.front(), expected);
        }
      }
    }
  }
}

TEST(TreeRouting, ConvergecastSumsComponentContributions) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_grid(9, 9);
    Sim setup(g);
    const auto p = make_random_bfs_partition(g, 8, seed);
    Scenario sc(g, p, setup.tree, 3);
    const ShortcutState state =
        compute_shortcut_state(setup.net, setup.tree, p, sc.s);

    std::map<std::pair<NodeId, PartId>, std::uint64_t> results;
    run_component_convergecast(
        setup.net, setup.tree, state.shortcut, state.root_depth_on_edge,
        [](NodeId, PartId) -> std::uint64_t { return 1; },  // count nodes
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        [&](NodeId root, PartId j, std::uint64_t agg) {
          results[{root, j}] = agg;
        });

    for (PartId j = 0; j < p.num_parts; ++j) {
      for (const auto& comp :
           central_components(g, setup.tree, p, state.shortcut, j)) {
        if (comp.edges.empty()) continue;
        const auto it = results.find({comp.root, j});
        ASSERT_NE(it, results.end());
        EXPECT_EQ(it->second, comp.nodes.size());
      }
    }
  }
}

TEST(TreeRouting, ConvergecastMinFindsComponentMinimum) {
  const Graph g = make_grid(8, 8);
  Sim setup(g);
  const auto p = make_grid_rows_partition(8, 8, 2);
  Scenario sc(g, p, setup.tree, 4);
  const ShortcutState state =
      compute_shortcut_state(setup.net, setup.tree, p, sc.s);

  std::map<std::pair<NodeId, PartId>, std::uint64_t> results;
  run_component_convergecast(
      setup.net, setup.tree, state.shortcut, state.root_depth_on_edge,
      [](NodeId v, PartId) { return static_cast<std::uint64_t>(v); },
      [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); },
      [&](NodeId root, PartId j, std::uint64_t agg) {
        results[{root, j}] = agg;
      });

  for (PartId j = 0; j < p.num_parts; ++j) {
    for (const auto& comp :
         central_components(g, setup.tree, p, state.shortcut, j)) {
      if (comp.edges.empty()) continue;
      EXPECT_EQ(results.at({comp.root, j}),
                static_cast<std::uint64_t>(comp.nodes.front()));
    }
  }
}

TEST(TreeRouting, FifoDispatchesSimultaneouslyReadyComponentsInPartOrder) {
  // Regression test: ConvergecastProcess assigns the kFifo scheduling key
  // (seq_) by walking its per-component state map when several components
  // become ready in the same round, so that walk is part of the observable
  // schedule. It used to be an unordered_map, whose iteration order is a
  // standard-library artifact — reproducible on one platform, different on
  // another. Pin the contract: simultaneously-ready components dispatch in
  // ascending PartId order.
  const Graph g = make_path(3);  // 0 - 1 - 2, rooted at 0
  Sim setup(g);
  constexpr PartId kParts = 10;

  // Hand-built shortcut: every part rides every tree edge, so the leaf
  // (node 2) participates in all ten components and — having no children —
  // finds all ten ready at once in on_start.
  Shortcut s;
  s.parts_on_edge.assign(static_cast<std::size_t>(g.num_edges()), {});
  std::vector<std::vector<std::int32_t>> root_depth(
      static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (PartId j = 0; j < kParts; ++j) {
      s.parts_on_edge[static_cast<std::size_t>(e)].push_back(j);
      root_depth[static_cast<std::size_t>(e)].push_back(0);  // root: node 0
    }
  }

  std::vector<PartId> order;
  run_component_convergecast(
      setup.net, setup.tree, s, root_depth,
      [](NodeId v, PartId) { return static_cast<std::uint64_t>(v); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      [&](NodeId root, PartId j, std::uint64_t agg) {
        EXPECT_EQ(root, 0);
        EXPECT_EQ(agg, 3u);  // contributions 0 + 1 + 2
        order.push_back(j);
      },
      RoutingPriority::kFifo);

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kParts));
  for (PartId j = 0; j < kParts; ++j)
    EXPECT_EQ(order[static_cast<std::size_t>(j)], j) << "dispatch position " << j;
}

TEST(TreeRouting, Lemma2RoundBound) {
  // Rounds of a parallel broadcast/convergecast stay O(D + c): test with
  // slack factor 2 across families and congestion levels.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const std::int32_t threshold : {1, 4, 16}) {
      const Graph g = make_erdos_renyi(150, 0.03, seed);
      Sim setup(g);
      const auto p = make_random_bfs_partition(g, 25, seed + 9);
      Scenario sc(g, p, setup.tree, threshold);

      const std::int64_t before = setup.net.total_rounds();
      run_component_broadcast(
          setup.net, setup.tree, sc.s,
          [](NodeId, PartId) -> std::uint64_t { return 7; },
          [](NodeId, PartId, std::uint64_t, std::int32_t) {});
      const std::int64_t rounds = setup.net.total_rounds() - before;
      EXPECT_LE(rounds,
                2 * (setup.tree.height + sc.max_ids_per_edge) + 8)
          << "seed " << seed << " threshold " << threshold;
    }
  }
}

TEST(TreeRouting, FullAncestorBroadcastCongestionStress) {
  // Full-ancestor shortcuts put every part on the root edges — the worst
  // case for pipelining. The bound must still hold.
  const Graph g = make_grid(12, 12);
  Sim setup(g);
  const auto p = make_random_bfs_partition(g, 30, 11);
  const Shortcut s = full_ancestor_shortcut(g, setup.tree, p);
  std::int32_t c = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    c = std::max(c, util::checked_cast<std::int32_t>(
                        s.parts_on_edge[static_cast<std::size_t>(e)].size()));

  const std::int64_t before = setup.net.total_rounds();
  run_component_broadcast(
      setup.net, setup.tree, s,
      [](NodeId, PartId) -> std::uint64_t { return 1; },
      [](NodeId, PartId, std::uint64_t, std::int32_t) {});
  EXPECT_LE(setup.net.total_rounds() - before, 2 * (setup.tree.height + c) + 8);
}

}  // namespace
}  // namespace lcs
