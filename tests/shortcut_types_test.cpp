#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"
#include "test_util.h"
#include "tree/spanning_tree.h"
#include "util/check.h"

namespace lcs {
namespace {

using testutil::Sim;

/// Path 0-1-2-3-4 rooted at 0; parts {0,1} and {3,4}; node 2 unassigned.
struct PathFixture {
  Graph g = make_path(5);
  SpanningTree tree = reference_bfs_tree(g, 0);
  Partition p;

  PathFixture() {
    p.num_parts = 2;
    p.part_of = {0, 0, kNoPart, 1, 1};
  }
};

TEST(ShortcutTypes, EmptyShortcutQuality) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  validate_shortcut(f.g, f.tree, f.p, s);
  // Congestion 1: the parts own their internal edges.
  EXPECT_EQ(congestion(f.g, f.p, s), 1);
  // Blocks are components of (V, Hi) — G[Pi] edges do NOT join them, so an
  // empty shortcut leaves every part node a singleton block.
  EXPECT_EQ(block_component_count(f.g, f.p, s, 0), 2);
  EXPECT_EQ(block_component_count(f.g, f.p, s, 1), 2);
  EXPECT_EQ(block_parameter(f.g, f.p, s), 2);
  // Dilation: G[Pi] + Hi is still the 2-path, diameter 1.
  EXPECT_EQ(dilation(f.g, f.p, s), 1);
}

TEST(ShortcutTypes, AssignmentCountsTowardCongestion) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  // Give part 1 the two edges bridging it to part 0's territory: edge 1
  // (nodes 1-2) and edge 2 (nodes 2-3).
  s.parts_on_edge[1] = {1};
  s.parts_on_edge[2] = {1};
  validate_shortcut(f.g, f.tree, f.p, s);
  EXPECT_EQ(congestion(f.g, f.p, s), 1);
  // Components of (V, H1): {1,2,3} (touches node 3) and the singleton {4}.
  EXPECT_EQ(block_component_count(f.g, f.p, s, 1), 2);
  // Part 1's subgraph now spans nodes 1..4 -> diameter 3.
  EXPECT_EQ(dilation(f.g, f.p, s), 3);
}

TEST(ShortcutTypes, SharedEdgeRaisesCongestion) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  s.parts_on_edge[1] = {0, 1};  // both parts claim edge 1-2
  EXPECT_EQ(congestion(f.g, f.p, s), 2);
}

TEST(ShortcutTypes, OwnedEdgeNotDoubleCounted) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  s.parts_on_edge[0] = {0};  // edge 0-1 lies inside part 0 AND in H_0
  EXPECT_EQ(congestion(f.g, f.p, s), 1);
}

TEST(ShortcutTypes, DisconnectedSubgraphHasInfiniteDilation) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  // Hand part 0 a far-away edge (3-4) with no connection to it.
  s.parts_on_edge[3] = {0};
  EXPECT_EQ(dilation(f.g, f.p, s), std::numeric_limits<std::int32_t>::max());
  // The far-away component does NOT count toward the block parameter (it
  // does not intersect P0); the two P0 singletons do.
  EXPECT_EQ(block_component_count(f.g, f.p, s, 0), 2);
}

TEST(ShortcutTypes, SplitPartCountsSingletons) {
  // Three-node path, all in one part. Blocks are components of (V, H0):
  // with no shortcut edges each node is its own block.
  Graph g = make_path(3);
  SpanningTree tree = reference_bfs_tree(g, 0);
  Partition p;
  p.num_parts = 1;
  p.part_of = {0, 0, 0};
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  EXPECT_EQ(block_component_count(g, p, s, 0), 3);
  // Edge 0 joins nodes {0,1} into one block; node 2 stays a singleton.
  s.parts_on_edge[0] = {0};
  EXPECT_EQ(block_component_count(g, p, s, 0), 2);
}

TEST(ShortcutTypes, ValidateRejectsNonTreeEdges) {
  const Graph g = make_cycle(4);
  const SpanningTree tree = reference_bfs_tree(g, 0);
  Partition p;
  p.num_parts = 1;
  p.part_of = {0, 0, 0, 0};
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));
  // Find the one non-tree edge of the cycle and assign it.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!tree.is_tree_edge(e)) {
      s.parts_on_edge[static_cast<std::size_t>(e)] = {0};
      break;
    }
  }
  EXPECT_THROW(validate_shortcut(g, tree, p, s), CheckFailure);
}

TEST(ShortcutTypes, ValidateRejectsUnsortedLists) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  s.parts_on_edge[1] = {1, 0};
  EXPECT_THROW(validate_shortcut(f.g, f.tree, f.p, s), CheckFailure);
}

TEST(ShortcutTypes, Lemma1BoundHoldsOnRandomInstances) {
  // dilation <= b(2D+1) for greedy shortcuts over random graphs/partitions.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(70, 0.06, seed);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 8, seed + 100);
    for (const std::int32_t threshold : {1, 3, 8}) {
      const Shortcut s = greedy_blocked_shortcut(g, tree, p, threshold);
      validate_shortcut(g, tree, p, s);
      const std::int32_t b = block_parameter(g, p, s);
      const std::int32_t d = dilation(g, p, s);
      ASSERT_NE(d, std::numeric_limits<std::int32_t>::max());
      EXPECT_LE(d, lemma1_dilation_bound(tree, b))
          << "seed " << seed << " threshold " << threshold;
    }
  }
}

TEST(ShortcutTypes, DilationEstimateNeverExceedsExact) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_grid(8, 8);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 6, seed);
    const Shortcut s = greedy_blocked_shortcut(g, tree, p, 4);
    EXPECT_LE(dilation_estimate(g, p, s), dilation(g, p, s));
  }
}

TEST(ShortcutTypes, BlockCountMatchesCentralHelper) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_grid(7, 7);
    const SpanningTree tree = reference_bfs_tree(g, 0);
    const auto p = make_random_bfs_partition(g, 6, seed);
    const Shortcut s = greedy_blocked_shortcut(g, tree, p, 2);
    for (PartId i = 0; i < p.num_parts; ++i) {
      EXPECT_EQ(block_component_count(g, p, s, i),
                testutil::central_block_count(g, tree, p, s, i));
    }
  }
}

TEST(ShortcutTypes, EdgesOfPartsRoundTrips) {
  PathFixture f;
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(f.g.num_edges()));
  s.parts_on_edge[0] = {0, 1};
  s.parts_on_edge[2] = {1};
  const auto per_part = s.edges_of_parts(f.p.num_parts);
  EXPECT_EQ(per_part[0], (std::vector<EdgeId>{0}));
  EXPECT_EQ(per_part[1], (std::vector<EdgeId>{0, 2}));
  EXPECT_TRUE(s.edge_used_by(0, 0));
  EXPECT_TRUE(s.edge_used_by(0, 1));
  EXPECT_FALSE(s.edge_used_by(1, 0));
}

}  // namespace
}  // namespace lcs
