/// Tests for the churn spec grammar, the deterministic churn runner, and the
/// forest-quality metrics that back its checkpoint reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dynamic/churn.h"
#include "dynamic/verified.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/quality.h"
#include "util/check.h"

namespace lcs::dynamic {
namespace {

TEST(ChurnSpec, ParsesWrapperAndDefaults) {
  const ChurnSpec s = parse_churn_spec(
      "churn:base=er:n=50,deg=4,seed=5;steps=20,rate=0.1,seed=3");
  EXPECT_EQ(s.base, "er:n=50,deg=4,seed=5");
  EXPECT_EQ(s.params.steps, 20);
  EXPECT_DOUBLE_EQ(s.params.rate, 0.1);
  EXPECT_EQ(s.params.seed, 3u);
  // Untouched parameters keep their documented defaults.
  EXPECT_DOUBLE_EQ(s.params.delete_frac, 0.5);
  EXPECT_EQ(s.params.checkpoints, 10);
  EXPECT_EQ(s.params.weight_lo, 1u);
  EXPECT_EQ(s.params.weight_hi, 1u);
  EXPECT_EQ(s.params.verify, VerifyMode::kEveryStep);

  // A wrapper without parameters is all defaults; the base may itself
  // contain commas and colons.
  const ChurnSpec bare = parse_churn_spec("churn:base=grid:w=4,h=4");
  EXPECT_EQ(bare.base, "grid:w=4,h=4");
  EXPECT_EQ(bare.params.steps, 1000);
}

TEST(ChurnSpec, ParsesWeightsVerifyAndVperiod) {
  const ChurnParams p =
      parse_churn_params("weights=2-17,verify=sample,vperiod=9,dfrac=0.25");
  EXPECT_EQ(p.weight_lo, 2u);
  EXPECT_EQ(p.weight_hi, 17u);
  EXPECT_EQ(p.verify, VerifyMode::kSampled);
  EXPECT_EQ(p.verify_period, 9);
  EXPECT_DOUBLE_EQ(p.delete_frac, 0.25);
  EXPECT_EQ(parse_churn_params("verify=off").verify, VerifyMode::kOff);
  EXPECT_EQ(parse_churn_params("").steps, 1000);  // empty list = defaults
}

TEST(ChurnSpec, DiagnosesMalformedInput) {
  // Wrapper grammar.
  EXPECT_THROW(parse_churn_spec("churn:steps=10"), CheckFailure);
  EXPECT_THROW(parse_churn_spec("churn:base="), CheckFailure);
  EXPECT_THROW(parse_churn_spec("er:n=10"), CheckFailure);
  // Parameter vocabulary and values.
  EXPECT_THROW(parse_churn_params("frobnicate=1"), CheckFailure);
  EXPECT_THROW(parse_churn_params("steps"), CheckFailure);
  EXPECT_THROW(parse_churn_params("steps=0"), CheckFailure);
  EXPECT_THROW(parse_churn_params("rate=0"), CheckFailure);
  EXPECT_THROW(parse_churn_params("dfrac=1.5"), CheckFailure);
  EXPECT_THROW(parse_churn_params("checkpoints=0"), CheckFailure);
  EXPECT_THROW(parse_churn_params("steps=5,checkpoints=6"), CheckFailure);
  EXPECT_THROW(parse_churn_params("weights=5"), CheckFailure);
  EXPECT_THROW(parse_churn_params("weights=9-3"), CheckFailure);
  EXPECT_THROW(parse_churn_params("weights=0-3"), CheckFailure);
  EXPECT_THROW(parse_churn_params("verify=bogus"), CheckFailure);
  EXPECT_THROW(parse_churn_params("vperiod=0"), CheckFailure);
}

TEST(ChurnSpec, RecognizesWrapperSpecs) {
  EXPECT_TRUE(is_churn_spec("churn:base=er:n=10;steps=5"));
  EXPECT_TRUE(is_churn_spec("churn"));
  EXPECT_FALSE(is_churn_spec("er:n=10"));
  EXPECT_FALSE(is_churn_spec("churner:n=10"));
}

ChurnParams quick_params() {
  ChurnParams p;
  p.steps = 40;
  p.rate = 0.05;
  p.delete_frac = 0.5;
  p.seed = 7;
  p.checkpoints = 4;
  p.weight_lo = 1;
  p.weight_hi = 8;
  return p;
}

TEST(RunChurn, IsDeterministic) {
  const auto sc = scenario::make_scenario("er:n=80,deg=5,seed=3");
  const ChurnResult a = run_churn(sc.graph, sc.partition.part_of,
                                  quick_params());
  const ChurnResult b = run_churn(sc.graph, sc.partition.part_of,
                                  quick_params());
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i)
    EXPECT_EQ(a.checkpoints[i], b.checkpoints[i]) << "checkpoint " << i;
  EXPECT_EQ(a.ops_per_step, b.ops_per_step);
  EXPECT_EQ(a.skipped_inserts, b.skipped_inserts);
  EXPECT_EQ(a.skipped_deletes, b.skipped_deletes);
}

TEST(RunChurn, ChecksOutAcrossFamilies) {
  // The acceptance loop in miniature: three families through the verified
  // stream with full per-mutation oracle checks — any incremental bug
  // throws. (The 1000-step versions are the golden_smoke churn cells.)
  for (const char* spec : {"er:n=60,deg=5,seed=3", "ktree:n=60,k=3,seed=3",
                           "ba:n=60,m=3,seed=3"}) {
    SCOPED_TRACE(spec);
    const auto sc = scenario::make_scenario(spec);
    const ChurnResult res =
        run_churn(sc.graph, sc.partition.part_of, quick_params());
    ASSERT_EQ(res.checkpoints.size(), 5u);  // step 0 + 4 scheduled
    EXPECT_EQ(res.checkpoints.front().step, 0);
    EXPECT_EQ(res.checkpoints.back().step, 40);
    const ChurnCheckpoint& last = res.checkpoints.back();
    EXPECT_EQ(last.counters.inserts + last.counters.deletes,
              40 * res.ops_per_step - res.skipped_inserts -
                  res.skipped_deletes);
    // The maintained forest at every checkpoint is consistent with the
    // component count (n - |MSF| == components, cross-checked internally).
    for (const ChurnCheckpoint& cp : res.checkpoints)
      EXPECT_EQ(cp.components, sc.graph.num_nodes() - cp.msf_edges);
  }
}

TEST(RunChurn, CheckpointScheduleCoversEndpoints) {
  const auto sc = scenario::make_scenario("grid:w=6,h=6");
  ChurnParams p = quick_params();
  p.steps = 7;
  p.checkpoints = 3;
  const ChurnResult res = run_churn(sc.graph, sc.partition.part_of, p);
  ASSERT_EQ(res.checkpoints.size(), 4u);
  EXPECT_EQ(res.checkpoints.front().step, 0);
  EXPECT_EQ(res.checkpoints.back().step, 7);
  for (std::size_t i = 1; i < res.checkpoints.size(); ++i)
    EXPECT_LT(res.checkpoints[i - 1].step, res.checkpoints[i].step);
}

TEST(RunChurn, CountsSkippedMutations) {
  // All-delete stream on a single-edge graph: one real deletion, the rest
  // hit an empty graph and are skipped (deterministically counted).
  Graph tiny(2, {{0, 1, 1}});
  std::vector<PartId> part_of = {0, 0};
  ChurnParams p;
  p.steps = 5;
  p.rate = 1.0;  // 1 op/step on a 1-edge graph
  p.delete_frac = 1.0;
  p.checkpoints = 1;
  const ChurnResult res = run_churn(tiny, part_of, p);
  EXPECT_EQ(res.skipped_deletes, 4);
  EXPECT_EQ(res.checkpoints.back().counters.deletes, 1);

  // All-insert stream on a complete graph: every attempt rejects.
  Graph triangle(3, {{0, 1, 1}, {0, 2, 1}, {1, 2, 1}});
  std::vector<PartId> tri_part = {0, 0, 0};
  p.delete_frac = 0.0;
  p.rate = 0.4;  // 1 op/step
  const ChurnResult full = run_churn(triangle, tri_part, p);
  EXPECT_EQ(full.skipped_inserts, 5);
}

// ------------------------------------------------------- forest quality --

TEST(ForestQuality, SteinerSubtreesOnAPath) {
  // Path 0-1-2-3-4, all edges in the forest. Part 0 = {0,4} spans the whole
  // path (diameter 4); part 1 = {1,3} spans the middle (diameter 2); node 2
  // is unassigned. The two middle edges carry both subtrees.
  Graph g(5, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  const std::vector<PartId> part_of = {0, 1, kNoPart, 1, 0};
  const std::vector<bool> forest(4, true);
  const ForestQuality q = forest_part_quality(g, part_of, forest);
  EXPECT_EQ(q.congestion, 2);
  EXPECT_EQ(q.dilation, 4);
  EXPECT_EQ(q.product(), 8);
}

TEST(ForestQuality, PartStraddlingComponentsSplitsIntoFragments) {
  // Two components: 0-1 and 2-3-4. Part 0 has members in both; each
  // fragment spans its own subtree (diameters 1 and 2).
  Graph g(5, {{0, 1, 1}, {2, 3, 1}, {3, 4, 1}});
  const std::vector<PartId> part_of = {0, 0, 0, kNoPart, 0};
  const std::vector<bool> forest(3, true);
  const ForestQuality q = forest_part_quality(g, part_of, forest);
  EXPECT_EQ(q.congestion, 1);
  EXPECT_EQ(q.dilation, 2);
}

TEST(ForestQuality, SingletonGroupsContributeNothing) {
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  // Every node its own part: no part has two members anywhere.
  const std::vector<PartId> part_of = {0, 1, 2, 3};
  const std::vector<bool> forest(3, true);
  const ForestQuality q = forest_part_quality(g, part_of, forest);
  EXPECT_EQ(q.congestion, 0);
  EXPECT_EQ(q.dilation, 0);
}

TEST(ForestQuality, DiagnosesCyclicFlags) {
  Graph g(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  const std::vector<PartId> part_of = {0, 0, 0};
  const std::vector<bool> not_a_forest(3, true);
  EXPECT_THROW(forest_part_quality(g, part_of, not_a_forest), CheckFailure);
}

TEST(ForestQuality, BfsForestSpansEveryComponent) {
  // Disconnected: a 4-cycle plus an isolated edge. The BFS forest has
  // n - components edges and reproduces the components' connectivity.
  Graph g(6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}, {4, 5, 1}});
  const std::vector<bool> forest = bfs_forest_edges(g);
  std::int64_t flagged = 0;
  for (const bool f : forest) flagged += f ? 1 : 0;
  EXPECT_EQ(flagged, 4);  // 6 nodes - 2 components
  // Feeding the flags back through the quality metric accepts them as a
  // forest and sees each component's span.
  const std::vector<PartId> part_of = {0, 0, 0, 0, 1, 1};
  const ForestQuality q = forest_part_quality(g, part_of, forest);
  EXPECT_EQ(q.congestion, 1);
  EXPECT_EQ(q.dilation, 3);  // the cycle's BFS tree is the path 2-1-0-3
}

}  // namespace
}  // namespace lcs::dynamic
