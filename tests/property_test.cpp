/// \file property_test.cpp
/// Parameterized end-to-end property sweeps: for every (family, partition,
/// seed) combination, the full FindShortcut pipeline must satisfy Theorem
/// 3's guarantees, the routing primitives must agree with centralized
/// oracles, and the accounting must be consistent. These are the
/// "invariant" tests — they assert *properties*, not specific values.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/part_routing.h"
#include "shortcut/shortcut.h"
#include "shortcut/superstep.h"
#include "test_util.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"

namespace lcs {
namespace {

using testutil::Sim;

struct Scenario {
  std::string name;
  Graph graph;
  Partition partition;
  NodeId root;
};

Scenario make_scenario(const std::string& family, std::uint64_t seed) {
  if (family == "grid-blobs") {
    Graph g = make_grid(14, 14);
    auto p = make_random_bfs_partition(g, 12, seed);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "grid-rows") {
    Graph g = make_grid(16, 12);
    auto p = make_grid_rows_partition(16, 12, 2);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "grid-snake") {
    Graph g = make_grid(12, 12);
    auto p = make_snake_partition(12, 12, 6);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "torus") {
    Graph g = make_torus(12, 12);
    auto p = make_random_bfs_partition(g, 10, seed);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "genus4") {
    Graph g = make_genus_grid(12, 12, 4, seed);
    auto p = make_forest_split_partition(g, 9, seed + 1);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "erdos-renyi") {
    Graph g = make_erdos_renyi(150, 0.03, seed);
    auto p = make_random_bfs_partition(g, 12, seed + 2);
    return {family, std::move(g), std::move(p), 0};
  }
  if (family == "wheel-arcs") {
    Graph g = make_wheel(161);
    auto p = make_cycle_arcs_partition(161, 8);
    return {family, std::move(g), std::move(p), 160};
  }
  if (family == "lower-bound") {
    Graph g = make_lower_bound_graph(8, 8);
    auto p = make_lower_bound_partition(8, 8, g.num_nodes());
    return {family, std::move(g), std::move(p), g.num_nodes() - 1};
  }
  if (family == "maze") {
    Graph g = make_random_maze(14, 14, 0.3, seed);
    auto p = make_random_bfs_partition(g, 10, seed + 3);
    return {family, std::move(g), std::move(p), 0};
  }
  ADD_FAILURE() << "unknown family " << family;
  return {family, make_path(2), make_whole_graph_partition(2), 0};
}

/// (family, seed, engine thread count): every suite below runs once on the
/// sequential engine and once on a multi-threaded Network, proving the
/// full pipelines are thread-count-invariant end to end (the engine's
/// determinism contract, network.h "Parallel mode").
class PipelineProperty : public ::testing::TestWithParam<
                             std::tuple<std::string, std::uint64_t, int>> {};

TEST_P(PipelineProperty, Theorem3EndToEnd) {
  const auto& [family, seed, threads] = GetParam();
  Scenario sc = make_scenario(family, seed);
  validate_partition(sc.graph, sc.partition);

  Sim sim(sc.graph, sc.root, threads);
  FindShortcutParams params;
  params.seed = seed + 1000;
  const FindShortcutResult found =
      find_shortcut_doubling(sim.net, sim.tree, sc.partition, params);

  if (threads > 1) {
    // Thread-count invariance: the multi-threaded run must reproduce the
    // sequential run bit for bit — same BFS tree, same shortcut, same
    // trial/iteration path, same accounting.
    Sim ref(sc.graph, sc.root, /*threads=*/1);
    const FindShortcutResult want =
        find_shortcut_doubling(ref.net, ref.tree, sc.partition, params);
    EXPECT_EQ(sim.tree.parent, ref.tree.parent);
    EXPECT_EQ(sim.tree.depth, ref.tree.depth);
    EXPECT_EQ(found.state.shortcut.parts_on_edge,
              want.state.shortcut.parts_on_edge);
    EXPECT_EQ(found.stats.iterations, want.stats.iterations);
    EXPECT_EQ(found.stats.trials, want.stats.trials);
    EXPECT_EQ(found.stats.used_c, want.stats.used_c);
    EXPECT_EQ(found.stats.used_b, want.stats.used_b);
    EXPECT_EQ(found.stats.rounds, want.stats.rounds);
    EXPECT_EQ(sim.net.total_rounds(), ref.net.total_rounds());
    EXPECT_EQ(sim.net.total_messages(), ref.net.total_messages());
  }

  // Structure.
  validate_shortcut(sc.graph, sim.tree, sc.partition, found.state.shortcut);

  // Block budget (Theorem 3).
  const std::int32_t b =
      block_parameter(sc.graph, sc.partition, found.state.shortcut);
  EXPECT_LE(b, 3 * found.stats.used_b);

  // Congestion within O(log N) of the used budget.
  const std::int32_t c =
      congestion(sc.graph, sc.partition, found.state.shortcut);
  const double log_n =
      std::log2(std::max<double>(2.0, sc.partition.num_parts));
  EXPECT_LE(c, (8 * found.stats.used_c + 1) *
                   (util::checked_trunc<std::int32_t>(2 * log_n) + 8));

  // Lemma 1: dilation bounded (and finite — every subgraph connected).
  const std::int32_t d =
      dilation_estimate(sc.graph, sc.partition, found.state.shortcut);
  ASSERT_NE(d, std::numeric_limits<std::int32_t>::max());
  EXPECT_LE(d, lemma1_dilation_bound(sim.tree, b));

  // Theorem 2 on the result: leaders are part minima.
  const NeighborParts nb = exchange_neighbor_parts(sim.net, sc.partition);
  const auto leaders =
      elect_part_leaders(sim.net, sim.tree, sc.partition, found.state, nb,
                         3 * found.stats.used_b);
  const auto groups = sc.partition.members();
  for (NodeId v = 0; v < sc.graph.num_nodes(); ++v) {
    const PartId j = sc.partition.part(v);
    if (j == kNoPart) continue;
    EXPECT_EQ(leaders[static_cast<std::size_t>(v)],
              groups[static_cast<std::size_t>(j)].front());
  }

  // Accounting sanity: rounds and messages were actually consumed and the
  // charged labels are a subset of the totals.
  EXPECT_GT(sim.net.total_rounds(), 0);
  EXPECT_GT(sim.net.total_messages(), 0);
  std::int64_t charged = 0;
  for (const auto& [label, rounds] : sim.net.charged_rounds())
    charged += rounds;
  EXPECT_LE(charged, sim.net.total_rounds());
}

INSTANTIATE_TEST_SUITE_P(
    Families, PipelineProperty,
    ::testing::Combine(
        ::testing::Values("grid-blobs", "grid-rows", "grid-snake", "torus",
                          "genus4", "erdos-renyi", "wheel-arcs",
                          "lower-bound", "maze"),
        ::testing::Values(1ULL, 2ULL, 3ULL), ::testing::Values(1, 3)),
    [](const ::testing::TestParamInfo<PipelineProperty::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_seed" + std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

class ExistentialProperty : public ::testing::TestWithParam<
                                std::tuple<std::string, std::uint64_t, int>> {
};

TEST_P(ExistentialProperty, GreedyGeometryInvariants) {
  const auto& [family, seed, threads] = GetParam();
  Scenario sc = make_scenario(family, seed);
  // Build the tree distributedly on the requested thread count; the
  // engine's determinism contract makes it identical to the sequential
  // build, which pins the greedy sweep below to the same tree at every
  // thread count.
  Sim sim(sc.graph, sc.root, threads);
  const SpanningTree& tree = sim.tree;
  if (threads > 1) {
    Sim ref(sc.graph, sc.root, /*threads=*/1);
    ASSERT_EQ(tree.parent, ref.tree.parent);
    ASSERT_EQ(tree.depth, ref.tree.depth);
    ASSERT_EQ(sim.net.total_rounds(), ref.net.total_rounds());
    ASSERT_EQ(sim.net.total_messages(), ref.net.total_messages());
  }

  const auto points = pareto_sweep(sc.graph, tree, sc.partition);
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.back().block, 1);
  for (const auto& point : points) {
    // The greedy result is a valid shortcut with threshold-bounded lists.
    const Shortcut s =
        greedy_blocked_shortcut(sc.graph, tree, sc.partition, point.threshold);
    validate_shortcut(sc.graph, tree, sc.partition, s);
    EXPECT_LE(point.congestion, point.threshold + 1);
    // Lemma 1 holds for every sweep point too.
    const std::int32_t d = dilation_estimate(sc.graph, sc.partition, s);
    if (d != std::numeric_limits<std::int32_t>::max()) {
      EXPECT_LE(d, lemma1_dilation_bound(tree, point.block));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ExistentialProperty,
    ::testing::Combine(::testing::Values("grid-blobs", "torus", "genus4",
                                         "erdos-renyi", "lower-bound"),
                       ::testing::Values(5ULL, 6ULL), ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<ExistentialProperty::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_seed" + std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace lcs
