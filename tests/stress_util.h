/// \file stress_util.h
/// The randomized engine stress harness (PR 1), shared by the engine
/// semantics tests (`congest_test.cpp`) and the parallel determinism suite
/// (`parallel_determinism_test.cpp`): a hash-driven multi-round workload
/// whose behavior is a pure function of (seed, node, round, edge), a
/// Process wrapper that logs every delivery in order, and a direct
/// transcription of the historical vector-of-vectors engine as the ground
/// truth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "util/cast.h"

namespace lcs::testutil {

inline std::uint64_t stress_mix(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c, std::uint64_t d) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x += c * 0x94d049bb133111ebULL + d;
  x ^= x >> 27;
  x *= 0x2545f4914f6cdd1dULL;
  return x ^ (x >> 31);
}

/// One delivered message as seen by a node, in delivery order.
struct DeliveryRecord {
  std::int64_t round;
  NodeId from;
  EdgeId edge;
  std::uint32_t tag;
  std::uint64_t word0;
  bool operator==(const DeliveryRecord&) const = default;
};

/// The workload's per-round behavior, shared verbatim by the Process
/// wrapper (real engine) and the reference engine: pseudo-randomly forward
/// over a hash-chosen subset of incident edges (at most once per edge per
/// round, as CONGEST requires) and request hash-chosen wakeups, quiescing
/// by round 25. The moduli are the send/wake dice denominators — the
/// defaults reproduce the PR-1 workload; smaller values give the denser
/// traffic the parallel-promotion tests use to get multi-message inboxes
/// and large per-round volume.
struct StressBehavior {
  std::uint64_t seed;
  std::uint64_t start_send_mod = 4;
  std::uint64_t round_send_mod = 3;
  std::uint64_t wake_mod = 4;

  template <class SendFn, class WakeFn>
  void step(NodeId v, std::int64_t round,
            std::span<const Graph::Neighbor> neighbors, SendFn&& send,
            WakeFn&& wake) const {
    if (round >= 25) return;
    const std::uint64_t modulus = round < 0 ? start_send_mod : round_send_mod;
    for (const auto& nb : neighbors) {
      if (stress_mix(seed, static_cast<std::uint64_t>(v),
                     static_cast<std::uint64_t>(round + 2),
                     static_cast<std::uint64_t>(nb.edge)) %
              modulus ==
          0) {
        send(nb.edge,
             congest::Message(util::checked_cast<std::uint32_t>(v),
                              static_cast<std::uint64_t>(round + 2),
                              static_cast<std::uint64_t>(nb.edge)));
      }
    }
    if (round < 20 && stress_mix(seed, static_cast<std::uint64_t>(v),
                                 static_cast<std::uint64_t>(round + 2),
                                 0xabcdefULL) %
                              wake_mod ==
                          0) {
      wake();
    }
  }
};

class StressProcess final : public congest::Process {
 public:
  StressProcess(NodeId id, StressBehavior behavior,
                std::vector<DeliveryRecord>* log)
      : id_(id), behavior_(behavior), log_(log) {}

  void on_start(congest::Context& ctx) override {
    behavior_.step(
        id_, -1, ctx.neighbors(),
        [&](EdgeId e, const congest::Message& m) { ctx.send(e, m); },
        [&] { ctx.wake_next_round(); });
  }

  void on_round(congest::Context& ctx,
                std::span<const congest::Incoming> inbox) override {
    for (const auto& in : inbox)
      log_->push_back(DeliveryRecord{ctx.round(), in.from, in.edge,
                                     in.msg.tag, in.msg.words[0]});
    behavior_.step(
        id_, ctx.round(), ctx.neighbors(),
        [&](EdgeId e, const congest::Message& m) { ctx.send(e, m); },
        [&] { ctx.wake_next_round(); });
  }

 private:
  NodeId id_;
  StressBehavior behavior_;
  std::vector<DeliveryRecord>* log_;
};

/// Direct transcription of the pre-rewrite engine: per-node inbox vectors,
/// a bool active-flag array and a `std::sort`ed active list per round.
inline congest::PhaseStats reference_run(
    const Graph& g, StressBehavior behavior,
    std::vector<std::vector<DeliveryRecord>>& logs) {
  using congest::Incoming;
  using congest::Message;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<Incoming>> inbox(n), next_inbox(n);
  std::vector<bool> in_next_active(n, false);
  std::vector<NodeId> next_active;
  std::int64_t messages = 0;

  auto deliver = [&](NodeId from, EdgeId e, const Message& m) {
    const NodeId to = g.other_endpoint(e, from);
    next_inbox[static_cast<std::size_t>(to)].push_back(Incoming{from, e, m});
    ++messages;
    if (!in_next_active[static_cast<std::size_t>(to)]) {
      in_next_active[static_cast<std::size_t>(to)] = true;
      next_active.push_back(to);
    }
  };
  auto wake = [&](NodeId v) {
    if (!in_next_active[static_cast<std::size_t>(v)]) {
      in_next_active[static_cast<std::size_t>(v)] = true;
      next_active.push_back(v);
    }
  };

  for (NodeId v = 0; v < g.num_nodes(); ++v)
    behavior.step(
        v, -1, g.neighbors(v),
        [&](EdgeId e, const Message& m) { deliver(v, e, m); },
        [&] { wake(v); });

  std::int64_t round = 0;
  std::vector<NodeId> active;
  while (!next_active.empty()) {
    active.swap(next_active);
    next_active.clear();
    std::sort(active.begin(), active.end());
    for (const NodeId v : active) {
      inbox[static_cast<std::size_t>(v)].swap(
          next_inbox[static_cast<std::size_t>(v)]);
      next_inbox[static_cast<std::size_t>(v)].clear();
      in_next_active[static_cast<std::size_t>(v)] = false;
    }
    for (const NodeId v : active) {
      for (const auto& in : inbox[static_cast<std::size_t>(v)])
        logs[static_cast<std::size_t>(v)].push_back(DeliveryRecord{
            round, in.from, in.edge, in.msg.tag, in.msg.words[0]});
      behavior.step(
          v, round, g.neighbors(v),
          [&](EdgeId e, const Message& m) { deliver(v, e, m); },
          [&] { wake(v); });
      inbox[static_cast<std::size_t>(v)].clear();
    }
    ++round;
  }
  return congest::PhaseStats{round, messages};
}

}  // namespace lcs::testutil
