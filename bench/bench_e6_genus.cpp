/// \file bench_e6_genus.cpp
/// E6 — Theorem 1 + Corollary 1: genus-g graphs admit (O(gD log D),
/// O(log D)) tree-restricted shortcuts, and the construction finds one in
/// O(gD log²D log N) rounds. Sweeps g at fixed n: existential congestion,
/// constructed congestion, and construction rounds should grow gently
/// (at most ~linearly) with g while the block parameter stays small.
#include "bench_util.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run(benchmark::State& state, int genus) {
  for (auto _ : state) {
    const NodeId side = 40;
    const auto instance = lcs::bench::genus_instance(side, genus, 13);
    Rig rig(instance.graph);
    const auto exist = best_existential_for_block(
        instance.graph, rig.tree, instance.partition, 4);
    const FindShortcutResult found =
        find_shortcut_doubling(rig.net, rig.tree, instance.partition, {});

    state.counters["n"] = instance.graph.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["genus"] = genus;
    state.counters["exist_c(b<=4)"] = exist.congestion;
    state.counters["congestion"] =
        congestion(instance.graph, instance.partition, found.state.shortcut);
    state.counters["block"] = block_parameter(
        instance.graph, instance.partition, found.state.shortcut);
    state.counters["rounds"] = static_cast<double>(found.stats.rounds);
  }
}

}  // namespace

int register_all = [] {
  for (const int genus : {0, 1, 2, 4, 8, 16, 32}) {
    benchmark::RegisterBenchmark(
        ("E6/genus-" + std::to_string(genus)).c_str(),
        [genus](benchmark::State& s) { run(s, genus); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
