/// \file bench_e5_core.cpp
/// E5 — Lemmas 5 and 7: the two core subroutines side by side.
///   CoreSlow: congestion <= 2c, rounds O(D·c), deterministic.
///   CoreFast: congestion <= 8c w.h.p., rounds O(D log n + c).
/// Both must leave at least half the parts with <= 3b blocks at the
/// existential (c, b). The crossover in rounds as c grows is the point of
/// CoreFast.
#include "bench_util.h"
#include "shortcut/core_fast.h"
#include "shortcut/core_slow.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

std::int32_t good_fraction_pct(const Graph& g, const SpanningTree& tree,
                               const Partition& p, const Shortcut& s,
                               std::int32_t b) {
  std::int32_t good = 0;
  for (PartId j = 0; j < p.num_parts; ++j)
    if (block_component_count(g, p, s, j) <= 3 * b) ++good;
  (void)tree;
  return 100 * good / std::max<PartId>(1, p.num_parts);
}

void run(benchmark::State& state, NodeId side, std::int32_t c, bool fast) {
  for (auto _ : state) {
    const Graph g = make_grid(side, side);
    const auto p = make_random_bfs_partition(g, 2 * side, 11);
    Rig rig(g);
    const auto exist = best_existential_for_block(g, rig.tree, p, 4);

    const std::int64_t before = rig.net.total_rounds();
    const CoreResult result =
        fast ? core_fast(rig.net, rig.tree, p.part_of,
                         CoreFastParams{c, 4.0, 21})
             : core_slow(rig.net, rig.tree, p.part_of, c);
    const std::int64_t rounds = rig.net.total_rounds() - before;

    state.counters["n"] = g.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["c"] = c;
    state.counters["exist_c(b<=4)"] = exist.congestion;
    state.counters["rounds"] = static_cast<double>(rounds);
    state.counters["congestion"] = congestion(g, p, result.shortcut);
    state.counters["good_pct"] =
        good_fraction_pct(g, rig.tree, p, result.shortcut, exist.block);
  }
}

}  // namespace

int register_all = [] {
  for (const std::int32_t c : {1, 4, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("E5/core-slow/c=" + std::to_string(c)).c_str(),
        [c](benchmark::State& s) { run(s, 48, c, false); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E5/core-fast/c=" + std::to_string(c)).c_str(),
        [c](benchmark::State& s) { run(s, 48, c, true); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
