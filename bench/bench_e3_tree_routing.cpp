/// \file bench_e3_tree_routing.cpp
/// E3 — Lemma 2: convergecast/broadcast over a family of subtrees with
/// per-edge congestion c completes in O(D + c) rounds under root-depth
/// priority. Sweeps the congestion level (via the greedy threshold) at
/// fixed n and reports rounds / (D + c).
#include "bench_util.h"
#include "shortcut/existential.h"
#include "shortcut/representation.h"
#include "shortcut/tree_routing.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run(benchmark::State& state, NodeId side, std::int32_t threshold) {
  for (auto _ : state) {
    const Graph g = make_grid(side, side);
    const auto p = make_random_bfs_partition(g, 2 * side, 5);
    Rig rig(g);
    Shortcut s = greedy_blocked_shortcut(g, rig.tree, p, threshold);
    std::int32_t c = 1;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      c = std::max(c, static_cast<std::int32_t>(
                          s.parts_on_edge[static_cast<std::size_t>(e)].size()));
    const ShortcutState st =
        compute_shortcut_state(rig.net, rig.tree, p, std::move(s));

    // Broadcast then convergecast on all block components in parallel.
    const std::int64_t before = rig.net.total_rounds();
    run_component_broadcast(
        rig.net, rig.tree, st.shortcut,
        [](NodeId, PartId) -> std::uint64_t { return 1; },
        [](NodeId, PartId, std::uint64_t, std::int32_t) {});
    const std::int64_t bcast = rig.net.total_rounds() - before;

    run_component_convergecast(
        rig.net, rig.tree, st.shortcut, st.root_depth_on_edge,
        [](NodeId, PartId) -> std::uint64_t { return 1; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        [](NodeId, PartId, std::uint64_t) {});
    const std::int64_t conv = rig.net.total_rounds() - before - bcast;

    state.counters["n"] = g.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["c"] = c;
    state.counters["bcast_rounds"] = static_cast<double>(bcast);
    state.counters["conv_rounds"] = static_cast<double>(conv);
    state.counters["bcast_over_D+c"] =
        static_cast<double>(bcast) / (rig.tree.height + c);
    state.counters["conv_over_D+c"] =
        static_cast<double>(conv) / (rig.tree.height + c);
  }
}

}  // namespace

int register_all = [] {
  for (const std::int32_t threshold : {1, 4, 16, 64, 1024}) {
    benchmark::RegisterBenchmark(
        ("E3/grid48/threshold-" + std::to_string(threshold)).c_str(),
        [threshold](benchmark::State& s) { run(s, 48, threshold); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
