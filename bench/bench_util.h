/// \file bench_util.h
/// Shared scaffolding for the experiment benches (see DESIGN.md §4 and
/// EXPERIMENTS.md): graph/partition families keyed by name, and the
/// standard simulator setup. Every bench runs each configuration once
/// (Iterations(1)) — the measured quantities are *round counts and shortcut
/// quality*, which are deterministic given the seed, not wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "tree/bfs_tree.h"

namespace lcs::bench {

/// A graph family at a target scale, with a natural benign partition.
struct Instance {
  Graph graph;
  Partition partition;
  std::string name;
};

/// side*side nodes; partitions are random connected BFS blobs of ~side
/// nodes each (so #parts ~ side ~ sqrt(n)).
inline Instance grid_instance(NodeId side, std::uint64_t seed) {
  Graph g = make_grid(side, side);
  Partition p = make_random_bfs_partition(g, side, seed);
  return {std::move(g), std::move(p), "grid"};
}

inline Instance torus_instance(NodeId side, std::uint64_t seed) {
  Graph g = make_torus(side, side);
  Partition p = make_random_bfs_partition(g, side, seed);
  return {std::move(g), std::move(p), "torus"};
}

inline Instance genus_instance(NodeId side, int genus, std::uint64_t seed) {
  Graph g = make_genus_grid(side, side, genus, seed);
  Partition p = make_random_bfs_partition(g, side, seed + 1);
  return {std::move(g), std::move(p), "genus" + std::to_string(genus)};
}

inline Instance er_instance(NodeId n, std::uint64_t seed) {
  Graph g = make_erdos_renyi(n, 6.0 / static_cast<double>(n), seed);
  Partition p = make_random_bfs_partition(
      g, std::max<PartId>(2, static_cast<PartId>(std::sqrt(n))), seed + 1);
  return {std::move(g), std::move(p), "erdos-renyi"};
}

inline Instance wheel_instance(NodeId n, PartId arcs) {
  Graph g = make_wheel(n);
  Partition p = make_cycle_arcs_partition(n, arcs);
  return {std::move(g), std::move(p), "wheel-arcs"};
}

inline Instance lower_bound_instance(NodeId k) {
  Graph g = make_lower_bound_graph(k, k);
  Partition p = make_lower_bound_partition(k, k, g.num_nodes());
  return {std::move(g), std::move(p), "lower-bound"};
}

/// Simulator + distributed BFS tree for an instance. Benches measure
/// engine throughput and round counts, not protocol conformance, so the
/// CONGEST validation checks are off (they are on in every test; toggling
/// them does not change behavior or accounting for conforming protocols).
struct Rig {
  congest::Network net;
  SpanningTree tree;
  /// `threads` selects the engine's worker count (Network::set_threads; 1 =
  /// sequential, 0 = hardware concurrency); round counts and shortcut
  /// quality are thread-count-invariant by the engine's determinism
  /// contract, so only wall-time benches need a sweep.
  explicit Rig(const Graph& g, NodeId root = 0, int threads = 1)
      : net(g), tree((net.set_validate(false), net.set_threads(threads),
                      build_bfs_tree(net, root))) {}
};

}  // namespace lcs::bench

/// Standard main for all bench binaries.
#define LCS_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                       \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
