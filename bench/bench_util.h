/// \file bench_util.h
/// Shared scaffolding for the experiment benches (see DESIGN.md §4 and
/// EXPERIMENTS.md): the standard simulator setup plus thin wrappers that
/// resolve the historical bench instances through the scenario registry
/// (src/scenario/) — benches, examples, tests, CI, and `lcs_run` all share
/// one scenario vocabulary. Every bench runs each configuration once
/// (Iterations(1)) — the measured quantities are *round counts and shortcut
/// quality*, which are deterministic given the seed, not wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <utility>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "tree/bfs_tree.h"

namespace lcs::bench {

/// A graph family at a target scale, with a natural benign partition.
struct Instance {
  Graph graph;
  Partition partition;
  std::string name;
};

/// Resolve any scenario spec to a bench instance; `name` overrides the
/// family name in bench labels.
inline Instance instance_from_spec(const std::string& spec,
                                   std::string name = {}) {
  scenario::Scenario sc = scenario::make_scenario(spec);
  return {std::move(sc.graph), std::move(sc.partition),
          name.empty() ? std::move(sc.family) : std::move(name)};
}

/// side*side nodes; partitions are random connected BFS blobs of ~side
/// nodes each (so #parts ~ side ~ sqrt(n)).
inline Instance grid_instance(NodeId side, std::uint64_t seed) {
  return instance_from_spec(
      "grid:w=" + std::to_string(side) + ",parts=" + std::to_string(side) +
          ",pseed=" + std::to_string(seed),
      "grid");
}

inline Instance torus_instance(NodeId side, std::uint64_t seed) {
  return instance_from_spec(
      "torus:w=" + std::to_string(side) + ",parts=" + std::to_string(side) +
          ",pseed=" + std::to_string(seed),
      "torus");
}

inline Instance genus_instance(NodeId side, int genus, std::uint64_t seed) {
  return instance_from_spec(
      "genus:w=" + std::to_string(side) + ",g=" + std::to_string(genus) +
          ",seed=" + std::to_string(seed) + ",parts=" + std::to_string(side) +
          ",pseed=" + std::to_string(seed + 1),
      "genus" + std::to_string(genus));
}

inline Instance er_instance(NodeId n, std::uint64_t seed) {
  const auto parts = std::max<PartId>(
      2, static_cast<PartId>(std::sqrt(static_cast<double>(n))));
  return instance_from_spec(
      "er:n=" + std::to_string(n) + ",deg=6,seed=" + std::to_string(seed) +
          ",parts=" + std::to_string(parts) +
          ",pseed=" + std::to_string(seed + 1),
      "erdos-renyi");
}

inline Instance wheel_instance(NodeId n, PartId arcs) {
  return instance_from_spec(
      "wheel:n=" + std::to_string(n) + ",arcs=" + std::to_string(arcs),
      "wheel-arcs");
}

inline Instance lower_bound_instance(NodeId k) {
  return instance_from_spec("lb:paths=" + std::to_string(k), "lower-bound");
}

/// Simulator + distributed BFS tree for an instance. Benches measure
/// engine throughput and round counts, not protocol conformance, so the
/// CONGEST validation checks are off (they are on in every test; toggling
/// them does not change behavior or accounting for conforming protocols).
struct Rig {
  congest::Network net;
  SpanningTree tree;
  /// `threads` selects the engine's worker count (Network::set_threads; 1 =
  /// sequential, 0 = hardware concurrency); round counts and shortcut
  /// quality are thread-count-invariant by the engine's determinism
  /// contract, so only wall-time benches need a sweep.
  explicit Rig(const Graph& g, NodeId root = 0, int threads = 1)
      : net(g), tree((net.set_validate(false), net.set_threads(threads),
                      build_bfs_tree(net, root))) {}
};

}  // namespace lcs::bench

/// Standard main for all bench binaries.
#define LCS_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                       \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
