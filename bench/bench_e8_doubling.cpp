/// \file bench_e8_doubling.cpp
/// E8 — Appendix A: running FindShortcut *without* knowing (b, c), doubling
/// after failures, costs only a log(bc) factor over an oracle run that
/// knows the existential parameters — and the discovered ĉ can be far
/// below worst-case theory bounds (here: the measured existential value vs
/// the gD·logD-style pessimism). Reported: oracle rounds, doubling rounds,
/// overhead ratio, trials, discovered (ĉ, b̂).
#include "bench_util.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Instance;
using lcs::bench::Rig;

void run(benchmark::State& state, const Instance& instance, NodeId root = 0) {
  for (auto _ : state) {
    // Oracle: hand the construction the centrally measured existential
    // parameters.
    Rig oracle_rig(instance.graph, root);
    const auto exist = best_existential_for_block(
        instance.graph, oracle_rig.tree, instance.partition, 4);
    FindShortcutParams oracle_params;
    oracle_params.c = std::max(1, exist.congestion);
    oracle_params.b = std::max(1, exist.block);
    const FindShortcutResult oracle = find_shortcut(
        oracle_rig.net, oracle_rig.tree, instance.partition, oracle_params);

    // Doubling from (1, 1).
    Rig doubling_rig(instance.graph, root);
    const FindShortcutResult doubled = find_shortcut_doubling(
        doubling_rig.net, doubling_rig.tree, instance.partition, {});

    state.counters["n"] = instance.graph.num_nodes();
    state.counters["exist_c"] = exist.congestion;
    state.counters["exist_b"] = exist.block;
    state.counters["oracle_rounds"] = static_cast<double>(oracle.stats.rounds);
    state.counters["doubling_rounds"] =
        static_cast<double>(doubled.stats.rounds);
    state.counters["overhead"] =
        static_cast<double>(doubled.stats.rounds) /
        static_cast<double>(std::max<std::int64_t>(1, oracle.stats.rounds));
    state.counters["trials"] = doubled.stats.trials;
    state.counters["used_c"] = doubled.stats.used_c;
    state.counters["used_b"] = doubled.stats.used_b;
  }
}

}  // namespace

int register_all = [] {
  benchmark::RegisterBenchmark("E8/grid-blobs/2304",
                               [](benchmark::State& s) {
                                 run(s, lcs::bench::grid_instance(48, 17));
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E8/wheel-arcs/1025",
                               [](benchmark::State& s) {
                                 run(s, lcs::bench::wheel_instance(1025, 16),
                                     1024);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E8/genus8/1600",
                               [](benchmark::State& s) {
                                 run(s, lcs::bench::genus_instance(40, 8, 3));
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E8/lower-bound/16", [](benchmark::State& s) {
        const auto inst = lcs::bench::lower_bound_instance(16);
        run(s, inst, inst.graph.num_nodes() - 1);
      })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  return 0;
}();

LCS_BENCH_MAIN()
