/// \file bench_e7_mst.cpp
/// E7 — Lemma 4: MST on shortcut-friendly topologies. Compares
/// shortcut-Boruvka against the pipelined baseline (O(n + D log n)) and the
/// intra-fragment strawman across (a) grids of growing size and (b) wheels
/// of growing size at constant diameter 2 with arc-forcing weights.
///
/// Shape to read off (see EXPERIMENTS.md): the asymptotic claim is about
/// *growth*, not constants. On the constant-diameter wheel family the
/// shortcut variant's rounds stay nearly flat as n grows while both
/// baselines scale with n — the crossover the paper predicts. On grids at
/// laptop scale the per-phase shortcut *construction* (Θ(polylog) factors
/// of D) dominates and the classical baselines win on absolute rounds;
/// their growth rates, however, are Θ(n)-ish versus the shortcut variant's
/// Θ(D polylog). All results are verified against Kruskal.
#include "bench_util.h"
#include "graph/reference.h"
#include "mst/boruvka_intra.h"
#include "mst/boruvka_shortcut.h"
#include "mst/pipeline.h"
#include "util/check.h"
#include "util/random.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

enum class Algo { kShortcut, kPipeline, kIntra };

Graph arc_forcing_wheel(NodeId n, std::uint64_t seed) {
  const Graph base = make_wheel(n);
  Rng rng(seed);
  std::vector<Graph::Edge> edges;
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    Graph::Edge ed = base.edge(e);
    const bool spoke = ed.u == n - 1 || ed.v == n - 1;
    ed.w = spoke ? 1000000 + rng.next_below(1000) : 1 + rng.next_below(1000);
    edges.push_back(ed);
  }
  return Graph(n, std::move(edges));
}

void run(benchmark::State& state, const Graph& g, Algo algo) {
  for (auto _ : state) {
    Rig rig(g);
    DistributedMst mst;
    switch (algo) {
      case Algo::kShortcut:
        mst = mst_boruvka_shortcut(rig.net, rig.tree);
        break;
      case Algo::kPipeline:
        mst = mst_pipeline(rig.net, rig.tree);
        break;
      case Algo::kIntra:
        mst = mst_boruvka_intra(rig.net, rig.tree);
        break;
    }
    LCS_CHECK(mst.total_weight == kruskal_mst(g).total_weight,
              "distributed MST mismatch");
    state.counters["n"] = g.num_nodes();
    state.counters["D"] = lcs::diameter_double_sweep(g);
    state.counters["rounds"] = static_cast<double>(mst.rounds);
    state.counters["phases"] = mst.phases;
  }
}

void register_algos(const std::string& label, const Graph& g) {
  // The Graph is captured by value in a shared_ptr to outlive registration.
  auto shared = std::make_shared<Graph>(g);
  benchmark::RegisterBenchmark(("E7/" + label + "/shortcut").c_str(),
                               [shared](benchmark::State& s) {
                                 run(s, *shared, Algo::kShortcut);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("E7/" + label + "/pipeline").c_str(),
                               [shared](benchmark::State& s) {
                                 run(s, *shared, Algo::kPipeline);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("E7/" + label + "/intra").c_str(),
                               [shared](benchmark::State& s) {
                                 run(s, *shared, Algo::kIntra);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
}

}  // namespace

int register_all = [] {
  using namespace lcs;
  for (const NodeId side : {16, 24, 32, 48}) {
    register_algos(
        "grid-" + std::to_string(side) + "x" + std::to_string(side),
        with_random_weights(make_grid(side, side), 1, 1000000, 5));
  }
  for (const NodeId n : {257, 513, 1025, 2049}) {
    register_algos("wheelD2-" + std::to_string(n), arc_forcing_wheel(n, 5));
  }
  return 0;
}();

LCS_BENCH_MAIN()
