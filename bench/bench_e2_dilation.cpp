/// \file bench_e2_dilation.cpp
/// E2 — Lemma 1: a block parameter of b implies dilation <= b(2D + 1).
/// Measures the *actual* dilation of constructed shortcuts against that
/// bound across families and partition shapes; `slack` = bound / measured
/// shows how loose the lemma is in practice.
#include "bench_util.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Instance;
using lcs::bench::Rig;

void run(benchmark::State& state, const Instance& instance, NodeId root = 0) {
  for (auto _ : state) {
    Rig rig(instance.graph, root);
    const FindShortcutResult found =
        find_shortcut_doubling(rig.net, rig.tree, instance.partition, {});
    const std::int32_t b = block_parameter(
        instance.graph, instance.partition, found.state.shortcut);
    const std::int32_t d = dilation_estimate(
        instance.graph, instance.partition, found.state.shortcut);
    const std::int64_t bound = lemma1_dilation_bound(rig.tree, b);

    state.counters["n"] = instance.graph.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["block"] = b;
    state.counters["dilation"] = d;
    state.counters["lemma1_bound"] = static_cast<double>(bound);
    state.counters["slack"] = static_cast<double>(bound) / std::max(1, d);
  }
}

}  // namespace

int register_all = [] {
  for (const lcs::NodeId side : {24, 48}) {
    benchmark::RegisterBenchmark(
        ("E2/grid-blobs/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::grid_instance(side, 3));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E2/grid-rows/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          lcs::bench::Instance inst{
              lcs::make_grid(side, side),
              lcs::make_grid_rows_partition(side, side, 2), "grid-rows"};
          run(s, inst);
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E2/wheel-arcs/1025",
                               [](benchmark::State& s) {
                                 run(s, lcs::bench::wheel_instance(1025, 16),
                                     1024);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E2/lower-bound/16",
                               [](benchmark::State& s) {
                                 auto inst = lcs::bench::lower_bound_instance(16);
                                 const lcs::NodeId root =
                                     inst.graph.num_nodes() - 1;
                                 run(s, inst, root);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  return 0;
}();

LCS_BENCH_MAIN()
