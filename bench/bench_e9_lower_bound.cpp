/// \file bench_e9_lower_bound.cpp
/// E9 — the Ω̃(√n + D) story (Section 1.1): on the Peleg–Rubinovich graph,
/// even the *best* shortcut needs congestion ~√n, so shortcut-based MST
/// degrades to ~√n rounds despite D = O(log n); on a grid of the same size
/// the machinery delivers ~D-round behaviour. The telltale counter is
/// rounds/D: exploding on the hard family, stable on the planar one.
#include <cmath>

#include "bench_util.h"
#include "graph/reference.h"
#include "mst/boruvka_shortcut.h"
#include "shortcut/existential.h"
#include "util/check.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run_hard(benchmark::State& state, NodeId k) {
  for (auto _ : state) {
    const Graph g =
        with_random_weights(make_lower_bound_graph(k, k), 1, 1000000, 3);
    const auto p = make_lower_bound_partition(k, k, g.num_nodes());
    Rig rig(g, g.num_nodes() - 1);
    const auto exist = best_existential_for_block(g, rig.tree, p, 4);

    const DistributedMst mst = mst_boruvka_shortcut(rig.net, rig.tree);
    LCS_CHECK(mst.total_weight == kruskal_mst(g).total_weight, "MST bug");

    state.counters["n"] = g.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["sqrt_n"] = std::sqrt(static_cast<double>(g.num_nodes()));
    state.counters["exist_c(paths)"] = exist.congestion;
    state.counters["mst_rounds"] = static_cast<double>(mst.rounds);
    state.counters["rounds_over_D"] =
        static_cast<double>(mst.rounds) / std::max(1, rig.tree.height);
  }
}

void run_grid(benchmark::State& state, NodeId side) {
  for (auto _ : state) {
    const Graph g =
        with_random_weights(make_grid(side, side), 1, 1000000, 3);
    Rig rig(g);
    const DistributedMst mst = mst_boruvka_shortcut(rig.net, rig.tree);
    LCS_CHECK(mst.total_weight == kruskal_mst(g).total_weight, "MST bug");

    state.counters["n"] = g.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["sqrt_n"] = side * 1.0;
    state.counters["mst_rounds"] = static_cast<double>(mst.rounds);
    state.counters["rounds_over_D"] =
        static_cast<double>(mst.rounds) / std::max(1, rig.tree.height);
  }
}

}  // namespace

int register_all = [] {
  for (const lcs::NodeId k : {8, 12, 16, 24}) {
    benchmark::RegisterBenchmark(
        ("E9/lower-bound/k=" + std::to_string(k)).c_str(),
        [k](benchmark::State& s) { run_hard(s, k); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  for (const lcs::NodeId side : {12, 16, 24, 32}) {
    benchmark::RegisterBenchmark(
        ("E9/grid/side=" + std::to_string(side)).c_str(),
        [side](benchmark::State& s) { run_grid(s, side); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
