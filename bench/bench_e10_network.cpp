/// \file bench_e10_network.cpp
/// E10 — raw CONGEST-engine throughput (messages per second).
///
/// Unlike E1–E9, which measure *round counts* (deterministic, one
/// iteration), this bench measures *wall time* of the simulator itself so
/// engine changes are visible in the bench trajectory. Workload: a token
/// flood over a 100k-node graph — every node forwards the token on first
/// receipt, so one phase delivers ~2m - deg(0) messages across
/// eccentricity(0) rounds, exercising the inbox plumbing, the scheduler,
/// and the CONGEST checks end to end.
///
/// Reported counters per run:
///   msgs_per_sec — delivered messages / wall second (the headline number)
///   messages     — messages per phase (deterministic; sanity/determinism)
///   rounds       — rounds per phase (deterministic; sanity/determinism)
#include <algorithm>
#include <vector>

#include "bench_util.h"

namespace {

using namespace lcs;
using congest::Context;
using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::PhaseStats;
using congest::Process;

/// Floods a token from node 0: forward to all neighbors that did not just
/// send to us, once, on first receipt.
class FloodProcess final : public Process {
 public:
  explicit FloodProcess(NodeId id) : id_(id) {}

  void on_start(Context& ctx) override {
    if (id_ != 0) return;
    heard_ = true;
    for (const auto& nb : ctx.neighbors()) ctx.send(nb.edge, Message(1));
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    if (heard_ || inbox.empty()) return;
    heard_ = true;
    for (const auto& nb : ctx.neighbors()) {
      const bool from_sender =
          std::any_of(inbox.begin(), inbox.end(),
                      [&](const Incoming& in) { return in.edge == nb.edge; });
      if (!from_sender) ctx.send(nb.edge, Message(1));
    }
  }

 private:
  NodeId id_;
  bool heard_ = false;
};

void run_flood(benchmark::State& state, const Graph& g, bool validate,
               int threads = 1, std::int64_t threshold = -1) {
  Network net(g);
  net.set_validate(validate);
  net.set_threads(threads);
  if (threshold >= 0) net.set_parallel_round_threshold(threshold);
  std::int64_t phases = 0;
  PhaseStats last{};
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<FloodProcess> procs;
    procs.reserve(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
    state.ResumeTiming();
    last = congest::run_phase(net, procs);
    ++phases;
  }
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(last.messages) * static_cast<double>(phases),
      benchmark::Counter::kIsRate);
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["n"] = g.num_nodes();
  state.counters["m"] = g.num_edges();
  state.counters["threads"] = net.threads();
}

/// Local two-hop burst from node 0: a tiny active set per phase, so phase
/// cost is dominated by per-phase fixed overhead (process start plus any
/// O(n + m) state resets an engine performs). This is the workload where
/// epoch-stamped resets shine: the slab engine's startup is O(active).
class BurstProcess final : public Process {
 public:
  explicit BurstProcess(NodeId id) : id_(id) {}

  void on_start(Context& ctx) override {
    hops_ = id_ == 0 ? 0 : -1;  // processes are reused across phases
    if (id_ != 0) return;
    for (const auto& nb : ctx.neighbors()) ctx.send(nb.edge, Message(1));
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    if (hops_ >= 0 || inbox.empty()) return;
    hops_ = static_cast<int>(inbox.front().msg.tag);
    if (hops_ >= 2) return;
    for (const auto& nb : ctx.neighbors()) {
      const bool from_sender =
          std::any_of(inbox.begin(), inbox.end(),
                      [&](const Incoming& in) { return in.edge == nb.edge; });
      if (!from_sender)
        ctx.send(nb.edge, Message(static_cast<std::uint32_t>(hops_ + 1)));
    }
  }

 private:
  NodeId id_;
  int hops_ = -1;
};

void run_burst_phases(benchmark::State& state, const Graph& g) {
  constexpr int kPhases = 50;
  Network net(g);
  net.set_validate(false);
  std::vector<BurstProcess> procs;
  procs.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) procs.emplace_back(v);
  std::int64_t phases = 0;
  for (auto _ : state) {
    for (int p = 0; p < kPhases; ++p) congest::run_phase(net, procs);
    phases += kPhases;
  }
  state.counters["phases_per_sec"] = benchmark::Counter(
      static_cast<double>(phases), benchmark::Counter::kIsRate);
  state.counters["rounds"] = static_cast<double>(net.total_rounds());
  state.counters["messages"] = static_cast<double>(net.total_messages());
}

}  // namespace

int register_all = [] {
  // 100k-node sparse random graph (avg degree ~6): the acceptance workload.
  benchmark::RegisterBenchmark("E10/flood/erdos-renyi/100000",
                               [](benchmark::State& s) {
                                 const Graph g = make_erdos_renyi(
                                     100'000, 6.0 / 100'000.0, 42);
                                 run_flood(s, g, /*validate=*/false);
                               })
      ->Unit(benchmark::kMillisecond)->UseRealTime();
  // Thread-count sweep on the acceptance workload: messages and rounds are
  // bit-identical at every point (the engine's determinism contract);
  // msgs_per_sec is the scaling curve.
  for (const int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("E10/flood/erdos-renyi/100000/threads:" + std::to_string(threads))
            .c_str(),
        [threads](benchmark::State& s) {
          const Graph g = make_erdos_renyi(100'000, 6.0 / 100'000.0, 42);
          run_flood(s, g, /*validate=*/false, threads);
        })
        ->Unit(benchmark::kMillisecond)->UseRealTime();
  }
  // Same workload with CONGEST validation on: the cost of the checks.
  benchmark::RegisterBenchmark("E10/flood/erdos-renyi-validate/100000",
                               [](benchmark::State& s) {
                                 const Graph g = make_erdos_renyi(
                                     100'000, 6.0 / 100'000.0, 42);
                                 run_flood(s, g, /*validate=*/true);
                               })
      ->Unit(benchmark::kMillisecond)->UseRealTime();
  // 316x316 grid (~100k nodes): high-diameter, small active set per
  // round. The thread sweep is the adaptive-fallback acceptance workload:
  // its 630 tiny rounds all sit below the threshold, so every threaded
  // point must track the sequential wall time (PR 2 paid 1.8x fork-join
  // overhead here).
  for (const int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("E10/flood/grid/99856/threads:" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& s) {
          const Graph g = make_grid(316, 316);
          run_flood(s, g, /*validate=*/false, threads);
        })
        ->Unit(benchmark::kMillisecond)->UseRealTime();
  }
  // The same worst case with the fallback disabled (threshold 0): what
  // per-round fork-join overhead still costs when every tiny round is
  // forced through the parallel path — the number the threshold is
  // calibrated against.
  benchmark::RegisterBenchmark("E10/flood/grid/99856/threads:4/no-fallback",
                               [](benchmark::State& s) {
                                 const Graph g = make_grid(316, 316);
                                 run_flood(s, g, /*validate=*/false, 4,
                                           /*threshold=*/0);
                               })
      ->Unit(benchmark::kMillisecond)->UseRealTime();
  // Validation on + 4 threads: the faithfulness checks split between the
  // workers (incidence) and the sequential lane merge (double-send).
  benchmark::RegisterBenchmark("E10/flood/erdos-renyi-validate/100000/threads:4",
                               [](benchmark::State& s) {
                                 const Graph g = make_erdos_renyi(
                                     100'000, 6.0 / 100'000.0, 42);
                                 run_flood(s, g, /*validate=*/true, 4);
                               })
      ->Unit(benchmark::kMillisecond)->UseRealTime();
  // Many near-empty phases on a 1M-node graph: measures per-phase fixed
  // overhead (the seed engine's O(n + m) resets vs O(active) startup).
  benchmark::RegisterBenchmark("E10/burst-phases/grid/1000000",
                               [](benchmark::State& s) {
                                 const Graph g = make_grid(1000, 1000);
                                 run_burst_phases(s, g);
                               })
      ->Unit(benchmark::kMillisecond)->UseRealTime();
  return 0;
}();

LCS_BENCH_MAIN()
