/// \file bench_e4_part_routing.cpp
/// E4 — Theorem 2: leader election / convergecast / broadcast for all parts
/// in parallel in O(b(D + c)) rounds on a computed shortcut. Reports each
/// primitive's rounds and its ratio to b(D + c).
#include "bench_util.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/part_routing.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Instance;
using lcs::bench::Rig;

void run(benchmark::State& state, const Instance& instance, NodeId root = 0) {
  for (auto _ : state) {
    Rig rig(instance.graph, root);
    const FindShortcutResult found =
        find_shortcut_doubling(rig.net, rig.tree, instance.partition, {});
    const NeighborParts nb = exchange_neighbor_parts(rig.net, instance.partition);
    const std::int32_t b = std::max(
        1, block_parameter(instance.graph, instance.partition,
                           found.state.shortcut));
    const std::int32_t c = std::max(
        1, congestion(instance.graph, instance.partition,
                      found.state.shortcut));
    const std::int32_t b_steps = 3 * found.stats.used_b;

    const std::int64_t t0 = rig.net.total_rounds();
    elect_part_leaders(rig.net, rig.tree, instance.partition, found.state, nb,
                       b_steps);
    const std::int64_t t1 = rig.net.total_rounds();
    congest::PerNode<std::uint64_t> vals(
        static_cast<std::size_t>(instance.graph.num_nodes()), 5);
    part_min_flood(rig.net, rig.tree, instance.partition, found.state, nb,
                   b_steps, vals);
    const std::int64_t t2 = rig.net.total_rounds();

    const double budget = static_cast<double>(b) * (rig.tree.height + c);
    state.counters["n"] = instance.graph.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["b"] = b;
    state.counters["c"] = c;
    state.counters["leader_rounds"] = static_cast<double>(t1 - t0);
    state.counters["conv_rounds"] = static_cast<double>(t2 - t1);
    state.counters["leader_over_bDc"] = static_cast<double>(t1 - t0) / budget;
  }
}

}  // namespace

int register_all = [] {
  for (const lcs::NodeId side : {24, 48, 72}) {
    benchmark::RegisterBenchmark(
        ("E4/grid-blobs/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::grid_instance(side, 9));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("E4/wheel-arcs/2049",
                               [](benchmark::State& s) {
                                 run(s, lcs::bench::wheel_instance(2049, 32),
                                     2048);
                               })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "E4/grid-rows/2304", [](benchmark::State& s) {
        lcs::bench::Instance inst{lcs::make_grid(48, 48),
                                  lcs::make_grid_rows_partition(48, 48, 3),
                                  "grid-rows"};
        run(s, inst);
      })
      ->Iterations(1)->Unit(benchmark::kMillisecond);
  return 0;
}();

LCS_BENCH_MAIN()
