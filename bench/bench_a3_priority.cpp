/// \file bench_a3_priority.cpp
/// A3 (ablation) — Lemma 2's scheduling rule. The proof prioritizes
/// contested edges by (subtree-root depth, id); this bench compares that
/// rule against part-id priority and FIFO on a congested broadcast
/// workload. Root-depth should be at least as good everywhere and
/// strictly better when deep and shallow components compete.
#include "bench_util.h"
#include "shortcut/existential.h"
#include "shortcut/representation.h"
#include "shortcut/tree_routing.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run(benchmark::State& state, RoutingPriority priority,
         std::int32_t threshold) {
  for (auto _ : state) {
    const NodeId side = 48;
    const Graph g = make_grid(side, side);
    const auto p = make_random_bfs_partition(g, 3 * side, 31);
    Rig rig(g);
    const Shortcut s = greedy_blocked_shortcut(g, rig.tree, p, threshold);
    std::int32_t c = 1;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      c = std::max(c, static_cast<std::int32_t>(
                          s.parts_on_edge[static_cast<std::size_t>(e)].size()));

    const std::int64_t before = rig.net.total_rounds();
    run_component_broadcast(
        rig.net, rig.tree, s,
        [](NodeId, PartId) -> std::uint64_t { return 1; },
        [](NodeId, PartId, std::uint64_t, std::int32_t) {}, priority);
    const std::int64_t bcast = rig.net.total_rounds() - before;

    // The convergecast is where priorities bite: many components share one
    // parent edge and the deepest-rooted ones must go first.
    const ShortcutState st =
        compute_shortcut_state(rig.net, rig.tree, p, s);
    const std::int64_t mid = rig.net.total_rounds();
    run_component_convergecast(
        rig.net, rig.tree, st.shortcut, st.root_depth_on_edge,
        [](NodeId, PartId) -> std::uint64_t { return 1; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        [](NodeId, PartId, std::uint64_t) {}, priority);
    const std::int64_t conv = rig.net.total_rounds() - mid;

    state.counters["D"] = rig.tree.height;
    state.counters["c"] = c;
    state.counters["bcast_rounds"] = static_cast<double>(bcast);
    state.counters["conv_rounds"] = static_cast<double>(conv);
    state.counters["conv_over_D+c"] =
        static_cast<double>(conv) / (rig.tree.height + c);
  }
}

}  // namespace

int register_all = [] {
  struct Mode {
    const char* name;
    lcs::RoutingPriority priority;
  };
  for (const Mode mode :
       {Mode{"root-depth", lcs::RoutingPriority::kRootDepth},
        Mode{"part-id", lcs::RoutingPriority::kPartId},
        Mode{"fifo", lcs::RoutingPriority::kFifo}}) {
    for (const std::int32_t threshold : {8, 64, 1024}) {
      benchmark::RegisterBenchmark(
          ("A3/" + std::string(mode.name) + "/threshold=" +
           std::to_string(threshold))
              .c_str(),
          [mode, threshold](benchmark::State& s) {
            run(s, mode.priority, threshold);
          })
          ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return 0;
}();

LCS_BENCH_MAIN()
