/// \file bench_generators.cpp
/// Generator throughput (edges per second) per family.
///
/// Unlike E1–E9 this measures *wall time*: the generators feed every
/// scaling study, so their throughput must stay on the bench trajectory.
/// The headline case is Erdős–Rényi at 10^5–10^6 nodes — the geometric-skip
/// G(n, p) sampler makes these O(m); the quadratic pair loop it replaced
/// took ~15 s for er/100000 (and er/1000000 was infeasible at ~5·10^11
/// Bernoulli draws).
///
/// Reported counters per run:
///   edges_per_sec — generated edges / wall second (the headline number)
///   edges         — edge count (deterministic; sanity/determinism)
#include <benchmark/benchmark.h>

#include <cstdint>

#include "graph/generators.h"

namespace {

using namespace lcs;

template <class Make>
void run_generator(benchmark::State& state, Make make) {
  std::int64_t edges = 0;
  for (auto _ : state) {
    const Graph g = make();
    edges = g.num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(edges) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void er_100k(benchmark::State& state) {
  run_generator(state, [] { return make_erdos_renyi(100'000, 2e-4, 7); });
}
void er_1m(benchmark::State& state) {
  run_generator(state, [] { return make_erdos_renyi(1'000'000, 2e-6, 7); });
}
void rmat_s16(benchmark::State& state) {
  run_generator(state,
                [] { return make_rmat(16, 1 << 18, 0.57, 0.19, 0.19, 7); });
}
void ba_100k(benchmark::State& state) {
  run_generator(state, [] { return make_barabasi_albert(100'000, 3, 7); });
}
void rreg_100k(benchmark::State& state) {
  run_generator(state, [] { return make_random_regular(100'000, 4, 7); });
}
void ktree_100k(benchmark::State& state) {
  run_generator(state, [] { return make_ktree(100'000, 3, 7); });
}
void grid_512(benchmark::State& state) {
  run_generator(state, [] { return make_grid(512, 512); });
}
void genus_grid_64(benchmark::State& state) {
  run_generator(state, [] { return make_genus_grid(64, 64, 32, 7); });
}

BENCHMARK(er_100k)->Name("GEN/er/100000")->Unit(benchmark::kMillisecond);
BENCHMARK(er_1m)->Name("GEN/er/1000000")->Unit(benchmark::kMillisecond);
BENCHMARK(rmat_s16)->Name("GEN/rmat/scale16")->Unit(benchmark::kMillisecond);
BENCHMARK(ba_100k)->Name("GEN/ba/100000")->Unit(benchmark::kMillisecond);
BENCHMARK(rreg_100k)->Name("GEN/rreg/100000")->Unit(benchmark::kMillisecond);
BENCHMARK(ktree_100k)->Name("GEN/ktree/100000")->Unit(benchmark::kMillisecond);
BENCHMARK(grid_512)->Name("GEN/grid/512")->Unit(benchmark::kMillisecond);
BENCHMARK(genus_grid_64)
    ->Name("GEN/genus/64x64g32")
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
