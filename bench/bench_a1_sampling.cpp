/// \file bench_a1_sampling.cpp
/// A1 (ablation) — CoreFast's sampling constant γ. The paper only asks for
/// a "sufficiently large constant": small γ under-samples (mis-detecting
/// congested edges, hurting the good-part fraction and congestion bound),
/// large γ inflates the O(D log n) streaming phase. This sweep quantifies
/// the trade-off and backs the default γ = 4.
#include "bench_util.h"
#include "shortcut/core_fast.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run(benchmark::State& state, double gamma) {
  for (auto _ : state) {
    const NodeId side = 48;
    const Graph g = make_grid(side, side);
    const auto p = make_random_bfs_partition(g, 2 * side, 19);
    Rig rig(g);
    const auto exist = best_existential_for_block(g, rig.tree, p, 4);
    const std::int32_t c = std::max(1, exist.congestion);

    const std::int64_t before = rig.net.total_rounds();
    const CoreResult result = core_fast(rig.net, rig.tree, p.part_of,
                                        CoreFastParams{c, gamma, 23});
    const std::int64_t rounds = rig.net.total_rounds() - before;

    std::int32_t good = 0;
    for (PartId j = 0; j < p.num_parts; ++j)
      if (block_component_count(g, p, result.shortcut, j) <= 3 * exist.block)
        ++good;

    state.counters["gamma"] = gamma;
    state.counters["c"] = c;
    state.counters["rounds"] = static_cast<double>(rounds);
    state.counters["congestion"] = congestion(g, p, result.shortcut);
    state.counters["cong_over_8c"] =
        static_cast<double>(congestion(g, p, result.shortcut)) / (8.0 * c);
    state.counters["good_pct"] = 100.0 * good / p.num_parts;
  }
}

}  // namespace

int register_all = [] {
  for (const double gamma : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    benchmark::RegisterBenchmark(
        ("A1/gamma=" + std::to_string(gamma)).c_str(),
        [gamma](benchmark::State& s) { run(s, gamma); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
