/// \file bench_e1_find_shortcut.cpp
/// E1 — Theorem 3: FindShortcut constructs, on any topology, a shortcut
/// whose congestion is within O(log N) of the existential optimum and whose
/// block parameter is <= 3b, in Õ(D + b(D + c)) rounds.
///
/// Sweep: family x side. Reported counters per run:
///   rounds       — total CONGEST rounds of the construction
///   congestion   — Definition-1 congestion of the result
///   exist_c      — centralized existential congestion at block budget 4b̂
///   c_ratio      — congestion / exist_c  (Theorem 3 predicts O(log N))
///   block        — block parameter of the result (<= 3 b̂)
///   iters/trials — verification iterations and doubling trials
#include <cmath>

#include "bench_util.h"
#include "shortcut/existential.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Instance;
using lcs::bench::Rig;

void run(benchmark::State& state, const Instance& instance) {
  for (auto _ : state) {
    Rig rig(instance.graph);
    const FindShortcutResult found =
        find_shortcut_doubling(rig.net, rig.tree, instance.partition, {});

    const std::int32_t got_c =
        congestion(instance.graph, instance.partition, found.state.shortcut);
    const std::int32_t got_b = block_parameter(
        instance.graph, instance.partition, found.state.shortcut);
    const auto exist = best_existential_for_block(
        instance.graph, rig.tree, instance.partition,
        std::max(1, 4 * found.stats.used_b));

    state.counters["n"] = instance.graph.num_nodes();
    state.counters["D"] = rig.tree.height;
    state.counters["parts"] = instance.partition.num_parts;
    state.counters["rounds"] = static_cast<double>(found.stats.rounds);
    state.counters["congestion"] = got_c;
    state.counters["exist_c"] = exist.congestion;
    state.counters["c_ratio"] =
        static_cast<double>(got_c) / std::max(1, exist.congestion);
    state.counters["block"] = got_b;
    state.counters["iters"] = found.stats.iterations;
    state.counters["trials"] = found.stats.trials;
  }
}

}  // namespace

int register_all = [] {
  for (const lcs::NodeId side : {16, 32, 64, 96}) {
    benchmark::RegisterBenchmark(
        ("E1/grid/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::grid_instance(side, 7));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E1/torus/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::torus_instance(side, 7));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E1/genus8/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::genus_instance(side, 8, 7));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("E1/erdos-renyi/" + std::to_string(side * side)).c_str(),
        [side](benchmark::State& s) {
          run(s, lcs::bench::er_instance(side * side, 7));
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
