/// \file bench_a2_threshold.cpp
/// A2 (ablation) — CoreSlow's unusable threshold. The paper fixes it at 2c
/// (giving the N/2 good-part guarantee with congestion 2c). Sweeping the
/// multiplier m (threshold = m·c) shows the trade: lower m = less
/// congestion but fewer good parts per iteration; higher m = more
/// congestion per iteration but faster convergence.
#include "bench_util.h"
#include "shortcut/core_slow.h"
#include "shortcut/existential.h"
#include "shortcut/shortcut.h"

namespace {

using namespace lcs;
using lcs::bench::Rig;

void run(benchmark::State& state, double multiplier) {
  for (auto _ : state) {
    const NodeId side = 48;
    const Graph g = make_grid(side, side);
    const auto p = make_random_bfs_partition(g, 2 * side, 29);
    Rig rig(g);
    const auto exist = best_existential_for_block(g, rig.tree, p, 4);
    const std::int32_t c = std::max(1, exist.congestion);
    const auto threshold = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(multiplier * c));

    const std::int64_t before = rig.net.total_rounds();
    const CoreResult result =
        core_slow_threshold(rig.net, rig.tree, p.part_of, threshold);
    const std::int64_t rounds = rig.net.total_rounds() - before;

    std::int32_t good = 0;
    for (PartId j = 0; j < p.num_parts; ++j)
      if (block_component_count(g, p, result.shortcut, j) <= 3 * exist.block)
        ++good;

    state.counters["multiplier"] = multiplier;
    state.counters["threshold"] = threshold;
    state.counters["rounds"] = static_cast<double>(rounds);
    state.counters["congestion"] = congestion(g, p, result.shortcut);
    state.counters["good_pct"] = 100.0 * good / p.num_parts;
  }
}

}  // namespace

int register_all = [] {
  for (const double m : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0}) {
    benchmark::RegisterBenchmark(("A2/mult=" + std::to_string(m)).c_str(),
                                 [m](benchmark::State& s) { run(s, m); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

LCS_BENCH_MAIN()
