/// \file stats.h
/// Small summary-statistics helper used by benches and experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace lcs {

/// Accumulates a sample of doubles and reports summary statistics.
/// Percentile queries sort a copy lazily; suitable for bench-sized samples.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Linear-interpolated percentile, q in [0, 100]. Requires non-empty.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> values_;
};

}  // namespace lcs
