#include "util/cast.h"
#include "util/json_writer.h"

#include <charconv>
#include <cmath>

#include "util/check.h"

namespace lcs {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  LCS_CHECK(indent >= 0, "indent must be non-negative");
}

void JsonWriter::write_indent() {
  if (indent_ == 0) return;
  out_.put('\n');
  const std::size_t spaces = stack_.size() * static_cast<std::size_t>(indent_);
  for (std::size_t i = 0; i < spaces; ++i) out_.put(' ');
}

void JsonWriter::write_escaped(std::string_view s) {
  static const char* hex = "0123456789abcdef";
  out_.put('"');
  for (const char ch : s) {
    const unsigned char c = util::truncate_cast<unsigned char>(ch);
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\b': out_ << "\\b"; break;
      case '\f': out_ << "\\f"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (c < 0x20) {
          out_ << "\\u00" << hex[c >> 4] << hex[c & 0xf];
        } else {
          out_.put(ch);
        }
    }
  }
  out_.put('"');
}

void JsonWriter::before_value() {
  LCS_CHECK(!done_, "document already holds a complete top-level value");
  if (stack_.empty()) return;  // the top-level value itself
  if (stack_.back() == Frame::kObject) {
    LCS_CHECK(key_pending_, "value inside an object requires a preceding key");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) out_.put(',');
  has_items_.back() = true;
  write_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  LCS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
            "key() is only valid inside an object");
  LCS_CHECK(!key_pending_, "previous key has no value yet");
  if (has_items_.back()) out_.put(',');
  has_items_.back() = true;
  write_indent();
  write_escaped(k);
  out_ << (indent_ == 0 ? ":" : ": ");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.put('{');
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  LCS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
            "end_object without a matching begin_object");
  LCS_CHECK(!key_pending_, "dangling key at end_object");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) write_indent();
  out_.put('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.put('[');
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  LCS_CHECK(!stack_.empty() && stack_.back() == Frame::kArray,
            "end_array without a matching begin_array");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) write_indent();
  out_.put(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.write(buf, res.ptr - buf);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.write(buf, res.ptr - buf);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  LCS_CHECK(std::isfinite(v), "JSON has no encoding for NaN or infinity");
  before_value();
  // Shortest round-trip representation: byte-stable across platforms, which
  // the golden-diff CI gate relies on.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.write(buf, res.ptr - buf);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

void JsonWriter::finish() {
  LCS_CHECK(stack_.empty() && done_,
            "finish() before the document was complete");
  out_.put('\n');
  out_.flush();
}

}  // namespace lcs
