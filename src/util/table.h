/// \file table.h
/// Fixed-width console table printer for benches and examples.
///
/// The bench binaries print paper-style tables (one row per parameter point)
/// in addition to google-benchmark counters; this helper keeps that output
/// aligned and consistent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lcs {

/// Accumulates rows of string/number cells and prints an aligned table.
class Table {
 public:
  /// Column headers define the column count; every row must match it.
  explicit Table(std::vector<std::string> headers);

  Table& begin_row();
  Table& cell(const std::string& value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  /// Doubles print with 3 significant decimals.
  Table& cell(double value);

  std::size_t rows() const { return rows_.size(); }

  /// Render to `out`. Throws if a row has the wrong number of cells.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lcs
