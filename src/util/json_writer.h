/// \file json_writer.h
/// Minimal streaming JSON writer for machine-readable reports (`lcs_run`).
///
/// Design goals, in order:
///  * **Deterministic output.** Identical call sequences produce identical
///    bytes on every platform: integers print exactly, doubles use the
///    shortest round-trip representation (std::to_chars), keys are emitted
///    in call order. The golden-file CI gate diffs reports byte-for-byte,
///    so nothing here may depend on locale or floating-point environment.
///  * **Misuse is diagnosed.** Structural errors (a value with no pending
///    key inside an object, end_object closing an array, finishing with
///    open containers) throw CheckFailure instead of producing junk.
///  * No allocation beyond the nesting stack; no DOM. This is a writer,
///    not a JSON library — there is deliberately no reader.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace lcs {

class JsonWriter {
 public:
  /// Writes to `out`. `indent` spaces per nesting level; 0 = compact
  /// single-line output.
  explicit JsonWriter(std::ostream& out, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit a key inside an object; must be followed by exactly one value
  /// (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int32_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  /// Finite doubles only (NaN/Inf have no JSON encoding — diagnosed).
  JsonWriter& value(double v);
  JsonWriter& null();

  /// key + value in one call.
  template <class T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Asserts the document is complete (one top-level value, all containers
  /// closed) and flushes a trailing newline.
  void finish();

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void write_indent();
  void write_escaped(std::string_view s);

  std::ostream& out_;
  int indent_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
  bool done_ = false;  // a complete top-level value was written
};

}  // namespace lcs
