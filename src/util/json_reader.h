/// \file json_reader.h
/// A strict JSON parser for the serving path.
///
/// `lcs_serve` answers a stream of JSON requests; a malformed or ambiguous
/// request must produce a deterministic diagnosis naming the offending
/// construct, never a silent misparse. This parser therefore rejects —
/// with a line/column-positioned CheckFailure — everything RFC 8259 leaves
/// to implementations to mishandle:
///
///  * duplicate object keys ("duplicate key \"algo\" at line 1, column 40"
///    — the classic silent-misparse: last-wins parsers make two requests
///    with contradictory fields look identical),
///  * trailing content after the document, trailing commas, comments,
///  * unquoted keys, single quotes, control characters inside strings,
///  * numbers JSON forbids (leading +, bare ., hex, Inf/NaN).
///
/// Escapes `\" \\ \/ \b \f \n \r \t \uXXXX` are decoded (UTF-16 surrogate
/// pairs included). Numbers keep their raw spelling; typed accessors
/// convert on demand and diagnose range/format errors against the caller's
/// field name, so "params.seed must be an integer" failures read like the
/// scenario-spec diagnoses.
///
/// Object member order is preserved (vector of pairs, not a map) — lookups
/// are linear, which is the right trade for request-sized documents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lcs {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; `what` names the field for the diagnosis (e.g.
  /// "request field 'id'"). Throws CheckFailure on a type mismatch.
  bool as_bool(const std::string& what) const;
  std::int64_t as_int(const std::string& what) const;
  std::uint64_t as_uint(const std::string& what) const;
  double as_double(const std::string& what) const;
  const std::string& as_string(const std::string& what) const;
  const std::vector<JsonValue>& as_array(const std::string& what) const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object(
      const std::string& what) const;

  /// Object member by key, or nullptr. Throws if not an object.
  const JsonValue* find(std::string_view key, const std::string& what) const;

  /// The raw spelling of a Number (e.g. "2e-4"), for byte-faithful echo.
  const std::string& raw_number() const { return scalar_; }

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string raw);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  const char* type_name() const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::string scalar_;  ///< String payload, or a Number's raw spelling.
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse exactly one JSON document covering all of `text` (trailing
/// whitespace allowed, anything else diagnosed). Throws CheckFailure with
/// a line/column position on any syntax error or duplicate object key.
JsonValue parse_json(std::string_view text);

}  // namespace lcs
