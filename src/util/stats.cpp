#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lcs {

void Summary::add(double x) { values_.push_back(x); }

double Summary::sum() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double Summary::mean() const {
  LCS_CHECK(!values_.empty(), "mean of empty sample");
  return sum() / static_cast<double>(values_.size());
}

double Summary::min() const {
  LCS_CHECK(!values_.empty(), "min of empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  LCS_CHECK(!values_.empty(), "max of empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::percentile(double q) const {
  LCS_CHECK(!values_.empty(), "percentile of empty sample");
  LCS_CHECK(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace lcs
