/// \file check.h
/// Contract-checking macros used throughout the library.
///
/// `LCS_CHECK` guards public-API preconditions and internal invariants.
/// Violations throw `lcs::CheckFailure` (derived from `std::logic_error`)
/// so tests can assert on them and callers get a diagnosable error instead
/// of undefined behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace lcs {

/// Thrown when a `LCS_CHECK` condition fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* condition, const char* file,
                               int line, const std::string& message);
}  // namespace detail

}  // namespace lcs

/// Verify `cond`; on failure throw lcs::CheckFailure with location info.
/// Always enabled (also in release builds): the simulator's value is its
/// guarantees, so invariant checks are never compiled out.
#define LCS_CHECK(cond, message)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::lcs::detail::check_failed(#cond, __FILE__, __LINE__, (message));  \
    }                                                                     \
  } while (false)
