/// \file hash.h
/// FNV-1a 64-bit hashing for cache keys.
///
/// The serving path keys its caches by (spec hash, partition hash, seed).
/// The hash must be stable across processes, platforms, and builds — a
/// cache written by one daemon run is read by the next — which rules out
/// std::hash (unspecified, and randomized in some standard libraries).
/// FNV-1a over the canonical byte encoding is deterministic everywhere and
/// cheap at the sizes hashed here (spec strings, partition codecs). Keys
/// are advisory, not authoritative: every cache record also stores what it
/// was computed from and is verified on load, so a collision is diagnosed,
/// never silently served.
#pragma once

#include <cstdint>
#include <string_view>
#include "util/cast.h"

namespace lcs {

inline constexpr std::uint64_t kFnv1a64Offset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t h = kFnv1a64Offset) {
  for (const char c : bytes) {
    h ^= util::truncate_cast<unsigned char>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace lcs
