/// \file worker_pool.h
/// A small persistent fork-join worker team.
///
/// `WorkerPool` owns `size() - 1` threads that sleep between jobs; the
/// calling thread participates as worker 0, so a pool of size 1 degenerates
/// to a plain function call with zero synchronization. `run(fn)` invokes
/// `fn(w)` once per worker index and blocks until every invocation has
/// returned — the pool never overlaps two jobs, so a job may freely read
/// any state the caller wrote before `run` and the caller may read anything
/// the workers wrote after it (the internal mutex orders both directions).
///
/// `run_staged(stages, fn)` is the multi-stage variant used for
/// parallel-prefix-shaped work (count → scan → scatter): it invokes
/// `fn(s, w)` for every stage s in order with a full barrier between
/// consecutive stages, so stage s+1 may read anything any worker wrote in
/// stage s. Equivalent to `stages` back-to-back `run` calls, but the team
/// is woken once and synchronizes at an internal barrier instead of
/// sleeping and re-waking between stages.
///
/// Exceptions thrown inside a job are captured per worker; after the join,
/// the exception from the lowest worker index is rethrown on the calling
/// thread (the others are discarded). Workers always run their slice to
/// completion or to their own exception — there is no cancellation. In a
/// staged job a worker whose stage threw skips its own later stages but
/// still participates in every barrier, so the other workers never block
/// on it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace lcs {

class WorkerPool {
 public:
  /// Resolve a user-facing thread-count request: 0 means "use the
  /// hardware", anything else is taken literally (minimum 1). Falls back
  /// to 1 when the hardware concurrency is unknown.
  static int resolve_threads(int requested);

  /// Spawn a team of `workers` (>= 1); `workers - 1` threads are created.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return num_workers_; }

  /// Run `fn(w)` for every worker index w in [0, size()); the calling
  /// thread executes fn(0). Blocks until all invocations return, then
  /// rethrows the lowest-index captured exception, if any. The job is
  /// dispatched through a raw (function pointer, context) pair rather
  /// than std::function so a capturing lambda posted every round never
  /// heap-allocates.
  template <class Fn>
  void run(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_raw([](void* ctx, int w) { (*static_cast<F*>(ctx))(w); },
            const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Run `fn(s, w)` for every stage s in [0, stages), all workers, with a
  /// full barrier between consecutive stages (see the header comment).
  /// Serial sections are expressed as a stage whose body is gated on
  /// `w == 0`. Dispatched through the same raw-pointer path as `run`, so a
  /// capturing lambda never heap-allocates.
  template <class Fn>
  void run_staged(int stages, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_staged_raw(
        [](void* ctx, int s, int w) { (*static_cast<F*>(ctx))(s, w); },
        const_cast<void*>(static_cast<const void*>(&fn)), stages);
  }

 private:
  void run_raw(void (*job)(void*, int), void* ctx);
  void run_staged_raw(void (*fn)(void*, int, int), void* ctx, int stages);
  /// Block until all `size()` workers of the current job arrive.
  void stage_barrier();
  void worker_main(int index);

  int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  void (*job_)(void*, int) = nullptr;  // valid while a job runs
  void* job_ctx_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per job; workers wait on it
  int remaining_ = 0;             // workers still running the current job
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  // one slot per worker

  // Stage barrier for run_staged (guarded by mu_): arrivals count up to
  // size(), the last arrival resets the count and bumps the epoch.
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_epoch_ = 0;
};

}  // namespace lcs
