#include "util/cast.h"
#include "util/worker_pool.h"

#include <algorithm>

namespace lcs {

int WorkerPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : util::checked_cast<int>(hw);
}

WorkerPool::WorkerPool(int workers) : num_workers_(std::max(1, workers)) {
  errors_.resize(static_cast<std::size_t>(num_workers_));
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run_raw(void (*job)(void*, int), void* ctx) {
  if (num_workers_ == 1) {
    job(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    job_ctx_ = ctx;
    remaining_ = num_workers_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  try {
    job(ctx, 0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }
  for (std::exception_ptr& err : errors_) {
    if (err) {
      const std::exception_ptr first = err;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void WorkerPool::run_staged_raw(void (*fn)(void*, int, int), void* ctx,
                                int stages) {
  if (num_workers_ == 1) {
    for (int s = 0; s < stages; ++s) fn(ctx, s, 0);
    return;
  }
  struct Staged {
    WorkerPool* pool;
    void (*fn)(void*, int, int);
    void* ctx;
    int stages;
  };
  Staged staged{this, fn, ctx, stages};
  // The wrapper catches per stage into errors_ itself (run_raw's own
  // catch never fires): a worker whose stage threw must keep hitting the
  // barriers or the rest of the team would block forever.
  run_raw(
      [](void* c, int w) {
        auto* st = static_cast<Staged*>(c);
        for (int s = 0; s < st->stages; ++s) {
          if (!st->pool->errors_[static_cast<std::size_t>(w)]) {
            try {
              st->fn(st->ctx, s, w);
            } catch (...) {
              st->pool->errors_[static_cast<std::size_t>(w)] =
                  std::current_exception();
            }
          }
          if (s + 1 < st->stages) st->pool->stage_barrier();
        }
      },
      &staged);
}

void WorkerPool::stage_barrier() {
  std::unique_lock<std::mutex> lock(mu_);
  if (++barrier_arrived_ == num_workers_) {
    barrier_arrived_ = 0;
    ++barrier_epoch_;
    barrier_cv_.notify_all();
    return;
  }
  const std::uint64_t epoch = barrier_epoch_;
  barrier_cv_.wait(lock, [&] { return barrier_epoch_ != epoch; });
}

void WorkerPool::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    void (*job)(void*, int) = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (generation_ == seen) return;  // shutdown with no new job
      seen = generation_;
      job = job_;
      ctx = job_ctx_;
    }
    try {
      job(ctx, index);
    } catch (...) {
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace lcs
