/// \file random.h
/// Deterministic random-number utilities.
///
/// Everything in the library that needs randomness takes an explicit seed so
/// that simulations are reproducible. Two facilities live here:
///
///  * `Rng` — a fast xoshiro256**-based generator for centralized code
///    (graph generators, workload construction, test sweeps).
///  * `hash_coin` / `hash64` — stateless mixing functions that model the
///    paper's *shared randomness*: after a seed is broadcast over the BFS
///    tree, every node evaluates the same hash of (seed, part id, phase) and
///    obtains the same coin without further communication.
#pragma once

#include <cstdint>
#include <limits>

namespace lcs {

/// SplitMix64 mixing step; also used to seed the main generator.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mixer. Used for shared-randomness coins: all nodes that
/// know (seed, key) derive the same pseudo-random value.
std::uint64_t hash64(std::uint64_t seed, std::uint64_t key);

/// Three-argument convenience overload (e.g. (seed, part, phase)).
std::uint64_t hash64(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// Shared-randomness Bernoulli coin: true with probability `p`.
bool hash_coin(std::uint64_t seed, std::uint64_t key, double p);

/// xoshiro256** pseudo-random generator. Satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli coin with probability p. Total for every double p: p <= 0
  /// (including -0.0 and subnormals' negatives) is always false, p >= 1
  /// always true, and in between exactly one uniform draw is consumed.
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

/// Geometric skip sampler over a Bernoulli(p) trial stream: instead of
/// flipping a coin per trial, `next()` draws how many trials elapse up to
/// and including the next success (a Geometric(p) variate >= 1, via the
/// inverse CDF `1 + floor(log(1 - u) / log(1 - p))`). A Bernoulli stream
/// of T trials collapses to ~T*p draws — this is what makes G(n, p)
/// generation O(m) instead of O(n^2).
///
/// Edge cases are total, never hang, and never overflow:
///  * p >= 1  — every trial succeeds: next() is always 1 (no draw consumed);
///  * p <= 0  — no trial ever succeeds: next() is kNever (no draw consumed);
///  * 0 < p < 1, including subnormal p — one draw per call; any skip that
///    would exceed the representable range (or a NaN from the extreme
///    corner of subnormal arithmetic) saturates to kNever.
///
/// Determinism: for a fixed Rng stream the skip sequence is a pure function
/// of p. It does route through libm's log1p, so the per-seed edge streams
/// of generators built on it are pinned by committed stream checksums
/// (tests/generators_test.cpp) — a platform whose libm rounds differently
/// fails loudly there instead of silently drifting the goldens.
class GeometricSkip {
 public:
  /// "No further success": larger than any trial count a caller can index.
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  explicit GeometricSkip(double p);

  /// Trials up to and including the next success (>= 1), or kNever.
  std::uint64_t next(Rng& rng) const;

 private:
  double p_;
  double log_q_;  // log(1 - p), in [-inf, 0); meaningless when p is 0 or 1
};

}  // namespace lcs
