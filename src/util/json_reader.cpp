#include "util/cast.h"
#include "util/json_reader.h"

#include <charconv>
#include <cmath>

#include "util/check.h"

namespace lcs {

const char* JsonValue::type_name() const {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return "a boolean";
    case Type::Number: return "a number";
    case Type::String: return "a string";
    case Type::Array: return "an array";
    case Type::Object: return "an object";
  }
  return "?";
}

bool JsonValue::as_bool(const std::string& what) const {
  LCS_CHECK(type_ == Type::Bool,
            what + " must be a boolean, got " + type_name());
  return bool_;
}

std::int64_t JsonValue::as_int(const std::string& what) const {
  LCS_CHECK(type_ == Type::Number,
            what + " must be an integer, got " + type_name());
  std::int64_t v = 0;
  const auto res = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), v);
  LCS_CHECK(res.ec == std::errc() && res.ptr == scalar_.data() + scalar_.size(),
            what + " must be an integer in 64-bit range, got '" + scalar_ + "'");
  return v;
}

std::uint64_t JsonValue::as_uint(const std::string& what) const {
  LCS_CHECK(type_ == Type::Number,
            what + " must be a non-negative integer, got " + type_name());
  std::uint64_t v = 0;
  const auto res = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), v);
  LCS_CHECK(res.ec == std::errc() && res.ptr == scalar_.data() + scalar_.size(),
            what + " must be a non-negative integer in 64-bit range, got '" +
                scalar_ + "'");
  return v;
}

double JsonValue::as_double(const std::string& what) const {
  LCS_CHECK(type_ == Type::Number,
            what + " must be a number, got " + type_name());
  double v = 0;
  const auto res = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), v);
  LCS_CHECK(res.ec == std::errc() && res.ptr == scalar_.data() + scalar_.size(),
            what + " must be a finite number, got '" + scalar_ + "'");
  return v;
}

const std::string& JsonValue::as_string(const std::string& what) const {
  LCS_CHECK(type_ == Type::String,
            what + " must be a string, got " + type_name());
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& what) const {
  LCS_CHECK(type_ == Type::Array,
            what + " must be an array, got " + type_name());
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object(
    const std::string& what) const {
  LCS_CHECK(type_ == Type::Object,
            what + " must be an object, got " + type_name());
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key,
                                 const std::string& what) const {
  for (const auto& [k, v] : as_object(what))
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string raw) {
  JsonValue v;
  v.type_ = Type::Number;
  v.scalar_ = std::move(raw);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    LCS_CHECK(pos_ == text_.size(),
              "JSON has trailing content " + where());
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    LCS_CHECK(false, "JSON " + msg + " " + where());
  }

  std::string where() const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    return "at line " + std::to_string(line) + ", column " +
           std::to_string(col);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c, const char* in_what) {
    if (done() || peek() != c)
      fail(std::string("expected '") + c + "' in " + in_what);
    ++pos_;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nested deeper than 64 levels");
    if (done()) fail("ended where a value was expected");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string("string"));
      case 't': parse_literal("true"); return JsonValue::make_bool(true);
      case 'f': parse_literal("false"); return JsonValue::make_bool(false);
      case 'n': parse_literal("null"); return JsonValue::make_null();
      default: return parse_number();
    }
  }

  void parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      fail("has an unrecognized token");
    pos_ += lit.size();
  }

  JsonValue parse_object(int depth) {
    expect('{', "object");
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!done() && peek() == '}') { ++pos_; return JsonValue::make_object({}); }
    while (true) {
      skip_ws();
      if (done() || peek() != '"')
        fail("object key must be a double-quoted string");
      std::string key = parse_string("object key");
      for (const auto& [k, v] : members)
        if (k == key) fail("has duplicate key \"" + key + "\"");
      skip_ws();
      expect(':', "object member");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (done()) fail("object is not closed");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; break; }
      fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(int depth) {
    expect('[', "array");
    std::vector<JsonValue> items;
    skip_ws();
    if (!done() && peek() == ']') { ++pos_; return JsonValue::make_array({}); }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (done()) fail("array is not closed");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; break; }
      fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string(const char* what) {
    expect('"', what);
    std::string out;
    while (true) {
      if (done()) fail(std::string(what) + " is not terminated");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (util::truncate_cast<unsigned char>(c) < 0x20)
        fail(std::string(what) +
             " contains an unescaped control character");
      if (c != '\\') { out.push_back(c); continue; }
      if (done()) fail(std::string(what) + " ends inside an escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_codepoint(), out); break;
        default: fail(std::string("has an invalid escape '\\") + e + "'");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("\\u escape is truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= util::checked_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= util::checked_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= util::checked_cast<std::uint32_t>(c - 'A' + 10);
      else fail("\\u escape has a non-hex digit");
    }
    return v;
  }

  std::uint32_t parse_codepoint() {
    const std::uint32_t hi = parse_hex4();
    if (hi < 0xD800 || hi > 0xDFFF) return hi;
    if (hi >= 0xDC00) fail("has an unpaired low surrogate");
    if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
        text_[pos_ + 1] != 'u')
      fail("has a high surrogate without its pair");
    pos_ += 2;
    const std::uint32_t lo = parse_hex4();
    if (lo < 0xDC00 || lo > 0xDFFF)
      fail("has a high surrogate without a low surrogate");
    return 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
  }

  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(util::truncate_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(util::truncate_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(util::truncate_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(util::truncate_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(util::truncate_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(util::truncate_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(util::truncate_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(util::truncate_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(util::truncate_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(util::truncate_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ == digits_start) {
      pos_ = start;
      fail("has an unrecognized token");
    }
    // JSON forbids leading zeros: "0" is fine, "0123" is two tokens.
    if (pos_ - digits_start > 1 && text_[digits_start] == '0')
      fail("number has a leading zero");
    if (!done() && peek() == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == frac_start) fail("number has a bare decimal point");
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      const std::size_t exp_start = pos_;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == exp_start) fail("number has an empty exponent");
    }
    return JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace lcs
