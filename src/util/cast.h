/// \file cast.h
/// Checked integer narrowing — the only blessed way to shrink an integer.
///
/// The lint rule S1 (see src/lint/README.md) forbids ad-hoc
/// `static_cast<int>(...)`-style narrowing in the library, tools, and
/// tests: a silent truncation turns an out-of-range size into a wrong
/// answer instead of a diagnosis. Narrowing must route through one of:
///
///  * `checked_cast<To>(v)`   — LCS_CHECKs that `v` is representable in
///    `To` and names the value and the target range on failure;
///  * `checked_usize(v)`      — `checked_cast<std::size_t>`, the common
///    signed-index-to-size_t direction (guards negatives);
///  * `truncate_cast<To>(v)`  — *intentional* truncation (byte packing,
///    hash mixing). No check; the call spells out that bits are meant to
///    be dropped, so a reviewer never has to guess.
///
/// All three are constexpr and compile to the plain cast (plus, for the
/// checked forms, one range compare) — cheap enough for hot paths, and
/// consistent with the repo rule that invariant checks are never compiled
/// out.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace lcs::util {

/// Narrow `v` to `To`, LCS_CHECKing that the value survives the trip.
/// The failure message names the value and the target type's range.
template <class To, class From>
constexpr To checked_cast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast is for integer types only");
  LCS_CHECK(std::in_range<To>(v),
            "checked_cast: value " + std::to_string(v) +
                " is outside the target range [" +
                std::to_string(std::numeric_limits<To>::min()) + ", " +
                std::to_string(std::numeric_limits<To>::max()) + "]");
  return static_cast<To>(v);
}

/// `checked_cast<std::size_t>` — the common "signed index into a container
/// size" direction; guards against negative values.
template <class From>
constexpr std::size_t checked_usize(From v) {
  return checked_cast<std::size_t>(v);
}

/// Floating-point -> integer conversion with a range check: truncates
/// toward zero (exactly like static_cast) after LCS_CHECKing the value
/// fits `To`. NaN fails the check (comparisons with NaN are false). For
/// the paper's round-budget formulas (`8 * log2(n) + 20`-style), where a
/// silently wrapped budget would turn "did not converge" into an
/// infinite loop or a bogus abort.
template <class To>
constexpr To checked_trunc(double v) {
  static_assert(std::is_integral_v<To>,
                "checked_trunc converts floating point to integers");
  LCS_CHECK(v >= static_cast<double>(std::numeric_limits<To>::min()) &&
                v <= static_cast<double>(std::numeric_limits<To>::max()),
            "checked_trunc: value " + std::to_string(v) +
                " does not fit the target integer type");
  return static_cast<To>(v);
}

/// Intentional truncation: keep the low bits, drop the rest, on purpose.
/// For byte codecs and hash mixing where masking is the point. Unsigned
/// wrap-around semantics (the value is converted modulo 2^N).
template <class To, class From>
constexpr To truncate_cast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "truncate_cast is for integer types only");
  return static_cast<To>(v);
}

}  // namespace lcs::util
