/// \file bytes.h
/// Bounds-checked little-endian byte codecs for the persistence layer.
///
/// `ByteWriter` appends fixed-width little-endian fields (and
/// length-prefixed strings) to an in-memory buffer; `ByteReader` is the
/// symmetric strict decoder. Every read is bounds-checked and a failure
/// throws CheckFailure naming the record being decoded and the field that
/// ran off the end — the binary-cache rule that hostile or truncated input
/// is diagnosed, never silently misparsed, applies to every record built
/// on these (graph bundles, partitions, shortcut records).
///
/// Byte order is explicitly little-endian regardless of host, so records
/// written on any machine decode on any other.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/cast.h"
#include "util/check.h"

namespace lcs {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(util::truncate_cast<char>(v)); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(util::truncate_cast<char>((v >> (8 * i)) & 0xff));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(util::truncate_cast<char>((v >> (8 * i)) & 0xff));
  }

  void put_i32(std::int32_t v) { put_u32(util::truncate_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  /// u64 byte length followed by the raw bytes.
  void put_string(std::string_view s) {
    put_u64(s.size());
    bytes_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class ByteReader {
 public:
  /// `context` names the record being decoded, for diagnostics
  /// (e.g. "partition section").
  ByteReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t get_u8(const char* what) {
    need(1, what);
    return util::truncate_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t get_u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= util::truncate_cast<std::uint32_t>(
               util::truncate_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               util::truncate_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int32_t get_i32(const char* what) {
    return util::truncate_cast<std::int32_t>(get_u32(what));
  }
  [[nodiscard]] std::int64_t get_i64(const char* what) {
    return static_cast<std::int64_t>(get_u64(what));
  }

  [[nodiscard]] std::string_view get_string(const char* what) {
    const std::uint64_t len = get_u64(what);
    LCS_CHECK(len <= data_.size() - pos_,
              context_ + " truncated reading " + what + " (length " +
                  std::to_string(len) + " exceeds the remaining " +
                  std::to_string(data_.size() - pos_) + " bytes)");
    const std::string_view s = data_.substr(pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Strict decoders call this last: trailing bytes mean the record and the
  /// decoder disagree about the layout — diagnosed, never ignored.
  void expect_done() const {
    LCS_CHECK(remaining() == 0,
              context_ + " has " + std::to_string(remaining()) +
                  " trailing byte(s) after the last field");
  }

 private:
  void need(std::size_t n, const char* what) const {
    LCS_CHECK(n <= data_.size() - pos_,
              context_ + " truncated reading " + what);
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace lcs
