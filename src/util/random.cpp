#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace lcs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t seed, std::uint64_t key) {
  std::uint64_t state = seed ^ (key * 0xff51afd7ed558ccdULL);
  // Two SplitMix64 steps give full avalanche over both inputs.
  (void)splitmix64(state);
  return splitmix64(state);
}

std::uint64_t hash64(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  return hash64(hash64(seed, a), b);
}

bool hash_coin(std::uint64_t seed, std::uint64_t key, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(hash64(seed, key) >> 11) * 0x1.0p-53;  // [0,1)
  return u < p;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LCS_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  LCS_CHECK(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                  : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

GeometricSkip::GeometricSkip(double p) : p_(p), log_q_(std::log1p(-p)) {
  LCS_CHECK(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
}

std::uint64_t GeometricSkip::next(Rng& rng) const {
  if (p_ >= 1.0) return 1;
  if (p_ <= 0.0) return kNever;
  // Inverse CDF of Geometric(p) on {1, 2, ...}. Both logs are <= 0, so the
  // quotient is >= 0; dividing (rather than multiplying by a precomputed
  // reciprocal) keeps subnormal p exact: log1p(-p) is then a nonzero
  // subnormal and u = 0 still maps to skip 1 instead of 0 * inf = NaN.
  const double u = rng.next_double();  // in [0, 1), so log1p(-u) is finite
  const double skip = std::floor(std::log1p(-u) / log_q_);
  // Saturate anything unindexable (huge skip from a tiny p, inf from a
  // subnormal log_q_, or NaN) to "no further success". The comparison is
  // written so NaN falls into the saturating branch.
  if (!(skip < 0x1p63)) return kNever;
  return 1 + static_cast<std::uint64_t>(skip);
}

}  // namespace lcs
