/// \file sorted.h
/// The blessed sort-before-use idiom for unordered containers.
///
/// Lint rule D1 (src/lint/README.md) forbids iterating
/// `std::unordered_map/set` anywhere else in the repo: hash iteration
/// order is not a program order — it differs between standard libraries
/// and with rehash history, so any observable fed from it silently breaks
/// the bit-identical-everywhere guarantee. When a hash container is the
/// right lookup structure but its contents must be walked, route the walk
/// through these helpers: they materialize the elements and sort them by
/// key, turning hash order back into a program order.
///
/// This file is the one place allowed to touch unordered iteration
/// (allowlisted in the D1 rule), so the invariant "every iteration order
/// in the repo is deterministic" stays machine-checked.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace lcs::util {

/// All keys of an associative container, sorted ascending.
template <class Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// All (key, value) pairs of a map, sorted ascending by key.
template <class Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& kv : m) items.emplace_back(kv.first, kv.second);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

/// All elements of a set-like container, sorted ascending.
template <class Set>
std::vector<typename Set::key_type> sorted_elements(const Set& s) {
  std::vector<typename Set::key_type> out(s.begin(), s.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lcs::util
