#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace lcs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LCS_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  LCS_CHECK(!rows_.empty(), "call begin_row() before cell()");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return cell(std::string(buf));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    LCS_CHECK(row.size() == headers_.size(), "row/header column mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << "|" << std::string(width[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lcs
