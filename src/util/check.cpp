#include "util/check.h"

#include <sstream>

namespace lcs::detail {

void check_failed(const char* condition, const char* file, int line,
                  const std::string& message) {
  std::ostringstream out;
  out << "LCS_CHECK failed: (" << condition << ") at " << file << ":" << line;
  if (!message.empty()) out << " — " << message;
  throw CheckFailure(out.str());
}

}  // namespace lcs::detail
