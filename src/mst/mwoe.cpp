#include "mst/mwoe.h"

#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/superstep.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

std::uint64_t pack_candidate(Weight w, EdgeId e) {
  LCS_CHECK(w < (std::uint64_t{1} << 32), "weight must fit 32 bits");
  LCS_CHECK(e >= 0, "invalid edge id");
  return (w << 32) | util::checked_cast<std::uint32_t>(e);
}

Weight candidate_weight(std::uint64_t packed) { return packed >> 32; }

EdgeId candidate_edge(std::uint64_t packed) {
  return util::checked_cast<EdgeId>(packed & 0xFFFFFFFFu);
}

congest::PerNode<std::uint64_t> local_mwoe_candidates(
    const Graph& g, const Partition& fragments,
    const NeighborParts& neighbor_parts) {
  congest::PerNode<std::uint64_t> result(
      static_cast<std::size_t>(g.num_nodes()), kNoCandidate);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId mine = fragments.part(v);
    if (mine == kNoPart) continue;
    const auto nbs = g.neighbors(v);
    const auto& nb_parts = neighbor_parts.of[static_cast<std::size_t>(v)];
    for (std::size_t k = 0; k < nbs.size(); ++k) {
      if (nb_parts[k] == mine) continue;  // internal edge
      const auto cand =
          pack_candidate(g.edge(nbs[k].edge).w, nbs[k].edge);
      result[static_cast<std::size_t>(v)] =
          std::min(result[static_cast<std::size_t>(v)], cand);
    }
  }
  return result;
}

bool is_head(std::uint64_t seed, PartId fragment, std::int32_t phase) {
  return (hash64(seed, static_cast<std::uint64_t>(fragment),
                 static_cast<std::uint64_t>(phase)) &
          1u) != 0;
}

}  // namespace lcs
