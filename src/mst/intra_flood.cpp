#include "mst/intra_flood.h"

#include <algorithm>
#include <limits>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/superstep.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

class MinFloodProcess final : public congest::Process {
 public:
  MinFloodProcess(NodeId id, const Partition& partition,
                  const NeighborParts& neighbor_parts, std::uint64_t init)
      : value(init),
        id_(id),
        partition_(partition),
        neighbor_parts_(neighbor_parts) {}

  std::uint64_t value;

  void on_start(Context& ctx) override {
    if (partition_.part(id_) == kNoPart) return;
    if (value != std::numeric_limits<std::uint64_t>::max()) announce(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    bool improved = false;
    for (const auto& in : inbox) {
      if (in.msg.words[0] < value) {
        value = in.msg.words[0];
        improved = true;
      }
    }
    if (improved) announce(ctx);
  }

 private:
  void announce(Context& ctx) {
    const PartId mine = partition_.part(id_);
    const auto nbs = ctx.neighbors();
    const auto& nb_parts = neighbor_parts_.of[static_cast<std::size_t>(id_)];
    for (std::size_t k = 0; k < nbs.size(); ++k) {
      if (nb_parts[k] == mine) ctx.send(nbs[k].edge, Message(0, value));
    }
  }

  NodeId id_;
  const Partition& partition_;
  const NeighborParts& neighbor_parts_;
};

}  // namespace

congest::PerNode<std::uint64_t> intra_part_min_flood(
    congest::Network& net, const Partition& partition,
    const NeighborParts& neighbor_parts,
    const congest::PerNode<std::uint64_t>& init) {
  LCS_CHECK(init.size() == static_cast<std::size_t>(net.num_nodes()),
            "one value per node required");
  std::vector<MinFloodProcess> procs;
  procs.reserve(init.size());
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, partition, neighbor_parts,
                       init[static_cast<std::size_t>(v)]);
  congest::run_phase(net, procs);

  congest::PerNode<std::uint64_t> out(init.size());
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    out[static_cast<std::size_t>(v)] = procs[static_cast<std::size_t>(v)].value;
  return out;
}

}  // namespace lcs
