#include "mst/boruvka_shortcut.h"

#include <cmath>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "mst/boruvka_common.h"
#include "mst/mwoe.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/part_routing.h"
#include "shortcut/superstep.h"
#include "shortcut/tree_ops.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

DistributedMst mst_boruvka_shortcut(congest::Network& net,
                                    const SpanningTree& tree,
                                    const ShortcutMstOptions& options) {
  const Graph& g = net.graph();
  const NodeId n = net.num_nodes();
  const std::int64_t rounds_before = net.total_rounds();

  Partition fragments = make_singleton_partition(n);
  std::vector<bool> mst_edge(static_cast<std::size_t>(g.num_edges()), false);
  FindShortcutParams params = options.shortcut_params;

  const std::int32_t max_phases =
      8 * util::checked_trunc<std::int32_t>(
              std::log2(std::max<double>(2.0, n))) +
      20;
  std::int32_t phase = 0;
  for (;; ++phase) {
    LCS_CHECK(phase < max_phases, "Boruvka did not converge (bug)");

    // (1) Who are my neighbors' fragments? One round.
    const NeighborParts neighbor_parts =
        exchange_neighbor_parts(net, fragments);

    // (2) Shortcut for the current fragments (Appendix-A doubling).
    params.seed = hash64(options.seed, 0xC0FFEE, phase);
    const FindShortcutResult found =
        find_shortcut_doubling(net, tree, fragments, params);
    params.c = found.stats.used_c;  // warm start for the next phase
    params.b = found.stats.used_b;
    const std::int32_t b_steps = 3 * found.stats.used_b;

    // (3) Fragment MWOE via Theorem-2 min-flood on the shortcut.
    const auto local = local_mwoe_candidates(g, fragments, neighbor_parts);
    const auto mwoe =
        part_min_flood(net, tree, fragments, found.state, neighbor_parts,
                       b_steps, local);

    // (4) Star merges: mark MST edges, propose, broadcast, apply.
    StarMergeStep step = star_merge_step(g, fragments, neighbor_parts, mwoe,
                                         options.seed, phase, mst_edge);
    const auto delivered =
        part_broadcast(net, tree, fragments, found.state, neighbor_parts,
                       b_steps, step.proposals);
    apply_merges(fragments, delivered);

    // (5) Termination: does any fragment still have an outgoing edge?
    if (!global_or(net, tree, step.has_outgoing)) break;
  }

  return finish_mst(g, mst_edge, phase + 1,
                    net.total_rounds() - rounds_before);
}

}  // namespace lcs
