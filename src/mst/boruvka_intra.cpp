#include "mst/boruvka_intra.h"

#include <cmath>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "mst/boruvka_common.h"
#include "mst/intra_flood.h"
#include "mst/mwoe.h"
#include "shortcut/superstep.h"
#include "shortcut/tree_ops.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

DistributedMst mst_boruvka_intra(congest::Network& net,
                                 const SpanningTree& tree,
                                 std::uint64_t seed) {
  const Graph& g = net.graph();
  const NodeId n = net.num_nodes();
  const std::int64_t rounds_before = net.total_rounds();

  Partition fragments = make_singleton_partition(n);
  std::vector<bool> mst_edge(static_cast<std::size_t>(g.num_edges()), false);

  const std::int32_t max_phases =
      8 * util::checked_trunc<std::int32_t>(
              std::log2(std::max<double>(2.0, n))) +
      20;
  std::int32_t phase = 0;
  for (;; ++phase) {
    LCS_CHECK(phase < max_phases, "Boruvka did not converge (bug)");

    const NeighborParts neighbor_parts =
        exchange_neighbor_parts(net, fragments);

    // Fragment MWOE by flooding inside the fragment: Θ(fragment diameter).
    const auto local = local_mwoe_candidates(g, fragments, neighbor_parts);
    const auto mwoe =
        intra_part_min_flood(net, fragments, neighbor_parts, local);

    StarMergeStep step = star_merge_step(g, fragments, neighbor_parts, mwoe,
                                         seed, phase, mst_edge);
    const auto delivered =
        intra_part_min_flood(net, fragments, neighbor_parts, step.proposals);
    apply_merges(fragments, delivered);

    if (!global_or(net, tree, step.has_outgoing)) break;
  }

  return finish_mst(g, mst_edge, phase + 1,
                    net.total_rounds() - rounds_before);
}

}  // namespace lcs
