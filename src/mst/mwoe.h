/// \file mwoe.h
/// Minimum-weight-outgoing-edge plumbing shared by all Boruvka variants.
///
/// Every Boruvka phase starts the same way: nodes exchange fragment ids
/// with their neighbors (one round), then each node computes the cheapest
/// incident edge leaving its fragment, encoded as one word so that the
/// minimum over a fragment can be computed with any min-aggregation:
///     packed = (weight << 32) | edge id          (kNoValue = no candidate)
/// Weight keys are compared lexicographically by (weight, edge id) — the
/// same order as the centralized Kruskal reference — so the fragment MWOE
/// is unique and the distributed result is reproducible bit for bit.
#pragma once

#include <limits>

#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/superstep.h"

namespace lcs {

inline constexpr std::uint64_t kNoCandidate =
    std::numeric_limits<std::uint64_t>::max();

/// Pack an MWOE candidate. Requires w < 2^32 and e < 2^31 (checked).
std::uint64_t pack_candidate(Weight w, EdgeId e);
Weight candidate_weight(std::uint64_t packed);
EdgeId candidate_edge(std::uint64_t packed);

/// Local step of every Boruvka phase: given each node's fragment id and the
/// fragments of its neighbors (from exchange_neighbor_parts on the fragment
/// partition), return each node's packed candidate (kNoCandidate if none).
/// Purely local — zero rounds.
congest::PerNode<std::uint64_t> local_mwoe_candidates(
    const Graph& g, const Partition& fragments,
    const NeighborParts& neighbor_parts);

/// Result of any distributed MST run.
struct DistributedMst {
  std::vector<EdgeId> edges;  ///< sorted MST edge ids
  Weight total_weight = 0;
  std::int32_t phases = 0;     ///< Boruvka phases executed
  std::int64_t rounds = 0;     ///< CONGEST rounds consumed by the run
};

/// Shared-randomness head/tail coin for star merges (Lemma 4): any node
/// that knows (seed, fragment id, phase) computes the same coin.
bool is_head(std::uint64_t seed, PartId fragment, std::int32_t phase);

}  // namespace lcs
