#include "mst/pipeline.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/union_find.h"
#include "mst/boruvka_common.h"
#include "mst/mwoe.h"
#include "shortcut/superstep.h"
#include "shortcut/tree_ops.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

enum Tag : std::uint32_t { kItem, kEnd };

/// Sorted-merge pipelined convergecast: each node emits its per-fragment
/// minima in increasing fragment order, one per round; fragment f may be
/// emitted once every child's stream is provably past f (its last received
/// fragment id is >= f, or it has ENDed). The standard argument gives
/// O(D + #fragments) rounds.
class UpcastProcess final : public congest::Process {
 public:
  UpcastProcess(NodeId id, const SpanningTree& tree, PartId own_frag,
                std::uint64_t own_candidate)
      : id_(id), tree_(tree) {
    if (own_frag != kNoPart && own_candidate != kNoCandidate)
      best_[own_frag] = own_candidate;
  }

  /// At the tree root: the complete fragment -> MWOE map.
  const std::map<PartId, std::uint64_t>& collected() const { return best_; }

  void on_start(Context& ctx) override {
    for (const EdgeId ce : tree_.children_edges[static_cast<std::size_t>(id_)])
      child_progress_[ce] = -1;  // nothing received yet
    step(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      if (in.msg.tag == kItem) {
        const auto f = util::checked_cast<PartId>(in.msg.words[0]);
        const std::uint64_t cand = in.msg.words[1];
        const auto it = best_.find(f);
        if (it == best_.end() || cand < it->second) best_[f] = cand;
        child_progress_[in.edge] = f;
      } else {
        child_progress_.erase(in.edge);
        ++ended_children_;
      }
    }
    step(ctx);
  }

 private:
  void step(Context& ctx) {
    if (end_sent_) return;
    const EdgeId pe = tree_.parent_edge[static_cast<std::size_t>(id_)];
    if (pe == kNoEdge) return;  // root only collects

    // Safe frontier: smallest fragment id that might still arrive.
    PartId frontier = std::numeric_limits<PartId>::max();
    for (const auto& [edge, last] : child_progress_)
      frontier = std::min(frontier, last);

    // Emit the next fragment at or below the frontier (children send in
    // strictly increasing order, so nothing smaller can arrive later).
    const auto it = best_.upper_bound(emitted_up_to_);
    if (it != best_.end() &&
        (child_progress_.empty() || it->first <= frontier)) {
      ctx.send(pe, Message(kItem, static_cast<std::uint64_t>(it->first),
                           it->second));
      emitted_up_to_ = it->first;
      ctx.wake_next_round();
      return;
    }
    // Done once every child ended and everything was emitted.
    if (child_progress_.empty() && best_.upper_bound(emitted_up_to_) == best_.end()) {
      ctx.send(pe, Message(kEnd));
      end_sent_ = true;
    }
  }

  NodeId id_;
  const SpanningTree& tree_;
  std::map<PartId, std::uint64_t> best_;
  std::map<EdgeId, PartId> child_progress_;  // child edge -> last frag id
  int ended_children_ = 0;
  PartId emitted_up_to_ = -1;
  bool end_sent_ = false;
};

/// Pipelined flood of the root's merge triples down the whole tree.
class DowncastProcess final : public congest::Process {
 public:
  struct Triple {
    PartId frag;
    PartId new_id;
    EdgeId mwoe_edge;
  };

  DowncastProcess(NodeId id, const SpanningTree& tree,
                  const std::vector<Triple>* root_triples)
      : id_(id), tree_(tree), root_triples_(root_triples) {}

  std::vector<Triple> received;

  void on_start(Context& ctx) override {
    if (id_ != tree_.root) return;
    received = *root_triples_;
    for (const auto& t : received) queue_.push_back(t);
    flush(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      LCS_CHECK(in.msg.tag == kItem, "unexpected downcast message");
      const Triple t{util::checked_cast<PartId>(in.msg.words[0]),
                     util::checked_cast<PartId>(in.msg.words[1]),
                     util::checked_cast<EdgeId>(in.msg.words[2])};
      received.push_back(t);
      queue_.push_back(t);
    }
    flush(ctx);
  }

 private:
  void flush(Context& ctx) {
    if (cursor_ >= queue_.size()) return;
    const Triple& t = queue_[cursor_++];
    for (const EdgeId ce : tree_.children_edges[static_cast<std::size_t>(id_)])
      ctx.send(ce, Message(kItem, static_cast<std::uint64_t>(t.frag),
                           static_cast<std::uint64_t>(t.new_id),
                           static_cast<std::uint64_t>(t.mwoe_edge)));
    if (cursor_ < queue_.size()) ctx.wake_next_round();
  }

  NodeId id_;
  const SpanningTree& tree_;
  const std::vector<Triple>* root_triples_;
  std::deque<Triple> queue_;
  std::size_t cursor_ = 0;
};

}  // namespace

DistributedMst mst_pipeline(congest::Network& net, const SpanningTree& tree) {
  const Graph& g = net.graph();
  const NodeId n = net.num_nodes();
  const std::int64_t rounds_before = net.total_rounds();

  Partition fragments = make_singleton_partition(n);
  std::vector<bool> mst_edge(static_cast<std::size_t>(g.num_edges()), false);

  const std::int32_t max_phases =
      2 * util::checked_trunc<std::int32_t>(
              std::log2(std::max<double>(2.0, n))) +
      8;
  std::int32_t phase = 0;
  for (;; ++phase) {
    LCS_CHECK(phase < max_phases, "pipeline MST did not converge (bug)");

    const NeighborParts neighbor_parts =
        exchange_neighbor_parts(net, fragments);
    const auto local = local_mwoe_candidates(g, fragments, neighbor_parts);

    // Upcast all fragment MWOEs to the root (O(D + #fragments)).
    std::vector<UpcastProcess> up;
    up.reserve(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v)
      up.emplace_back(v, tree, fragments.part(v),
                      local[static_cast<std::size_t>(v)]);
    congest::run_phase(net, up);
    const auto& mwoes = up[static_cast<std::size_t>(tree.root)].collected();

    // Root merges fragments locally (union-find over O(#fragments) words —
    // the root is a single node and this is its local computation).
    UnionFind uf(static_cast<std::size_t>(n));
    for (const auto& [frag, cand] : mwoes) {
      const auto& ed = g.edge(candidate_edge(cand));
      const PartId target = fragments.part(ed.u) == frag
                                ? fragments.part(ed.v)
                                : fragments.part(ed.u);
      uf.unite(static_cast<std::size_t>(frag), static_cast<std::size_t>(target));
    }
    // Representative = smallest fragment id in the merged component.
    std::vector<PartId> rep(static_cast<std::size_t>(n), kNoPart);
    for (const auto& [frag, cand] : mwoes) {
      (void)cand;
      for (const PartId f : {frag}) {
        const std::size_t root_id = uf.find(static_cast<std::size_t>(f));
        if (rep[root_id] == kNoPart || f < rep[root_id]) rep[root_id] = f;
      }
    }
    // Also consider merge targets as representative candidates.
    for (const auto& [frag, cand] : mwoes) {
      const auto& ed = g.edge(candidate_edge(cand));
      const PartId target = fragments.part(ed.u) == frag
                                ? fragments.part(ed.v)
                                : fragments.part(ed.u);
      const std::size_t root_id = uf.find(static_cast<std::size_t>(target));
      if (rep[root_id] == kNoPart || target < rep[root_id])
        rep[root_id] = target;
    }

    std::vector<DowncastProcess::Triple> triples;
    triples.reserve(mwoes.size());
    for (const auto& [frag, cand] : mwoes) {
      triples.push_back({frag,
                         rep[uf.find(static_cast<std::size_t>(frag))],
                         candidate_edge(cand)});
    }

    // Downcast the merge decisions (O(D + #fragments)).
    std::vector<DowncastProcess> down;
    down.reserve(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) down.emplace_back(v, tree, &triples);
    congest::run_phase(net, down);

    // Apply locally: adopt new ids, mark merge edges (owner side).
    congest::PerNode<bool> has_outgoing(static_cast<std::size_t>(n), false);
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& t : down[static_cast<std::size_t>(v)].received) {
        if (fragments.part(v) == t.frag) {
          has_outgoing[static_cast<std::size_t>(v)] = true;
          const auto& ed = g.edge(t.mwoe_edge);
          if (ed.u == v || ed.v == v)
            mst_edge[static_cast<std::size_t>(t.mwoe_edge)] = true;
        }
      }
    }
    // Adoption after marking (marking used the old fragment ids).
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& t : down[static_cast<std::size_t>(v)].received) {
        if (fragments.part(v) == t.frag)
          fragments.part_of[static_cast<std::size_t>(v)] = t.new_id;
      }
    }

    if (!global_or(net, tree, has_outgoing)) break;
  }

  return finish_mst(g, mst_edge, phase + 1,
                    net.total_rounds() - rounds_before);
}

}  // namespace lcs
