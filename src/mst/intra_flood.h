/// \file intra_flood.h
/// Min-flooding restricted to part-internal edges — the *strawman*
/// communication scheme the paper's Section 1.2 motivates against: a part
/// may only talk over G[Pi], so every aggregation costs Θ(part diameter)
/// rounds. Used by the no-shortcut Boruvka baseline (and Phase A of the
/// √n + D baseline).
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/partition.h"
#include "shortcut/superstep.h"

namespace lcs {

/// Every part member ends with the minimum of `init` over its part's
/// members (entries of unassigned nodes are ignored). Values flood along
/// part-internal edges only; nodes resend on improvement, so the phase
/// quiesces after O(max part diameter) rounds.
congest::PerNode<std::uint64_t> intra_part_min_flood(
    congest::Network& net, const Partition& partition,
    const NeighborParts& neighbor_parts,
    const congest::PerNode<std::uint64_t>& init);

}  // namespace lcs
