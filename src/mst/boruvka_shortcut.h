/// \file boruvka_shortcut.h
/// Lemma 4: distributed MST via Boruvka + tree-restricted shortcuts.
///
/// Each phase: (1) neighbors exchange fragment ids; (2) FindShortcut (with
/// Appendix-A doubling, warm-started from the previous phase) constructs a
/// shortcut for the current fragment partition; (3) the fragment MWOE is
/// min-flooded over the shortcut supergraph (Theorem 2 routing); (4) star
/// merges are proposed, broadcast over the same shortcut, and applied; (5)
/// an O(D) tree OR-convergecast decides termination. On graphs with good
/// shortcuts every phase costs Õ(D), giving Õ(D) MST overall — the paper's
/// headline application.
#pragma once

#include "congest/network.h"
#include "mst/mwoe.h"
#include "shortcut/find_shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct ShortcutMstOptions {
  std::uint64_t seed = 1;  ///< drives coins and CoreFast sampling
  /// Initial doubling estimates; successful values are carried between
  /// phases so later phases usually need a single trial.
  FindShortcutParams shortcut_params;
};

/// Compute the MST of `net.graph()` (weights must fit 32 bits). Returns the
/// exact MST under the (weight, edge id) order — identical to kruskal_mst.
DistributedMst mst_boruvka_shortcut(congest::Network& net,
                                    const SpanningTree& tree,
                                    const ShortcutMstOptions& options = {});

}  // namespace lcs
