/// \file boruvka_common.h
/// The per-phase pieces every Boruvka variant shares once the fragment MWOE
/// is known at all fragment members (by whatever aggregation mechanism the
/// variant uses).
///
/// Star merges (Lemma 4's trick): each fragment flips a shared-randomness
/// head/tail coin; a tail whose MWOE points at a head adopts the head's id.
/// Only tails move and heads never do, so merges never chain and the new
/// fragments stay connected. Every fragment's MWOE is recorded as an MST
/// edge immediately (the cut property holds whether or not the merge
/// happens this phase; with unique (weight, id) keys mutual MWOEs coincide,
/// so marked edges are exactly the eventual merge edges).
#pragma once

#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "mst/mwoe.h"
#include "shortcut/superstep.h"

namespace lcs {

struct StarMergeStep {
  /// proposal[v] = head fragment id to adopt, at the MWOE owner of a
  /// merging tail fragment; kNoCandidate elsewhere. Broadcast it over the
  /// fragment (any min mechanism) and call apply_merges.
  congest::PerNode<std::uint64_t> proposals;
  /// has_outgoing[v]: this node's fragment had an MWOE (for termination).
  congest::PerNode<bool> has_outgoing;
};

/// Local decisions after the MWOE flood: identify each fragment's owner
/// (the in-fragment endpoint of the fragment MWOE), mark the MWOE into
/// `mst_edge`, and emit tail->head merge proposals. Zero rounds — all
/// inputs are node-local knowledge.
StarMergeStep star_merge_step(const Graph& g, const Partition& fragments,
                              const NeighborParts& neighbor_parts,
                              const congest::PerNode<std::uint64_t>& mwoe,
                              std::uint64_t seed, std::int32_t phase,
                              std::vector<bool>& mst_edge);

/// Adopt broadcast merge proposals: members of a tail fragment switch to
/// the head id. Returns the number of nodes that changed fragment.
std::int64_t apply_merges(Partition& fragments,
                          const congest::PerNode<std::uint64_t>& delivered);

/// Collect the marked MST edges into a DistributedMst (weight from `g`).
DistributedMst finish_mst(const Graph& g, const std::vector<bool>& mst_edge,
                          std::int32_t phases, std::int64_t rounds);

}  // namespace lcs
