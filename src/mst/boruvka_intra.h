/// \file boruvka_intra.h
/// The no-shortcut strawman: Boruvka where fragments communicate only over
/// their own internal edges (G[Pi]). Correct, simple — and slow: each phase
/// costs Θ(max fragment diameter) rounds, which grows toward Θ(n) on
/// high-diameter fragments. This is precisely the problem statement of the
/// paper's Section 1.2, kept as a baseline for the E7/E9 benches.
#pragma once

#include "congest/network.h"
#include "mst/mwoe.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Compute the MST of `net.graph()` with intra-fragment flooding only
/// (the spanning tree is used solely for the O(D) termination checks).
DistributedMst mst_boruvka_intra(congest::Network& net,
                                 const SpanningTree& tree,
                                 std::uint64_t seed = 1);

}  // namespace lcs
