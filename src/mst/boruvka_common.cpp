#include "mst/boruvka_common.h"

#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "mst/mwoe.h"
#include "shortcut/superstep.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

StarMergeStep star_merge_step(const Graph& g, const Partition& fragments,
                              const NeighborParts& neighbor_parts,
                              const congest::PerNode<std::uint64_t>& mwoe,
                              std::uint64_t seed, std::int32_t phase,
                              std::vector<bool>& mst_edge) {
  StarMergeStep step;
  step.proposals.assign(static_cast<std::size_t>(g.num_nodes()),
                        kNoCandidate);
  step.has_outgoing.assign(static_cast<std::size_t>(g.num_nodes()), false);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId mine = fragments.part(v);
    if (mine == kNoPart) continue;
    const std::uint64_t packed = mwoe[static_cast<std::size_t>(v)];
    if (packed == kNoCandidate) continue;
    step.has_outgoing[static_cast<std::size_t>(v)] = true;

    // Am I the owner — the in-fragment endpoint of the fragment's MWOE?
    const EdgeId e = candidate_edge(packed);
    const auto& ed = g.edge(e);
    if (ed.u != v && ed.v != v) continue;
    const NodeId other = ed.u == v ? ed.v : ed.u;
    const PartId target = fragments.part(other);
    LCS_CHECK(target != mine, "fragment MWOE must leave the fragment");

    // The MWOE always joins the MST (cut property).
    mst_edge[static_cast<std::size_t>(e)] = true;

    // Tail -> head merge proposal.
    if (!is_head(seed, mine, phase) && is_head(seed, target, phase)) {
      step.proposals[static_cast<std::size_t>(v)] =
          static_cast<std::uint64_t>(target);
    }
  }
  (void)neighbor_parts;
  return step;
}

std::int64_t apply_merges(Partition& fragments,
                          const congest::PerNode<std::uint64_t>& delivered) {
  std::int64_t changed = 0;
  for (std::size_t v = 0; v < fragments.part_of.size(); ++v) {
    if (fragments.part_of[v] == kNoPart) continue;
    if (delivered[v] == kNoCandidate) continue;
    const auto head = util::checked_cast<PartId>(delivered[v]);
    if (fragments.part_of[v] != head) {
      fragments.part_of[v] = head;
      ++changed;
    }
  }
  return changed;
}

DistributedMst finish_mst(const Graph& g, const std::vector<bool>& mst_edge,
                          std::int32_t phases, std::int64_t rounds) {
  DistributedMst result;
  result.phases = phases;
  result.rounds = rounds;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (mst_edge[static_cast<std::size_t>(e)]) {
      result.edges.push_back(e);
      result.total_weight += g.edge(e).w;
    }
  }
  return result;
}

}  // namespace lcs
