/// \file pipeline.h
/// The classical pipelined-convergecast MST baseline (Garay–Kutten–Peleg
/// style "Phase B"): every Boruvka phase streams all fragment MWOEs up the
/// BFS tree in sorted order (O(D + #fragments) rounds by the standard
/// sorted-merge pipelining argument), the root merges fragments with a
/// local union-find, and the (fragment, new id, merge edge) triples flood
/// back down pipelined. Full merging halves the fragment count every
/// phase, so the total is O((n + D) + (n/2 + D) + ...) = O(n + D log n).
///
/// This is the strongest classical non-shortcut comparator we implement:
/// it beats intra-fragment flooding everywhere but cannot beat Õ(D)
/// shortcut Boruvka on low-diameter graphs — exactly the gap the paper's
/// framework closes (benches E7/E9).
#pragma once

#include "congest/network.h"
#include "mst/mwoe.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Compute the MST of `net.graph()` with root-pipelined Boruvka phases.
DistributedMst mst_pipeline(congest::Network& net, const SpanningTree& tree);

}  // namespace lcs
