#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/lexer.h"
#include "lint/rules.h"

namespace lcs::lint {

namespace {

struct Suppression {
  int line = 0;            ///< line the comment sits on
  int target_line = 0;     ///< line the suppression applies to
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
  bool malformed = false;  ///< missing reason / unknown rule (reported once)
};

bool is_known_rule(std::string_view id) {
  for (const auto& r : rule_table())
    if (r.id == id) return true;
  return false;
}

/// Parse `// lcs-lint: allow(RULE[,RULE...]) reason` out of a comment
/// token. Returns true if the comment is a suppression directive at all
/// (even a malformed one — those become LINT findings, not silent noise).
bool parse_suppression(const Token& comment, Suppression* out,
                       std::vector<Finding>* findings,
                       std::string_view path) {
  // A directive must open the comment (`// lcs-lint: ...`) — prose that
  // merely *mentions* the syntax (docs, this file) is not a directive.
  std::string_view text = comment.text;
  while (!text.empty() && (text.front() == '/' || text.front() == '*' ||
                           text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  const std::size_t tag = text.find("lcs-lint:");
  if (tag != 0) return false;

  out->line = comment.line;
  const auto bad = [&](const std::string& what) {
    findings->push_back(Finding{std::string(path), comment.line, comment.col,
                                "LINT", what,
                                "write: // lcs-lint: allow(RULE) reason"});
    out->malformed = true;
  };

  const std::size_t allow = text.find("allow(", tag);
  if (allow == std::string_view::npos) {
    bad("malformed lcs-lint directive (expected 'allow(RULE) reason')");
    return true;
  }
  const std::size_t close = text.find(')', allow);
  if (close == std::string_view::npos) {
    bad("malformed lcs-lint directive (unclosed 'allow(')");
    return true;
  }

  std::string rules(text.substr(allow + 6, close - allow - 6));
  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    // Trim.
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    rule = rule.substr(b, e - b + 1);
    if (!is_known_rule(rule)) {
      bad("unknown rule '" + rule + "' in lcs-lint allow()");
      continue;
    }
    out->rules.push_back(rule);
  }
  if (out->rules.empty() && !out->malformed) {
    bad("lcs-lint allow() names no rule");
  }

  std::string reason(text.substr(close + 1));
  const auto rb = reason.find_first_not_of(" \t");
  if (rb == std::string::npos) {
    bad("lcs-lint suppression has no reason — every allow() must say why");
  } else {
    out->reason = reason.substr(rb);
  }
  return true;
}

}  // namespace

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "no iteration over std::unordered_map/set (hash order is not a "
             "program order); sort via util/sorted.h or use std::map"},
      {"D2", "no rand/random_device/clocks outside util/random.* and "
             "explicitly-suppressed timing report fields"},
      {"D3", "no ordering, hashing, or uintptr_t round-trips of raw "
             "pointer values"},
      {"D4", "no floating-point accumulation in engine/metric code "
             "(src/congest, src/mst, src/shortcut, src/apps, src/tree, "
             "src/dynamic, graph/metrics)"},
      {"S1", "integer narrowing must use util::checked_cast / "
             "util::truncate_cast (util/cast.h), not ad-hoc static_cast"},
      {"S2", "no naked std::thread/std::async outside util/worker_pool"},
      {"S3", "status/result returns in io/persist/cache/bytes headers must "
             "be [[nodiscard]]"},
  };
  return kRules;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source,
                                 int* suppressions_used) {
  const std::vector<Token> tokens = lex(source);

  // Split comments (suppression carriers) from code (what rules see).
  std::vector<Token> code;
  code.reserve(tokens.size());
  std::vector<Finding> findings;
  std::vector<Suppression> sups;
  std::set<int> code_lines;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kComment) {
      Suppression s;
      if (parse_suppression(t, &s, &findings, path)) sups.push_back(s);
      continue;
    }
    code.push_back(t);
    code_lines.insert(t.line);
  }

  // A suppression covers its own line if code shares it; a full-line
  // comment covers the next code line (within two lines, so a directive
  // cannot drift away from what it excuses).
  for (Suppression& s : sups) {
    if (code_lines.count(s.line) > 0) {
      s.target_line = s.line;
    } else {
      s.target_line = 0;
      for (int l = s.line + 1; l <= s.line + 2; ++l) {
        if (code_lines.count(l) > 0) { s.target_line = l; break; }
      }
    }
  }

  // Run the rules.
  std::vector<Finding> raw;
  detail::RuleContext ctx{
      path, code,
      [&](int line, int col, std::string_view rule, std::string message,
          std::string hint) {
        raw.push_back(Finding{std::string(path), line, col, std::string(rule),
                              std::move(message), std::move(hint)});
      }};
  detail::check_d1_unordered_iteration(ctx);
  detail::check_d2_nondeterminism_sources(ctx);
  detail::check_d3_pointer_ordering(ctx);
  detail::check_d4_float_accumulation(ctx);
  detail::check_s1_unchecked_narrowing(ctx);
  detail::check_s2_naked_threads(ctx);
  detail::check_s3_nodiscard_status(ctx);

  // Apply suppressions. A malformed directive (no reason, unknown rule)
  // suppresses nothing: it is already a LINT finding, and honoring it would
  // let a reason-less allow() pass everywhere except the directive line.
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.malformed || s.target_line != f.line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
          s.rules.end())
        continue;
      s.used = true;
      suppressed = true;
    }
    if (!suppressed) findings.push_back(std::move(f));
  }

  // Stale suppressions are themselves findings: an allow() that excuses
  // nothing rots into a license the next edit silently inherits.
  for (const Suppression& s : sups) {
    if (s.used || s.malformed) continue;
    std::string rules;
    for (const auto& r : s.rules) {
      if (!rules.empty()) rules += ',';
      rules += r;
    }
    findings.push_back(
        Finding{std::string(path), s.line, 1, "LINT",
                "unused lcs-lint suppression for " + rules +
                    " — it matches no finding on its line",
                "remove the stale allow() (or move it to the line it "
                "excuses)"});
  }

  if (suppressions_used != nullptr) {
    *suppressions_used = 0;
    for (const Suppression& s : sups)
      if (s.used) ++*suppressions_used;
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.col, a.rule) <
                     std::tie(b.line, b.col, b.rule);
            });
  return findings;
}

LintResult lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;

  std::vector<std::string> files;
  const auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext != ".cpp" && ext != ".h" && ext != ".cc" && ext != ".hpp") return;
    const std::string s = p.generic_string();
    // The fixture corpus deliberately violates every rule.
    if (s.find("lint_fixtures") != std::string::npos) return;
    files.push_back(s);
  };

  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) consider(e.path());
      }
    } else if (fs::is_regular_file(p)) {
      consider(fs::path(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  LintResult result;
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    int used = 0;
    std::vector<Finding> file_findings = lint_source(f, source, &used);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(file_findings.begin()),
                           std::make_move_iterator(file_findings.end()));
    result.suppressions_used += used;
    ++result.files_scanned;
  }
  return result;
}

std::string format_finding(const Finding& f) {
  std::string out = f.file + ":" + std::to_string(f.line) + ":" +
                    std::to_string(f.col) + ": " + f.rule + ": " + f.message;
  if (!f.hint.empty()) out += " (fix: " + f.hint + ")";
  return out;
}

}  // namespace lcs::lint
