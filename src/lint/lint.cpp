#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/parse.h"
#include "lint/rules.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace lcs::lint {

namespace {

bool is_known_rule(std::string_view id) {
  for (const auto& r : rule_table())
    if (r.id == id) return true;
  return false;
}

/// Parse `// lcs-lint: allow(RULE[,RULE...]) reason` out of a comment
/// token. Returns true if the comment is a suppression directive at all
/// (even a malformed one — those become LINT findings, not silent noise).
bool parse_suppression(const Token& comment, detail::SuppressionRec* out,
                       std::vector<Finding>* findings,
                       std::string_view path) {
  // A directive must open the comment (`// lcs-lint: ...`) — prose that
  // merely *mentions* the syntax (docs, this file) is not a directive.
  std::string_view text = comment.text;
  while (!text.empty() && (text.front() == '/' || text.front() == '*' ||
                           text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  const std::size_t tag = text.find("lcs-lint:");
  if (tag != 0) return false;

  out->line = comment.line;
  out->col = comment.col;
  const auto bad = [&](const std::string& what) {
    findings->push_back(Finding{std::string(path), comment.line, comment.col,
                                "LINT", what,
                                "write: // lcs-lint: allow(RULE) reason"});
    out->malformed = true;
  };

  const std::size_t allow = text.find("allow(", tag);
  if (allow == std::string_view::npos) {
    bad("malformed lcs-lint directive (expected 'allow(RULE) reason')");
    return true;
  }
  const std::size_t close = text.find(')', allow);
  if (close == std::string_view::npos) {
    bad("malformed lcs-lint directive (unclosed 'allow(')");
    return true;
  }

  std::string rules(text.substr(allow + 6, close - allow - 6));
  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    // Trim.
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    rule = rule.substr(b, e - b + 1);
    if (!is_known_rule(rule)) {
      bad("unknown rule '" + rule + "' in lcs-lint allow()");
      continue;
    }
    out->rules.push_back(rule);
  }
  if (out->rules.empty() && !out->malformed) {
    bad("lcs-lint allow() names no rule");
  }

  std::string reason(text.substr(close + 1));
  const auto rb = reason.find_first_not_of(" \t");
  if (rb == std::string::npos) {
    bad("lcs-lint suppression has no reason — every allow() must say why");
  } else {
    out->reason = reason.substr(rb);
  }
  return true;
}

/// Apply a file's suppressions to its findings (per-file and project
/// findings alike). Unsuppressed findings are returned; stale directives
/// become LINT findings. A malformed directive (no reason, unknown rule)
/// suppresses nothing: it is already a LINT finding, and honoring it
/// would let a reason-less allow() pass everywhere except the directive
/// line.
std::vector<Finding> apply_suppressions(
    std::string_view path, const std::vector<detail::SuppressionRec>& sups,
    std::vector<Finding> raw, int* suppressions_used) {
  std::vector<Finding> kept;
  kept.reserve(raw.size());
  std::vector<bool> used(sups.size(), false);

  for (Finding& f : raw) {
    bool suppressed = false;
    for (std::size_t s = 0; s < sups.size(); ++s) {
      const detail::SuppressionRec& sup = sups[s];
      if (sup.malformed || sup.target_line != f.line) continue;
      if (std::find(sup.rules.begin(), sup.rules.end(), f.rule) ==
          sup.rules.end())
        continue;
      used[s] = true;
      suppressed = true;
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  // Stale suppressions are themselves findings: an allow() that excuses
  // nothing rots into a license the next edit silently inherits.
  for (std::size_t s = 0; s < sups.size(); ++s) {
    const detail::SuppressionRec& sup = sups[s];
    if (used[s] || sup.malformed) continue;
    std::string rules;
    for (const auto& r : sup.rules) {
      if (!rules.empty()) rules += ',';
      rules += r;
    }
    kept.push_back(
        Finding{std::string(path), sup.line, 1, "LINT",
                "unused lcs-lint suppression for " + rules +
                    " — it matches no finding on its line",
                "remove the stale allow() (or move it to the line it "
                "excuses)"});
  }

  if (suppressions_used != nullptr) {
    *suppressions_used = 0;
    for (const bool u : used)
      if (u) ++*suppressions_used;
  }
  return kept;
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule, a.message) <
                     std::tie(b.file, b.line, b.col, b.rule, b.message);
            });
}

std::string to_hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[util::checked_usize(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// The cache key half that is not the file content: if the rule set (or
/// the cache layout) changes, every entry goes stale at once.
std::string rules_fingerprint() {
  std::uint64_t h = fnv1a64("lcs-lint-cache-v1");
  for (const RuleInfo& r : rule_table()) {
    h = fnv1a64(r.id, h);
    h = fnv1a64(r.family, h);
    h = fnv1a64(r.summary, h);
    h = fnv1a64(r.rationale, h);
  }
  return to_hex(h);
}

// ---------------------------------------------------------------------------
// Incremental cache: JSON on disk, keyed by (path, content hash) plus the
// rule fingerprint. The cached payload is the full FileSummary, so a warm
// run re-reads bytes (to hash them) but never re-lexes.
// ---------------------------------------------------------------------------

void write_summary_json(JsonWriter& w, const detail::FileSummary& s) {
  w.begin_object();
  w.kv("path", s.path);
  w.kv("hash", to_hex(s.hash));
  w.key("includes").begin_array();
  for (const IncludeDirective& d : s.includes) {
    w.begin_object();
    w.kv("t", d.target).kv("l", d.line).kv("c", d.col).kv("a", d.angled);
    w.end_object();
  }
  w.end_array();
  w.key("decls").begin_array();
  for (const Decl& d : s.outline.decls) {
    w.begin_object();
    w.kv("k", static_cast<std::int64_t>(d.kind));
    w.kv("n", d.name).kv("ns", d.ns).kv("l", d.line).kv("c", d.col);
    w.kv("fl", d.file_local).kv("def", d.is_definition);
    w.end_object();
  }
  w.end_array();
  w.key("macros").begin_array();
  for (const auto& [name, refs] : s.outline.macro_body_refs) {
    w.begin_object();
    w.kv("n", name);
    w.key("refs").begin_array();
    for (const std::string& r : refs) w.value(r);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("refs").begin_array();
  for (const Ref& r : s.refs) {
    w.begin_object();
    w.kv("n", r.name).kv("l", r.line).kv("c", r.col).kv("x", r.count);
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const Finding& f : s.raw_findings) {
    w.begin_object();
    w.kv("l", f.line).kv("c", f.col).kv("r", f.rule);
    w.kv("m", f.message).kv("h", f.hint);
    w.end_object();
  }
  w.end_array();
  w.key("sups").begin_array();
  for (const detail::SuppressionRec& sup : s.sups) {
    w.begin_object();
    w.kv("l", sup.line).kv("c", sup.col).kv("tl", sup.target_line);
    w.key("rules").begin_array();
    for (const std::string& r : sup.rules) w.value(r);
    w.end_array();
    w.kv("reason", sup.reason).kv("mal", sup.malformed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int get_int(const JsonValue& v, std::string_view key, const char* what) {
  const JsonValue* f = v.find(key, what);
  LCS_CHECK(f != nullptr, what);
  return util::checked_cast<int>(f->as_int(what));
}
const std::string& get_str(const JsonValue& v, std::string_view key,
                           const char* what) {
  const JsonValue* f = v.find(key, what);
  LCS_CHECK(f != nullptr, what);
  return f->as_string(what);
}
bool get_bool(const JsonValue& v, std::string_view key, const char* what) {
  const JsonValue* f = v.find(key, what);
  LCS_CHECK(f != nullptr, what);
  return f->as_bool(what);
}

std::uint64_t from_hex(const std::string& s) {
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= util::checked_usize(c - '0');
    else if (c >= 'a' && c <= 'f') v |= util::checked_usize(c - 'a' + 10);
    else LCS_CHECK(false, "bad hex digit in lint cache");
  }
  return v;
}

detail::FileSummary read_summary_json(const JsonValue& v) {
  static const char* kW = "lint cache entry";
  detail::FileSummary s;
  s.path = get_str(v, "path", kW);
  s.hash = from_hex(get_str(v, "hash", kW));
  const JsonValue* inc = v.find("includes", kW);
  LCS_CHECK(inc != nullptr, kW);
  for (const JsonValue& e : inc->as_array(kW)) {
    IncludeDirective d;
    d.target = get_str(e, "t", kW);
    d.line = get_int(e, "l", kW);
    d.col = get_int(e, "c", kW);
    d.angled = get_bool(e, "a", kW);
    s.includes.push_back(std::move(d));
  }
  const JsonValue* decls = v.find("decls", kW);
  LCS_CHECK(decls != nullptr, kW);
  for (const JsonValue& e : decls->as_array(kW)) {
    Decl d;
    const int k = get_int(e, "k", kW);
    LCS_CHECK(k >= 0 && k <= 5, "bad decl kind in lint cache");  // 5 = kMacro
    d.kind = static_cast<DeclKind>(k);
    d.name = get_str(e, "n", kW);
    d.ns = get_str(e, "ns", kW);
    d.line = get_int(e, "l", kW);
    d.col = get_int(e, "c", kW);
    d.file_local = get_bool(e, "fl", kW);
    d.is_definition = get_bool(e, "def", kW);
    s.outline.decls.push_back(std::move(d));
  }
  const JsonValue* macros = v.find("macros", kW);
  LCS_CHECK(macros != nullptr, kW);
  for (const JsonValue& e : macros->as_array(kW)) {
    std::vector<std::string> refs;
    const JsonValue* rs = e.find("refs", kW);
    LCS_CHECK(rs != nullptr, kW);
    for (const JsonValue& r : rs->as_array(kW)) refs.push_back(r.as_string(kW));
    s.outline.macro_body_refs[get_str(e, "n", kW)] = std::move(refs);
  }
  const JsonValue* refs = v.find("refs", kW);
  LCS_CHECK(refs != nullptr, kW);
  for (const JsonValue& e : refs->as_array(kW)) {
    Ref r;
    r.name = get_str(e, "n", kW);
    r.line = get_int(e, "l", kW);
    r.col = get_int(e, "c", kW);
    r.count = get_int(e, "x", kW);
    s.refs.push_back(std::move(r));
  }
  const JsonValue* findings = v.find("findings", kW);
  LCS_CHECK(findings != nullptr, kW);
  for (const JsonValue& e : findings->as_array(kW)) {
    Finding f;
    f.file = s.path;
    f.line = get_int(e, "l", kW);
    f.col = get_int(e, "c", kW);
    f.rule = get_str(e, "r", kW);
    f.message = get_str(e, "m", kW);
    f.hint = get_str(e, "h", kW);
    s.raw_findings.push_back(std::move(f));
  }
  const JsonValue* sups = v.find("sups", kW);
  LCS_CHECK(sups != nullptr, kW);
  for (const JsonValue& e : sups->as_array(kW)) {
    detail::SuppressionRec sup;
    sup.line = get_int(e, "l", kW);
    sup.col = get_int(e, "c", kW);
    sup.target_line = get_int(e, "tl", kW);
    const JsonValue* rs = e.find("rules", kW);
    LCS_CHECK(rs != nullptr, kW);
    for (const JsonValue& r : rs->as_array(kW))
      sup.rules.push_back(r.as_string(kW));
    sup.reason = get_str(e, "reason", kW);
    sup.malformed = get_bool(e, "mal", kW);
    s.sups.push_back(std::move(sup));
  }
  return s;
}

/// Load the cache; any mismatch (schema, fingerprint, parse error) or
/// corruption degrades to an empty map — a cold run, never a crash.
std::map<std::string, detail::FileSummary> load_cache(
    const std::string& path, const std::string& fingerprint) {
  std::map<std::string, detail::FileSummary> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    const JsonValue doc = parse_json(text);
    static const char* kW = "lint cache";
    if (get_str(doc, "schema", kW) != "lcs-lint-cache-v1") return out;
    if (get_str(doc, "fingerprint", kW) != fingerprint) return out;
    const JsonValue* files = doc.find("files", kW);
    LCS_CHECK(files != nullptr, kW);
    for (const JsonValue& e : files->as_array(kW)) {
      detail::FileSummary s = read_summary_json(e);
      std::string key = s.path;
      out.emplace(std::move(key), std::move(s));
    }
  } catch (const CheckFailure&) {
    out.clear();
  }
  return out;
}

void save_cache(const std::string& path, const std::string& fingerprint,
                const std::vector<detail::FileSummary>& summaries) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("schema", "lcs-lint-cache-v1");
  w.kv("fingerprint", fingerprint);
  w.key("files").begin_array();
  for (const detail::FileSummary& s : summaries) write_summary_json(w, s);
  w.end_array();
  w.end_object();
  w.finish();
  // Atomic temp-file + rename: a killed run must never tear the cache
  // (the loader would just degrade to cold, but why make it).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return;  // cache is advisory: unwritable location = no cache
    f << os.str();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

}  // namespace

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "determinism",
       "no iteration over std::unordered_map/set (hash order is not a "
       "program order); sort via util/sorted.h or use std::map",
       "hash-order iteration makes observables depend on the standard "
       "library and the pointer values of the day",
       4},
      {"D2", "determinism",
       "no rand/random_device/clocks outside util/random.* and "
       "explicitly-suppressed timing report fields",
       "every observable must be a pure function of the seed, or goldens "
       "and the serve/run byte-identity gates cannot exist",
       4},
      {"D3", "determinism",
       "no ordering, hashing, or uintptr_t round-trips of raw "
       "pointer values",
       "addresses differ run to run, so anything derived from them is "
       "invisible nondeterminism until a golden breaks",
       4},
      {"D4", "determinism",
       "no floating-point accumulation in engine/metric code "
       "(src/congest, src/mst, src/shortcut, src/apps, src/tree, "
       "src/dynamic, graph/metrics)",
       "FP addition is not associative: thread count and shard boundaries "
       "would become observable in pinned metrics",
       4},
      {"S1", "safety",
       "integer narrowing must use util::checked_cast / "
       "util::truncate_cast (util/cast.h), not ad-hoc static_cast",
       "silent truncation turns an out-of-range size into a wrong answer "
       "instead of a diagnosis",
       4},
      {"S2", "safety",
       "no naked std::thread/std::async outside util/worker_pool",
       "ad-hoc threads bypass the deterministic shard/merge discipline "
       "the engine's guarantees are built on",
       5},
      {"S3", "safety",
       "status/result returns in io/persist/cache/bytes headers must "
       "be [[nodiscard]]",
       "a silently discarded result in those layers is a swallowed "
       "failure or wasted I/O",
       4},
      {"S4", "safety",
       "no mutation of by-reference-captured shared state inside "
       "WorkerPool::run callbacks (per-worker slots and atomics are the "
       "idiom)",
       "concurrent workers race on shared writes and the merge order "
       "becomes an observable TSan may only catch under load",
       4},
      {"A1", "architecture",
       "no include edge climbing the layering committed in "
       "src/lint/layers.txt",
       "a lower layer seeing a higher one inverts the dependency "
       "structure the system is grown along",
       4},
      {"A2", "architecture", "no include cycles between project headers",
       "cyclic headers make build order and incremental analysis "
       "ill-defined",
       4},
      {"A3", "architecture",
       "include what you use: a project symbol's defining header must be "
       "included directly, not reached transitively",
       "a refactor of an intermediate header's includes silently breaks "
       "every file that leaned on it",
       4},
      {"A4", "architecture",
       "no unused direct project includes",
       "dead includes are false dependency edges: they slow builds and "
       "misdirect every reader and tool",
       4},
      {"U1", "deadcode",
       "no dead file-external symbols: a non-static namespace-scope "
       "definition in src/ referenced by no other TU is file-local or "
       "deleted (registry register_* entry points exempt)",
       "dead exports are API surface nothing pays for and the first "
       "place bit-rot hides",
       4},
  };
  return kRules;
}

namespace detail {

FileSummary analyze_source(std::string_view path, std::string_view source) {
  FileSummary s;
  s.path = std::string(path);
  s.hash = fnv1a64(source);

  std::string splice_storage;
  const std::vector<Token> tokens = lex(source, &splice_storage);

  // Split comments (suppression carriers) from code (what rules see).
  std::vector<Token> code;
  code.reserve(tokens.size());
  std::set<int> code_lines;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kComment) {
      SuppressionRec sup;
      if (parse_suppression(t, &sup, &s.raw_findings, path))
        s.sups.push_back(std::move(sup));
      continue;
    }
    code.push_back(t);
    code_lines.insert(t.line);
  }

  // A suppression covers its own line if code shares it; a full-line
  // comment covers the next code line (within two lines, so a directive
  // cannot drift away from what it excuses).
  for (SuppressionRec& sup : s.sups) {
    if (code_lines.count(sup.line) > 0) {
      sup.target_line = sup.line;
    } else {
      sup.target_line = 0;
      for (int l = sup.line + 1; l <= sup.line + 2; ++l) {
        if (code_lines.count(l) > 0) {
          sup.target_line = l;
          break;
        }
      }
    }
  }

  // Structure: includes, outline, refs (comment tokens are ignored by
  // all three, and the bol flags survive in `code`).
  s.includes = extract_includes(code);
  s.outline = parse_outline(code);
  s.refs = collect_refs(code);

  // Per-file rules.
  RuleContext ctx{
      path, code,
      [&](int line, int col, std::string_view rule, std::string message,
          std::string hint) {
        s.raw_findings.push_back(Finding{std::string(path), line, col,
                                         std::string(rule),
                                         std::move(message), std::move(hint)});
      }};
  check_d1_unordered_iteration(ctx);
  check_d2_nondeterminism_sources(ctx);
  check_d3_pointer_ordering(ctx);
  check_d4_float_accumulation(ctx);
  check_s1_unchecked_narrowing(ctx);
  check_s2_naked_threads(ctx);
  check_s3_nodiscard_status(ctx);
  check_s4_shared_capture(ctx);

  return s;
}

}  // namespace detail

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source,
                                 int* suppressions_used) {
  detail::FileSummary s = detail::analyze_source(path, source);
  std::vector<Finding> findings = apply_suppressions(
      path, s.sups, std::move(s.raw_findings), suppressions_used);
  sort_findings(&findings);
  return findings;
}

LintResult lint_sources(const std::vector<SourceFile>& files,
                        const Options& options) {
  LintResult result;

  // Canonical paths, sorted, first-wins on duplicates.
  struct Entry {
    std::string path;
    const std::string* source;
  };
  std::vector<Entry> entries;
  entries.reserve(files.size());
  for (const SourceFile& f : files) {
    entries.push_back(Entry{include_key(f.path), &f.source});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.path < b.path;
                   });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.path == b.path;
                            }),
                entries.end());

  const std::string fingerprint = rules_fingerprint();
  std::map<std::string, detail::FileSummary> cache;
  if (!options.cache_file.empty()) {
    cache = load_cache(options.cache_file, fingerprint);
  }

  std::vector<detail::FileSummary> summaries;
  summaries.reserve(entries.size());
  for (const Entry& e : entries) {
    const std::uint64_t h = fnv1a64(*e.source);
    const auto it = cache.find(e.path);
    if (it != cache.end() && it->second.hash == h) {
      summaries.push_back(it->second);
      ++result.cache_hits;
    } else {
      summaries.push_back(detail::analyze_source(e.path, *e.source));
      ++result.files_lexed;
    }
    ++result.files_scanned;
  }
  if (!options.cache_file.empty()) {
    save_cache(options.cache_file, fingerprint, summaries);
  }

  // The include graph over the scanned set.
  std::vector<std::pair<std::string, std::vector<IncludeDirective>>> gfiles;
  gfiles.reserve(summaries.size());
  for (const detail::FileSummary& s : summaries) {
    gfiles.emplace_back(s.path, s.includes);
  }
  const IncludeGraph graph = IncludeGraph::build(gfiles);
  result.graph_dot = graph.to_dot();

  LayerManifest layers;
  if (!options.layers_text.empty()) {
    std::string err;
    layers = LayerManifest::parse(options.layers_text, &err);
    if (!err.empty()) {
      result.findings.push_back(
          Finding{"src/lint/layers.txt", 1, 1, "LINT", err,
                  "fix the manifest: `layer <name> <dir> [<dir>...]`, "
                  "lowest layer first"});
    }
  }

  // Findings per file: the cached/fresh per-file findings plus the
  // project rules, then suppressions applied with that file's directives.
  std::map<std::string, std::vector<Finding>> per_file;
  for (const detail::FileSummary& s : summaries) {
    std::vector<Finding>& bucket = per_file[s.path];
    bucket.insert(bucket.end(), s.raw_findings.begin(), s.raw_findings.end());
  }
  detail::run_project_rules(summaries, graph, layers, [&](Finding f) {
    per_file[f.file].push_back(std::move(f));
  });

  for (const detail::FileSummary& s : summaries) {
    const auto it = per_file.find(s.path);
    std::vector<Finding> raw;
    if (it != per_file.end()) {
      raw = std::move(it->second);
      per_file.erase(it);
    }
    int used = 0;
    std::vector<Finding> kept =
        apply_suppressions(s.path, s.sups, std::move(raw), &used);
    result.suppressions_used += used;
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(kept.begin()),
                           std::make_move_iterator(kept.end()));
  }
  // Findings anchored at paths outside the scanned set (should not
  // happen, but never drop a finding on the floor).
  for (auto& [path, leftover] : per_file) {
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(leftover.begin()),
                           std::make_move_iterator(leftover.end()));
  }

  sort_findings(&result.findings);
  return result;
}

LintResult lint_paths(const std::vector<std::string>& paths,
                      const Options& options) {
  namespace fs = std::filesystem;

  std::vector<std::string> files;
  const auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext != ".cpp" && ext != ".h" && ext != ".cc" && ext != ".hpp") return;
    const std::string s = p.generic_string();
    // The fixture corpus deliberately violates every rule.
    if (s.find("lint_fixtures") != std::string::npos) return;
    files.push_back(s);
  };

  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) consider(e.path());
      }
    } else if (fs::is_regular_file(p)) {
      consider(fs::path(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Options effective = options;
  if (effective.layers_text.empty()) {
    // Auto-discover the committed manifest relative to the working
    // directory and each input path.
    std::vector<std::string> candidates = {"src/lint/layers.txt"};
    for (const std::string& p : paths) {
      candidates.push_back(p + "/lint/layers.txt");
      candidates.push_back(p + "/src/lint/layers.txt");
      const fs::path parent = fs::path(p).parent_path();
      if (!parent.empty()) {
        candidates.push_back((parent / "src/lint/layers.txt").generic_string());
      }
    }
    for (const std::string& c : candidates) {
      std::ifstream in(c, std::ios::binary);
      if (!in) continue;
      std::stringstream buf;
      buf << in.rdbuf();
      effective.layers_text = buf.str();
      break;
    }
  }

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    sources.push_back(SourceFile{f, buf.str()});
  }
  return lint_sources(sources, effective);
}

std::string format_finding(const Finding& f) {
  std::string out = f.file + ":" + std::to_string(f.line) + ":" +
                    std::to_string(f.col) + ": " + f.rule + ": " + f.message;
  if (!f.hint.empty()) out += " (fix: " + f.hint + ")";
  return out;
}

std::string format_findings_json(const LintResult& result) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("schema", "lcs-lint-findings-v1");
  w.kv("files_scanned", result.files_scanned);
  w.kv("files_lexed", result.files_lexed);
  w.kv("cache_hits", result.cache_hits);
  w.kv("suppressions_used", result.suppressions_used);
  w.key("findings").begin_array();
  for (const Finding& f : result.findings) {
    w.begin_object();
    w.kv("file", f.file);
    w.kv("line", f.line);
    w.kv("col", f.col);
    w.kv("rule", f.rule);
    w.kv("message", f.message);
    w.kv("hint", f.hint);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
  return os.str();
}

std::string format_rule_table() {
  std::string out =
      "lcs_lint rules (suppress a line with: // lcs-lint: allow(RULE) "
      "reason)\n\n";
  const auto row = [&](std::string_view id, std::string_view family,
                       int fixtures, std::string_view summary,
                       std::string_view rationale) {
    out += std::string(id) + "  [" + std::string(family) +
           ", fixtures=" + std::to_string(fixtures) + "]\n";
    out += "  what: " + std::string(summary) + "\n";
    out += "  why:  " + std::string(rationale) + "\n";
  };
  for (const RuleInfo& r : rule_table()) {
    row(r.id, r.family, r.fixtures, r.summary, r.rationale);
  }
  row("LINT", "hygiene", 2,
      "malformed or stale lcs-lint suppression directives (reason "
      "missing, unknown rule, allow() matching no finding)",
      "a suppression that excuses nothing is a license the next edit "
      "silently inherits; LINT itself cannot be suppressed");
  return out;
}

}  // namespace lcs::lint
