/// \file parse.h
/// Declaration-level outline parser for the lcs_lint semantic rules.
///
/// This is not a C++ parser. It is a scope-stack walk over the token
/// stream (lint/lexer.h) that recovers exactly what the architecture
/// rules need and nothing more:
///
///  - which *namespace-scope* symbols a file declares or defines
///    (types, functions, aliases, variables, macros) — the per-header
///    exported-symbol index behind A3 (missing direct include),
///    A4 (unused direct include), and U1 (dead file-external symbol);
///  - which identifiers a file *references*, with the first physical
///    use position (for A3's "symbol used here" anchor);
///  - which identifiers each macro's replacement text references (macro
///    body identifiers also count as ordinary refs, which is how U1
///    keeps a helper alive when its only caller is a macro expansion).
///
/// Member declarations inside class bodies are deliberately not
/// indexed: members are reached through their type, so the type name
/// is the export. Function and type *bodies* are skipped for decls but
/// scanned for refs.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace lcs::lint {

enum class DeclKind {
  kNamespace,  ///< namespace NAME { (named namespaces only)
  kType,       ///< class / struct / enum / union NAME
  kFunction,   ///< NAME(...) declaration or definition
  kAlias,      ///< using NAME = ...; or typedef ... NAME;
  kVariable,   ///< namespace-scope variable / constant
  kMacro,      ///< #define NAME
};

/// One namespace-scope declaration recovered from a file.
struct Decl {
  DeclKind kind = DeclKind::kType;
  std::string name;        ///< unqualified name
  std::string ns;          ///< enclosing namespace path, e.g. "lcs::util"
  int line = 0;            ///< 1-based physical line of the name token
  int col = 0;
  bool file_local = false;    ///< static or inside an anonymous namespace
  bool is_definition = false; ///< has a body / initializer (vs forward decl)
};

/// First reference to an identifier in a file. Identifiers inside
/// comments and string literals never count; neither do member accesses
/// (`x.foo`, `p->foo`) nor `std::`-qualified names — those resolve
/// through their object/namespace, not through a project header's
/// top-level export.
struct Ref {
  std::string name;
  int line = 0;   ///< first occurrence
  int col = 0;
  int count = 0;  ///< total occurrences in the file (all positions)
};

struct Outline {
  std::vector<Decl> decls;
  /// Macro name -> identifiers referenced in its replacement text.
  /// Feeds the U1 liveness fixpoint (see arch_rules.cpp).
  std::map<std::string, std::vector<std::string>> macro_body_refs;
};

/// Walk `toks` (from lex(), splice-aware) and recover the outline.
Outline parse_outline(const std::vector<Token>& toks);

/// Collect the first reference to each distinct identifier. See Ref for
/// what is excluded. `#include` directives contribute nothing (the
/// header name in `#include <vector>` is not a use of `vector`).
std::vector<Ref> collect_refs(const std::vector<Token>& toks);

/// True if `name` is a C++ keyword (or contextual keyword) — never a
/// project symbol.
bool is_cpp_keyword(std::string_view name);

}  // namespace lcs::lint
