#include "lint/parse.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "lint/lexer.h"
#include "util/cast.h"

namespace lcs::lint {

namespace {

bool tok_is(const Token& t, TokKind k, std::string_view text) {
  return t.kind == k && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return tok_is(t, TokKind::kPunct, text);
}
bool is_ident(const Token& t, std::string_view text) {
  return tok_is(t, TokKind::kIdentifier, text);
}

constexpr std::array<std::string_view, 94> kKeywords = {
    "alignas",      "alignof",      "and",        "and_eq",
    "asm",          "auto",         "bitand",     "bitor",
    "bool",         "break",        "case",       "catch",
    "char",         "char16_t",     "char32_t",   "char8_t",
    "class",        "co_await",     "co_return",  "co_yield",
    "compl",        "concept",      "const",      "const_cast",
    "consteval",    "constexpr",    "constinit",  "continue",
    "decltype",     "default",      "delete",     "do",
    "double",       "dynamic_cast", "else",       "enum",
    "explicit",     "export",       "extern",     "false",
    "final",        "float",        "for",        "friend",
    "goto",         "if",           "inline",     "int",
    "long",         "mutable",      "namespace",  "new",
    "noexcept",     "not",          "not_eq",     "nullptr",
    "operator",     "or",           "or_eq",      "override",
    "private",      "protected",    "public",     "register",
    "reinterpret_cast", "requires", "return",     "short",
    "signed",       "sizeof",       "static",     "static_assert",
    "static_cast",  "struct",       "switch",     "template",
    "this",         "thread_local", "throw",      "true",
    "try",          "typedef",      "typeid",     "typename",
    "union",        "unsigned",     "using",      "virtual",
    "void",         "volatile",     "wchar_t",    "while",
    "xor",          "xor_eq",
};

/// Skip a balanced `<...>` starting at `i` (toks[i] == "<"); returns the
/// index one past the closing `>`. `>>` closes two levels. Bails at `;`
/// or `{` (comparison, not template args) returning the bail position.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == ">") { if (--depth == 0) return i + 1; }
    else if (t.text == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
    else if (t.text == ";" || t.text == "{") return i;
  }
  return i;
}

/// Skip a balanced group: toks[i] is the opener ("(", "{", "[").
/// Returns the index one past the matching closer, or toks.size().
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open)) ++depth;
    else if (is_punct(toks[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

/// Index one past the end of the directive starting at the `#` in
/// toks[i]: the first later token flagged bol (logical line start).
std::size_t directive_end(const std::vector<Token>& toks, std::size_t i) {
  for (++i; i < toks.size(); ++i) {
    if (toks[i].bol) return i;
  }
  return toks.size();
}

/// True when the identifier at `i` is the member of a `.`/`->` access,
/// or is `std::`-rooted (walks the qualifier chain back to its head).
bool is_excluded_ref(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return true;
  // Walk `A::B::name` back to A; exclude iff the chain is rooted at std.
  std::size_t j = i;
  while (j >= 2 && is_punct(toks[j - 1], "::") &&
         toks[j - 2].kind == TokKind::kIdentifier) {
    j -= 2;
  }
  return j != i && toks[j].text == "std";
}

struct Scope {
  enum Kind { kNamespace, kType, kExtern } kind = kNamespace;
  std::string name;  ///< namespace name ("" for anonymous / non-namespace)
  bool anonymous = false;
};

}  // namespace

bool is_cpp_keyword(std::string_view name) {
  return std::find(kKeywords.begin(), kKeywords.end(), name) !=
         kKeywords.end();
}

std::vector<Ref> collect_refs(const std::vector<Token>& toks) {
  std::vector<Ref> out;
  std::map<std::string_view, std::size_t> seen;  // name -> index in out
  const auto note = [&](const Token& t) {
    const auto [it, inserted] = seen.emplace(t.text, out.size());
    if (inserted) {
      out.push_back(Ref{std::string(t.text), t.line, t.col, 1});
    } else {
      ++out[it->second].count;
    }
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "#" && t.bol &&
        i + 1 < toks.size()) {
      const Token& d = toks[i + 1];
      if (is_ident(d, "include")) {
        // `#include <vector>` must not count as a use of `vector`.
        i = directive_end(toks, i) - 1;
        continue;
      }
      if (is_ident(d, "define") && i + 2 < toks.size()) {
        // The macro NAME is a definition, not a use; its parameters (if
        // function-like: `(` abuts the name) are local. Body identifiers
        // are genuine refs.
        const Token& name = toks[i + 2];
        const std::size_t end = directive_end(toks, i);
        std::size_t b = i + 3;
        std::set<std::string_view> params;
        if (b < end && is_punct(toks[b], "(") &&
            toks[b].line == name.line &&
            toks[b].col ==
                name.col + util::checked_cast<int>(name.text.size())) {
          const std::size_t close = skip_balanced(toks, b, "(", ")");
          for (std::size_t p = b + 1; p + 1 < close; ++p) {
            if (toks[p].kind == TokKind::kIdentifier)
              params.insert(toks[p].text);
          }
          b = close;
        }
        for (std::size_t p = b; p < end; ++p) {
          const Token& bt = toks[p];
          if (bt.kind != TokKind::kIdentifier || is_cpp_keyword(bt.text) ||
              params.count(bt.text) != 0 || is_excluded_ref(toks, p)) {
            continue;
          }
          note(bt);
        }
        i = end - 1;
        continue;
      }
      // Other directives (#if defined(FOO), #ifdef FOO, ...): their
      // identifiers are real macro refs; fall through token by token.
      continue;
    }
    if (t.kind != TokKind::kIdentifier || is_cpp_keyword(t.text) ||
        is_excluded_ref(toks, i)) {
      continue;
    }
    note(t);
  }
  return out;
}

namespace {

std::string ns_path(const std::vector<Scope>& scopes) {
  std::string out;
  for (const Scope& s : scopes) {
    if (s.kind != Scope::kNamespace || s.anonymous || s.name.empty()) continue;
    if (!out.empty()) out += "::";
    out += s.name;
  }
  return out;
}

bool in_anonymous_ns(const std::vector<Scope>& scopes) {
  for (const Scope& s : scopes) {
    if (s.kind == Scope::kNamespace && s.anonymous) return true;
  }
  return false;
}

}  // namespace

Outline parse_outline(const std::vector<Token>& raw) {
  // Comments are irrelevant to the outline; drop them up front so the
  // scanner below can look at neighbors without skipping.
  std::vector<Token> toks;
  toks.reserve(raw.size());
  for (const Token& t : raw) {
    if (t.kind != TokKind::kComment) toks.push_back(t);
  }

  Outline out;
  std::vector<Scope> scopes;

  const auto add = [&](DeclKind kind, const Token& name, bool file_local,
                       bool is_definition) {
    // A keyword can never be a project symbol; recording one would feed
    // the symbol indexes garbage (e.g. a missed specifier).
    if (is_cpp_keyword(name.text)) return;
    Decl d;
    d.kind = kind;
    d.name = std::string(name.text);
    d.ns = ns_path(scopes);
    d.line = name.line;
    d.col = name.col;
    d.file_local = file_local || in_anonymous_ns(scopes);
    d.is_definition = is_definition;
    out.decls.push_back(std::move(d));
  };

  // Skip to the `;` terminating the current declaration, tolerating
  // balanced braces (`= {...}` initializers) and parens on the way.
  const auto skip_to_semi = [&](std::size_t i) {
    int brace = 0;
    int paren = 0;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "{") ++brace;
      else if (t.text == "}") --brace;
      else if (t.text == "(") ++paren;
      else if (t.text == ")") --paren;
      else if (t.text == ";" && brace <= 0 && paren <= 0) return i + 1;
    }
    return i;
  };

  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];

    // ---- Preprocessor directives ----
    if (t.kind == TokKind::kPunct && t.text == "#" && t.bol) {
      const std::size_t end = directive_end(toks, i);
      if (i + 2 < toks.size() && is_ident(toks[i + 1], "define") &&
          toks[i + 2].kind == TokKind::kIdentifier) {
        const Token& name = toks[i + 2];
        add(DeclKind::kMacro, name, /*file_local=*/false,
            /*is_definition=*/true);
        // Record the replacement text's identifier refs (minus params)
        // for the U1 macro-liveness fixpoint.
        std::size_t b = i + 3;
        std::set<std::string_view> params;
        if (b < end && is_punct(toks[b], "(") && toks[b].line == name.line &&
            toks[b].col == name.col + util::checked_cast<int>(name.text.size())) {
          const std::size_t close = skip_balanced(toks, b, "(", ")");
          for (std::size_t p = b + 1; p + 1 < close; ++p) {
            if (toks[p].kind == TokKind::kIdentifier)
              params.insert(toks[p].text);
          }
          b = close;
        }
        std::vector<std::string>& refs =
            out.macro_body_refs[std::string(name.text)];
        std::set<std::string_view> seen;
        for (std::size_t p = b; p < end; ++p) {
          const Token& bt = toks[p];
          if (bt.kind != TokKind::kIdentifier || is_cpp_keyword(bt.text) ||
              params.count(bt.text) != 0 || is_excluded_ref(toks, p)) {
            continue;
          }
          if (seen.insert(bt.text).second)
            refs.push_back(std::string(bt.text));
        }
      }
      i = end;
      continue;
    }

    // ---- Scope structure ----
    if (is_punct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      if (i < toks.size() && is_punct(toks[i], ";")) ++i;  // `};`
      continue;
    }

    // Inside a type body nothing is an export: swallow tokens (tracking
    // nested braces) until the body closes.
    if (!scopes.empty() && scopes.back().kind == Scope::kType) {
      if (is_punct(t, "{")) {
        i = skip_balanced(toks, i, "{", "}");
        continue;
      }
      ++i;
      continue;
    }

    if (is_ident(t, "namespace")) {
      // namespace A::B { ... } | namespace { ... } | namespace A = B;
      std::size_t j = i + 1;
      std::string name;
      while (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
        if (!name.empty()) name += "::";
        name += std::string(toks[j].text);
        ++j;
        if (j < toks.size() && is_punct(toks[j], "::")) ++j;
        else break;
      }
      if (j < toks.size() && is_punct(toks[j], "=")) {
        i = skip_to_semi(j);
        continue;
      }
      if (j < toks.size() && is_punct(toks[j], "{")) {
        if (!name.empty()) {
          add(DeclKind::kNamespace, toks[i + 1], /*file_local=*/false,
              /*is_definition=*/true);
        }
        Scope s;
        s.kind = Scope::kNamespace;
        s.name = name;
        s.anonymous = name.empty();
        scopes.push_back(std::move(s));
        i = j + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    if (is_ident(t, "extern") && i + 1 < toks.size() &&
        toks[i + 1].kind == TokKind::kString) {
      if (i + 2 < toks.size() && is_punct(toks[i + 2], "{")) {
        scopes.push_back(Scope{Scope::kExtern, "", false});
        i += 3;
      } else {
        i += 2;  // extern "C" on a single declaration: treat as specifier
      }
      continue;
    }

    if (is_ident(t, "using")) {
      // using NAME = ...; -> alias. using namespace X; / using X::y; -> skip.
      if (i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdentifier &&
          !is_cpp_keyword(toks[i + 1].text) && is_punct(toks[i + 2], "=")) {
        add(DeclKind::kAlias, toks[i + 1], /*file_local=*/false,
            /*is_definition=*/true);
      }
      i = skip_to_semi(i);
      continue;
    }

    if (is_ident(t, "typedef")) {
      const std::size_t semi = skip_to_semi(i) - 1;
      // Name: identifier right before the `;` (covers the common forms;
      // function-pointer typedefs name the identifier after `(*`).
      std::size_t name_at = toks.size();
      for (std::size_t j = i + 1; j < semi; ++j) {
        if (toks[j].kind == TokKind::kIdentifier &&
            !is_cpp_keyword(toks[j].text)) {
          name_at = j;
        }
        if (is_punct(toks[j], "(") && j + 2 < semi &&
            is_punct(toks[j + 1], "*") &&
            toks[j + 2].kind == TokKind::kIdentifier) {
          name_at = j + 2;
          break;
        }
      }
      if (name_at < toks.size()) {
        add(DeclKind::kAlias, toks[name_at], /*file_local=*/false,
            /*is_definition=*/true);
      }
      i = semi + 1;
      continue;
    }

    if (is_ident(t, "template")) {
      ++i;
      if (i < toks.size() && is_punct(toks[i], "<")) i = skip_angles(toks, i);
      continue;
    }

    if (is_ident(t, "static_assert")) {
      i = skip_to_semi(i);
      continue;
    }

    if (is_ident(t, "class") || is_ident(t, "struct") ||
        is_ident(t, "union") || is_ident(t, "enum")) {
      std::size_t j = i + 1;
      if (j < toks.size() &&
          (is_ident(toks[j], "class") || is_ident(toks[j], "struct"))) {
        ++j;  // enum class / enum struct
      }
      for (;;) {
        if (j < toks.size() && is_punct(toks[j], "[[")) {
          while (j < toks.size() && !is_punct(toks[j], "]]")) ++j;
          ++j;
          continue;
        }
        // `struct alignas(64) Name` — alignas is a specifier, not the name.
        if (j + 1 < toks.size() && is_ident(toks[j], "alignas") &&
            is_punct(toks[j + 1], "(")) {
          j = skip_balanced(toks, j + 1, "(", ")");
          continue;
        }
        break;
      }
      if (j >= toks.size() || toks[j].kind != TokKind::kIdentifier) {
        // Anonymous type: skip its body if any, then the declaration.
        while (j < toks.size() && !is_punct(toks[j], "{") &&
               !is_punct(toks[j], ";")) {
          ++j;
        }
        if (j < toks.size() && is_punct(toks[j], "{")) {
          j = skip_balanced(toks, j, "{", "}");
        }
        i = skip_to_semi(j > i ? j - 1 : i);
        continue;
      }
      const Token& name = toks[j];
      ++j;
      if (j < toks.size() && is_punct(toks[j], ";")) {
        add(DeclKind::kType, name, /*file_local=*/false,
            /*is_definition=*/false);  // forward declaration
        i = j + 1;
        continue;
      }
      // Base clause / enum underlying type up to the body.
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "<")) {
          j = skip_angles(toks, j);
          continue;
        }
        ++j;
      }
      if (j < toks.size() && is_punct(toks[j], "{")) {
        add(DeclKind::kType, name, /*file_local=*/false,
            /*is_definition=*/true);
        scopes.push_back(Scope{Scope::kType, "", false});
        i = j + 1;
        continue;
      }
      // `struct Foo bar;` style elaborated declarator — treat as variable.
      i = skip_to_semi(j);
      continue;
    }

    // ---- Declarator scan: function or variable ----
    if (t.kind == TokKind::kIdentifier || is_punct(t, "::") ||
        is_punct(t, "[[")) {
      bool file_local = false;  // `static` at namespace scope
      bool saw_extern = false;
      std::size_t name_at = toks.size();
      bool name_qualified = false;
      std::size_t j = i;
      bool decided = false;
      while (j < toks.size() && !decided) {
        const Token& u = toks[j];
        if (is_punct(u, "[[")) {
          while (j < toks.size() && !is_punct(toks[j], "]]")) ++j;
          ++j;
          continue;
        }
        if (u.kind == TokKind::kIdentifier) {
          if (u.text == "static") file_local = true;
          if (u.text == "extern") saw_extern = true;
          if (u.text == "operator") {
            // Operators are reached via their operands, not by name:
            // skip the whole declaration / definition.
            std::size_t k = j;
            while (k < toks.size() && !is_punct(toks[k], "(")) ++k;
            k = skip_balanced(toks, k, "(", ")");
            while (k < toks.size() && !is_punct(toks[k], "{") &&
                   !is_punct(toks[k], ";")) {
              ++k;
            }
            if (k < toks.size() && is_punct(toks[k], "{")) {
              k = skip_balanced(toks, k, "{", "}");
            } else if (k < toks.size()) {
              ++k;
            }
            j = k;
            name_at = toks.size();
            decided = true;
            break;
          }
          if (!is_cpp_keyword(u.text)) {
            name_at = j;
            name_qualified =
                j > 0 && is_punct(toks[j - 1], "::");
          }
          ++j;
          continue;
        }
        if (is_punct(u, "<")) {
          j = skip_angles(toks, j);
          continue;
        }
        if (is_punct(u, "(")) {
          // Function declarator (or constructor-style init; both resolve
          // the same way for the outline: NAME + parameter list).
          const std::size_t after = skip_balanced(toks, j, "(", ")");
          // Trailer: const/noexcept/-> T/= delete/etc. until `{` or `;`.
          std::size_t k = after;
          bool definition = false;
          while (k < toks.size()) {
            if (is_punct(toks[k], "{")) {
              definition = true;
              break;
            }
            if (is_punct(toks[k], ";")) break;
            if (is_punct(toks[k], "<")) {
              k = skip_angles(toks, k);
              continue;
            }
            ++k;
          }
          if (name_at < toks.size() && !name_qualified) {
            add(DeclKind::kFunction, toks[name_at], file_local, definition);
          }
          if (k < toks.size() && is_punct(toks[k], "{")) {
            j = skip_balanced(toks, k, "{", "}");
          } else {
            j = k < toks.size() ? k + 1 : k;
          }
          decided = true;
          break;
        }
        if (is_punct(u, "=") || is_punct(u, "{") || is_punct(u, ";") ||
            is_punct(u, "[")) {
          if (name_at < toks.size() && !name_qualified) {
            add(DeclKind::kVariable, toks[name_at], file_local,
                !saw_extern || !is_punct(u, ";"));
          }
          j = skip_to_semi(j);
          decided = true;
          break;
        }
        // `*`, `&`, `&&`, `::`, `,`, `const` handled above — keep going.
        ++j;
      }
      i = decided ? j : j + 1;
      continue;
    }

    ++i;
  }

  return out;
}

}  // namespace lcs::lint
