#include "lint/rules.h"

#include "lint/lexer.h"
#include "lint/parse.h"

#include <array>
#include <cstddef>
#include <initializer_list>
#include <set>
#include <string>
#include <string_view>

namespace lcs::lint::detail {

namespace {

bool tok_is(const Token& t, TokKind k, std::string_view s) {
  return t.kind == k && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return tok_is(t, TokKind::kIdentifier, s);
}
bool is_punct(const Token& t, std::string_view s) {
  return tok_is(t, TokKind::kPunct, s);
}
bool is_any_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

/// Concatenate message parts by appending. GCC 12's -Wrestrict misfires
/// on `"literal" + std::string(view)` chains (GCC PR 105651), and this
/// file is built under -Werror.
std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view p : parts) out += p;
  return out;
}

/// With tokens[i] == '<', return the index one past the matching '>'.
/// `>>` (lexed as one shift token) counts as two closes — template
/// argument lists are the only place the rules walk angles. Returns
/// tokens.size() if unbalanced.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "<" || t[i].text == "<<") {
      depth += t[i].text == "<<" ? 2 : 1;
    } else if (t[i].text == ">" || t[i].text == ">>") {
      depth -= t[i].text == ">>" ? 2 : 1;
      if (depth <= 0) return i + 1;
    } else if (t[i].text == ";" || t[i].text == "{") {
      return i;  // not a template argument list after all
    }
  }
  return i;
}

bool in_set(const std::set<std::string, std::less<>>& s, std::string_view v) {
  return s.find(v) != s.end();
}

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool is_unordered_type(const Token& t) {
  if (t.kind != TokKind::kIdentifier) return false;
  for (const auto u : kUnorderedTypes)
    if (t.text == u) return true;
  return false;
}

}  // namespace

bool path_ends_with(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

bool path_contains(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// D1 — no iteration over unordered containers
// ---------------------------------------------------------------------------

void check_d1_unordered_iteration(const RuleContext& ctx) {
  // The blessed sort-before-use idiom lives in util/sorted.h; it is the one
  // place allowed to touch hash iteration order (it destroys it by sorting).
  if (path_ends_with(ctx.path, "util/sorted.h")) return;

  const auto& t = ctx.code;

  // Pass 1: names declared with an unordered type (variables, members,
  // parameters, and functions returning one), plus `using` aliases of them.
  std::set<std::string, std::less<>> names;
  std::set<std::string, std::less<>> aliases;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "using") && i + 2 < t.size() && is_any_ident(t[i + 1]) &&
        is_punct(t[i + 2], "=")) {
      for (std::size_t j = i + 3; j < t.size() && !is_punct(t[j], ";"); ++j) {
        if (is_unordered_type(t[j]) ||
            (is_any_ident(t[j]) && in_set(aliases, t[j].text))) {
          aliases.insert(std::string(t[i + 1].text));
          break;
        }
      }
      continue;
    }
    const bool unordered_here =
        is_unordered_type(t[i]) ||
        (is_any_ident(t[i]) && in_set(aliases, t[i].text));
    if (!unordered_here) continue;
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "<")) j = skip_angles(t, j);
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") ||
            is_ident(t[j], "const")))
      ++j;
    if (j < t.size() && is_any_ident(t[j])) names.insert(std::string(t[j].text));
  }

  const auto report = [&](const Token& at, std::string what) {
    ctx.report(at.line, at.col, "D1",
               "iteration over unordered container " + what +
                   " — hash iteration order is not a program order and "
                   "differs across standard libraries",
               "sort first (util/sorted.h sorted_keys/sorted_items) or use "
               "an ordered container (std::map / flat sorted vector)");
  };

  // Pass 2: range-for over a tracked name (or an inline unordered
  // construction), `.begin()`-family calls, and iterator typedefs.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "for") && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
        else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") {
          --depth;
          if (depth == 0) { close = j; break; }
        } else if (t[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        // The blessed idiom: a range expression routed through the
        // util/sorted.h helpers destroys hash order by sorting, so
        // `for (k : sorted_keys(m))` is clean even though `m` is tracked.
        bool blessed = false;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_ident(t[j], "sorted_keys") || is_ident(t[j], "sorted_items") ||
              is_ident(t[j], "sorted_elements")) {
            blessed = true;
            break;
          }
        }
        if (blessed) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_unordered_type(t[j]) ||
              (is_any_ident(t[j]) &&
               (in_set(names, t[j].text) || in_set(aliases, t[j].text)))) {
            report(t[i], cat({"'", t[j].text, "' in a range-for"}));
            break;
          }
        }
      }
      continue;
    }
    if (is_any_ident(t[i]) && in_set(names, t[i].text) && i + 2 < t.size() &&
        (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
        (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin") ||
         is_ident(t[i + 2], "rbegin"))) {
      report(t[i], cat({"'", t[i].text, "' via .", t[i + 2].text, "()"}));
      continue;
    }
    if ((is_unordered_type(t[i]) ||
         (is_any_ident(t[i]) && in_set(aliases, t[i].text)))) {
      std::size_t j = i + 1;
      if (j < t.size() && is_punct(t[j], "<")) j = skip_angles(t, j);
      if (j + 1 < t.size() && is_punct(t[j], "::") &&
          (is_ident(t[j + 1], "iterator") ||
           is_ident(t[j + 1], "const_iterator"))) {
        report(t[i], cat({"'", t[i].text, "::", t[j + 1].text, "'"}));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D2 — no ambient randomness or wall clocks
// ---------------------------------------------------------------------------

void check_d2_nondeterminism_sources(const RuleContext& ctx) {
  // util/random.* is the one seeded randomness facility.
  if (path_ends_with(ctx.path, "util/random.h") ||
      path_ends_with(ctx.path, "util/random.cpp"))
    return;

  static const std::set<std::string, std::less<>> kAlways = {
      "rand",          "srand",          "drand48",
      "rand_r",        "random_device",  "mt19937",
      "mt19937_64",    "minstd_rand",    "minstd_rand0",
      "default_random_engine",           "ranlux24_base",
      "ranlux48_base", "steady_clock",   "system_clock",
      "high_resolution_clock",           "clock_gettime",
      "gettimeofday",  "timespec_get"};
  // Flagged only as a free-function call: `time(...)`, `std::time(...)` —
  // but not `x.time(...)` or a field named `time`.
  static const std::set<std::string, std::less<>> kCallOnly = {
      "time", "clock", "localtime", "gmtime", "ctime"};

  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_any_ident(t[i])) continue;
    const bool member_access =
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    if (in_set(kAlways, t[i].text) && !member_access) {
      ctx.report(t[i].line, t[i].col, "D2",
                 "ambient nondeterminism source '" + std::string(t[i].text) +
                     "' — observables must be a pure function of the seed",
                 "draw randomness from util/random.h Rng (explicit seed); a "
                 "deliberately-timed report field needs an allow(D2) with "
                 "its reason");
      continue;
    }
    if (in_set(kCallOnly, t[i].text) && !member_access && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      ctx.report(t[i].line, t[i].col, "D2",
                 "wall-clock call '" + std::string(t[i].text) +
                     "()' in a deterministic path",
                 "timing belongs in the explicitly-timed report fields "
                 "(allow(D2) with a reason), never in logic");
    }
  }
}

// ---------------------------------------------------------------------------
// D3 — no ordering / hashing of raw pointer values
// ---------------------------------------------------------------------------

void check_d3_pointer_ordering(const RuleContext& ctx) {
  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_any_ident(t[i]) &&
        (t[i].text == "uintptr_t" || t[i].text == "intptr_t")) {
      ctx.report(t[i].line, t[i].col, "D3",
                 "pointer-to-integer round-trip via '" +
                     std::string(t[i].text) +
                     "' — addresses differ run to run, so any observable "
                     "derived from them is nondeterministic",
                 "key on stable ids (NodeId/EdgeId/PartId) instead of "
                 "addresses");
      continue;
    }
    if (is_any_ident(t[i]) &&
        (t[i].text == "hash" || t[i].text == "less" ||
         t[i].text == "greater") &&
        i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      const std::size_t end = skip_angles(t, i + 1);
      for (std::size_t j = i + 2; j + 1 < end + 1 && j < t.size(); ++j) {
        if (is_punct(t[j], "*")) {
          ctx.report(t[i].line, t[i].col, "D3",
                     cat({"'", t[i].text,
                          "' over a raw pointer type — pointer hash/order is "
                          "the allocator's, not the program's"}),
                     "hash or compare a stable id; if identity is needed, "
                     "assign explicit sequence numbers");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D4 — no floating-point accumulation in engine/metric code
// ---------------------------------------------------------------------------

void check_d4_float_accumulation(const RuleContext& ctx) {
  // Scope: the layers whose outputs are golden-pinned counters/metrics.
  const bool scoped =
      path_contains(ctx.path, "src/congest/") ||
      path_contains(ctx.path, "src/mst/") ||
      path_contains(ctx.path, "src/shortcut/") ||
      path_contains(ctx.path, "src/apps/") ||
      path_contains(ctx.path, "src/tree/") ||
      path_contains(ctx.path, "src/dynamic/") ||
      path_ends_with(ctx.path, "graph/metrics.h") ||
      path_ends_with(ctx.path, "graph/metrics.cpp");
  if (!scoped) return;

  const auto& t = ctx.code;

  // Names declared float/double (variables, members, parameters — not
  // functions returning double: those are pure formulas, the hazard is
  // order-dependent accumulation).
  std::set<std::string, std::less<>> fp_names;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_ident(t[i], "float") || is_ident(t[i], "double"))) continue;
    if (i > 0 && is_punct(t[i - 1], "<")) continue;  // template argument
    const Token& name = t[i + 1];
    const Token& after = t[i + 2];
    if (is_any_ident(name) &&
        (is_punct(after, "=") || is_punct(after, ";") ||
         is_punct(after, "{") || is_punct(after, ",") ||
         is_punct(after, ")"))) {
      fp_names.insert(std::string(name.text));
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_any_ident(t[i]) && in_set(fp_names, t[i].text) &&
        i + 1 < t.size() &&
        (is_punct(t[i + 1], "+=") || is_punct(t[i + 1], "-=") ||
         is_punct(t[i + 1], "*="))) {
      ctx.report(t[i].line, t[i].col, "D4",
                 "floating-point accumulation into '" +
                     std::string(t[i].text) +
                     "' in engine/metric code — FP addition is not "
                     "associative, so accumulation order (thread count, "
                     "shard boundaries) becomes observable",
                 "accumulate in integers (counts, charges, fixed-point) and "
                 "convert once at the edge; a timing field needs allow(D4)");
      continue;
    }
    if (is_any_ident(t[i]) &&
        (t[i].text == "accumulate" || t[i].text == "reduce" ||
         t[i].text == "transform_reduce") &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      ctx.report(t[i].line, t[i].col, "D4",
                 cat({"'", t[i].text,
                      "' in engine/metric code — reduction order over floats "
                      "is an implementation detail"}),
                 "reduce over integers, or spell the loop with a fixed "
                 "deterministic order");
    }
  }
}

// ---------------------------------------------------------------------------
// S1 — narrowing must route through util/cast.h
// ---------------------------------------------------------------------------

void check_s1_unchecked_narrowing(const RuleContext& ctx) {
  static const std::set<std::string, std::less<>> kNarrow = {
      "int",      "short",    "char",     "int8_t",  "uint8_t",
      "int16_t",  "uint16_t", "int32_t",  "uint32_t", "char8_t",
      "char16_t", "char32_t", "NodeId",   "EdgeId",  "PartId"};

  const auto& t = ctx.code;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "static_cast") || !is_punct(t[i + 1], "<")) continue;
    const std::size_t end = skip_angles(t, i + 1);
    // Normalize the target type: drop std:: qualification and const.
    std::vector<std::string_view> ty;
    for (std::size_t j = i + 2; j + 1 < end && j < t.size(); ++j) {
      if (is_ident(t[j], "std") || is_punct(t[j], "::") ||
          is_ident(t[j], "const"))
        continue;
      ty.push_back(t[j].text);
    }
    bool narrow = false;
    if (ty.size() == 1) {
      narrow = in_set(kNarrow, ty[0]) || ty[0] == "unsigned" ||
               ty[0] == "signed";
    } else if (ty.size() == 2 &&
               (ty[0] == "unsigned" || ty[0] == "signed")) {
      narrow = ty[1] == "char" || ty[1] == "short" || ty[1] == "int";
    }
    if (!narrow) continue;
    std::string shown;
    for (const auto s : ty) {
      if (!shown.empty()) shown += ' ';
      shown += s;
    }
    ctx.report(t[i].line, t[i].col, "S1",
               "ad-hoc narrowing static_cast<" + shown +
                   "> — silent truncation turns an out-of-range size into a "
                   "wrong answer instead of a diagnosis",
               "use util::checked_cast<" + shown +
                   "> (range-checked) or util::truncate_cast<" + shown +
                   "> (intentional truncation) from util/cast.h");
  }
}

// ---------------------------------------------------------------------------
// S2 — no naked thread primitives outside util/worker_pool
// ---------------------------------------------------------------------------

void check_s2_naked_threads(const RuleContext& ctx) {
  if (path_ends_with(ctx.path, "util/worker_pool.h") ||
      path_ends_with(ctx.path, "util/worker_pool.cpp"))
    return;

  const auto& t = ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "std") && i + 2 < t.size() &&
        is_punct(t[i + 1], "::") &&
        (is_ident(t[i + 2], "thread") || is_ident(t[i + 2], "jthread") ||
         is_ident(t[i + 2], "async"))) {
      ctx.report(t[i].line, t[i].col, "S2",
                 "naked 'std::" + std::string(t[i + 2].text) +
                     "' outside util/worker_pool — ad-hoc threads bypass "
                     "the deterministic shard/merge discipline",
                 "dispatch through util/worker_pool.h WorkerPool (the "
                 "engine's fork-join team)");
      continue;
    }
    if (is_any_ident(t[i]) && t[i].text == "pthread_create") {
      ctx.report(t[i].line, t[i].col, "S2",
                 "raw pthread_create outside util/worker_pool",
                 "dispatch through util/worker_pool.h WorkerPool");
      continue;
    }
    // #include <thread> / <future> outside the pool is the same smell.
    if (is_punct(t[i], "#") && i + 4 < t.size() &&
        is_ident(t[i + 1], "include") && is_punct(t[i + 2], "<") &&
        (is_ident(t[i + 3], "thread") || is_ident(t[i + 3], "future")) &&
        is_punct(t[i + 4], ">")) {
      ctx.report(t[i].line, t[i].col, "S2",
                 "#include <" + std::string(t[i + 3].text) +
                     "> outside util/worker_pool",
                 "thread primitives live behind util/worker_pool.h");
    }
  }
}

// ---------------------------------------------------------------------------
// S3 — status/result returns in io/persist/cache must be [[nodiscard]]
// ---------------------------------------------------------------------------

void check_s3_nodiscard_status(const RuleContext& ctx) {
  const bool scoped = path_ends_with(ctx.path, "graph/io.h") ||
                      path_ends_with(ctx.path, "shortcut/persist.h") ||
                      path_ends_with(ctx.path, "serve/cache.h") ||
                      path_ends_with(ctx.path, "util/bytes.h");
  if (!scoped) return;

  const auto& t = ctx.code;
  std::size_t decl_start = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct &&
        (t[i].text == ";" || t[i].text == "{" || t[i].text == "}")) {
      decl_start = i + 1;
      continue;
    }
    // Access specifiers restart a declaration too.
    if (t[i].kind == TokKind::kPunct && t[i].text == ":" && i > 0 &&
        (is_ident(t[i - 1], "public") || is_ident(t[i - 1], "private") ||
         is_ident(t[i - 1], "protected"))) {
      decl_start = i + 1;
      continue;
    }
    if (!is_punct(t[i], "(") || i == 0) continue;

    const Token& name = t[i - 1];
    if (!is_any_ident(name)) continue;               // lambda, cast, etc.
    if (i >= 2 && (is_punct(t[i - 2], ".") || is_punct(t[i - 2], "->")))
      continue;                                      // member call
    if (i >= 2 && is_ident(t[i - 2], "operator")) continue;

    // Return-type span (tokens between decl start and the name).
    bool skip = false, has_nodiscard = false;
    std::vector<std::size_t> type_toks;
    for (std::size_t j = decl_start; j + 1 < i; ++j) {
      if (is_ident(t[j], "nodiscard")) { has_nodiscard = true; continue; }
      if (is_punct(t[j], "[[") || is_punct(t[j], "]]")) continue;
      if (is_ident(t[j], "static") || is_ident(t[j], "inline") ||
          is_ident(t[j], "virtual") || is_ident(t[j], "explicit") ||
          is_ident(t[j], "constexpr") || is_ident(t[j], "friend") ||
          is_ident(t[j], "extern"))
        continue;
      // A bare `:` can never appear in a return type (`::` is its own
      // token): it marks a constructor init list or a ternary, not a
      // declaration.
      if (is_ident(t[j], "void") || is_ident(t[j], "return") ||
          is_ident(t[j], "using") || is_ident(t[j], "template") ||
          is_ident(t[j], "throw") || is_ident(t[j], "new") ||
          is_ident(t[j], "delete") || is_ident(t[j], "case") ||
          is_punct(t[j], "=") || is_punct(t[j], "~") || is_punct(t[j], "#") ||
          is_punct(t[j], ":")) {
        skip = true;
        break;
      }
      type_toks.push_back(j);
    }
    if (skip || type_toks.empty()) continue;  // void fn, ctor, call, stmt

    // Must actually be a declaration: the matching ')' is followed by
    // `;`, `{`, `const`, `noexcept`, `override`, or `= ...`.
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
      if (is_punct(t[j], "(")) ++depth;
      else if (is_punct(t[j], ")")) {
        if (--depth == 0) { close = j; break; }
      }
    }
    if (close == 0 || close + 1 >= t.size()) continue;
    std::size_t after = close + 1;
    while (after < t.size() &&
           (is_ident(t[after], "const") || is_ident(t[after], "noexcept") ||
            is_ident(t[after], "override") || is_ident(t[after], "final")))
      ++after;
    if (after >= t.size() ||
        !(is_punct(t[after], ";") || is_punct(t[after], "{") ||
          is_punct(t[after], "=")))
      continue;

    if (!has_nodiscard) {
      ctx.report(name.line, name.col, "S3",
                 "status/result-returning declaration '" +
                     std::string(name.text) +
                     "' in the io/persist/cache layer is not [[nodiscard]] "
                     "— a silently discarded result here is a swallowed "
                     "failure or wasted I/O",
                 "mark it [[nodiscard]]; the -Werror build then rejects any "
                 "call site that drops the result");
    }
  }
}

// ---------------------------------------------------------------------------
// S4 — no shared-mutable by-reference capture inside WorkerPool callbacks
// ---------------------------------------------------------------------------

void check_s4_shared_capture(const RuleContext& ctx) {
  // The deterministic idiom for pool callbacks is: read shared inputs,
  // write only through a per-worker slot (`results[w] = ...`) or an
  // atomic cursor. A bare write to a by-reference-captured name from
  // inside `pool.run(...)` is a race (or an order-dependent merge) the
  // golden matrix can only catch after the fact.
  if (path_ends_with(ctx.path, "util/worker_pool.h") ||
      path_ends_with(ctx.path, "util/worker_pool.cpp"))
    return;

  static const std::set<std::string, std::less<>> kMutatingMembers = {
      "push_back", "emplace_back", "insert", "erase",  "clear",
      "resize",    "reserve",      "assign", "append", "pop_back"};
  static const std::set<std::string, std::less<>> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

  const auto& t = ctx.code;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    // Receiver whose name mentions a pool, calling run / run_staged.
    if (!is_any_ident(t[i]) ||
        t[i].text.find("pool") == std::string_view::npos) {
      continue;
    }
    if (!(is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->"))) continue;
    if (!(is_ident(t[i + 2], "run") || is_ident(t[i + 2], "run_staged")))
      continue;
    if (!is_punct(t[i + 3], "(")) continue;

    // Locate the lambda argument: first `[` inside the call.
    int call_depth = 0;
    std::size_t lam = 0;
    for (std::size_t j = i + 3; j < t.size(); ++j) {
      if (is_punct(t[j], "(")) ++call_depth;
      else if (is_punct(t[j], ")")) {
        if (--call_depth == 0) break;
      } else if (is_punct(t[j], "[") && call_depth == 1) {
        lam = j;
        break;
      }
    }
    if (lam == 0) continue;

    // Capture list: `[&]` (default by-ref) or explicit `&name` /
    // `&name = expr` entries. By-value entries are safe by construction.
    bool default_by_ref = false;
    std::set<std::string, std::less<>> by_ref;
    std::set<std::string, std::less<>> by_value;
    std::size_t cap_end = lam;
    for (std::size_t j = lam + 1; j < t.size(); ++j) {
      if (is_punct(t[j], "]")) {
        cap_end = j;
        break;
      }
      if (is_punct(t[j], "&")) {
        if (j + 1 < t.size() && is_any_ident(t[j + 1])) {
          by_ref.insert(std::string(t[j + 1].text));
          ++j;
        } else {
          default_by_ref = true;
        }
      } else if (is_any_ident(t[j]) && !is_ident(t[j], "this")) {
        by_value.insert(std::string(t[j].text));
      }
    }
    if (cap_end == lam) continue;

    // Parameter list: every identifier in it is local to the callback
    // (types too — overbroad, but only ever in the safe direction).
    std::set<std::string, std::less<>> locals;
    std::size_t body = cap_end + 1;
    if (body < t.size() && is_punct(t[body], "(")) {
      int d = 0;
      for (std::size_t j = body; j < t.size(); ++j) {
        if (is_punct(t[j], "(")) ++d;
        else if (is_punct(t[j], ")")) {
          if (--d == 0) { body = j + 1; break; }
        } else if (is_any_ident(t[j]) && !is_cpp_keyword(t[j].text)) {
          locals.insert(std::string(t[j].text));
        }
      }
    }
    while (body < t.size() && !is_punct(t[body], "{")) {
      if (is_punct(t[body], ";")) break;  // no body (declaration-ish)
      ++body;
    }
    if (body >= t.size() || !is_punct(t[body], "{")) continue;
    int d = 0;
    std::size_t body_end = body;
    for (std::size_t j = body; j < t.size(); ++j) {
      if (is_punct(t[j], "{")) ++d;
      else if (is_punct(t[j], "}")) {
        if (--d == 0) { body_end = j; break; }
      }
    }

    // Pass 1 over the body: names declared locally (declarations read as
    // `Type name =/{/;/(...)` — the name is an identifier preceded by an
    // identifier / `auto` / `>` / `*` / `&` / `const` and followed by an
    // initializer or terminator; range-for `:` included).
    for (std::size_t j = body + 1; j + 1 < body_end; ++j) {
      if (!is_any_ident(t[j]) || is_cpp_keyword(t[j].text)) continue;
      const Token& prev = t[j - 1];
      const Token& next = t[j + 1];
      const bool decl_prev =
          is_any_ident(prev) || is_punct(prev, ">") || is_punct(prev, "*") ||
          is_punct(prev, "&") || is_punct(prev, ">>");
      const bool decl_next = is_punct(next, "=") || is_punct(next, "{") ||
                             is_punct(next, ";") || is_punct(next, ":") ||
                             is_punct(next, "(");
      if (decl_prev && decl_next) locals.insert(std::string(t[j].text));
    }

    // Pass 2: bare writes to by-ref-captured non-local names. A subscript
    // write (`slots[w] = ...`) is the per-worker-slot idiom and passes.
    for (std::size_t j = body + 1; j + 1 < body_end; ++j) {
      if (!is_any_ident(t[j]) || is_cpp_keyword(t[j].text)) continue;
      const std::string_view name = t[j].text;
      const bool captured_ref =
          in_set(by_ref, name) ||
          (default_by_ref && !in_set(by_value, name));
      if (!captured_ref || in_set(locals, name)) continue;
      const Token& prev = t[j - 1];
      const Token& next = t[j + 1];
      if (is_punct(prev, ".") || is_punct(prev, "->")) continue;
      if (is_punct(next, "[")) continue;  // per-worker slot
      // Declarations inside the body were collected in pass 1; a name
      // that is also a local is already excluded above.
      bool writes = false;
      std::string via;
      if (next.kind == TokKind::kPunct && in_set(kAssignOps, next.text)) {
        writes = true;
        via = cat({"'", name, " ", next.text, "'"});
      } else if (is_punct(next, "++") || is_punct(next, "--") ||
                 is_punct(prev, "++") || is_punct(prev, "--")) {
        writes = true;
        via = cat({"'", name, "' increment/decrement"});
      } else if ((is_punct(next, ".") || is_punct(next, "->")) &&
                 j + 3 < body_end && is_any_ident(t[j + 2]) &&
                 in_set(kMutatingMembers, t[j + 2].text) &&
                 is_punct(t[j + 3], "(")) {
        writes = true;
        via = cat({"'", name, ".", t[j + 2].text, "(...)'"});
      }
      if (!writes) continue;
      ctx.report(
          t[j].line, t[j].col, "S4",
          cat({"WorkerPool callback mutates by-reference capture ", via,
               " outside the per-worker-slot idiom — concurrent workers "
               "race on it and the merge order becomes an observable"}),
          "write through a per-worker slot (`out[w] = ...`) and merge "
          "after run() returns, or use an atomic cursor");
    }
  }
}

}  // namespace lcs::lint::detail
