/// \file include_graph.h
/// Project include-graph for the lcs_lint architecture rules.
///
/// Nodes are repo-relative canonical paths (`src/util/cast.h`,
/// `tools/lcs_run.cpp`); edges are *direct* quoted `#include` directives
/// resolved against the set of scanned files (angled/system includes are
/// outside the project and carry no edges). On top of the raw edges the
/// graph answers the three structural questions the rules ask:
///
///  - A2: is there an include cycle? (strongly connected components)
///  - A1: does any edge point from a lower layer to a higher one,
///    against the committed manifest `src/lint/layers.txt`?
///  - A3/A4: which headers does a file reach transitively vs include
///    directly? (reachability closure)
///
/// Everything here is deterministic: nodes are sorted, neighbor lists
/// are sorted, SCCs are emitted in a canonical order.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace lcs::lint {

/// One `#include` directive as written in a file.
struct IncludeDirective {
  std::string target;  ///< path between the quotes / angle brackets
  int line = 0;        ///< physical line of the `#`
  int col = 0;
  bool angled = false; ///< `<...>` (system) vs `"..."` (project)
};

/// Extract all `#include` directives from a token stream (which must
/// come from lex() with splice storage, so spliced directives are seen).
std::vector<IncludeDirective> extract_includes(const std::vector<Token>& toks);

/// Canonicalize a scanned file path to its repo-relative form: the
/// suffix starting at the last `src` / `tools` / `tests` / `bench` /
/// `examples` path component ("/root/repo/src/util/cast.h" and
/// "src/util/cast.h" both map to "src/util/cast.h"). Paths containing
/// no marker are returned unchanged.
std::string include_key(std::string_view path);

class IncludeGraph {
 public:
  struct Edge {
    int to = 0;   ///< node index
    int line = 0; ///< line of the include directive in the source node
    int col = 0;
  };

  /// Build from (canonical path, direct includes) pairs. Quoted targets
  /// resolve against the scanned set by trying `src/<target>` then
  /// `<target>` verbatim; unresolved targets (outside the scanned tree)
  /// and angled includes produce no edge.
  static IncludeGraph build(
      const std::vector<std::pair<std::string, std::vector<IncludeDirective>>>&
          files);

  const std::vector<std::string>& nodes() const { return nodes_; }
  const std::vector<std::vector<Edge>>& out_edges() const { return out_; }

  /// Node index for a canonical path, or -1.
  int node_of(std::string_view key) const;

  /// Strongly connected components with ≥2 nodes (i.e. include cycles),
  /// each sorted by node index, the list sorted by smallest member.
  /// A self-include (x includes x) is reported as a size-1 cycle.
  std::vector<std::vector<int>> cycles() const;

  /// reach[f] = set of node indices reachable from f by following one or
  /// more include edges (f itself only if it lies on a cycle).
  std::vector<std::vector<int>> closure() const;

  /// Graphviz dump of the project include graph (deterministic order).
  std::string to_dot() const;

 private:
  std::vector<std::string> nodes_;          // sorted
  std::vector<std::vector<Edge>> out_;      // sorted by (to, line)
};

/// The committed layering manifest (src/lint/layers.txt): one
/// `layer <name> <dir> [<dir>...]` line per layer, lowest layer first.
/// A file belongs to the layer owning the longest matching directory
/// prefix; files under no listed directory are unconstrained.
class LayerManifest {
 public:
  struct Layer {
    std::string name;
    std::vector<std::string> dirs;  ///< repo-relative, no trailing slash
  };

  /// Parse the manifest text. On malformed input returns an empty
  /// manifest and sets *error (never throws: the linter must be able to
  /// report a bad manifest as a finding, not crash on it).
  static LayerManifest parse(std::string_view text, std::string* error);

  /// Index of the layer owning `key` (lower index = lower layer), or -1.
  int layer_of(std::string_view key) const;

  const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<Layer> layers_;
};

}  // namespace lcs::lint
