/// \file lint.h
/// lcs_lint — the repo-specific determinism & safety static-analysis pass.
///
/// The repo's headline guarantee is that every observable (reports,
/// goldens, serve payloads, engine counters) is bit-identical at any
/// thread count and across the run/serve/cache paths. The golden matrix
/// and TSan enforce that *dynamically, after the fact*; this pass enforces
/// the source-level discipline that makes it true:
///
///   D1  no iteration over `std::unordered_map/set` (hash order is not a
///       program order) outside the blessed sort-before-use helpers;
///   D2  no `rand`/`random_device`/`time`/`chrono` clocks outside
///       `src/util/random.*` and explicitly-suppressed timing fields;
///   D3  no ordering, hashing, or integer round-trips of raw pointer
///       values (addresses vary run to run);
///   D4  no floating-point accumulation in engine/metric code (FP addition
///       is not associative, so accumulation order becomes observable);
///   S1  integer narrowing must route through util::checked_cast /
///       util::truncate_cast (src/util/cast.h), never ad-hoc static_cast;
///   S2  no naked `std::thread`/`std::async` outside util/worker_pool;
///   S3  status/result returns in the io/persist/cache layers must be
///       `[[nodiscard]]` (the compiler then gates discarded results).
///
/// Findings print `file:line:col: RULE: message (fix: hint)`. A finding is
/// suppressed by an end-of-line (or immediately preceding full-line)
/// comment `// lcs-lint: allow(RULE) reason` — the reason is mandatory,
/// and a suppression that matches no finding is itself an error, so stale
/// allows cannot accumulate. Full rule table with rationale and examples:
/// src/lint/README.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcs::lint {

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;     ///< "D1".."D4", "S1".."S3", or "LINT" (pass hygiene)
  std::string message;  ///< what is wrong
  std::string hint;     ///< how to fix it
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The enforced rule set, in report order.
const std::vector<RuleInfo>& rule_table();

/// Lint one in-memory translation unit. `path` is the repo-relative path —
/// rule scoping (allowlists, per-layer rules) matches on it. Suppression
/// accounting is per-file: unused suppressions come back as LINT findings.
/// If `suppressions_used` is non-null it receives the number of honored
/// suppression directives.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source,
                                 int* suppressions_used = nullptr);

struct LintResult {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int suppressions_used = 0;
};

/// Lint every `.cpp/.h/.cc/.hpp` under the given files or directories
/// (recursively), in sorted path order. Paths containing `lint_fixtures`
/// are skipped — the fixture corpus deliberately violates every rule.
LintResult lint_paths(const std::vector<std::string>& paths);

/// "file:line:col: RULE: message (fix: hint)".
std::string format_finding(const Finding& f);

}  // namespace lcs::lint
