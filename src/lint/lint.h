/// \file lint.h
/// lcs_lint — the repo-specific determinism, safety & architecture
/// static-analysis pass.
///
/// The repo's headline guarantee is that every observable (reports,
/// goldens, serve payloads, engine counters) is bit-identical at any
/// thread count and across the run/serve/cache paths. The golden matrix
/// and TSan enforce that *dynamically, after the fact*; this pass enforces
/// the source-level discipline that makes it true:
///
///   D1  no iteration over `std::unordered_map/set` (hash order is not a
///       program order) outside the blessed sort-before-use helpers;
///   D2  no `rand`/`random_device`/`time`/`chrono` clocks outside
///       `src/util/random.*` and explicitly-suppressed timing fields;
///   D3  no ordering, hashing, or integer round-trips of raw pointer
///       values (addresses vary run to run);
///   D4  no floating-point accumulation in engine/metric code (FP addition
///       is not associative, so accumulation order becomes observable);
///   S1  integer narrowing must route through util::checked_cast /
///       util::truncate_cast (src/util/cast.h), never ad-hoc static_cast;
///   S2  no naked `std::thread`/`std::async` outside util/worker_pool;
///   S3  status/result returns in the io/persist/cache layers must be
///       `[[nodiscard]]`;
///   S4  no mutation of by-reference-captured shared state inside
///       `WorkerPool::run` callbacks outside the per-worker-slot idiom.
///
/// And, with the whole scanned tree in view (the include graph and the
/// per-header exported-symbol index), the structural invariants:
///
///   A1  no include edge climbing the architecture layering committed in
///       src/lint/layers.txt (util -> graph -> congest -> algorithms ->
///       scenario -> driver -> serve -> tools);
///   A2  no include cycles;
///   A3  no reliance on transitive includes: a project symbol you use
///       must come from a header you include directly;
///   A4  no unused direct project includes;
///   U1  no dead file-external symbols: a non-static namespace-scope
///       definition in src/ that no other TU references is either
///       file-local or deleted.
///
/// Findings print `file:line:col: RULE: message (fix: hint)`. A finding is
/// suppressed by an end-of-line (or immediately preceding full-line)
/// comment `// lcs-lint: allow(RULE) reason` — the reason is mandatory,
/// and a suppression that matches no finding is itself an error, so stale
/// allows cannot accumulate. Full rule table with rationale and examples:
/// src/lint/README.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcs::lint {

struct Finding {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;     ///< "D1".."D4", "S1".."S4", "A1".."A4", "U1", "LINT"
  std::string message;  ///< what is wrong
  std::string hint;     ///< how to fix it
};

struct RuleInfo {
  std::string_view id;
  std::string_view family;     ///< determinism | safety | architecture | deadcode
  std::string_view summary;    ///< what the rule forbids
  std::string_view rationale;  ///< one line: why the repo needs it
  int fixtures = 0;            ///< fixture files/dirs under tests/lint_fixtures
};

/// The enforced rule set, in report order. (The "LINT" pass-hygiene
/// pseudo-rule — malformed or stale suppressions — is not listed here:
/// it cannot be suppressed or disabled.)
const std::vector<RuleInfo>& rule_table();

/// Lint one in-memory translation unit with the *per-file* rules only
/// (D1-D4, S1-S4) — no include graph, no cross-TU analysis. `path` is
/// the repo-relative path; rule scoping (allowlists, per-layer rules)
/// matches on it. Suppression accounting is per-file: unused
/// suppressions come back as LINT findings. If `suppressions_used` is
/// non-null it receives the number of honored suppression directives.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source,
                                 int* suppressions_used = nullptr);

/// One in-memory file for lint_sources().
struct SourceFile {
  std::string path;
  std::string source;
};

struct Options {
  /// Layer manifest text (src/lint/layers.txt format). Empty = no
  /// layering: A1 is skipped. lint_paths() auto-discovers the committed
  /// manifest when this is empty.
  std::string layers_text;
  /// Path of the incremental cache file. Empty = no cache. The cache is
  /// keyed by content hash + rule fingerprint: warm runs re-read bytes
  /// but never re-lex an unchanged file.
  std::string cache_file;
};

struct LintResult {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int files_lexed = 0;       ///< files analyzed fresh this run
  int cache_hits = 0;        ///< files served from the incremental cache
  int suppressions_used = 0;
  std::string graph_dot;     ///< Graphviz dump of the project include graph
};

/// Lint a set of in-memory files as one project: per-file rules plus the
/// project rules (A1-A4, U1) over the include graph they span. Paths are
/// canonicalized with include_key(). Findings are sorted by
/// (file, line, col, rule).
LintResult lint_sources(const std::vector<SourceFile>& files,
                        const Options& options = {});

/// Lint every `.cpp/.h/.cc/.hpp` under the given files or directories
/// (recursively), in sorted path order, as one project. Paths containing
/// `lint_fixtures` are skipped — the fixture corpus deliberately
/// violates every rule. If options.layers_text is empty, the committed
/// manifest is loaded from `src/lint/layers.txt` (resolved against the
/// working directory and each input path).
LintResult lint_paths(const std::vector<std::string>& paths,
                      const Options& options = {});

/// "file:line:col: RULE: message (fix: hint)".
std::string format_finding(const Finding& f);

/// The machine-readable findings document (schema "lcs-lint-findings-v1",
/// deterministic key order, one JSON object, trailing newline).
std::string format_findings_json(const LintResult& result);

/// The --list-rules text: a block per rule —
/// `ID  [family, fixtures=N]` + `what:` + `why:` lines — plus the LINT
/// pass-hygiene row. Golden-pinned so the docs table cannot drift.
std::string format_rule_table();

}  // namespace lcs::lint
