/// \file arch_rules.cpp
/// Project-wide rules: A1 layering, A2 include cycles, A3 missing direct
/// include, A4 unused direct include, U1 dead file-external symbols.
/// These see every file's FileSummary at once — they reason about the
/// include graph and cross-TU references, which no single file can.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/include_graph.h"
#include "lint/lint.h"
#include "lint/parse.h"
#include "lint/rules.h"
#include "util/cast.h"

namespace lcs::lint::detail {

namespace {

bool is_header(std::string_view path) {
  return path_ends_with(path, ".h") || path_ends_with(path, ".hpp");
}

/// "src/graph/io.cpp" -> "src/graph/io", used for header/source pairing.
std::string_view stem(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(0, dot);
}

bool is_pair(std::string_view a, std::string_view b) {
  return stem(a) == stem(b);
}

/// The symbol kinds that constitute a file's exports (namespaces are
/// scoping, not symbols).
bool exportable(const Decl& d) {
  return d.kind != DeclKind::kNamespace && !d.file_local;
}

}  // namespace

void run_project_rules(const std::vector<FileSummary>& files,
                       const IncludeGraph& graph, const LayerManifest& layers,
                       const std::function<void(Finding)>& report) {
  const std::vector<std::string>& nodes = graph.nodes();

  // Summary lookup by node index (node keys == summary paths).
  std::vector<const FileSummary*> by_node(nodes.size(), nullptr);
  for (const FileSummary& f : files) {
    const int n = graph.node_of(f.path);
    if (n >= 0) by_node[util::checked_usize(n)] = &f;
  }

  // ---- A1: layering violations -------------------------------------------
  if (!layers.layers().empty()) {
    for (std::size_t f = 0; f < nodes.size(); ++f) {
      const int lf = layers.layer_of(nodes[f]);
      if (lf < 0) continue;
      for (const IncludeGraph::Edge& e : graph.out_edges()[f]) {
        const std::string& to = nodes[util::checked_usize(e.to)];
        const int lt = layers.layer_of(to);
        if (lt < 0 || lt <= lf) continue;
        report(Finding{
            nodes[f], e.line, e.col, "A1",
            "include climbs the architecture layering: " +
                layers.layers()[util::checked_usize(lf)].name + " (" +
                nodes[f] + ") must not include " +
                layers.layers()[util::checked_usize(lt)].name + " (" + to +
                ") — lower layers cannot see higher ones",
            "invert the dependency (callback, registry, or move the shared "
            "piece down); the manifest is src/lint/layers.txt"});
      }
    }
  }

  // ---- A2: include cycles ------------------------------------------------
  for (const std::vector<int>& cyc : graph.cycles()) {
    const std::size_t anchor = util::checked_usize(cyc[0]);
    // Anchor the finding at the first cycle member's edge into the cycle.
    int line = 1;
    int col = 1;
    for (const IncludeGraph::Edge& e : graph.out_edges()[anchor]) {
      if (std::find(cyc.begin(), cyc.end(), e.to) != cyc.end()) {
        line = e.line;
        col = e.col;
        break;
      }
    }
    std::string members;
    for (const int n : cyc) {
      if (!members.empty()) members += ", ";
      members += nodes[util::checked_usize(n)];
    }
    report(Finding{nodes[anchor], line, col, "A2",
                   "include cycle among: " + members +
                       " — cyclic headers make build order and incremental "
                       "analysis ill-defined",
                   "split the shared declarations into a lower header both "
                   "sides can include"});
  }

  // ---- Exported-symbol indexes -------------------------------------------
  // A3 wants the one true home of a symbol. Definitions outrank
  // declarations: a function's home is the header *declaring* it (its
  // definition lives in a .cpp), but a type forward-declared in many
  // headers is homed at the single header that defines it. exports: per
  // node, every exportable name (declarations included — a forward-decl
  // header is a legitimate thing to include for the name).
  std::map<std::string, std::vector<int>> def_homes;   // is_definition
  std::map<std::string, std::vector<int>> decl_homes;  // any exportable
  std::vector<std::set<std::string>> exports(nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const FileSummary* f = by_node[n];
    if (f == nullptr) continue;
    for (const Decl& d : f->outline.decls) {
      if (!exportable(d)) continue;
      exports[n].insert(d.name);
      if (is_header(nodes[n])) {
        const int ni = util::checked_cast<int>(n);
        std::vector<int>& dh = decl_homes[d.name];
        if (dh.empty() || dh.back() != ni) dh.push_back(ni);
        if (d.is_definition) {
          std::vector<int>& v = def_homes[d.name];
          if (v.empty() || v.back() != ni) v.push_back(ni);
        }
      }
    }
  }
  // name -> its unique home header, or nothing.
  std::map<std::string, int> definers;
  for (const auto& [name, homes] : decl_homes) {
    const auto dit = def_homes.find(name);
    if (dit != def_homes.end()) {
      if (dit->second.size() == 1) definers[name] = dit->second[0];
    } else if (homes.size() == 1) {
      definers[name] = homes[0];
    }
  }

  const std::vector<std::vector<int>> reach = graph.closure();

  // ---- A3 / A4 per file --------------------------------------------------
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const FileSummary* f = by_node[n];
    if (f == nullptr) continue;

    std::set<int> direct;
    for (const IncludeGraph::Edge& e : graph.out_edges()[n]) {
      direct.insert(e.to);
    }
    const std::set<int> reachable(reach[n].begin(), reach[n].end());

    std::set<std::string> own_names;
    for (const Decl& d : f->outline.decls) own_names.insert(d.name);

    std::set<std::string> ref_names;
    for (const Ref& r : f->refs) ref_names.insert(r.name);

    // A3: symbol with a unique defining header, reached only transitively.
    std::set<int> a3_reported;  // one finding per missing header
    for (const Ref& r : f->refs) {
      if (own_names.count(r.name) != 0) continue;
      const auto it = definers.find(r.name);
      if (it == definers.end()) continue;
      const int h = it->second;
      const std::size_t hu = util::checked_usize(h);
      if (hu == n || is_pair(nodes[hu], nodes[n])) continue;
      if (direct.count(h) != 0) continue;
      if (reachable.count(h) == 0) continue;  // not via our includes at all
      if (!a3_reported.insert(h).second) continue;
      report(Finding{
          f->path, r.line, r.col, "A3",
          "'" + r.name + "' is defined in " + nodes[hu] +
              ", which this file only reaches transitively — a refactor of "
              "an intermediate header's includes breaks this file",
          "add `#include \"" +
              (nodes[hu].size() > 4 && nodes[hu].substr(0, 4) == "src/"
                   ? nodes[hu].substr(4)
                   : nodes[hu]) +
              "\"` (include what you use)"});
    }

    // A4: direct project include whose exports are never referenced.
    for (const IncludeGraph::Edge& e : graph.out_edges()[n]) {
      const std::size_t hu = util::checked_usize(e.to);
      if (!is_header(nodes[hu]) || is_pair(nodes[hu], nodes[n])) continue;
      const std::set<std::string>& ex = exports[hu];
      if (ex.empty()) continue;  // umbrella / operator-only header
      bool used = false;
      for (const std::string& name : ex) {
        if (ref_names.count(name) != 0) {
          used = true;
          break;
        }
      }
      if (used) continue;
      report(Finding{f->path, e.line, e.col, "A4",
                     "unused direct include: no symbol exported by " +
                         nodes[hu] + " is referenced in this file",
                     "drop the #include (or use the symbol it was added "
                     "for)"});
    }
  }

  // ---- U1: dead file-external symbols ------------------------------------
  // A name is alive if any file references it more times than it declares
  // it (declaration name tokens count as refs; macro definition names do
  // not, so for macros any reference at all is life). Pure name-level:
  // overloads and coincidental name shares are merged — conservative in
  // the safe direction.
  struct RefStat {
    int refs = 0;
    int decls = 0;  // decl name tokens that collect_refs counted
  };
  // name -> per-file stats, and name -> candidate (file, decl) sites.
  std::map<std::string, std::map<std::string, RefStat>> stats;
  struct Site {
    const FileSummary* file;
    const Decl* decl;
  };
  std::map<std::string, std::vector<Site>> candidates;

  for (const FileSummary& f : files) {
    for (const Ref& r : f.refs) {
      // Only names someone defines can be U1 candidates; prune later.
      stats[r.name][f.path].refs += r.count;
    }
    for (const Decl& d : f.outline.decls) {
      if (d.kind == DeclKind::kNamespace) continue;
      if (d.kind != DeclKind::kMacro) {
        // The decl's own name token was counted by collect_refs.
        stats[d.name][f.path].decls += 1;
      }
      if (f.path.size() < 4 || f.path.substr(0, 4) != "src/") continue;
      if (!exportable(d)) continue;
      if (d.name == "main") continue;
      // Registry entry points are *meant* to be referenced only by the
      // registrar; they are the plugin seam, not dead code.
      if (d.name.size() >= 9 && d.name.substr(0, 9) == "register_") continue;
      candidates[d.name].push_back(Site{&f, &d});
    }
  }

  for (const auto& [name, sites] : candidates) {
    bool alive = false;
    const auto st = stats.find(name);
    if (st != stats.end()) {
      for (const auto& [path, s] : st->second) {
        if (s.refs > s.decls) {
          alive = true;
          break;
        }
      }
    }
    if (alive) continue;

    // Report once per defining file; for a header/source pair, prefer the
    // header declaration (the .cpp definition dies with it).
    std::set<std::string> reported_stems;
    for (const Site& s : sites) {
      bool header_sibling = false;
      if (!is_header(s.file->path)) {
        for (const Site& o : sites) {
          if (o.file != s.file && is_pair(o.file->path, s.file->path)) {
            header_sibling = true;
            break;
          }
        }
      }
      if (header_sibling) continue;
      if (!reported_stems.insert(std::string(stem(s.file->path))).second)
        continue;
      report(Finding{
          s.file->path, s.decl->line, s.decl->col, "U1",
          "'" + name + "' is defined here but referenced by no other "
              "translation unit — dead file-external symbols are API "
              "surface nothing pays for",
          "delete it, make it file-local (static / anonymous namespace), "
          "or reference it from the code that was supposed to use it"});
    }
  }
}

}  // namespace lcs::lint::detail
