#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

#include "util/cast.h"

namespace lcs::lint {

namespace {

// truncate_cast: char -> unsigned char reinterpretation, required before
// handing a char to the <cctype> classifiers.
bool is_ident_start(char c) {
  return std::isalpha(util::truncate_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(util::truncate_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) {
  return std::isdigit(util::truncate_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators the rules care about, longest first so
/// maximal munch picks `::` over `:` and `[[` over `[`. Everything else
/// falls back to a single-character punct token.
constexpr std::string_view kPuncts[] = {
    "::", "->", "[[", "]]", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
};

/// True if position `p` of `s` starts a backslash line-splice
/// (`\` + `\n`, or `\` + `\r\n`). Returns the splice length (0 if none).
std::size_t splice_len_at(std::string_view s, std::size_t p) {
  if (p >= s.size() || s[p] != '\\') return 0;
  if (p + 1 < s.size() && s[p + 1] == '\n') return 2;
  if (p + 2 < s.size() && s[p + 1] == '\r' && s[p + 2] == '\n') return 3;
  return 0;
}

}  // namespace

std::vector<Token> lex(std::string_view source, std::string* splice_storage) {
  std::string_view src = source;

  // Translation phase 2: if the caller gave us storage and the source
  // contains `\`+newline splices, materialize the spliced text and a
  // per-byte map back to physical line/column, then lex the spliced text.
  // Tokens report the physical position of their first character, so a
  // directive spliced across three lines is still findable in the editor.
  bool has_map = false;
  std::vector<int> line_map;
  std::vector<int> col_map;
  if (splice_storage != nullptr) {
    bool has_splice = false;
    for (std::size_t p = source.find('\\'); p != std::string_view::npos;
         p = source.find('\\', p + 1)) {
      if (splice_len_at(source, p) != 0) {
        has_splice = true;
        break;
      }
    }
    if (has_splice) {
      std::string& spliced = *splice_storage;
      spliced.clear();
      spliced.reserve(source.size());
      line_map.reserve(source.size());
      col_map.reserve(source.size());
      int pl = 1;
      int pc = 1;
      for (std::size_t p = 0; p < source.size();) {
        const std::size_t sl = splice_len_at(source, p);
        if (sl != 0) {
          // The splice vanishes from the logical text; physically it ends
          // the line.
          ++pl;
          pc = 1;
          p += sl;
          continue;
        }
        spliced.push_back(source[p]);
        line_map.push_back(pl);
        col_map.push_back(pc);
        if (source[p] == '\n') {
          ++pl;
          pc = 1;
        } else {
          ++pc;
        }
        ++p;
      }
      src = spliced;
      has_map = true;
    }
  }

  std::vector<Token> out;
  out.reserve(src.size() / 6 + 16);

  std::size_t i = 0;
  int line = 1;
  int col = 1;
  bool at_bol = true;  // no token yet on the current logical line

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (!has_map) {
        if (src[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
    }
  };
  const auto emit = [&](TokKind kind, std::size_t begin, std::size_t end,
                        int tline, int tcol) {
    out.push_back(
        Token{kind, src.substr(begin, end - begin), tline, tcol, at_bol});
    at_bol = false;
  };

  while (i < src.size()) {
    const char c = src[i];

    // Whitespace. A newline here starts a fresh logical line (splices were
    // already removed above, so every remaining '\n' is logical).
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      if (c == '\n') at_bol = true;
      advance(1);
      continue;
    }

    const std::size_t begin = i;
    const int tline = has_map ? line_map[i] : line;
    const int tcol = has_map ? col_map[i] : col;

    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      emit(TokKind::kComment, begin, i, tline, tcol);
      continue;
    }

    // Block comment (unterminated extends to EOF).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      advance(2);
      while (i < src.size() &&
             !(src[i] == '*' && i + 1 < src.size() && src[i + 1] == '/')) {
        advance(1);
      }
      advance(2);  // closing */ (no-op at EOF)
      emit(TokKind::kComment, begin, i, tline, tcol);
      continue;
    }

    // Raw string literal: [prefix]R"delim( ... )delim".
    if (c == 'R' || c == 'L' || c == 'u' || c == 'U') {
      std::size_t j = i;
      // Optional encoding prefix before R (u8R, LR, ...).
      if (src[j] == 'u' && j + 1 < src.size() && src[j + 1] == '8') j += 2;
      else if (src[j] == 'L' || src[j] == 'u' || src[j] == 'U') j += 1;
      if (j < src.size() && src[j] == 'R' && j + 1 < src.size() &&
          src[j + 1] == '"') {
        // Collect the delimiter up to '('.
        std::size_t k = j + 2;
        std::string_view delim;
        while (k < src.size() && src[k] != '(' && k - (j + 2) < 16) ++k;
        if (k < src.size() && src[k] == '(') {
          delim = src.substr(j + 2, k - (j + 2));
          // Find )delim" .
          std::size_t body = k + 1;
          std::size_t endpos = std::string_view::npos;
          for (std::size_t p = body; p + delim.size() + 1 < src.size() + 1;
               ++p) {
            if (src[p] == ')' &&
                src.compare(p + 1, delim.size(), delim) == 0 &&
                p + 1 + delim.size() < src.size() &&
                src[p + 1 + delim.size()] == '"') {
              endpos = p + delim.size() + 2;
              break;
            }
          }
          if (endpos == std::string_view::npos) endpos = src.size();
          advance(endpos - i);
          emit(TokKind::kString, begin, i, tline, tcol);
          continue;
        }
      }
      // Not a raw string: fall through to identifier handling below.
    }

    // String literal.
    if (c == '"') {
      advance(1);
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) advance(2);
        else if (src[i] == '\n') break;  // unterminated: stop at newline
        else advance(1);
      }
      if (i < src.size() && src[i] == '"') advance(1);
      emit(TokKind::kString, begin, i, tline, tcol);
      continue;
    }

    // Char literal. Distinguish from digit separators (1'000'000): a quote
    // directly following a number token's digits is handled in the number
    // branch below, so reaching here with '\'' means a real char literal.
    if (c == '\'') {
      advance(1);
      while (i < src.size() && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < src.size()) advance(2);
        else if (src[i] == '\n') break;
        else advance(1);
      }
      if (i < src.size() && src[i] == '\'') advance(1);
      emit(TokKind::kCharLit, begin, i, tline, tcol);
      continue;
    }

    // Number: digits, hex/bin prefixes, digit separators, suffixes, and
    // exponents (1e-5, 0x1p+3). A leading '.' followed by a digit (.5) is
    // also a number.
    if (is_digit(c) || (c == '.' && i + 1 < src.size() && is_digit(src[i + 1]))) {
      advance(1);
      while (i < src.size()) {
        const char d = src[i];
        if (is_ident_char(d) || d == '.') {
          advance(1);
          // Exponent sign: e/E/p/P may be followed by +/-.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              i < src.size() && (src[i] == '+' || src[i] == '-')) {
            advance(1);
          }
          continue;
        }
        if (d == '\'' && i + 1 < src.size() && is_ident_char(src[i + 1])) {
          advance(1);  // digit separator
          continue;
        }
        break;
      }
      emit(TokKind::kNumber, begin, i, tline, tcol);
      continue;
    }

    // Identifier / keyword.
    if (is_ident_start(c)) {
      advance(1);
      while (i < src.size() && is_ident_char(src[i])) advance(1);
      emit(TokKind::kIdentifier, begin, i, tline, tcol);
      continue;
    }

    // Multi-character punctuator (maximal munch), else single character.
    bool matched = false;
    for (const std::string_view p : kPuncts) {
      if (src.compare(i, p.size(), p) == 0) {
        advance(p.size());
        emit(TokKind::kPunct, begin, i, tline, tcol);
        matched = true;
        break;
      }
    }
    if (!matched) {
      advance(1);
      emit(TokKind::kPunct, begin, i, tline, tcol);
    }
  }

  return out;
}

}  // namespace lcs::lint
