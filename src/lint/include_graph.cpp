#include "lint/include_graph.h"

#include <algorithm>
#include <map>

#include "lint/lexer.h"
#include "util/cast.h"

namespace lcs::lint {

namespace {

constexpr std::string_view kMarkers[] = {"src", "tools", "tests", "bench",
                                         "examples"};

bool is_marker(std::string_view component) {
  for (const std::string_view m : kMarkers) {
    if (component == m) return true;
  }
  return false;
}

}  // namespace

std::vector<IncludeDirective> extract_includes(
    const std::vector<Token>& toks) {
  std::vector<IncludeDirective> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct || t.text != "#" || !t.bol) continue;
    if (toks[i + 1].kind != TokKind::kIdentifier ||
        toks[i + 1].text != "include") {
      continue;
    }
    if (i + 2 >= toks.size()) break;
    const Token& arg = toks[i + 2];
    IncludeDirective d;
    d.line = t.line;
    d.col = t.col;
    if (arg.kind == TokKind::kString && arg.text.size() >= 2) {
      d.target = std::string(arg.text.substr(1, arg.text.size() - 2));
      d.angled = false;
      out.push_back(std::move(d));
    } else if (arg.kind == TokKind::kPunct && arg.text == "<") {
      // `<vector>` lexes as punct/ident/punct tokens; rejoin them until
      // the closing `>` on the same logical line.
      std::string target;
      std::size_t j = i + 3;
      while (j < toks.size() && !toks[j].bol &&
             !(toks[j].kind == TokKind::kPunct && toks[j].text == ">")) {
        target += std::string(toks[j].text);
        ++j;
      }
      d.target = std::move(target);
      d.angled = true;
      out.push_back(std::move(d));
    }
  }
  return out;
}

std::string include_key(std::string_view path) {
  // Split into components and find the last marker component.
  std::size_t start = std::string_view::npos;
  std::size_t comp_begin = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const std::string_view comp = path.substr(comp_begin, i - comp_begin);
      if (is_marker(comp)) start = comp_begin;
      comp_begin = i + 1;
    }
  }
  if (start == std::string_view::npos) return std::string(path);
  return std::string(path.substr(start));
}

IncludeGraph IncludeGraph::build(
    const std::vector<std::pair<std::string, std::vector<IncludeDirective>>>&
        files) {
  IncludeGraph g;
  g.nodes_.reserve(files.size());
  for (const auto& [path, includes] : files) g.nodes_.push_back(path);
  std::sort(g.nodes_.begin(), g.nodes_.end());
  g.nodes_.erase(std::unique(g.nodes_.begin(), g.nodes_.end()),
                 g.nodes_.end());

  std::map<std::string_view, int> index;
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    index[g.nodes_[i]] = util::checked_cast<int>(i);
  }

  g.out_.assign(g.nodes_.size(), {});
  for (const auto& [path, includes] : files) {
    const auto from_it = index.find(path);
    if (from_it == index.end()) continue;
    std::vector<Edge>& edges = g.out_[util::checked_usize(from_it->second)];
    for (const IncludeDirective& d : includes) {
      if (d.angled) continue;
      // Quoted includes in this repo are rooted at src/; tests and tools
      // sources are never included, but resolve verbatim targets too so
      // synthetic fixtures can name nodes directly.
      const std::string with_src = "src/" + d.target;
      auto it = index.find(std::string_view(with_src));
      if (it == index.end()) it = index.find(std::string_view(d.target));
      if (it == index.end()) continue;  // outside the scanned tree
      edges.push_back(Edge{it->second, d.line, d.col});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.to != b.to ? a.to < b.to : a.line < b.line;
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.to == b.to;
                            }),
                edges.end());
  }
  return g;
}

int IncludeGraph::node_of(std::string_view key) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), key);
  if (it == nodes_.end() || *it != key) return -1;
  return util::checked_cast<int>(it - nodes_.begin());
}

std::vector<std::vector<int>> IncludeGraph::cycles() const {
  // Iterative Tarjan SCC. Nodes are visited in index order and neighbor
  // lists are sorted, so component discovery order is deterministic.
  const int n = util::checked_cast<int>(nodes_.size());
  std::vector<int> disc(util::checked_usize(n), -1);
  std::vector<int> low(util::checked_usize(n), 0);
  std::vector<bool> on_stack(util::checked_usize(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> comps;
  int timer = 0;

  struct Frame {
    int v;
    std::size_t edge;
  };
  std::vector<Frame> call;

  for (int root = 0; root < n; ++root) {
    if (disc[util::checked_usize(root)] != -1) continue;
    call.push_back(Frame{root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const std::size_t v = util::checked_usize(f.v);
      if (f.edge == 0) {
        disc[v] = low[v] = timer++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      if (f.edge < out_[v].size()) {
        const int w = out_[v][f.edge].to;
        ++f.edge;
        const std::size_t wu = util::checked_usize(w);
        if (disc[wu] == -1) {
          call.push_back(Frame{w, 0});
        } else if (on_stack[wu]) {
          low[v] = std::min(low[v], disc[wu]);
        }
        continue;
      }
      // v exhausted: close its component if it is a root.
      if (low[v] == disc[v]) {
        std::vector<int> comp;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[util::checked_usize(w)] = false;
          comp.push_back(w);
          if (w == f.v) break;
        }
        std::sort(comp.begin(), comp.end());
        comps.push_back(std::move(comp));
      }
      const int done = f.v;
      call.pop_back();
      if (!call.empty()) {
        const std::size_t p = util::checked_usize(call.back().v);
        low[p] = std::min(low[p], low[util::checked_usize(done)]);
      }
    }
  }

  // Keep real cycles: components of size ≥2, or a self-loop.
  std::vector<std::vector<int>> cyc;
  for (std::vector<int>& c : comps) {
    bool is_cycle = c.size() >= 2;
    if (!is_cycle) {
      for (const Edge& e : out_[util::checked_usize(c[0])]) {
        if (e.to == c[0]) is_cycle = true;
      }
    }
    if (is_cycle) cyc.push_back(std::move(c));
  }
  std::sort(cyc.begin(), cyc.end());
  return cyc;
}

std::vector<std::vector<int>> IncludeGraph::closure() const {
  const std::size_t n = nodes_.size();
  std::vector<std::vector<int>> reach(n);
  // DFS from every node. n is the file count of the repo (~hundreds);
  // O(n * edges) is well inside budget and keeps the code obvious.
  std::vector<bool> seen(n);
  std::vector<int> stack;
  for (std::size_t f = 0; f < n; ++f) {
    std::fill(seen.begin(), seen.end(), false);
    stack.clear();
    for (const Edge& e : out_[f]) stack.push_back(e.to);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      const std::size_t vu = util::checked_usize(v);
      if (seen[vu]) continue;
      seen[vu] = true;
      for (const Edge& e : out_[vu]) stack.push_back(e.to);
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (seen[v]) reach[f].push_back(util::checked_cast<int>(v));
    }
  }
  return reach;
}

std::string IncludeGraph::to_dot() const {
  std::string out = "digraph includes {\n  rankdir=LR;\n";
  for (const std::string& node : nodes_) {
    out += "  \"" + node + "\";\n";
  }
  for (std::size_t f = 0; f < nodes_.size(); ++f) {
    for (const Edge& e : out_[f]) {
      out += "  \"" + nodes_[f] + "\" -> \"" +
             nodes_[util::checked_usize(e.to)] + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

LayerManifest LayerManifest::parse(std::string_view text, std::string* error) {
  LayerManifest m;
  if (error != nullptr) error->clear();
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments and surrounding whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;

    // Tokenize on spaces.
    std::vector<std::string> words;
    std::size_t w = 0;
    while (w < line.size()) {
      while (w < line.size() && (line[w] == ' ' || line[w] == '\t')) ++w;
      std::size_t e = w;
      while (e < line.size() && line[e] != ' ' && line[e] != '\t') ++e;
      if (e > w) words.push_back(std::string(line.substr(w, e - w)));
      w = e;
    }
    if (words.size() < 3 || words[0] != "layer") {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(line_no) +
                 ": expected `layer <name> <dir> [<dir>...]`";
      }
      return LayerManifest{};
    }
    Layer layer;
    layer.name = words[1];
    for (std::size_t d = 2; d < words.size(); ++d) {
      std::string dir = words[d];
      while (!dir.empty() && dir.back() == '/') dir.pop_back();
      layer.dirs.push_back(std::move(dir));
    }
    m.layers_.push_back(std::move(layer));
  }
  return m;
}

int LayerManifest::layer_of(std::string_view key) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (const std::string& dir : layers_[i].dirs) {
      if (key.size() > dir.size() + 1 && key.substr(0, dir.size()) == dir &&
          key[dir.size()] == '/' && dir.size() >= best_len) {
        // `>=` so a later layer owning the same dir-length prefix wins;
        // with distinct dirs only a strictly longer prefix can rebind.
        best = util::checked_cast<int>(i);
        best_len = dir.size();
      }
    }
  }
  return best;
}

}  // namespace lcs::lint
