/// \file rules.h
/// Internal interface between the lint driver and the rule implementations.
///
/// Two rule tiers:
///  - per-file rules (D1-D4, S1-S4) see one token stream at a time via
///    RuleContext and are pure functions of that file — their output is
///    cacheable by content hash;
///  - project rules (A1-A4, U1) see every file's FileSummary at once,
///    because they reason about the include graph and cross-TU symbol
///    references.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/lint.h"
#include "lint/parse.h"

namespace lcs::lint::detail {

/// Everything a per-file rule sees: the repo-relative path, the token
/// stream with comments stripped (rules never look inside comments or
/// strings), and a sink for findings.
struct RuleContext {
  std::string_view path;
  const std::vector<Token>& code;  ///< comment tokens removed
  std::function<void(int line, int col, std::string_view rule,
                     std::string message, std::string hint)>
      report;
};

void check_d1_unordered_iteration(const RuleContext& ctx);
void check_d2_nondeterminism_sources(const RuleContext& ctx);
void check_d3_pointer_ordering(const RuleContext& ctx);
void check_d4_float_accumulation(const RuleContext& ctx);
void check_s1_unchecked_narrowing(const RuleContext& ctx);
void check_s2_naked_threads(const RuleContext& ctx);
void check_s3_nodiscard_status(const RuleContext& ctx);
void check_s4_shared_capture(const RuleContext& ctx);

/// A suppression directive as parsed from a comment (pre-application:
/// whether it is *used* is decided after project rules run).
struct SuppressionRec {
  int line = 0;         ///< line the comment sits on
  int col = 0;
  int target_line = 0;  ///< line the suppression applies to (0 = none)
  std::vector<std::string> rules;
  std::string reason;
  bool malformed = false;  ///< missing reason / unknown rule
};

/// Everything the pipeline extracts from one file in a single lex+parse:
/// plain data, serializable into the incremental cache, so a warm run
/// never re-lexes an unchanged file.
struct FileSummary {
  std::string path;        ///< canonical repo-relative path (include_key)
  std::uint64_t hash = 0;  ///< fnv1a64 of the raw bytes
  std::vector<IncludeDirective> includes;
  Outline outline;
  std::vector<Ref> refs;
  std::vector<Finding> raw_findings;  ///< per-file rules, pre-suppression
  std::vector<SuppressionRec> sups;
};

/// Lex, parse, and run the per-file rule battery over one file.
/// Malformed-suppression LINT findings are included in raw_findings.
FileSummary analyze_source(std::string_view path, std::string_view source);

/// Run the project rules (A1 layering, A2 cycles, A3 missing direct
/// include, A4 unused direct include, U1 dead symbol) over the whole
/// scanned set. `graph` must be built from the same summaries.
/// `layers` may be empty (no manifest found): A1 is then skipped.
void run_project_rules(const std::vector<FileSummary>& files,
                       const IncludeGraph& graph, const LayerManifest& layers,
                       const std::function<void(Finding)>& report);

/// True if `path` ends with `suffix` (repo-relative match).
bool path_ends_with(std::string_view path, std::string_view suffix);
/// True if `path` contains `part` as a substring (directory scoping).
bool path_contains(std::string_view path, std::string_view part);

}  // namespace lcs::lint::detail
