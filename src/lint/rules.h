/// \file rules.h
/// Internal interface between the lint driver and the rule implementations.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace lcs::lint::detail {

/// Everything a rule sees: the repo-relative path, the token stream with
/// comments stripped (rules never look inside comments or strings), and a
/// sink for findings.
struct RuleContext {
  std::string_view path;
  const std::vector<Token>& code;  ///< comment tokens removed
  std::function<void(int line, int col, std::string_view rule,
                     std::string message, std::string hint)>
      report;
};

void check_d1_unordered_iteration(const RuleContext& ctx);
void check_d2_nondeterminism_sources(const RuleContext& ctx);
void check_d3_pointer_ordering(const RuleContext& ctx);
void check_d4_float_accumulation(const RuleContext& ctx);
void check_s1_unchecked_narrowing(const RuleContext& ctx);
void check_s2_naked_threads(const RuleContext& ctx);
void check_s3_nodiscard_status(const RuleContext& ctx);

/// True if `path` ends with `suffix` (repo-relative match).
bool path_ends_with(std::string_view path, std::string_view suffix);
/// True if `path` contains `part` as a substring (directory scoping).
bool path_contains(std::string_view path, std::string_view part);

}  // namespace lcs::lint::detail
