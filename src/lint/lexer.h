/// \file lexer.h
/// A real C++ tokenizer for the lcs_lint static-analysis pass.
///
/// The determinism rules (src/lint/README.md) are enforced on *token
/// streams*, not on raw text: `// double-buffered` in a comment, a
/// `"steady_clock"` inside a string literal, or a raw string containing
/// `std::thread` must never trigger a finding. The lexer therefore
/// understands line and block comments, string/char literals with escape
/// sequences, raw string literals (`R"delim(...)delim"`), numbers,
/// identifiers, and a small set of multi-character punctuators that the
/// rules match on (`::`, `->`, `[[`, `]]`, compound assignment).
///
/// Backslash line-splices (translation phase 2) are honored when the
/// caller provides splice storage: `#include \<newline> "x.h"` — or an
/// identifier split mid-word — lexes to the same tokens as the unspliced
/// text, with every token positioned at its first *physical* line/column,
/// so the include-graph and directive rules cannot be blinded by a splice.
///
/// Comments are kept as tokens — suppression directives
/// (`// lcs-lint: allow(RULE) reason`) live in them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcs::lint {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (integer or floating, any base)
  kString,      ///< string literal, including raw strings; text incl. quotes
  kCharLit,     ///< character literal
  kPunct,       ///< operator / punctuator (possibly multi-character)
  kComment,     ///< // or /* */ comment, text includes the delimiters
};

struct Token {
  TokKind kind;
  std::string_view text;  ///< view into the lexed source (or splice storage)
  int line = 0;           ///< 1-based physical line of the first character
  int col = 0;            ///< 1-based physical column of the first character
  bool bol = false;       ///< first token on its *logical* line (splices
                          ///< join lines; directives end at the next bol)
};

/// Tokenize `source`. Never throws on malformed input: an unterminated
/// comment/string simply extends to end of file (the compiler is the
/// authority on well-formedness; the linter only needs to never
/// mis-classify).
///
/// If `splice_storage` is non-null and the source contains backslash
/// line-splices, the spliced text is materialized into `*splice_storage`
/// and the returned tokens view into it (it must outlive them); token
/// line/col still name the original physical position. Without storage,
/// splices are left untouched (the `\` lexes as a punctuator) — callers
/// that enforce directive-level rules must pass storage. In the common
/// splice-free case the tokens view directly into `source`.
std::vector<Token> lex(std::string_view source,
                       std::string* splice_storage = nullptr);

}  // namespace lcs::lint
