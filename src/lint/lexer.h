/// \file lexer.h
/// A real C++ tokenizer for the lcs_lint static-analysis pass.
///
/// The determinism rules (src/lint/README.md) are enforced on *token
/// streams*, not on raw text: `// double-buffered` in a comment, a
/// `"steady_clock"` inside a string literal, or a raw string containing
/// `std::thread` must never trigger a finding. The lexer therefore
/// understands line and block comments, string/char literals with escape
/// sequences, raw string literals (`R"delim(...)delim"`), numbers,
/// identifiers, and a small set of multi-character punctuators that the
/// rules match on (`::`, `->`, `[[`, `]]`, compound assignment).
///
/// Comments are kept as tokens — suppression directives
/// (`// lcs-lint: allow(RULE) reason`) live in them.
#pragma once

#include <string_view>
#include <vector>

namespace lcs::lint {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (integer or floating, any base)
  kString,      ///< string literal, including raw strings; text incl. quotes
  kCharLit,     ///< character literal
  kPunct,       ///< operator / punctuator (possibly multi-character)
  kComment,     ///< // or /* */ comment, text includes the delimiters
};

struct Token {
  TokKind kind;
  std::string_view text;  ///< view into the lexed source
  int line = 0;           ///< 1-based line of the token's first character
  int col = 0;            ///< 1-based column of the token's first character
};

/// Tokenize `source`. Never throws on malformed input: an unterminated
/// comment/string simply extends to end of file (the compiler is the
/// authority on well-formedness; the linter only needs to never
/// mis-classify). The returned tokens view into `source`, which must
/// outlive them.
std::vector<Token> lex(std::string_view source);

}  // namespace lcs::lint
