#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <string>

#include "graph/graph.h"
#include "graph/union_find.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs::dynamic {

std::uint64_t DynamicGraph::pair_key(NodeId u, NodeId v) {
  const auto a = util::checked_cast<std::uint32_t>(std::min(u, v));
  const auto b = util::checked_cast<std::uint32_t>(std::max(u, v));
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

DynamicGraph::DynamicGraph(const Graph& initial)
    : num_nodes_(initial.num_nodes()),
      next_seq_(static_cast<std::uint64_t>(initial.num_edges())),
      adj_(static_cast<std::size_t>(initial.num_nodes())),
      msf_adj_(static_cast<std::size_t>(initial.num_nodes())),
      uf_(static_cast<std::size_t>(initial.num_nodes())) {
  slots_.reserve(static_cast<std::size_t>(initial.num_edges()));
  live_.reserve(static_cast<std::size_t>(initial.num_edges()));
  for (EdgeId e = 0; e < initial.num_edges(); ++e) {
    const auto& ed = initial.edge(e);
    const auto slot = util::checked_cast<std::int32_t>(slots_.size());
    slots_.push_back(Slot{ed.u, ed.v, ed.w, static_cast<std::uint64_t>(e),
                          static_cast<std::int64_t>(live_.size()), false});
    live_.push_back(slot);
    adj_[static_cast<std::size_t>(ed.u)].push_back(slot);
    adj_[static_cast<std::size_t>(ed.v)].push_back(slot);
  }

  // Initial MSF by Kruskal over (weight, seq) keys; initial union-find is a
  // free by-product of the same sweep (non-forest edges cannot merge).
  std::vector<std::int32_t> order(slots_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = util::checked_cast<std::int32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return key_of(a) < key_of(b);
  });
  for (const std::int32_t slot : order) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (uf_.unite(static_cast<std::size_t>(s.u), static_cast<std::size_t>(s.v)))
      msf_add(slot);
  }
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  return find_slot(u, v) >= 0;
}

std::int32_t DynamicGraph::find_slot(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) return -1;
  // Scan the shorter adjacency list; degrees under churn stay near the
  // family average, so this is a handful of comparisons.
  const auto& lu = adj_[static_cast<std::size_t>(u)];
  const auto& lv = adj_[static_cast<std::size_t>(v)];
  const auto& list = lu.size() <= lv.size() ? lu : lv;
  const std::uint64_t want = pair_key(u, v);
  for (const std::int32_t slot : list) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (pair_key(s.u, s.v) == want) return slot;
  }
  return -1;
}

void DynamicGraph::check_endpoints(NodeId u, NodeId v) const {
  LCS_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
            "dynamic edge endpoint out of range: (" + std::to_string(u) +
                ", " + std::to_string(v) + ") with n = " +
                std::to_string(num_nodes_));
  LCS_CHECK(u != v, "dynamic self-loop rejected at node " + std::to_string(u));
}

void DynamicGraph::adj_remove(std::vector<std::int32_t>& list,
                              std::int32_t slot) {
  for (auto& entry : list) {
    if (entry == slot) {
      entry = list.back();
      list.pop_back();
      return;
    }
  }
  LCS_CHECK(false, "dynamic adjacency lost an edge slot (internal)");
}

void DynamicGraph::msf_add(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.in_msf = true;
  msf_adj_[static_cast<std::size_t>(s.u)].push_back(slot);
  msf_adj_[static_cast<std::size_t>(s.v)].push_back(slot);
  msf_weight_ += s.w;
  ++msf_edges_;
}

void DynamicGraph::msf_remove(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.in_msf = false;
  adj_remove(msf_adj_[static_cast<std::size_t>(s.u)], slot);
  adj_remove(msf_adj_[static_cast<std::size_t>(s.v)], slot);
  msf_weight_ -= s.w;
  --msf_edges_;
}

bool DynamicGraph::msf_path(NodeId u, NodeId v,
                            std::vector<std::int32_t>& out) const {
  out.clear();
  if (bfs_via_.empty())
    bfs_via_.assign(static_cast<std::size_t>(num_nodes_), -1);
  bfs_queue_.clear();
  bfs_queue_.push_back(u);
  bfs_via_[static_cast<std::size_t>(u)] = -2;  // visited, no via edge
  bool found = false;
  for (std::size_t head = 0; head < bfs_queue_.size() && !found; ++head) {
    const NodeId x = util::checked_cast<NodeId>(bfs_queue_[head]);
    for (const std::int32_t slot : msf_adj_[static_cast<std::size_t>(x)]) {
      const Slot& s = slots_[static_cast<std::size_t>(slot)];
      const NodeId y = s.u == x ? s.v : s.u;
      if (bfs_via_[static_cast<std::size_t>(y)] != -1) continue;
      bfs_via_[static_cast<std::size_t>(y)] = slot;
      if (y == v) {
        found = true;
        break;
      }
      bfs_queue_.push_back(y);
    }
  }
  if (found) {
    // Walk back from v to u collecting the via slots.
    NodeId x = v;
    while (x != u) {
      const std::int32_t slot = bfs_via_[static_cast<std::size_t>(x)];
      out.push_back(slot);
      const Slot& s = slots_[static_cast<std::size_t>(slot)];
      x = s.u == x ? s.v : s.u;
    }
  }
  // Reset only the touched stamps (O(component), not O(n)).
  bfs_via_[static_cast<std::size_t>(u)] = -1;
  for (const std::int32_t q : bfs_queue_) {
    for (const std::int32_t slot : msf_adj_[static_cast<std::size_t>(q)]) {
      const Slot& s = slots_[static_cast<std::size_t>(slot)];
      bfs_via_[static_cast<std::size_t>(s.u)] = -1;
      bfs_via_[static_cast<std::size_t>(s.v)] = -1;
    }
  }
  return found;
}

void DynamicGraph::insert_edge(NodeId u, NodeId v, Weight w) {
  check_endpoints(u, v);
  LCS_CHECK(find_slot(u, v) < 0,
            "duplicate dynamic insert: edge (" + std::to_string(u) + ", " +
                std::to_string(v) + ") is already live");

  const auto slot = util::checked_cast<std::int32_t>(slots_.size());
  slots_.push_back(Slot{u, v, w, next_seq_++,
                        static_cast<std::int64_t>(live_.size()), false});
  live_.push_back(slot);
  adj_[static_cast<std::size_t>(u)].push_back(slot);
  adj_[static_cast<std::size_t>(v)].push_back(slot);
  ++counters_.inserts;

  // Components: incremental union (skipped while dirty — the pending epoch
  // rebuild sees every live edge anyway).
  if (!uf_dirty_) {
    if (uf_.unite(static_cast<std::size_t>(u), static_cast<std::size_t>(v)))
      ++counters_.uf_unions;
  }

  // MSF exchange step.
  std::vector<std::int32_t> path;
  if (!msf_path(u, v, path)) {
    msf_add(slot);
    ++counters_.msf_grows;
    return;
  }
  std::int32_t worst = path.front();
  for (const std::int32_t p : path)
    if (key_of(worst) < key_of(p)) worst = p;
  if (key_of(slot) < key_of(worst)) {
    msf_remove(worst);
    msf_add(slot);
    ++counters_.msf_swaps;
  }
}

void DynamicGraph::delete_edge(NodeId u, NodeId v) {
  check_endpoints(u, v);
  const std::int32_t slot = find_slot(u, v);
  LCS_CHECK(slot >= 0, "delete of nonexistent dynamic edge (" +
                           std::to_string(u) + ", " + std::to_string(v) + ")");
  Slot& s = slots_[static_cast<std::size_t>(slot)];

  // Unlink from the live list (swap-remove, positions patched) and the
  // adjacency.
  const std::int64_t pos = s.live_pos;
  const std::int32_t moved = live_.back();
  live_[static_cast<std::size_t>(pos)] = moved;
  slots_[static_cast<std::size_t>(moved)].live_pos = pos;
  live_.pop_back();
  s.live_pos = -1;
  adj_remove(adj_[static_cast<std::size_t>(s.u)], slot);
  adj_remove(adj_[static_cast<std::size_t>(s.v)], slot);
  ++counters_.deletes;

  if (!s.in_msf) return;  // non-forest edge: components and MSF unchanged

  // Forest edge: recompute the affected component via its cut. Mark the
  // side containing u (BFS over the forest minus the deleted edge), then
  // scan live edges for the minimum-key edge crossing the cut. Edges from
  // other components cannot cross (the forest spans every component), so
  // the side marking alone identifies genuine candidates.
  msf_remove(slot);
  if (bfs_via_.empty())
    bfs_via_.assign(static_cast<std::size_t>(num_nodes_), -1);
  bfs_queue_.clear();
  bfs_queue_.push_back(s.u);
  bfs_via_[static_cast<std::size_t>(s.u)] = -2;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId x = util::checked_cast<NodeId>(bfs_queue_[head]);
    for (const std::int32_t fslot : msf_adj_[static_cast<std::size_t>(x)]) {
      const Slot& f = slots_[static_cast<std::size_t>(fslot)];
      const NodeId y = f.u == x ? f.v : f.u;
      if (bfs_via_[static_cast<std::size_t>(y)] != -1) continue;
      bfs_via_[static_cast<std::size_t>(y)] = -2;
      bfs_queue_.push_back(y);
    }
  }
  std::int32_t best = -1;
  for (const std::int32_t cand : live_) {
    const Slot& c = slots_[static_cast<std::size_t>(cand)];
    const bool cu = bfs_via_[static_cast<std::size_t>(c.u)] == -2;
    const bool cv = bfs_via_[static_cast<std::size_t>(c.v)] == -2;
    if (cu == cv) continue;
    if (best < 0 || key_of(cand) < key_of(best)) best = cand;
  }
  for (const std::int32_t q : bfs_queue_) bfs_via_[static_cast<std::size_t>(q)] = -1;

  if (best >= 0) {
    // Matroid exchange: MSF(G - e) = MSF(G) - e + min cut edge, so the
    // maintained forest equals the from-scratch forest and the node
    // partition into components is unchanged — the union-find stays exact.
    msf_add(best);
    ++counters_.msf_replacements;
  } else {
    // A real split: union-find cannot un-merge, so open a new epoch.
    ++counters_.msf_splits;
    uf_dirty_ = true;
  }
}

void DynamicGraph::rebuild_union_find() {
  uf_ = UnionFind(static_cast<std::size_t>(num_nodes_));
  for (const std::int32_t slot : live_) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    uf_.unite(static_cast<std::size_t>(s.u), static_cast<std::size_t>(s.v));
  }
  uf_dirty_ = false;
  ++counters_.uf_rebuilds;
}

std::int64_t DynamicGraph::num_components() {
  if (uf_dirty_) rebuild_union_find();
  const auto from_uf = static_cast<std::int64_t>(uf_.num_components());
  LCS_CHECK(from_uf == msf_components(),
            "dynamic maintenance disagreement: union-find sees " +
                std::to_string(from_uf) + " components, the forest implies " +
                std::to_string(msf_components()));
  return from_uf;
}

DynamicGraph::EdgeRef DynamicGraph::live_edge(std::int64_t index) const {
  LCS_CHECK(index >= 0 && index < num_edges(),
            "live edge index " + std::to_string(index) + " out of range (" +
                std::to_string(num_edges()) + " live edges)");
  const Slot& s = slots_[static_cast<std::size_t>(
      live_[static_cast<std::size_t>(index)])];
  return EdgeRef{s.u, s.v, s.w, s.seq};
}

DynamicGraph::EdgeRef DynamicGraph::edge_between(NodeId u, NodeId v) const {
  const std::int32_t slot = find_slot(u, v);
  LCS_CHECK(slot >= 0, "no live dynamic edge between " + std::to_string(u) +
                           " and " + std::to_string(v));
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  return EdgeRef{s.u, s.v, s.w, s.seq};
}

std::vector<std::uint64_t> DynamicGraph::msf_seqs() const {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(static_cast<std::size_t>(msf_edges_));
  for (const std::int32_t slot : live_) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.in_msf) seqs.push_back(s.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

DynamicGraph::Snapshot DynamicGraph::snapshot() const {
  std::vector<std::int32_t> order(live_);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return slots_[static_cast<std::size_t>(a)].seq <
           slots_[static_cast<std::size_t>(b)].seq;
  });
  std::vector<Graph::Edge> edges;
  std::vector<bool> in_msf;
  std::vector<std::uint64_t> seq;
  edges.reserve(order.size());
  in_msf.reserve(order.size());
  seq.reserve(order.size());
  for (const std::int32_t slot : order) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    edges.push_back({s.u, s.v, s.w});
    in_msf.push_back(s.in_msf);
    seq.push_back(s.seq);
  }
  return Snapshot{Graph(num_nodes_, std::move(edges)), std::move(in_msf),
                  std::move(seq)};
}

}  // namespace lcs::dynamic
