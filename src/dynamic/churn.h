/// \file churn.h
/// Deterministic edge-churn streams over any scenario family, and the
/// runner that drives a `VerifiedDynamicGraph` through one.
///
/// ## Spec grammar (the `churn:` scenario wrapper)
///
///     churn:base=<base spec>;<param>{,<param>}
///     param := key "=" value
///
/// The base spec is any registered scenario spec (it may contain commas, so
/// `;` separates it from the churn parameters), e.g.:
///
///     "churn:base=er:n=300,deg=6,seed=5;steps=1000,rate=0.02,seed=7"
///
/// `lcs_run --algo=churn` accepts the wrapper directly, or a plain base
/// `--scenario` plus the same comma-separated parameters in `--churn=`.
///
/// ## Parameters (all optional, defaults shown)
///
///   * `steps=1000`     — churn steps
///   * `rate=0.01`      — mutations per step, as a fraction of the base
///                        graph's edge count: ops/step = max(1, floor(rate*m))
///   * `dfrac=0.5`      — probability a mutation is a deletion
///   * `seed=1`         — drives the whole stream (one `lcs::Rng`)
///   * `checkpoints=10` — evenly spaced report points (plus step 0)
///   * `weights=lo-hi`  — inserted-edge weight range (default 1-1)
///   * `verify=step`    — `step` (full oracle check after every mutation),
///                        `sample` (every `vperiod`-th mutation plus every
///                        checkpoint), or `off` (checkpoints only)
///   * `vperiod=64`     — sampling period for `verify=sample`
///
/// ## Stream semantics
///
/// Each step performs ops/step mutations. A mutation is a deletion with
/// probability `dfrac` (a uniformly random live edge), else an insertion (a
/// uniformly random absent non-loop pair; up to 64 rejection-sampling
/// attempts, after which the mutation is skipped and counted). A deletion
/// against an empty graph is likewise skipped and counted. Everything flows
/// through one seeded `lcs::Rng`, so the stream — and every checkpoint
/// record — is a pure function of (base spec, churn params), independent of
/// platform and thread count. Unknown/duplicate/malformed parameters are
/// diagnosed via CheckFailure, exactly like static scenario specs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/verified.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/quality.h"

namespace lcs::dynamic {

struct ChurnParams {
  std::int64_t steps = 1000;
  double rate = 0.01;
  double delete_frac = 0.5;
  std::uint64_t seed = 1;
  std::int64_t checkpoints = 10;
  Weight weight_lo = 1;
  Weight weight_hi = 1;
  VerifyMode verify = VerifyMode::kEveryStep;
  std::int64_t verify_period = 64;
};

/// A parsed `churn:` wrapper: the embedded base spec plus churn parameters.
struct ChurnSpec {
  std::string base;
  ChurnParams params;
};

/// Parse the comma-separated parameter list (the `--churn=` flag payload).
/// Diagnoses unknown keys, duplicates, and malformed values.
ChurnParams parse_churn_params(std::string_view params);

/// Parse a full `churn:base=<spec>;<params>` wrapper.
ChurnSpec parse_churn_spec(std::string_view spec);

/// `true` if `spec` names the churn wrapper family.
bool is_churn_spec(std::string_view spec);

/// One report point of a churn run. Every field is a pure function of
/// (base graph, partition, params).
struct ChurnCheckpoint {
  std::int64_t step = 0;
  std::int64_t edges = 0;
  std::int64_t components = 0;
  Weight msf_weight = 0;
  std::int64_t msf_edges = 0;
  /// Quality of the *maintained* forest as a shortcut skeleton for the
  /// base partition, vs a *fresh* BFS forest built from the same snapshot.
  ForestQuality maintained;
  ForestQuality fresh;
  DynamicGraph::Counters counters;
  std::int64_t full_verifications = 0;
  friend bool operator==(const ChurnCheckpoint&,
                         const ChurnCheckpoint&) = default;
};

struct ChurnResult {
  std::int64_t ops_per_step = 0;
  std::int64_t skipped_inserts = 0;  ///< rejection budget exhausted
  std::int64_t skipped_deletes = 0;  ///< empty graph
  std::vector<ChurnCheckpoint> checkpoints;
  /// The final structure, for post-run cross-checks (engine validation).
  /// Always engaged on return from run_churn (optional only because Graph
  /// has no default construction).
  std::optional<DynamicGraph::Snapshot> final_snapshot;
};

/// Drive `initial` through the deterministic stream described by `params`,
/// verifying per `params.verify` (and always, fully, at every checkpoint).
/// `part_of` is the base scenario's partition labeling, used for the
/// shortcut-quality tracking at checkpoints. Throws CheckFailure if any
/// incremental-vs-oracle assertion fails.
ChurnResult run_churn(const Graph& initial, const std::vector<PartId>& part_of,
                      const ChurnParams& params);

}  // namespace lcs::dynamic
