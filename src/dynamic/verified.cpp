#include "dynamic/verified.h"

#include <algorithm>
#include <string>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/union_find.h"
#include "util/check.h"

namespace lcs::dynamic {

VerifiedDynamicGraph::VerifiedDynamicGraph(const Graph& initial,
                                           VerifyMode mode,
                                           std::int64_t sample_period)
    : fast_(initial),
      mirror_next_seq_(static_cast<std::uint64_t>(initial.num_edges())),
      mode_(mode),
      sample_period_(sample_period) {
  LCS_CHECK(sample_period_ >= 1, "verify sample period must be >= 1");
  mirror_.reserve(static_cast<std::size_t>(initial.num_edges()));
  for (EdgeId e = 0; e < initial.num_edges(); ++e) {
    const auto& ed = initial.edge(e);
    mirror_.push_back(
        MirrorEdge{ed.u, ed.v, ed.w, static_cast<std::uint64_t>(e)});
  }
  if (mode_ == VerifyMode::kEveryStep) full_verify();
}

void VerifiedDynamicGraph::insert_edge(NodeId u, NodeId v, Weight w) {
  fast_.insert_edge(u, v, w);  // throws before the mirror diverges
  mirror_.push_back(MirrorEdge{u, v, w, mirror_next_seq_++});
  after_mutation(u, v, /*expect_present=*/true);
}

void VerifiedDynamicGraph::delete_edge(NodeId u, NodeId v) {
  fast_.delete_edge(u, v);  // throws before the mirror diverges
  const auto key = [&](const MirrorEdge& e) {
    return (std::min(e.u, e.v) == std::min(u, v)) &&
           (std::max(e.u, e.v) == std::max(u, v));
  };
  const auto it = std::find_if(mirror_.begin(), mirror_.end(), key);
  LCS_CHECK(it != mirror_.end(),
            "mirror lost edge (" + std::to_string(u) + ", " +
                std::to_string(v) + ") the fast structure had");
  mirror_.erase(it);  // naive by design: preserves insertion order
  after_mutation(u, v, /*expect_present=*/false);
}

void VerifiedDynamicGraph::after_mutation(NodeId u, NodeId v,
                                          bool expect_present) {
  ++mutations_;
  if (mode_ == VerifyMode::kOff) return;

  // Local check after *every* mutation (the verify_neighbours analogue):
  // the mutated edge's presence and the global edge count must agree.
  LCS_CHECK(fast_.num_edges() == static_cast<std::int64_t>(mirror_.size()),
            "fast structure holds " + std::to_string(fast_.num_edges()) +
                " live edges, mirror holds " +
                std::to_string(mirror_.size()));
  LCS_CHECK(fast_.has_edge(u, v) == expect_present,
            "fast structure disagrees about edge (" + std::to_string(u) +
                ", " + std::to_string(v) + ") after the mutation");

  if (mode_ == VerifyMode::kEveryStep ||
      (mode_ == VerifyMode::kSampled && mutations_ % sample_period_ == 0)) {
    full_verify();
  }
}

void VerifiedDynamicGraph::full_verify() {
  ++full_verifications_;

  // Edge sets equal: counts match and every mirror edge is live in the fast
  // structure with the same weight and sequence number (count equality
  // makes the subset check an equality check).
  LCS_CHECK(fast_.num_edges() == static_cast<std::int64_t>(mirror_.size()),
            "fast structure holds " + std::to_string(fast_.num_edges()) +
                " live edges, mirror holds " +
                std::to_string(mirror_.size()));
  for (const MirrorEdge& e : mirror_) {
    LCS_CHECK(fast_.has_edge(e.u, e.v),
              "mirror edge (" + std::to_string(e.u) + ", " +
                  std::to_string(e.v) + ") missing from the fast structure");
    const DynamicGraph::EdgeRef ref = fast_.edge_between(e.u, e.v);
    LCS_CHECK(ref.w == e.w && ref.seq == e.seq,
              "mirror edge (" + std::to_string(e.u) + ", " +
                  std::to_string(e.v) +
                  ") diverged in weight or sequence number");
  }

  // Components oracle: union-find rebuilt from scratch over the mirror.
  UnionFind oracle(static_cast<std::size_t>(fast_.num_nodes()));
  for (const MirrorEdge& e : mirror_)
    oracle.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
  const auto oracle_components =
      static_cast<std::int64_t>(oracle.num_components());
  LCS_CHECK(fast_.num_components() == oracle_components,
            "incremental components = " +
                std::to_string(fast_.num_components()) +
                " but the from-scratch oracle found " +
                std::to_string(oracle_components));

  // MSF oracle: Kruskal over the mirror in (weight, seq) order; the
  // maintained forest must match in total weight and exact edge set.
  std::vector<std::size_t> order(mirror_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const EdgeKey ka{mirror_[a].w, mirror_[a].seq};
    const EdgeKey kb{mirror_[b].w, mirror_[b].seq};
    return ka < kb;
  });
  UnionFind forest_uf(static_cast<std::size_t>(fast_.num_nodes()));
  Weight oracle_weight = 0;
  std::vector<std::uint64_t> oracle_seqs;
  for (const std::size_t i : order) {
    const MirrorEdge& e = mirror_[i];
    if (forest_uf.unite(static_cast<std::size_t>(e.u),
                        static_cast<std::size_t>(e.v))) {
      oracle_weight += e.w;
      oracle_seqs.push_back(e.seq);
    }
  }
  std::sort(oracle_seqs.begin(), oracle_seqs.end());
  LCS_CHECK(fast_.msf_weight() == oracle_weight,
            "incremental MSF weight = " + std::to_string(fast_.msf_weight()) +
                " but the Kruskal oracle computed " +
                std::to_string(oracle_weight));
  LCS_CHECK(fast_.msf_seqs() == oracle_seqs,
            "incremental MSF edge set diverged from the Kruskal oracle "
            "(same weight classes, different edges)");
}

}  // namespace lcs::dynamic
