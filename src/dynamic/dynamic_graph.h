/// \file dynamic_graph.h
/// Mutable graph under edge churn with incrementally maintained structure:
/// connected components (union-find with rebuild-on-delete epochs) and the
/// minimum spanning forest (edge swap on insert, cut replacement on delete).
///
/// Every scenario elsewhere in the repo is a one-shot static solve; this is
/// the long-lived counterpart (ROADMAP item 3): a structure that absorbs a
/// deterministic insert/delete stream and keeps its invariants continuously,
/// so correctness survives updates instead of only fresh builds.
///
/// ## Edge identity
///
/// Weight ties are broken by a stable *sequence number*: the initial edges
/// keep their construction edge ids `0..m-1`, and every later insertion gets
/// the next number, never reused. All weight comparisons are lexicographic
/// on `(weight, seq)`, so — exactly like the static library's
/// `(weight, edge id)` order — the minimum spanning forest is unique and the
/// maintained structure can be compared bit-for-bit against a
/// recompute-from-scratch oracle (see `verified.h`).
///
/// ## Maintenance strategy
///
///  * **Components.** A `UnionFind` absorbs insertions incrementally.
///    Union-find cannot un-merge, so a deletion that actually splits a
///    component opens a new *epoch*: the structure is marked dirty and
///    rebuilt from the live edge set at the next query. Deletions that keep
///    connectivity (non-forest edges, or forest edges with a replacement)
///    provably leave the node partition unchanged and cost nothing.
///  * **MSF.** On insert, the classic exchange step: if the new edge closes
///    a cycle, the maximum-key edge on that cycle is evicted when the new
///    key is smaller. On delete of a forest edge, the affected component is
///    recomputed via its cut: the minimum-key live edge reconnecting the two
///    sides replaces the deleted one (matroid exchange — this reproduces the
///    from-scratch forest exactly); if none exists the component splits.
///  * The two structures cross-check each other on every components query:
///    `n - |MSF|` must equal the union-find's component count. Redundant on
///    purpose — disagreement is diagnosed, not averaged.
///
/// Path searches run over the forest adjacency in O(component) and cut
/// replacement scans live edges in O(m): right for the churn scenarios
/// (10^2..10^4 nodes, thousands of steps, per-step verification), not for
/// million-edge streams — those want link-cut trees behind this same API.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/union_find.h"

namespace lcs::dynamic {

/// Lexicographic (weight, sequence-number) key; unique per edge ever
/// inserted, so it totally orders edges and makes the MSF unique.
struct EdgeKey {
  Weight w = 0;
  std::uint64_t seq = 0;
  friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
    return a.w != b.w ? a.w < b.w : a.seq < b.seq;
  }
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

class DynamicGraph {
 public:
  /// One live edge as reported to callers (deletion pickers, snapshots).
  struct EdgeRef {
    NodeId u = kNoNode;
    NodeId v = kNoNode;
    Weight w = 1;
    std::uint64_t seq = 0;
  };

  /// Mutation and maintenance counters, all monotone. `uf_rebuilds` counts
  /// the rebuild-on-delete epochs; `msf_splits` counts deletions that
  /// disconnected a component (every one implies a later rebuild).
  struct Counters {
    std::int64_t inserts = 0;
    std::int64_t deletes = 0;
    std::int64_t msf_grows = 0;         ///< insert joined two components
    std::int64_t msf_swaps = 0;         ///< insert evicted a heavier edge
    std::int64_t msf_replacements = 0;  ///< delete found a cut replacement
    std::int64_t msf_splits = 0;        ///< delete disconnected a component
    std::int64_t uf_rebuilds = 0;       ///< epochs: rebuilds after a split
    std::int64_t uf_unions = 0;         ///< incremental union-find merges
    friend bool operator==(const Counters&, const Counters&) = default;
  };

  /// Seeds the structure from a static graph; its edges keep their ids as
  /// sequence numbers. Builds the initial union-find and MSF.
  explicit DynamicGraph(const Graph& initial);

  NodeId num_nodes() const { return num_nodes_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(live_.size());
  }
  bool has_edge(NodeId u, NodeId v) const;

  /// Inserts a new edge. Diagnoses self-loops, out-of-range endpoints, and
  /// duplicate insertion (the edge already being live) via CheckFailure.
  void insert_edge(NodeId u, NodeId v, Weight w);

  /// Deletes a live edge. Diagnoses deletion of a nonexistent edge.
  void delete_edge(NodeId u, NodeId v);

  /// The index-th live edge in internal order — a deterministic function of
  /// the mutation history, used by churn streams to pick uniform deletions.
  EdgeRef live_edge(std::int64_t index) const;

  /// The live edge between u and v. Diagnoses absence.
  EdgeRef edge_between(NodeId u, NodeId v) const;

  /// Component count from the union-find, rebuilding it first if a split
  /// opened a new epoch. Cross-checks the MSF-derived count and diagnoses
  /// disagreement (the continuous self-verification this subsystem is for).
  std::int64_t num_components();

  /// Component count implied by the maintained forest: n - |MSF|.
  std::int64_t msf_components() const {
    return static_cast<std::int64_t>(num_nodes_) - msf_edges_;
  }

  Weight msf_weight() const { return msf_weight_; }
  std::int64_t msf_size() const { return msf_edges_; }

  /// Sorted sequence numbers of the maintained forest — the canonical form
  /// compared against the from-scratch Kruskal oracle.
  std::vector<std::uint64_t> msf_seqs() const;

  /// Immutable snapshot for checkpoint metrics and engine cross-checks:
  /// live edges sorted by sequence number (so snapshot edge id order is the
  /// key order), with parallel in-forest flags and sequence numbers.
  struct Snapshot {
    Graph graph;
    std::vector<bool> in_msf;        ///< per snapshot edge id
    std::vector<std::uint64_t> seq;  ///< per snapshot edge id
  };
  Snapshot snapshot() const;

  const Counters& counters() const { return counters_; }

  /// Test-only corruption hooks for the verified-mirror self-test: skew the
  /// cached forest weight / component bookkeeping without touching edges,
  /// exactly the kind of silent fast-structure rot the mirror must catch.
  void debug_add_msf_weight(Weight delta) { msf_weight_ += delta; }

 private:
  struct Slot {
    NodeId u = kNoNode;
    NodeId v = kNoNode;
    Weight w = 1;
    std::uint64_t seq = 0;
    std::int64_t live_pos = -1;  ///< index into live_, -1 once deleted
    bool in_msf = false;
  };

  EdgeKey key_of(std::int32_t slot) const {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    return EdgeKey{s.w, s.seq};
  }
  static std::uint64_t pair_key(NodeId u, NodeId v);
  std::int32_t find_slot(NodeId u, NodeId v) const;  // -1 if absent
  void check_endpoints(NodeId u, NodeId v) const;

  void adj_remove(std::vector<std::int32_t>& list, std::int32_t slot);
  void msf_add(std::int32_t slot);
  void msf_remove(std::int32_t slot);
  /// Forest path u -> v as slot ids; empty if disconnected in the forest.
  bool msf_path(NodeId u, NodeId v, std::vector<std::int32_t>& out) const;
  void rebuild_union_find();

  NodeId num_nodes_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Slot> slots_;              // grows monotonically, never reused
  std::vector<std::int32_t> live_;       // live slot ids, internal order
  std::vector<std::vector<std::int32_t>> adj_;      // live slots per node
  std::vector<std::vector<std::int32_t>> msf_adj_;  // forest slots per node

  Weight msf_weight_ = 0;
  std::int64_t msf_edges_ = 0;

  UnionFind uf_;
  bool uf_dirty_ = false;  // a split happened; rebuild at next query

  Counters counters_;

  // Scratch reused by msf_path / cut replacement (cleared per use).
  mutable std::vector<std::int32_t> bfs_queue_;
  mutable std::vector<std::int32_t> bfs_via_;  // slot used to reach node
};

}  // namespace lcs::dynamic
