/// \file verified.h
/// The verified-mirror harness for dynamic graphs: every mutation is applied
/// to both the fast incremental structure (`DynamicGraph`) and a naive
/// mirror (a plain edge vector), and the incremental state is asserted equal
/// to recompute-from-scratch oracles — union-find components and Kruskal
/// MSF — as the stream runs.
///
/// This lifts the idiom of realm-core's `VerifiedInteger` (and of this
/// repo's own engine stress harness, `tests/stress_util.h`) from container /
/// engine level up to the algorithm layer:
///
///  * a cheap *local* check after **every** mutation (edge counts agree and
///    the mutated edge is present/absent in both structures — the analogue
///    of `verify_neighbours`), plus
///  * a full from-scratch comparison (`full_verify`) after every mutation in
///    `kEveryStep` mode, or every `sample_period`-th mutation in `kSampled`
///    mode — the `occasional_verify` pattern for long streams where
///    per-mutation Kruskal would dominate the run.
///
/// Any disagreement throws CheckFailure naming the diverging quantity; the
/// churn driver turns that into a nonzero exit, so a maintenance bug cannot
/// produce a plausible-but-wrong report.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"

namespace lcs::dynamic {

enum class VerifyMode {
  kEveryStep,  ///< full oracle comparison after every mutation
  kSampled,    ///< full comparison every sample_period mutations
  kOff,        ///< no implicit checks (full_verify still callable)
};

class VerifiedDynamicGraph {
 public:
  explicit VerifiedDynamicGraph(const Graph& initial,
                                VerifyMode mode = VerifyMode::kEveryStep,
                                std::int64_t sample_period = 64);

  /// Mutations, applied to the fast structure *and* the mirror, then
  /// verified per the mode. Precondition failures (duplicate insert, delete
  /// of a nonexistent edge) throw out of the fast structure before the
  /// mirror is touched, so the pair never diverges on a rejected mutation.
  void insert_edge(NodeId u, NodeId v, Weight w);
  void delete_edge(NodeId u, NodeId v);

  /// Full from-scratch comparison: live edge sets equal, union-find oracle
  /// component count equal, Kruskal oracle forest (weight and exact edge
  /// set, by sequence number) equal. Throws CheckFailure on any mismatch.
  void full_verify();

  /// The fast structure. Tests reach through this to corrupt it and prove
  /// the mirror catches the divergence; the churn driver reads checkpoints.
  DynamicGraph& fast() { return fast_; }
  const DynamicGraph& fast() const { return fast_; }

  std::int64_t mutations() const { return mutations_; }
  std::int64_t full_verifications() const { return full_verifications_; }

 private:
  struct MirrorEdge {
    NodeId u;
    NodeId v;
    Weight w;
    std::uint64_t seq;
  };

  void after_mutation(NodeId u, NodeId v, bool expect_present);

  DynamicGraph fast_;
  std::vector<MirrorEdge> mirror_;  // naive: append, linear-scan erase
  std::uint64_t mirror_next_seq_;
  VerifyMode mode_;
  std::int64_t sample_period_;
  std::int64_t mutations_ = 0;
  std::int64_t full_verifications_ = 0;
};

}  // namespace lcs::dynamic
