#include "dynamic/churn.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <utility>

#include "dynamic/dynamic_graph.h"
#include "dynamic/verified.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/quality.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs::dynamic {

namespace {

constexpr std::string_view kPrefix = "churn:base=";

/// Weight parsed from one side of a `lo-hi` range.
Weight parse_weight(std::string_view token, const char* what) {
  Weight value{};
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), value);
  LCS_CHECK(res.ec == std::errc() && res.ptr == token.data() + token.size(),
            std::string("churn weights: malformed ") + what + " '" +
                std::string(token) + "'");
  return value;
}

ChurnParams from_args(scenario::SpecArgs& args) {
  ChurnParams p;
  p.steps = args.get_int("steps", p.steps);
  LCS_CHECK(p.steps >= 1, "churn needs steps >= 1");
  p.rate = args.get_double("rate", p.rate);
  LCS_CHECK(p.rate > 0.0, "churn rate must be positive");
  p.delete_frac = args.get_double("dfrac", p.delete_frac);
  LCS_CHECK(p.delete_frac >= 0.0 && p.delete_frac <= 1.0,
            "churn dfrac must be in [0, 1]");
  p.seed = args.get_uint("seed", p.seed);
  p.checkpoints = args.get_int("checkpoints", p.checkpoints);
  LCS_CHECK(p.checkpoints >= 1 && p.checkpoints <= p.steps,
            "churn needs 1 <= checkpoints <= steps");
  if (args.has(std::string_view("weights"))) {
    const std::string range = args.get_string("weights", "");
    const auto dash = range.find('-');
    LCS_CHECK(dash != std::string::npos && dash > 0 && dash + 1 < range.size(),
              "churn weights= wants a 'lo-hi' range, got '" + range + "'");
    p.weight_lo =
        parse_weight(std::string_view(range).substr(0, dash), "range start");
    p.weight_hi =
        parse_weight(std::string_view(range).substr(dash + 1), "range end");
    LCS_CHECK(p.weight_lo >= 1 && p.weight_lo <= p.weight_hi,
              "churn weights= needs 1 <= lo <= hi");
    LCS_CHECK(p.weight_hi <=
                  static_cast<Weight>(std::numeric_limits<std::int64_t>::max()),
              "churn weights= range end exceeds the signed draw range");
  }
  const std::string verify = args.get_string("verify", "step");
  if (verify == "step") p.verify = VerifyMode::kEveryStep;
  else if (verify == "sample") p.verify = VerifyMode::kSampled;
  else if (verify == "off") p.verify = VerifyMode::kOff;
  else LCS_CHECK(false, "churn verify= wants step|sample|off, got '" + verify +
                            "'");
  p.verify_period = args.get_int("vperiod", p.verify_period);
  LCS_CHECK(p.verify_period >= 1, "churn vperiod must be >= 1");
  args.check_all_consumed();
  return p;
}

/// Split a comma-separated `key=value` list into SpecArgs under the given
/// family name (for diagnostics).
scenario::SpecArgs split_params(std::string_view csv) {
  std::vector<std::pair<std::string, std::string>> params;
  std::string_view rest = csv;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    LCS_CHECK(!token.empty(), "empty parameter in churn spec");
    const auto eq = token.find('=');
    LCS_CHECK(eq != std::string_view::npos && eq > 0,
              "churn parameter '" + std::string(token) +
                  "' is not of the form key=value");
    params.emplace_back(std::string(token.substr(0, eq)),
                        std::string(token.substr(eq + 1)));
  }
  return scenario::SpecArgs("churn", std::move(params));
}

}  // namespace

bool is_churn_spec(std::string_view spec) {
  return spec.substr(0, 6) == "churn:" || spec == "churn";
}

ChurnParams parse_churn_params(std::string_view params) {
  scenario::SpecArgs args = split_params(params);
  return from_args(args);
}

ChurnSpec parse_churn_spec(std::string_view spec) {
  LCS_CHECK(spec.substr(0, kPrefix.size()) == kPrefix,
            "churn spec wants 'churn:base=<spec>;<params>', got '" +
                std::string(spec) + "'");
  std::string_view rest = spec.substr(kPrefix.size());
  const auto semi = rest.find(';');
  ChurnSpec out;
  out.base = std::string(rest.substr(0, semi));
  LCS_CHECK(!out.base.empty(), "churn spec has an empty base spec");
  if (semi != std::string_view::npos)
    out.params = parse_churn_params(rest.substr(semi + 1));
  return out;
}

ChurnResult run_churn(const Graph& initial, const std::vector<PartId>& part_of,
                      const ChurnParams& params) {
  LCS_CHECK(part_of.size() == static_cast<std::size_t>(initial.num_nodes()),
            "churn partition labeling size mismatch");
  LCS_CHECK(initial.num_nodes() >= 2, "churn needs at least 2 nodes");

  VerifiedDynamicGraph verified(initial, params.verify, params.verify_period);
  Rng rng(params.seed);

  ChurnResult result;
  result.ops_per_step = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(params.rate *
                                   static_cast<double>(initial.num_edges())));

  const auto record = [&](std::int64_t step) {
    verified.full_verify();
    const DynamicGraph& fast = verified.fast();
    ChurnCheckpoint cp;
    cp.step = step;
    cp.edges = fast.num_edges();
    cp.components = verified.fast().num_components();
    cp.msf_weight = fast.msf_weight();
    cp.msf_edges = fast.msf_size();
    const DynamicGraph::Snapshot snap = fast.snapshot();
    cp.maintained = forest_part_quality(snap.graph, part_of, snap.in_msf);
    cp.fresh = forest_part_quality(snap.graph, part_of,
                                   bfs_forest_edges(snap.graph));
    cp.counters = fast.counters();
    cp.full_verifications = verified.full_verifications();
    result.checkpoints.push_back(cp);
  };

  record(0);

  const NodeId n = initial.num_nodes();
  std::int64_t next_checkpoint = 1;
  for (std::int64_t step = 1; step <= params.steps; ++step) {
    for (std::int64_t op = 0; op < result.ops_per_step; ++op) {
      if (rng.next_bool(params.delete_frac)) {
        DynamicGraph& fast = verified.fast();
        if (fast.num_edges() == 0) {
          ++result.skipped_deletes;
          continue;
        }
        const std::int64_t index = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(fast.num_edges())));
        const DynamicGraph::EdgeRef pick = fast.live_edge(index);
        verified.delete_edge(pick.u, pick.v);
      } else {
        bool inserted = false;
        for (int attempt = 0; attempt < 64; ++attempt) {
          const NodeId u = util::checked_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(n)));
          const NodeId v = util::checked_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(n)));
          if (u == v || verified.fast().has_edge(u, v)) continue;
          const Weight w =
              params.weight_lo == params.weight_hi
                  ? params.weight_lo
                  : static_cast<Weight>(rng.next_in(
                        static_cast<std::int64_t>(params.weight_lo),
                        static_cast<std::int64_t>(params.weight_hi)));
          verified.insert_edge(u, v, w);
          inserted = true;
          break;
        }
        if (!inserted) ++result.skipped_inserts;
      }
    }
    // Checkpoint schedule: the i-th checkpoint fires at step
    // round(i * steps / checkpoints), so the last always lands on `steps`.
    if (step * params.checkpoints >= next_checkpoint * params.steps) {
      record(step);
      while (step * params.checkpoints >= next_checkpoint * params.steps)
        ++next_checkpoint;
    }
  }

  result.final_snapshot = verified.fast().snapshot();
  return result;
}

}  // namespace lcs::dynamic
