#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "driver/run_driver.h"
#include "scenario/scenario.h"
#include "serve/cache.h"
#include "shortcut/persist.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/worker_pool.h"

namespace lcs::serve {

namespace {

/// Shortest round-trip spelling, so two requests with the same value get
/// the same memo key and two different values never collide.
std::string double_key(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string request_id(const JsonValue& v) {
  const JsonValue* id = v.find("id", "request");
  if (id == nullptr) return "-";
  const std::string& s = id->as_string("request field 'id'");
  LCS_CHECK(!s.empty() && s.size() <= 128,
            "request field 'id' must be 1..128 characters");
  for (const char c : s)
    LCS_CHECK((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-',
              "request field 'id' may only contain [A-Za-z0-9._-]");
  return s;
}

/// Strict request decoding: every member must be a known field of the
/// lcs_run vocabulary — an unknown or misspelled field is diagnosed by
/// name (the parser has already rejected duplicates).
driver::RunOptions parse_request(const JsonValue& v) {
  driver::RunOptions o;
  for (const auto& [key, val] : v.as_object("request")) {
    const std::string what = "request field '" + key + "'";
    if (key == "id") continue;  // validated by request_id
    else if (key == "algo") o.algo = val.as_string(what);
    else if (key == "scenario") o.scenario = val.as_string(what);
    else if (key == "backend") o.backend = val.as_string(what);
    else if (key == "churn") o.churn = val.as_string(what);
    else if (key == "sweep") o.sweep = val.as_string(what);
    else if (key == "seed") o.seed = val.as_uint(what);
    else if (key == "threads") o.threads = util::checked_cast<int>(val.as_int(what));
    else if (key == "parallel_threshold")
      o.parallel_threshold = val.as_int(what);
    else if (key == "fail_rate") o.fail_rate = val.as_double(what);
    else if (key == "validate") o.validate = val.as_bool(what);
    else if (key == "metrics") o.metrics = val.as_bool(what);
    else if (key == "timing") o.timing = val.as_bool(what);
    else
      LCS_CHECK(false,
                "unknown request field '" + key +
                    "' (accepted: id, algo, scenario, backend, churn, sweep, "
                    "seed, threads, parallel_threshold, fail_rate, validate, "
                    "metrics, timing)");
  }
  return o;
}

std::string quit_ack() {
  std::ostringstream buffer;
  JsonWriter w(buffer);
  w.begin_object();
  w.kv("ok", true);
  w.kv("quitting", true);
  w.end_object();
  w.finish();
  return buffer.str();
}

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) return;  // client went away; nothing sensible to do
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(const ServeOptions& options)
    : opts_(options),
      scenarios_(options.cache_dir),
      records_(options.cache_dir),
      pool_(WorkerPool::resolve_threads(options.parallel_requests)) {
  LCS_CHECK(opts_.batch >= 1, "--batch must be at least 1");
}

void Server::preload() {
  // Warming the cache is the whole point; the handle itself is not needed.
  for (const std::string& spec : opts_.preload) (void)scenarios_.resolve(spec);
}

Server::Response Server::handle_line(const std::string& line) {
  Response r;
  if (line.find_first_not_of(" \t\r") == std::string::npos) {
    r.skip = true;
    return r;
  }
  try {
    const JsonValue v = parse_json(line);
    r.id = request_id(v);

    if (const JsonValue* cmd = v.find("cmd", "request")) {
      for (const auto& [key, val] : v.as_object("request"))
        LCS_CHECK(key == "cmd" || key == "id",
                  "unknown field '" + key +
                      "' for a command request (accepted: cmd, id)");
      const std::string& c = cmd->as_string("request field 'cmd'");
      if (c == "stats") {
        r.body = std::make_shared<const std::string>(stats_document());
      } else if (c == "quit") {
        r.quit = true;
        r.body = std::make_shared<const std::string>(quit_ack());
      } else {
        LCS_CHECK(false,
                  "unknown command '" + c + "' (accepted: stats, quit)");
      }
      return r;
    }

    const driver::RunOptions o = parse_request(v);

    // Deterministic responses memoize; `timing` carries wall time, so only
    // timing-free requests are eligible. The key spells out every field
    // the report is a function of.
    std::string memo_key;
    if (!o.timing) {
      memo_key = o.algo + '\n' + o.scenario + '\n' + o.backend + '\n' +
                 o.churn + '\n' + o.sweep + '\n' + std::to_string(o.seed) +
                 '\n' + double_key(o.fail_rate) + '\n' +
                 (o.validate ? '1' : '0') + (o.metrics ? '1' : '0');
      std::lock_guard<std::mutex> lock(memo_mu_);
      ++requests_served_;
      const auto it = response_memo_.find(memo_key);
      if (it != response_memo_.end()) {
        ++response_memo_hits_;
        r.rc = it->second.first;
        r.body = it->second.second;
        return r;
      }
    } else {
      std::lock_guard<std::mutex> lock(memo_mu_);
      ++requests_served_;
    }

    driver::RunHooks hooks;
    hooks.resolve_scenario = [this](const std::string& spec) {
      return scenarios_.resolve(spec);
    };
    hooks.find_shortcut_record = [this](const driver::ShortcutCacheKey& key,
                                        const scenario::Scenario& sc) {
      return records_.find(key, sc);
    };
    hooks.store_shortcut_record =
        [this](const driver::ShortcutCacheKey& key,
               const scenario::Scenario& sc,
               const std::shared_ptr<const ShortcutRunRecord>& record) {
          records_.store(key, sc, record);
        };

    std::string body;
    r.rc = driver::run_document(o, hooks, body);
    r.body = std::make_shared<const std::string>(std::move(body));
    if (!memo_key.empty()) {
      std::lock_guard<std::mutex> lock(memo_mu_);
      response_memo_.emplace(memo_key, std::make_pair(r.rc, r.body));
    }
  } catch (const CheckFailure& e) {
    r.rc = 2;
    r.body = std::make_shared<const std::string>(
        driver::error_document("check_failure", e.what(), 2));
  } catch (const std::exception& e) {
    r.rc = 3;
    r.body = std::make_shared<const std::string>(
        driver::error_document("exception", e.what(), 3));
  }
  return r;
}

std::string Server::stats_document() const {
  const ScenarioCacheStats sc = scenarios_.stats();
  const RecordCacheStats rec = records_.stats();
  std::int64_t memo_hits = 0;
  std::int64_t served = 0;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    memo_hits = response_memo_hits_;
    served = requests_served_;
  }

  std::ostringstream buffer;
  JsonWriter w(buffer);
  w.begin_object();
  w.key("serve").begin_object();
  w.kv("requests", served);
  w.kv("response_memo_hits", memo_hits);
  w.key("scenarios").begin_object();
  w.kv("memory_hits", sc.memory_hits);
  w.kv("disk_loads", sc.disk_loads);
  w.kv("generated", sc.generated);
  w.kv("disk_load_failures", sc.disk_load_failures);
  w.end_object();
  w.key("shortcuts").begin_object();
  w.kv("memory_hits", rec.memory_hits);
  w.kv("disk_loads", rec.disk_loads);
  w.kv("constructed", rec.constructed);
  w.kv("disk_load_failures", rec.disk_load_failures);
  w.end_object();
  w.end_object();
  w.end_object();
  w.finish();
  return buffer.str();
}

void Server::process_batch(const std::vector<std::string>& lines,
                           std::string& out, bool& quit) {
  std::vector<Response> responses(lines.size());
  std::atomic<std::size_t> next{0};
  pool_.run([&](int) {
    for (std::size_t i = next.fetch_add(1); i < lines.size();
         i = next.fetch_add(1))
      responses[i] = handle_line(lines[i]);
  });
  // Strictly in request order, whatever the workers' interleaving was.
  for (const Response& r : responses) {
    if (r.skip) continue;
    out += "#lcs_serve id=" + r.id + " exit=" + std::to_string(r.rc) +
           " bytes=" + std::to_string(r.body->size()) + "\n";
    out += *r.body;
    if (r.quit) quit = true;
  }
}

int Server::serve_stdin() {
  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    std::vector<std::string> batch;
    batch.push_back(line);
    // Greedily drain whatever the client already wrote (up to the batch
    // cap) so scripted request files dispatch in parallel, while a
    // one-request-at-a-time client still gets an immediate answer.
    while (util::checked_cast<int>(batch.size()) < opts_.batch &&
           std::cin.rdbuf()->in_avail() > 0 && std::getline(std::cin, line))
      batch.push_back(line);
    std::string out;
    process_batch(batch, out, quit);
    std::cout << out << std::flush;
  }
  return 0;
}

int Server::serve_unix_socket() {
  const std::string& path = opts_.socket_path;
  sockaddr_un addr{};
  LCS_CHECK(path.size() < sizeof(addr.sun_path),
            "--socket path is too long for a unix socket");
  // A dead daemon leaves its socket file behind; binding over it is the
  // expected restart path.
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  LCS_CHECK(listen_fd >= 0, "cannot create a unix socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  LCS_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0,
            "cannot bind unix socket '" + path + "'");
  LCS_CHECK(::listen(listen_fd, 8) == 0,
            "cannot listen on unix socket '" + path + "'");
  // A client disconnecting mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  std::cerr << "lcs_serve: listening on " << path << "\n";

  bool quit = false;
  while (!quit) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;
    std::string buffer;
    char chunk[4096];
    bool closed = false;
    while (!quit && !closed) {
      std::size_t nl;
      while ((nl = buffer.find('\n')) == std::string::npos) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
          closed = true;
          break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      std::vector<std::string> batch;
      while (util::checked_cast<int>(batch.size()) < opts_.batch &&
             (nl = buffer.find('\n')) != std::string::npos) {
        batch.push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
      }
      if (batch.empty()) break;
      std::string out;
      process_batch(batch, out, quit);
      write_all(fd, out);
    }
    if (!buffer.empty())
      std::cerr << "lcs_serve: dropping unterminated trailing request ("
                << buffer.size() << " bytes without a newline)\n";
    ::close(fd);
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace lcs::serve
