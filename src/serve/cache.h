/// \file cache.h
/// The daemon's two-level caches: memory memo over a disk layer.
///
/// `lcs_serve` loads a corpus once and answers a stream of requests; the
/// expensive stages of a request are scenario resolution (generators, file
/// parses, partition construction) and shortcut construction (the engine).
/// Each gets a cache with the same shape:
///
///  * **memory** — a mutex-guarded memo of shared_ptr-to-const results.
///    Values are immutable after insertion, so concurrent requests share
///    them without copying; computation happens outside the lock (two
///    simultaneous misses on one key may both compute — identical results,
///    last insert discarded — rather than serializing the batch).
///  * **disk** (optional, `cache_dir`) — one file per key, written through
///    the atomic temp-file + rename path (io.h "Atomic writes"), so a
///    crash mid-store never leaves a torn cache entry for the next start.
///    Scenario entries are v2 graph bundles (`scenario-<spechash>.lcsg`)
///    carrying the graph plus PART and META sections; shortcut entries are
///    `.lcss` records
///    (`shortcut-<spechash>-<parthash>-<seed>-<backend>.lcss`, see
///    shortcut/persist.h).
///
/// Loads verify everything: file-format diagnoses from the codecs, the
/// META spec string against the requested spec (hash-collision guard), and
/// record keys against the scenario being served. A failed load is
/// availability, not an error: a warning goes to stderr, the
/// `disk_load_failures` counter ticks, and the entry is recomputed and
/// rewritten — a corrupt cache directory degrades to a cold start.
///
/// The counters let tests enforce the warm-start contract mechanically:
/// after a warm start over a populated cache directory, `generated` and
/// `constructed` must both be zero — every answer came from I/O.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "driver/run_driver.h"
#include "scenario/scenario.h"
#include "shortcut/persist.h"

namespace lcs::serve {

struct ScenarioCacheStats {
  std::int64_t memory_hits = 0;
  std::int64_t disk_loads = 0;
  std::int64_t generated = 0;
  std::int64_t disk_load_failures = 0;
};

class ScenarioCache {
 public:
  /// `cache_dir` empty = memory-only (no persistence).
  explicit ScenarioCache(std::string cache_dir);

  /// Resolve `spec`, through the memo, then the disk layer, then the
  /// scenario registry (which populates both). Shape matches the
  /// RunHooks::resolve_scenario hook.
  [[nodiscard]] std::shared_ptr<const scenario::Scenario> resolve(const std::string& spec);

  [[nodiscard]] ScenarioCacheStats stats() const;

 private:
  [[nodiscard]] std::shared_ptr<const scenario::Scenario> load_from_disk(
      const std::string& spec, const std::string& path);
  [[nodiscard]] std::string path_for(const std::string& spec) const;

  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const scenario::Scenario>> memo_;
  ScenarioCacheStats stats_;
};

struct RecordCacheStats {
  std::int64_t memory_hits = 0;
  std::int64_t disk_loads = 0;
  std::int64_t constructed = 0;  ///< cold constructions (stores)
  std::int64_t disk_load_failures = 0;
};

class ShortcutRecordCache {
 public:
  explicit ShortcutRecordCache(std::string cache_dir);

  /// Memo, then disk (decoded and key-verified against `sc`), else null —
  /// the driver then constructs and calls `store`. Shapes match the
  /// RunHooks find/store hooks.
  [[nodiscard]] std::shared_ptr<const ShortcutRunRecord> find(
      const driver::ShortcutCacheKey& key, const scenario::Scenario& sc);
  void store(const driver::ShortcutCacheKey& key, const scenario::Scenario& sc,
             const std::shared_ptr<const ShortcutRunRecord>& record);

  [[nodiscard]] RecordCacheStats stats() const;

 private:
  [[nodiscard]] std::string path_for(const driver::ShortcutCacheKey& key) const;

  std::string dir_;
  mutable std::mutex mu_;
  std::map<
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::string>,
      std::shared_ptr<const ShortcutRunRecord>>
      memo_;
  RecordCacheStats stats_;
};

}  // namespace lcs::serve
