#include "serve/cache.h"

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <utility>

#include "driver/run_driver.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/persist.h"
#include "util/check.h"

namespace lcs::serve {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// ---------------------------------------------------------- ScenarioCache --

ScenarioCache::ScenarioCache(std::string cache_dir)
    : dir_(std::move(cache_dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::string ScenarioCache::path_for(const std::string& spec) const {
  return dir_ + "/scenario-" + hex16(driver::spec_hash(spec)) + ".lcsg";
}

std::shared_ptr<const scenario::Scenario> ScenarioCache::load_from_disk(
    const std::string& spec, const std::string& path) {
  const GraphBundle bundle = load_binary_bundle(path);

  const BundleSection* meta_section = bundle.find(kSectionMeta);
  LCS_CHECK(meta_section != nullptr,
            "scenario cache entry '" + path + "' has no META section");
  const BundleMeta meta = decode_bundle_meta(meta_section->bytes);
  // The file is named by the spec *hash*; the stored spec string is the
  // collision / stale-entry guard. A mismatch regenerates, never serves.
  LCS_CHECK(meta.spec == spec,
            "scenario cache entry '" + path + "' is for spec '" + meta.spec +
                "', requested '" + spec + "'");

  const BundleSection* part_section = bundle.find(kSectionPartition);
  LCS_CHECK(part_section != nullptr,
            "scenario cache entry '" + path + "' has no PART section");

  Partition partition =
      decode_partition(part_section->bytes, bundle.graph.num_nodes());
  return std::make_shared<scenario::Scenario>(scenario::Scenario{
      bundle.graph, std::move(partition), meta.family, meta.spec});
}

std::shared_ptr<const scenario::Scenario> ScenarioCache::resolve(
    const std::string& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(spec);
    if (it != memo_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }

  std::shared_ptr<const scenario::Scenario> sc;
  const std::string path = dir_.empty() ? std::string() : path_for(spec);
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      sc = load_from_disk(spec, path);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_loads;
    } catch (const std::exception& e) {
      std::cerr << "lcs_serve: discarding scenario cache entry: " << e.what()
                << "\n";
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_load_failures;
    }
  }

  if (!sc) {
    sc = std::make_shared<const scenario::Scenario>(
        scenario::make_scenario(spec));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.generated;
    }
    if (!path.empty()) {
      std::vector<BundleSection> sections;
      sections.push_back({kSectionPartition, encode_partition(sc->partition)});
      sections.push_back(
          {kSectionMeta, encode_bundle_meta({sc->spec, sc->family})});
      save_binary_bundle(sc->graph, sections, path);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  // First insert wins so every request shares one canonical object; a
  // racing duplicate resolution is discarded.
  const auto [it, inserted] = memo_.emplace(spec, std::move(sc));
  return it->second;
}

ScenarioCacheStats ScenarioCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------- ShortcutRecordCache --

ShortcutRecordCache::ShortcutRecordCache(std::string cache_dir)
    : dir_(std::move(cache_dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

std::string ShortcutRecordCache::path_for(
    const driver::ShortcutCacheKey& key) const {
  return dir_ + "/shortcut-" + hex16(key.spec_hash) + "-" +
         hex16(key.partition_hash) + "-" + std::to_string(key.seed) + "-" +
         key.backend + ".lcss";
}

std::shared_ptr<const ShortcutRunRecord> ShortcutRecordCache::find(
    const driver::ShortcutCacheKey& key, const scenario::Scenario& sc) {
  const auto memo_key = std::make_tuple(key.spec_hash, key.partition_hash,
                                        key.seed, key.backend);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      ++stats_.memory_hits;
      return it->second;
    }
  }

  if (dir_.empty()) return nullptr;
  const std::string path = path_for(key);
  if (!std::filesystem::exists(path)) return nullptr;
  std::shared_ptr<const ShortcutRunRecord> record;
  try {
    record = std::make_shared<const ShortcutRunRecord>(load_shortcut_record(
        path, sc.graph, key.spec_hash, key.partition_hash, key.backend));
  } catch (const std::exception& e) {
    std::cerr << "lcs_serve: discarding shortcut cache entry: " << e.what()
              << "\n";
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_load_failures;
    return nullptr;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.disk_loads;
  const auto [it, inserted] = memo_.emplace(memo_key, std::move(record));
  return it->second;
}

void ShortcutRecordCache::store(
    const driver::ShortcutCacheKey& key, const scenario::Scenario& sc,
    const std::shared_ptr<const ShortcutRunRecord>& record) {
  (void)sc;
  if (!dir_.empty()) save_shortcut_record(*record, path_for(key));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.constructed;
  memo_.emplace(std::make_tuple(key.spec_hash, key.partition_hash, key.seed,
                                key.backend),
                record);
}

RecordCacheStats ShortcutRecordCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lcs::serve
