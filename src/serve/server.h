/// \file server.h
/// The `lcs_serve` request loop: parse, dispatch, frame.
///
/// The daemon speaks newline-delimited JSON requests over stdin or a unix
/// stream socket. A request is the `lcs_run` flag vocabulary as a JSON
/// object (strictly parsed — unknown or duplicate fields are diagnosed by
/// name, never ignored):
///
///     {"id": "r1", "algo": "shortcut", "scenario": "grid:w=64,h=64",
///      "seed": 3, "threads": 2, "validate": true, "timing": false}
///
/// plus two admin forms: {"cmd": "stats"} (cache counters as JSON) and
/// {"cmd": "quit"} (acknowledge, then shut down after draining the batch).
///
/// Every response is framed as one header line followed by an exact byte
/// count of payload:
///
///     #lcs_serve id=<id> exit=<rc> bytes=<N>
///     <N bytes: the JSON document>
///
/// The payload is byte-identical to the stdout of the equivalent one-shot
/// `lcs_run` invocation with the same parameters — reports, sweep arrays,
/// and error objects alike — because both render through
/// driver::run_document / driver::error_document. `exit` is the exit code
/// `lcs_run` would have returned (0, 1 validation mismatch, 2 check
/// failure, 3 exception).
///
/// ## Batching and determinism
///
/// Requests already buffered on the input are dispatched as one batch
/// across a WorkerPool (`parallel_requests` workers, calling thread
/// included); responses are emitted strictly in request order. Responses
/// are pure functions of the request (given a fixed corpus), so batch
/// boundaries and worker interleaving cannot change a byte — the
/// interleaving regression test shuffles request order across runs and
/// diffs the per-id responses.
///
/// Deterministic responses also memoize: a repeated request with
/// `timing=false` is answered from the response memo without re-rendering
/// (`timing=true` responses carry wall time and are never memoized).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.h"
#include "util/worker_pool.h"

namespace lcs::serve {

struct ServeOptions {
  std::string cache_dir;    ///< empty = no disk persistence
  std::string socket_path;  ///< empty = stdin/stdout
  int batch = 16;           ///< max requests dispatched as one batch
  int parallel_requests = 1;  ///< worker threads for batch dispatch (0 = hw)
  std::vector<std::string> preload;  ///< specs resolved before serving
};

class Server {
 public:
  explicit Server(const ServeOptions& options);

  /// Resolve every `preload` spec through the scenario cache (so a warm
  /// start pulls them off disk before the first request arrives).
  void preload();

  /// Serve until EOF or {"cmd": "quit"}; returns the process exit code.
  int serve_stdin();
  int serve_unix_socket();

 private:
  struct Response {
    std::string id = "-";
    int rc = 0;
    std::shared_ptr<const std::string> body;
    bool skip = false;  ///< blank input line: emit nothing
    bool quit = false;
  };

  Response handle_line(const std::string& line);
  std::string stats_document() const;
  /// Dispatch `lines` across the pool; append framed responses to `out`.
  /// Sets `quit` when a quit command was in the batch.
  void process_batch(const std::vector<std::string>& lines, std::string& out,
                     bool& quit);

  ServeOptions opts_;
  ScenarioCache scenarios_;
  ShortcutRecordCache records_;
  WorkerPool pool_;

  mutable std::mutex memo_mu_;
  std::map<std::string, std::pair<int, std::shared_ptr<const std::string>>>
      response_memo_;
  std::int64_t response_memo_hits_ = 0;
  std::int64_t requests_served_ = 0;
};

}  // namespace lcs::serve
