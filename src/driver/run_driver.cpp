#include "driver/run_driver.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "apps/aggregate.h"
#include "apps/components.h"
#include "apps/mincut.h"
#include "congest/network.h"
#include "dynamic/churn.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/verified.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "graph/reference.h"
#include "mst/boruvka_shortcut.h"
#include "mst/mwoe.h"
#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/persist.h"
#include "shortcut/quality.h"
#include "shortcut/shortcut.h"
#include "tree/bfs_tree.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "util/worker_pool.h"

namespace lcs::driver {

std::uint64_t spec_hash(std::string_view spec) { return fnv1a64(spec); }

std::uint64_t partition_hash(const Partition& p) {
  return fnv1a64(encode_partition(p));
}

namespace {

std::shared_ptr<const scenario::Scenario> resolve_scenario(
    const RunHooks& hooks, const std::string& spec) {
  if (hooks.resolve_scenario) return hooks.resolve_scenario(spec);
  return std::make_shared<const scenario::Scenario>(
      scenario::make_scenario(spec));
}

/// Exact equality of two labelings as partitions of the node set.
bool same_partition_structure(const std::vector<PartId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<std::pair<PartId, NodeId>> pairs;
  pairs.reserve(a.size());
  for (std::size_t v = 0; v < a.size(); ++v) pairs.emplace_back(a[v], b[v]);
  std::sort(pairs.begin(), pairs.end());
  // Bijective iff every a-label maps to exactly one b-label and vice versa.
  std::set<PartId> as;
  std::set<NodeId> bs;
  PartId prev_a = -1;
  NodeId prev_b = -1;
  bool first = true;
  for (const auto& [la, lb] : pairs) {
    if (!first && la == prev_a && lb != prev_b) return false;
    if (first || la != prev_a) {
      if (!as.insert(la).second) return false;
      if (!bs.insert(lb).second) return false;
    }
    prev_a = la;
    prev_b = lb;
    first = false;
  }
  return true;
}

struct RunReport {
  // Algorithm-specific payload, emitted under "result".
  std::function<void(JsonWriter&)> result;
  // Validation payload, emitted under "validation"; `ok` drives exit code.
  bool validated = false;
  bool ok = true;
  std::function<void(JsonWriter&)> validation;
};

RunReport run_components(congest::Network& net, const SpanningTree& tree,
                         const scenario::Scenario& sc, const RunOptions& o) {
  LCS_CHECK(o.fail_rate >= 0.0 && o.fail_rate < 1.0,
            "--fail-rate must be in [0, 1)");
  // Shared-seed logical failures, independent of the algorithm seed stream.
  Rng rng(o.seed);
  std::vector<bool> alive(static_cast<std::size_t>(sc.graph.num_edges()));
  std::int64_t failed = 0;
  for (std::size_t e = 0; e < alive.size(); ++e) {
    alive[e] = !rng.next_bool(o.fail_rate);
    if (!alive[e]) ++failed;
  }

  const ComponentsResult res =
      distributed_components(net, tree, alive, o.seed);
  std::set<PartId> labels(res.label.begin(), res.label.end());
  const std::int64_t components = static_cast<std::int64_t>(labels.size());

  RunReport rep;
  rep.result = [components, failed, res](JsonWriter& w) {
    w.kv("components", components);
    w.kv("failed_edges", failed);
    w.kv("phases", res.phases);
  };
  if (o.validate) {
    const auto truth = connected_components(sc.graph, alive);
    rep.validated = true;
    rep.ok = same_partition_structure(res.label, truth);
    std::set<NodeId> truth_labels(truth.begin(), truth.end());
    const std::int64_t exact = static_cast<std::int64_t>(truth_labels.size());
    const bool ok = rep.ok;
    rep.validation = [exact, ok](JsonWriter& w) {
      w.kv("oracle", "centralized union-find components");
      w.kv("oracle_components", exact);
      w.kv("labels_match", ok);
    };
  }
  return rep;
}

RunReport run_mst(congest::Network& net, const SpanningTree& tree,
                  const scenario::Scenario& sc, const RunOptions& o) {
  ShortcutMstOptions opts;
  opts.seed = o.seed;
  const DistributedMst mst = mst_boruvka_shortcut(net, tree, opts);

  RunReport rep;
  rep.result = [mst](JsonWriter& w) {
    w.kv("weight", mst.total_weight);
    w.kv("mst_edges", static_cast<std::int64_t>(mst.edges.size()));
    w.kv("phases", mst.phases);
  };
  if (o.validate) {
    const MstResult truth = kruskal_mst(sc.graph);
    rep.validated = true;
    rep.ok = truth.total_weight == mst.total_weight && truth.edges == mst.edges;
    const bool ok = rep.ok;
    const Weight w_truth = truth.total_weight;
    rep.validation = [ok, w_truth](JsonWriter& w) {
      w.kv("oracle", "Kruskal (weight, edge id) order");
      w.kv("oracle_weight", w_truth);
      w.kv("edges_match", ok);
    };
  }
  return rep;
}

RunReport run_mincut(congest::Network& net, const SpanningTree& tree,
                     const scenario::Scenario& sc, const RunOptions& o) {
  const MincutEstimate est = approx_mincut(net, tree, o.seed);

  RunReport rep;
  rep.result = [est](JsonWriter& w) {
    w.kv("estimate", est.estimate);
    w.kv("levels_tested", est.levels_tested);
  };
  if (o.validate) {
    // Stoer-Wagner is O(n^3): cap the oracle at sizes where it is instant.
    constexpr NodeId kOracleCap = 1500;
    rep.validated = true;
    if (sc.graph.num_nodes() <= kOracleCap) {
      const Weight exact = stoer_wagner_mincut(sc.graph);
      // Karger sampling brackets lambda within O(log n) w.h.p.; use a
      // generous constant so the gate never flakes on legitimate runs.
      const double slack =
          64.0 * (std::log2(static_cast<double>(sc.graph.num_nodes())) + 2.0);
      rep.ok = static_cast<double>(est.estimate) <=
                   static_cast<double>(exact) * slack &&
               static_cast<double>(exact) <=
                   static_cast<double>(est.estimate) * slack;
      const bool ok = rep.ok;
      rep.validation = [exact, ok](JsonWriter& w) {
        w.kv("oracle", "Stoer-Wagner exact min cut");
        w.kv("oracle_lambda", exact);
        w.kv("within_sampling_bracket", ok);
      };
    } else {
      rep.validation = [](JsonWriter& w) {
        w.kv("oracle", "skipped (graph above the O(n^3) oracle cap)");
      };
    }
  }
  return rep;
}

RunReport run_aggregate(congest::Network& net, const SpanningTree& tree,
                        const scenario::Scenario& sc, const RunOptions& o) {
  FindShortcutParams params;
  params.seed = o.seed;
  PartAggregator agg(net, tree, sc.partition, params);
  const FindShortcutStats stats = agg.construction_stats();

  const std::int64_t before = net.total_rounds();
  const auto leaders = agg.leaders();
  const std::int64_t leader_rounds = net.total_rounds() - before;

  RunReport rep;
  rep.result = [stats, leader_rounds](JsonWriter& w) {
    w.kv("trials", stats.trials);
    w.kv("iterations", stats.iterations);
    w.kv("used_c", stats.used_c);
    w.kv("used_b", stats.used_b);
    w.kv("construction_rounds", stats.rounds);
    w.kv("leader_election_rounds", leader_rounds);
  };
  if (o.validate) {
    std::vector<NodeId> truth(static_cast<std::size_t>(sc.partition.num_parts),
                              kNoNode);
    for (NodeId v = 0; v < sc.graph.num_nodes(); ++v) {
      const PartId j = sc.partition.part(v);
      if (j == kNoPart) continue;
      auto& best = truth[static_cast<std::size_t>(j)];
      if (best == kNoNode || v < best) best = v;
    }
    bool ok = true;
    for (NodeId v = 0; v < sc.graph.num_nodes(); ++v) {
      const PartId j = sc.partition.part(v);
      if (j == kNoPart) continue;
      if (leaders[static_cast<std::size_t>(v)] !=
          truth[static_cast<std::size_t>(j)])
        ok = false;
    }
    rep.validated = true;
    rep.ok = ok;
    rep.validation = [ok](JsonWriter& w) {
      w.kv("oracle", "per-part minimum node id");
      w.kv("leaders_match", ok);
    };
  }
  return rep;
}

// --------------------------------------------------------------- shortcut --

/// Cold `--algo=shortcut` path: run the backend's construction and capture
/// everything the report needs into a record. The BFS tree has already been
/// built on `net` (its rounds are the setup accounting; centralized
/// backends consume no further engine rounds).
ShortcutRunRecord build_shortcut_record(congest::Network& net,
                                        const SpanningTree& bfs_tree,
                                        const scenario::Scenario& sc,
                                        const ShortcutCacheKey& key,
                                        const backend::Backend& be) {
  ShortcutRunRecord rec;
  rec.spec_hash = key.spec_hash;
  rec.partition_hash = key.partition_hash;
  rec.seed = key.seed;
  rec.backend = be.name;
  rec.setup_rounds = net.total_rounds();
  rec.setup_messages = net.total_messages();

  backend::BackendOutput out =
      be.construct({sc, net, bfs_tree, key.seed});
  rec.tree = std::move(out.tree);
  rec.shortcut = std::move(out.shortcut);
  rec.stats = out.find_stats;
  rec.backend_stats = std::move(out.stats);
  rec.algo_rounds = net.total_rounds() - rec.setup_rounds;
  rec.algo_messages = net.total_messages() - rec.setup_messages;
  for (const auto& [label, rounds] : net.charged_rounds())
    rec.charges.emplace_back(label, rounds);
  return rec;
}

/// Render path shared by cold and warm runs: everything below is a pure
/// function of the record and the scenario, so the response bytes cannot
/// depend on which path produced the record. The shared quality block
/// (congestion, block parameter, dilation estimate — plus the rounds and
/// messages appended by run_one) uses identical keys for every backend;
/// only the construction-specific prefix differs, so backend cells line up
/// in sweeps and the comparison table.
RunReport shortcut_report(const ShortcutRunRecord& rec,
                          const scenario::Scenario& sc, const RunOptions& o) {
  const FindShortcutStats stats = rec.stats;
  const std::int32_t cong = congestion(sc.graph, sc.partition, rec.shortcut);
  const std::int32_t block =
      block_parameter(sc.graph, sc.partition, rec.shortcut);
  const std::int32_t dil =
      dilation_estimate(sc.graph, sc.partition, rec.shortcut);
  const bool default_backend = rec.backend == backend::kDefaultBackend;
  const std::vector<std::pair<std::string, std::int64_t>> backend_stats =
      rec.backend_stats;

  RunReport rep;
  rep.result = [stats, cong, block, dil, default_backend,
                backend_stats](JsonWriter& w) {
    if (default_backend) {
      w.kv("trials", stats.trials);
      w.kv("iterations", stats.iterations);
      w.kv("used_c", stats.used_c);
      w.kv("used_b", stats.used_b);
    } else {
      for (const auto& [label, value] : backend_stats) w.kv(label, value);
    }
    w.kv("congestion", cong);
    w.kv("block_parameter", block);
    w.kv("dilation_estimate", dil);
  };
  if (o.validate) {
    bool ok = true;
    try {
      validate_shortcut(sc.graph, rec.tree, sc.partition, rec.shortcut);
    } catch (const CheckFailure&) {
      ok = false;
    }
    const std::int64_t lemma1 = lemma1_dilation_bound(rec.tree, block);
    const bool dil_ok = dil <= lemma1;
    rep.validated = true;
    rep.ok = ok && dil_ok;
    rep.validation = [ok, dil_ok, lemma1](JsonWriter& w) {
      w.kv("oracle", "validate_shortcut + Lemma 1 dilation bound");
      w.kv("well_formed", ok);
      w.kv("lemma1_bound", lemma1);
      w.kv("dilation_within_bound", dil_ok);
    };
  }
  return rep;
}

// ------------------------------------------------------------------ churn --

const char* verify_mode_name(dynamic::VerifyMode mode) {
  switch (mode) {
    case dynamic::VerifyMode::kEveryStep: return "step";
    case dynamic::VerifyMode::kSampled: return "sample";
    case dynamic::VerifyMode::kOff: return "off";
  }
  return "?";
}

void emit_quality(JsonWriter& w, const ForestQuality& q) {
  w.kv("congestion", q.congestion);
  w.kv("dilation", q.dilation);
  w.kv("product", q.product());
}

/// `--algo=churn`: resolve the base scenario, drive it through the verified
/// churn stream, and emit one report object with a per-checkpoint array.
/// The churn run itself is centralized (thread-invariant by construction);
/// under --validate the final snapshot is additionally solved by the
/// distributed engine (at --threads) and cross-checked against the
/// incrementally maintained forest, so the threads-1/2/4 golden gate
/// exercises a real engine run too.
int run_churn_cell(const RunOptions& o, const RunHooks& hooks, JsonWriter& w) {
  // lcs-lint: allow(D2) wall_ms report field: explicitly timed, stripped by --no-timing
  const auto t0 = std::chrono::steady_clock::now();

  // The wrapper spec and the --churn flag are two spellings of the same
  // thing; accept either, not both.
  dynamic::ChurnSpec churn;
  if (dynamic::is_churn_spec(o.scenario)) {
    LCS_CHECK(o.churn.empty(),
              "--churn and a churn: scenario wrapper are exclusive; put the "
              "parameters in one place");
    churn = dynamic::parse_churn_spec(o.scenario);
  } else {
    churn.base = o.scenario;
    if (!o.churn.empty()) churn.params = dynamic::parse_churn_params(o.churn);
  }
  const std::shared_ptr<const scenario::Scenario> sc_ptr =
      resolve_scenario(hooks, churn.base);
  const scenario::Scenario& sc = *sc_ptr;
  if (!o.save_graph_path.empty()) save_binary(sc.graph, o.save_graph_path);

  const dynamic::ChurnResult res =
      dynamic::run_churn(sc.graph, sc.partition.part_of, churn.params);

  // Engine cross-check: the distributed MST over the final snapshot must
  // reproduce the maintained forest (weight and exact edge set, matched by
  // sequence number through the snapshot's edge-id order).
  bool validated = false;
  bool ok = true;
  std::function<void(JsonWriter&)> validation;
  int engine_threads = -1;
  if (o.validate) {
    validated = true;
    const dynamic::DynamicGraph::Snapshot& snap = *res.final_snapshot;
    if (is_connected(snap.graph)) {
      congest::Network net(snap.graph);
      net.set_validate(true);
      net.set_threads(o.threads);
      if (o.parallel_threshold >= 0)
        net.set_parallel_round_threshold(o.parallel_threshold);
      const SpanningTree tree = build_bfs_tree(net, /*root=*/0);
      ShortcutMstOptions opts;
      opts.seed = o.seed;
      const DistributedMst mst = mst_boruvka_shortcut(net, tree, opts);
      engine_threads = net.threads();

      std::vector<std::uint64_t> engine_seqs;
      engine_seqs.reserve(mst.edges.size());
      for (const EdgeId e : mst.edges)
        engine_seqs.push_back(snap.seq[static_cast<std::size_t>(e)]);
      std::sort(engine_seqs.begin(), engine_seqs.end());
      // Snapshot edges are sorted by seq, so this is already sorted.
      std::vector<std::uint64_t> maintained_seqs;
      Weight maintained_weight = 0;
      for (std::size_t e = 0; e < snap.in_msf.size(); ++e) {
        if (!snap.in_msf[e]) continue;
        maintained_seqs.push_back(snap.seq[e]);
        maintained_weight += snap.graph.edge(util::checked_cast<EdgeId>(e)).w;
      }
      ok = mst.total_weight == maintained_weight &&
           engine_seqs == maintained_seqs;
      const Weight w_engine = mst.total_weight;
      const bool c_ok = ok;
      validation = [w_engine, maintained_weight, c_ok](JsonWriter& w) {
        w.kv("oracle", "distributed Boruvka MST over the final snapshot");
        w.kv("oracle_weight", w_engine);
        w.kv("maintained_weight", maintained_weight);
        w.kv("edges_match", c_ok);
      };
    } else {
      validation = [](JsonWriter& w) {
        w.kv("oracle",
             "skipped (final snapshot disconnected; per-checkpoint "
             "incremental-vs-oracle checks still ran)");
      };
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             // lcs-lint: allow(D2) wall_ms report field: explicitly timed
                             std::chrono::steady_clock::now() - t0)
                             .count();

  w.begin_object();
  w.kv("schema", std::int64_t{1});
  w.kv("algorithm", o.algo);

  w.key("scenario").begin_object();
  w.kv("spec", o.scenario);
  w.kv("family", "churn");
  w.key("base").begin_object();
  w.kv("spec", sc.spec);
  w.kv("family", sc.family);
  w.kv("nodes", sc.graph.num_nodes());
  w.kv("edges", sc.graph.num_edges());
  w.kv("total_weight", sc.graph.total_weight());
  w.kv("parts", sc.partition.num_parts);
  if (o.metrics) {
    w.kv("diameter_lb", diameter_double_sweep(sc.graph));
    w.kv("max_part_diameter", max_part_diameter(sc.graph, sc.partition));
  }
  w.end_object();
  w.end_object();

  w.key("config").begin_object();
  w.kv("seed", o.seed);
  w.kv("validate", o.validate);
  w.end_object();

  const dynamic::ChurnParams& p = churn.params;
  w.key("churn").begin_object();
  w.kv("steps", p.steps);
  w.kv("rate", p.rate);
  w.kv("dfrac", p.delete_frac);
  w.kv("seed", p.seed);
  w.kv("weight_lo", p.weight_lo);
  w.kv("weight_hi", p.weight_hi);
  w.kv("verify", verify_mode_name(p.verify));
  if (p.verify == dynamic::VerifyMode::kSampled)
    w.kv("vperiod", p.verify_period);
  w.kv("ops_per_step", res.ops_per_step);
  w.kv("skipped_inserts", res.skipped_inserts);
  w.kv("skipped_deletes", res.skipped_deletes);
  w.end_object();

  w.key("checkpoints").begin_array();
  for (const dynamic::ChurnCheckpoint& cp : res.checkpoints) {
    w.begin_object();
    w.kv("step", cp.step);
    w.kv("edges", cp.edges);
    w.kv("components", cp.components);
    w.kv("msf_weight", cp.msf_weight);
    w.kv("msf_edges", cp.msf_edges);
    w.key("quality").begin_object();
    w.key("maintained").begin_object();
    emit_quality(w, cp.maintained);
    w.end_object();
    w.key("fresh").begin_object();
    emit_quality(w, cp.fresh);
    w.end_object();
    w.end_object();
    w.key("counters").begin_object();
    w.kv("inserts", cp.counters.inserts);
    w.kv("deletes", cp.counters.deletes);
    w.kv("msf_grows", cp.counters.msf_grows);
    w.kv("msf_swaps", cp.counters.msf_swaps);
    w.kv("msf_replacements", cp.counters.msf_replacements);
    w.kv("msf_splits", cp.counters.msf_splits);
    w.kv("uf_rebuilds", cp.counters.uf_rebuilds);
    w.kv("uf_unions", cp.counters.uf_unions);
    w.end_object();
    w.kv("full_verifications", cp.full_verifications);
    w.end_object();
  }
  w.end_array();

  w.key("validation").begin_object();
  w.kv("checked", validated);
  if (validated) {
    w.kv("ok", ok);
    if (validation) validation(w);
  }
  w.end_object();

  if (o.timing) {
    w.key("timing").begin_object();
    if (engine_threads >= 0) w.kv("threads", engine_threads);
    w.kv("wall_ms", wall_ms);
    w.end_object();
  }
  w.end_object();

  if (validated && !ok) {
    std::cerr << "VALIDATION FAILED for --algo=churn --scenario=" << o.scenario
              << "\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------ sweep --

/// One `--sweep key=lo..hi[:steps|xfactor]` directive, expanded to the
/// integer value of `key` at every sweep point.
struct Sweep {
  std::string key;
  std::vector<std::int64_t> values;
};

/// Integer with an optional k/M/G decimal suffix ("250k" = 250000).
std::int64_t parse_scaled_int(std::string_view token, const char* what) {
  std::int64_t mult = 1;
  if (!token.empty()) {
    switch (token.back()) {
      case 'k': mult = 1'000; break;
      case 'M': mult = 1'000'000; break;
      case 'G': mult = 1'000'000'000; break;
      default: break;
    }
    if (mult != 1) token.remove_suffix(1);
  }
  std::int64_t out{};
  const auto res = std::from_chars(token.data(), token.data() + token.size(), out);
  LCS_CHECK(res.ec == std::errc() && res.ptr == token.data() + token.size(),
            std::string("--sweep: malformed ") + what + " '" +
                std::string(token) + "'");
  std::int64_t scaled{};
  LCS_CHECK(!__builtin_mul_overflow(out, mult, &scaled),
            std::string("--sweep: ") + what + " overflows 64 bits");
  return scaled;
}

Sweep parse_sweep(const std::string& directive) {
  const auto eq = directive.find('=');
  LCS_CHECK(eq != std::string::npos && eq > 0,
            "--sweep wants key=lo..hi[:steps|xfactor], got '" + directive + "'");
  Sweep sweep;
  sweep.key = directive.substr(0, eq);

  std::string_view rest = std::string_view(directive).substr(eq + 1);
  std::string_view step_spec = "x2";  // default: double per point
  if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
    step_spec = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  const auto dots = rest.find("..");
  LCS_CHECK(dots != std::string_view::npos,
            "--sweep range wants lo..hi, got '" + std::string(rest) + "'");
  const std::int64_t lo = parse_scaled_int(rest.substr(0, dots), "range start");
  const std::int64_t hi = parse_scaled_int(rest.substr(dots + 2), "range end");
  LCS_CHECK(lo >= 1 && lo <= hi, "--sweep range needs 1 <= lo <= hi");

  if (!step_spec.empty() && step_spec.front() == 'x') {
    // Geometric: lo, lo*f, lo*f^2, ... up to the last point <= hi.
    const std::string f_str(step_spec.substr(1));
    double factor{};
    const auto res = std::from_chars(f_str.data(), f_str.data() + f_str.size(),
                                     factor);
    LCS_CHECK(res.ec == std::errc() && res.ptr == f_str.data() + f_str.size() &&
                  factor > 1.0,
              "--sweep factor wants x<number greater than 1>, got 'x" + f_str +
                  "'");
    // Round each accumulated value before the range test so floating-point
    // drift (1M reached as 10^6 * (1 + 2^-52)) cannot drop the endpoint —
    // and a rounded point can never exceed the requested hi.
    std::int64_t iterations = 0;
    for (double v = static_cast<double>(lo);; v *= factor) {
      // A factor of 1 + epsilon would spin near-forever before the point
      // cap below could fire (adjacent duplicates are dropped), so bound
      // the raw iteration count too: 10^6 covers every factor down to
      // ~1.0001 across the whole 64-bit range.
      LCS_CHECK(++iterations <= 1'000'000,
                "--sweep factor is too close to 1 to terminate");
      if (!(v < 0x1p62)) break;  // llround stays defined; covers NaN/inf
      const std::int64_t point = std::llround(v);
      if (point > hi) break;
      if (sweep.values.empty() || point != sweep.values.back())
        sweep.values.push_back(point);
      LCS_CHECK(sweep.values.size() <= 10000,
                "--sweep expands to more than 10000 points; use a larger "
                "factor");
    }
  } else {
    // Linear: `steps` evenly spaced points from lo to hi inclusive.
    const std::int64_t steps = parse_scaled_int(step_spec, "step count");
    LCS_CHECK(steps >= 1 && (steps >= 2 || lo == hi),
              "--sweep wants at least 2 steps (or lo == hi)");
    LCS_CHECK(steps <= 10000, "--sweep wants at most 10000 points");
    for (std::int64_t i = 0; i < steps; ++i) {
      // 128-bit intermediate: (hi - lo) * i can exceed 64 bits even though
      // hi and lo individually fit.
      const std::int64_t point =
          steps == 1 ? lo
                     : lo + static_cast<std::int64_t>(
                                static_cast<__int128>(hi - lo) * i /
                                (steps - 1));
      if (sweep.values.empty() || point != sweep.values.back())
        sweep.values.push_back(point);
    }
  }
  return sweep;
}

/// Pre-expansion key check: a sweep over a key the scenario family never
/// reads must fail before any point is resolved — an N-point sweep of a
/// typo'd key would otherwise burn N generator runs to produce N copies of
/// the same unknown-parameter diagnosis (or, for a family that ignored the
/// key, N identical points presented as a scaling curve). Families that
/// did not declare their vocabulary (externally registered) skip the check
/// and fail at the first point as before.
void check_sweep_key(const std::string& spec, const std::string& key) {
  const scenario::Family* family =
      scenario::find_family(scenario::parse_spec(spec).family());
  if (family == nullptr) return;  // unknown family: diagnosed at resolution
  const std::vector<std::string> keys = scenario::accepted_param_keys(*family);
  if (keys.empty()) return;
  if (std::find(keys.begin(), keys.end(), key) != keys.end()) return;
  std::string msg = "--sweep key '" + key + "' is not a parameter of scenario family '" +
                    family->name + "' (accepted: ";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) msg += ", ";
    msg += keys[i];
  }
  msg += ")";
  LCS_CHECK(false, msg);
}

/// The scenario spec with parameter `key` set to `value`: an existing
/// `key=` token is replaced in place, otherwise the parameter is appended.
/// Purely textual so the family's own parser stays the single authority on
/// the vocabulary (an unknown key still fails loudly in make_scenario).
std::string spec_with_param(const std::string& spec, const std::string& key,
                            std::int64_t value) {
  const std::string assignment = key + "=" + std::to_string(value);
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return spec + ":" + assignment;

  std::string out = spec.substr(0, colon + 1);
  std::string_view rest = std::string_view(spec).substr(colon + 1);
  bool replaced = false;
  bool first = true;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                          : rest.substr(comma + 1);
    if (!first) out += ',';
    first = false;
    if (token.substr(0, key.size() + 1) == key + "=") {
      out += assignment;
      replaced = true;
    } else {
      out += token;
    }
  }
  if (!replaced) out += (first ? "" : ",") + assignment;
  return out;
}

/// Runs one (algo, scenario) cell and emits its report object into `w`.
/// Returns 0, or 1 when --validate found a mismatch.
int run_one(const RunOptions& o, const RunHooks& hooks, JsonWriter& w) {
  if (o.algo == "churn") return run_churn_cell(o, hooks, w);

  // lcs-lint: allow(D2) wall_ms report field: explicitly timed, stripped by --no-timing
  const auto t0 = std::chrono::steady_clock::now();
  const std::shared_ptr<const scenario::Scenario> sc_ptr =
      resolve_scenario(hooks, o.scenario);
  const scenario::Scenario& sc = *sc_ptr;
  if (!o.save_graph_path.empty()) save_binary(sc.graph, o.save_graph_path);

  // Engine accounting of the cell, normalized so the emission below cannot
  // tell where it came from: a live network, or a cached shortcut record.
  bool have_engine = false;
  std::int64_t setup_rounds = 0;
  std::int64_t setup_messages = 0;
  std::int64_t algo_rounds = 0;
  std::int64_t algo_messages = 0;
  std::vector<std::pair<std::string, std::int64_t>> charges;
  int engine_threads = WorkerPool::resolve_threads(o.threads);

  // `--algo=none` stops after scenario resolution: no engine, no BFS tree,
  // no algorithm — the report is just the scenario section. This is the
  // cheap probe for generator scaling studies (`--sweep` over n) and the
  // CI large-n generation smoke.
  std::optional<congest::Network> net;
  const auto make_net = [&] {
    net.emplace(sc.graph);
    net->set_validate(o.validate);
    net->set_threads(o.threads);
    if (o.parallel_threshold >= 0)
      net->set_parallel_round_threshold(o.parallel_threshold);
  };

  RunReport rep;
  const std::string backend_name =
      o.backend.empty() ? std::string(backend::kDefaultBackend) : o.backend;
  if (o.algo == "shortcut") {
    have_engine = true;
    const backend::Backend* be = backend::find_backend(backend_name);
    LCS_CHECK(be != nullptr, "unknown --backend '" + backend_name +
                                 "' (registered: " +
                                 backend::registered_backend_names() + ")");
    if (const std::string reason = be->applicable(sc); !reason.empty()) {
      std::string msg = "backend '" + backend_name +
                        "' is not applicable to scenario '" + sc.spec +
                        "': " + reason +
                        " (accepted backends for this scenario: ";
      bool first = true;
      for (const std::string& name : backend::applicable_backend_names(sc)) {
        if (!first) msg += ", ";
        msg += name;
        first = false;
      }
      msg += ")";
      LCS_CHECK(false, msg);
    }
    ShortcutCacheKey key;
    key.seed = o.seed;
    key.backend = backend_name;
    if (hooks.find_shortcut_record || hooks.store_shortcut_record) {
      key.spec_hash = spec_hash(sc.spec);
      key.partition_hash = partition_hash(sc.partition);
    }
    std::shared_ptr<const ShortcutRunRecord> record;
    if (hooks.find_shortcut_record)
      record = hooks.find_shortcut_record(key, sc);
    if (!record) {
      make_net();
      const SpanningTree tree = build_bfs_tree(*net, /*root=*/0);
      auto built = std::make_shared<ShortcutRunRecord>(
          build_shortcut_record(*net, tree, sc, key, *be));
      record = built;
      if (hooks.store_shortcut_record)
        hooks.store_shortcut_record(key, sc, record);
      engine_threads = net->threads();
    }
    rep = shortcut_report(*record, sc, o);
    setup_rounds = record->setup_rounds;
    setup_messages = record->setup_messages;
    algo_rounds = record->algo_rounds;
    algo_messages = record->algo_messages;
    charges = record->charges;
  } else if (o.algo != "none") {
    have_engine = true;
    make_net();
    const SpanningTree tree = build_bfs_tree(*net, /*root=*/0);
    setup_rounds = net->total_rounds();
    setup_messages = net->total_messages();

    if (o.algo == "components") rep = run_components(*net, tree, sc, o);
    else if (o.algo == "mst") rep = run_mst(*net, tree, sc, o);
    else if (o.algo == "mincut") rep = run_mincut(*net, tree, sc, o);
    else if (o.algo == "aggregate") rep = run_aggregate(*net, tree, sc, o);
    else LCS_CHECK(false, "unknown --algo '" + o.algo + "' (see --help)");

    algo_rounds = net->total_rounds() - setup_rounds;
    algo_messages = net->total_messages() - setup_messages;
    for (const auto& [label, rounds] : net->charged_rounds())
      charges.emplace_back(label, rounds);
    engine_threads = net->threads();
  }
  const double wall_ms =
      // lcs-lint: allow(D2) wall_ms report field: explicitly timed
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  w.begin_object();
  w.kv("schema", std::int64_t{1});
  w.kv("algorithm", o.algo);

  w.key("scenario").begin_object();
  w.kv("spec", sc.spec);
  w.kv("family", sc.family);
  w.kv("nodes", sc.graph.num_nodes());
  w.kv("edges", sc.graph.num_edges());
  w.kv("total_weight", sc.graph.total_weight());
  w.kv("parts", sc.partition.num_parts);
  // Both metrics below are BFS sweeps over the whole graph — priced like
  // the oracles, so large-n runs only pay for them on request.
  if (o.metrics) {
    w.kv("diameter_lb", diameter_double_sweep(sc.graph));
    w.kv("max_part_diameter", max_part_diameter(sc.graph, sc.partition));
  }
  w.end_object();

  w.key("config").begin_object();
  w.kv("seed", o.seed);
  // Only non-default backends mark the report: default-backend documents
  // stay byte-identical to the pre-registry pipeline (the golden contract).
  if (o.algo == "shortcut" && backend_name != backend::kDefaultBackend)
    w.kv("backend", backend_name);
  w.kv("validate", o.validate);
  if (o.algo == "components") w.kv("fail_rate", o.fail_rate);
  w.end_object();

  if (have_engine) {
    w.key("setup").begin_object();
    w.kv("rounds", setup_rounds);
    w.kv("messages", setup_messages);
    w.end_object();

    w.key("result").begin_object();
    rep.result(w);
    w.kv("rounds", algo_rounds);
    w.kv("messages", algo_messages);
    w.end_object();

    w.key("charges").begin_object();
    for (const auto& [label, rounds] : charges) w.kv(label, rounds);
    w.end_object();
  }

  w.key("validation").begin_object();
  w.kv("checked", rep.validated);
  if (rep.validated) {
    w.kv("ok", rep.ok);
    if (rep.validation) rep.validation(w);
  }
  w.end_object();

  if (o.timing) {
    w.key("timing").begin_object();
    if (have_engine) w.kv("threads", engine_threads);
    w.kv("wall_ms", wall_ms);
    w.end_object();
  }
  w.end_object();

  if (rep.validated && !rep.ok) {
    std::cerr << "VALIDATION FAILED for --algo=" << o.algo
              << " --scenario=" << o.scenario << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int run_document(const RunOptions& o, const RunHooks& hooks,
                 std::string& out) {
  LCS_CHECK(!o.scenario.empty(), "missing --scenario (see --help)");
  LCS_CHECK(!o.algo.empty(), "missing --algo (see --help)");
  LCS_CHECK(o.sweep.empty() || o.save_graph_path.empty(),
            "--save-graph with --sweep would overwrite the same path at "
            "every point; save single runs instead");
  LCS_CHECK(o.churn.empty() || o.algo == "churn",
            "--churn only applies to --algo=churn");
  LCS_CHECK(o.backend.empty() || o.algo == "shortcut",
            "--backend only applies to --algo=shortcut");
  LCS_CHECK(o.algo == "churn" || !dynamic::is_churn_spec(o.scenario),
            "a churn: scenario wrapper requires --algo=churn");
  LCS_CHECK(o.sweep.empty() || !dynamic::is_churn_spec(o.scenario),
            "--sweep cannot rewrite a churn: wrapper spec; pass the base "
            "spec via --scenario and the churn parameters via --churn");

  // Buffer the whole document and hand it back only once it is complete: a
  // failing run (bad spec, mid-sweep CheckFailure) must never leave partial
  // JSON in `out`.
  std::ostringstream buffer;
  JsonWriter w(buffer);

  int rc = 0;
  if (o.sweep.empty()) {
    rc = run_one(o, hooks, w);
  } else {
    // Sweep mode: one report object per point, collected into a single
    // array. Every point is an independent full run (fresh graph, network,
    // and seed), so each array element equals the report of the equivalent
    // single invocation.
    const Sweep sweep = parse_sweep(o.sweep);
    check_sweep_key(o.scenario, sweep.key);
    w.begin_array();
    for (const std::int64_t value : sweep.values) {
      RunOptions point = o;
      point.scenario = spec_with_param(o.scenario, sweep.key, value);
      rc = std::max(rc, run_one(point, hooks, w));
    }
    w.end_array();
  }
  w.finish();

  out += buffer.str();
  return rc;
}

std::string error_document(const char* type, const std::string& message,
                           int exit_code) {
  std::ostringstream buffer;
  JsonWriter w(buffer);
  w.begin_object();
  w.key("error").begin_object();
  w.kv("type", type);
  w.kv("message", message);
  w.kv("exit_code", static_cast<std::int64_t>(exit_code));
  w.end_object();
  w.end_object();
  w.finish();
  return buffer.str();
}

}  // namespace lcs::driver
