/// \file run_driver.h
/// The shared report core behind `lcs_run` and `lcs_serve`.
///
/// One function — `run_document` — turns a `RunOptions` (algo x scenario x
/// params, exactly the vocabulary of the `lcs_run` flags) into the complete
/// JSON report document. The one-shot CLI and the persistent daemon both
/// call it, so a served response is byte-identical to the equivalent
/// `lcs_run` invocation *by construction*: there is exactly one rendering
/// path, not two kept in sync. (The `timing` object is the one sanctioned
/// nondeterminism; `timing=false` suppresses it, and the byte-identity
/// gates compare with it off.)
///
/// ## Hooks
///
/// `RunHooks` lets a caller interpose caches on the two expensive stages of
/// a run; the defaults compute fresh, which is the plain `lcs_run` path.
///
///  * `resolve_scenario` — spec string to resolved scenario. The daemon
///    memoizes these (generators run once per spec, files parse once).
///  * `find_shortcut_record` / `store_shortcut_record` — constructed
///    shortcut structures plus their engine accounting, keyed by
///    `ShortcutCacheKey`. On a hit the engine is not instantiated at all:
///    congestion, block parameter, dilation, and the validation section are
///    recomputed from the cached structures (they are pure functions of
///    them), and the round/message/charge accounting comes from the record.
///    A cold `--algo=shortcut` run renders from the record it just built,
///    so warm and cold responses share every byte.
///
/// The cache key deliberately excludes `validate`: validation only *reads*
/// the structures (the engine's counters are unaffected by it), so one
/// record serves both settings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/persist.h"

namespace lcs::driver {

/// One run request: the `lcs_run` flag vocabulary as a struct. Field
/// semantics and defaults match the flags one-for-one (see lcs_run --help).
struct RunOptions {
  std::string algo;
  std::string scenario;
  std::string backend;          ///< shortcut backend; empty = "hiz16"
  std::string churn;            ///< churn parameters for algo "churn"
  std::string sweep;            ///< empty = single run
  std::string save_graph_path;  ///< empty = don't save
  int threads = 1;
  std::int64_t parallel_threshold = -1;  ///< engine default
  std::uint64_t seed = 1;
  double fail_rate = 0.25;  ///< components: failed-edge fraction
  bool validate = false;
  bool metrics = false;
  bool timing = true;
};

/// Key of a cached shortcut construction. Hash stability across processes
/// is part of the contract (see util/hash.h).
struct ShortcutCacheKey {
  std::uint64_t spec_hash = 0;
  std::uint64_t partition_hash = 0;
  std::uint64_t seed = 0;
  /// Resolved backend name ("hiz16" for requests that name none) — two
  /// backends on the same (spec, partition, seed) are distinct records.
  std::string backend;
};

/// FNV-1a of the spec string / the partition's canonical byte encoding.
std::uint64_t spec_hash(std::string_view spec);
std::uint64_t partition_hash(const Partition& p);

/// Cache interposition points; every hook is optional (see file comment).
struct RunHooks {
  std::function<std::shared_ptr<const scenario::Scenario>(
      const std::string& spec)>
      resolve_scenario;
  /// The scenario is passed alongside the key so a disk-backed cache can
  /// decode and verify a stored record against the graph it serves.
  std::function<std::shared_ptr<const ShortcutRunRecord>(
      const ShortcutCacheKey&, const scenario::Scenario&)>
      find_shortcut_record;
  std::function<void(const ShortcutCacheKey&, const scenario::Scenario&,
                     const std::shared_ptr<const ShortcutRunRecord>&)>
      store_shortcut_record;
};

/// Run the request and append the complete JSON document (trailing newline
/// included) to `out`. Returns 0, or 1 when `validate` found a mismatch
/// (the report then carries the failing validation section). Throws
/// CheckFailure / std::exception on user-input or I/O errors — render
/// those with `error_document` to keep the error bytes shared too.
int run_document(const RunOptions& options, const RunHooks& hooks,
                 std::string& out);

/// The canonical error report: {"error": {"type", "message", "exit_code"}}
/// plus trailing newline — the shape `lcs_run` has always emitted.
std::string error_document(const char* type, const std::string& message,
                           int exit_code);

}  // namespace lcs::driver
