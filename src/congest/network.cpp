#include "congest/network.h"

#include <algorithm>

#include "util/check.h"

namespace lcs::congest {

std::int64_t ChargeTable::at(std::string_view label) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), label,
      [](const Entry& a, std::string_view b) { return a.first < b; });
  LCS_CHECK(it != entries_.end() && it->first == label,
            "no rounds charged under this label");
  return it->second;
}

void ChargeTable::add(std::string_view label, std::int64_t rounds) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), label,
      [](const Entry& a, std::string_view b) { return a.first < b; });
  if (it != entries_.end() && it->first == label)
    it->second += rounds;
  else
    entries_.insert(it, Entry{std::string(label), rounds});
}

Network::Network(const Graph& graph) : graph_(&graph) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  // Stamps start below any tick the engine will ever produce, so every
  // stamp-guarded structure begins logically empty with no fills needed
  // (tick32() is never negative).
  node_state_.assign(n, NodeState{-1, 0});
  edge_dir_stamp_.assign(static_cast<std::size_t>(graph.num_edges()) * 2, -1);
  edge_ends_.reserve(static_cast<std::size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto& ed = graph.edge(e);
    edge_ends_.emplace_back(ed.u, ed.v);
  }
}

void Network::set_threads(int threads) {
  LCS_CHECK(threads >= 0, "thread count must be non-negative");
  threads_ = WorkerPool::resolve_threads(threads);
  if (threads_ <= 1) {
    pool_.reset();
    lanes_.clear();
    return;
  }
  if (!pool_ || pool_->size() != threads_)
    pool_ = std::make_unique<WorkerPool>(threads_);
  if (lanes_.size() != static_cast<std::size_t>(threads_))
    lanes_.resize(static_cast<std::size_t>(threads_));
}

void Network::do_send(NodeId from, EdgeId e, const Message& m,
                      std::span<const Graph::Neighbor> from_neighbors,
                      SendLane* lane) {
  // Resolve the destination. For low-degree senders, scan the sender's own
  // adjacency — the process just iterated it, so those lines are hot and
  // the cold random load of edge_ends_[e] is skipped; high-degree senders
  // (hubs) take the O(1) lookup instead of an O(deg) scan.
  NodeId to = kNoNode;
  if (from_neighbors.size() <= 16) {
    for (const auto& nb : from_neighbors) {
      if (nb.edge == e) {
        to = nb.node;
        break;
      }
    }
    if (to == kNoNode) {
      // `e` is not incident to the sender (or out of range): diagnose in
      // validate mode, otherwise fall through to the blind lookup exactly
      // like the high-degree path.
      if (validate_) {
        LCS_CHECK(e >= 0 && e < graph_->num_edges(), "edge id out of range");
        LCS_CHECK(false, "process tried to send over a non-incident edge");
      }
      const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
      to = u == from ? v : u;
    }
  } else {
    if (validate_) {
      LCS_CHECK(e >= 0 && e < graph_->num_edges(), "edge id out of range");
      const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
      LCS_CHECK(u == from || v == from,
                "process tried to send over a non-incident edge");
    }
    const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
    to = u == from ? v : u;
  }
  if (lane != nullptr) {
    // Parallel worker: append to the private lane and return. The
    // double-send check and the per-destination accounting mutate shared
    // state, so they are deferred to merge_lanes(), which replays the
    // lanes on one thread in the sequential engine's send order.
    lane->fill.push_back(Incoming{from, e, m});
    lane->fill_to.push_back(to);
    return;
  }

  if (validate_) {
    const std::size_t dir =
        static_cast<std::size_t>(e) * 2 +
        (from == edge_ends_[static_cast<std::size_t>(e)].first ? 0 : 1);
    LCS_CHECK(edge_dir_stamp_[dir] != tick_,
              "CONGEST violation: two sends over one edge in one round");
    edge_dir_stamp_[dir] = tick_;
  }

  slab_fill_.push_back(Incoming{from, e, m});
  slab_fill_to_.push_back(to);

  NodeState& st = node_state_[static_cast<std::size_t>(to)];
  const std::int32_t now = tick32();
  if (st.stamp != now) {
    st.stamp = now;
    st.count = 1;
    next_active_.push_back(to);
  } else {
    ++st.count;
  }
}

void Network::do_wake(NodeId v, SendLane* lane) {
  if (lane != nullptr) {
    lane->wakes.push_back(v);
    return;
  }
  NodeState& st = node_state_[static_cast<std::size_t>(v)];
  const std::int32_t now = tick32();
  if (st.stamp != now) {
    st.stamp = now;
    st.count = 0;
    next_active_.push_back(v);
  }
}

void Network::advance_tick() {
  ++tick_;
  if (tick32() == 0) {
    // 31-bit stamp wrap (once per ~2 billion rounds): a stale stamp could
    // now alias a future tick, so pay one O(n) refill and skip tick32 0.
    for (NodeState& st : node_state_) st.stamp = -1;
    ++tick_;
  }
}

void Network::sort_active(std::vector<NodeId>& a) {
  const std::size_t size = a.size();
  if (size < 2) return;
  if (size <= 64) {  // insertion sort beats radix setup at this scale
    for (std::size_t i = 1; i < size; ++i) {
      const NodeId key = a[i];
      std::size_t j = i;
      for (; j > 0 && a[j - 1] > key; --j) a[j] = a[j - 1];
      a[j] = key;
    }
    return;
  }

  // LSD radix sort, one byte per pass. Node ids are dense non-negative
  // ints, so passes whose byte is constant across all keys (typically the
  // high bytes) are detected from the histograms and skipped.
  constexpr int kBytes = sizeof(NodeId);
  std::size_t hist[kBytes][256] = {};
  for (const NodeId id : a) {
    const auto key = static_cast<std::uint32_t>(id);
    for (int b = 0; b < kBytes; ++b) ++hist[b][(key >> (8 * b)) & 0xff];
  }
  radix_scratch_.resize(size);
  NodeId* src = a.data();
  NodeId* dst = radix_scratch_.data();
  for (int b = 0; b < kBytes; ++b) {
    auto& h = hist[b];
    const std::size_t first = (static_cast<std::uint32_t>(src[0]) >> (8 * b)) & 0xff;
    if (h[first] == size) continue;  // all keys share this byte
    std::size_t offset = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      const std::size_t count = h[bucket];
      h[bucket] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < size; ++i) {
      const auto key = static_cast<std::uint32_t>(src[i]);
      dst[h[(key >> (8 * b)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != a.data()) std::copy(src, src + size, a.data());
}

void Network::build_spans(std::size_t nmsg) {
  // Inbox spans from the per-node message counts (prefix sum over the
  // sorted active list); `NodeState::count` doubles as the scatter's
  // write cursor.
  spans_.resize(active_.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (i + 16 < active_.size())
      __builtin_prefetch(
          &node_state_[static_cast<std::size_t>(active_[i + 16])], 1);
    NodeState& st = node_state_[static_cast<std::size_t>(active_[i])];
    spans_[i] = InboxSpan{static_cast<std::int32_t>(total), st.count};
    st.count = static_cast<std::int32_t>(total);  // scatter write cursor
    total += spans_[i].count;
  }
  LCS_CHECK(total == static_cast<std::int64_t>(nmsg),
            "inbox accounting out of sync");

  // Grow-only: the ordered arena is fully overwritten up to `nmsg` by the
  // scatter, so shrinking (and re-initializing on regrowth) would be pure
  // waste.
  if (slab_ordered_.size() < nmsg) slab_ordered_.resize(nmsg);
}

void Network::scatter_block(const Incoming* fill, const NodeId* fill_to,
                            std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    // Two-stage prefetch pipeline over the pass's only cold lines: the
    // per-destination cursor (64 ahead), then the store target it points
    // at (24 ahead; a stale cursor there only weakens the hint).
    if (i + 64 < count)
      __builtin_prefetch(
          &node_state_[static_cast<std::size_t>(fill_to[i + 64])], 1);
    if (i + 24 < count)
      __builtin_prefetch(
          &slab_ordered_[static_cast<std::size_t>(
              node_state_[static_cast<std::size_t>(fill_to[i + 24])].count)],
          1);
    NodeState& st = node_state_[static_cast<std::size_t>(fill_to[i])];
    slab_ordered_[static_cast<std::size_t>(st.count++)] = fill[i];
  }
}

const Incoming* Network::cursor_scatter(std::size_t nmsg) {
  build_spans(nmsg);
  scatter_block(slab_fill_.data(), slab_fill_to_.data(), nmsg);
  return slab_ordered_.data();
}

const Incoming* Network::scatter_lanes(std::size_t nmsg) {
  build_spans(nmsg);
  for (SendLane& lane : lanes_)
    scatter_block(lane.fill.data(), lane.fill_to.data(), lane.fill.size());
  return slab_ordered_.data();
}

void Network::merge_lanes() {
  // Replay every lane into the shared per-node state exactly as the
  // sequential send path would have. Lanes are walked in worker order and
  // each in insertion order; workers own contiguous ascending shards of
  // the active list, so this concatenation *is* the sequential engine's
  // send order — counts, the next-active set, and the double-send
  // diagnostics all come out bit-identical. Wakeups are replayed after a
  // lane's sends, which is order-insensitive: a wakeup only stamps a node
  // with count 0 when nothing stamped it yet, and never changes the count
  // otherwise.
  const std::int32_t now = tick32();
  for (SendLane& lane : lanes_) {
    const std::size_t nmsg = lane.fill.size();
    const Incoming* fill = lane.fill.data();
    const NodeId* fill_to = lane.fill_to.data();
    for (std::size_t i = 0; i < nmsg; ++i) {
      if (validate_) {
        const Incoming& in = fill[i];
        const std::size_t dir =
            static_cast<std::size_t>(in.edge) * 2 +
            (in.from == edge_ends_[static_cast<std::size_t>(in.edge)].first
                 ? 0
                 : 1);
        LCS_CHECK(edge_dir_stamp_[dir] != tick_,
                  "CONGEST violation: two sends over one edge in one round");
        edge_dir_stamp_[dir] = tick_;
      }
      const NodeId to = fill_to[i];
      NodeState& st = node_state_[static_cast<std::size_t>(to)];
      if (st.stamp != now) {
        st.stamp = now;
        st.count = 1;
        next_active_.push_back(to);
      } else {
        ++st.count;
      }
    }
    for (const NodeId v : lane.wakes) {
      NodeState& st = node_state_[static_cast<std::size_t>(v)];
      if (st.stamp != now) {
        st.stamp = now;
        st.count = 0;
        next_active_.push_back(v);
      }
    }
  }
}

void Network::deliver_parallel(std::span<Process* const> procs,
                               const Incoming* ordered, std::int64_t round) {
  // Contiguous weight-balanced shards of the sorted active list: worker w
  // processes active_[bounds[w], bounds[w+1]). Weight = inbox size plus a
  // constant per activation, so message-heavy and wakeup-heavy rounds
  // both split evenly. Bounds depend only on deterministic per-round
  // state, so lane contents — and hence the merge order — are
  // reproducible at any thread count.
  constexpr std::int64_t kActivationWeight = 4;
  const std::size_t nactive = active_.size();
  const auto k = static_cast<std::size_t>(threads_);
  shard_bounds_.assign(k + 1, nactive);
  shard_bounds_[0] = 0;
  std::int64_t total_weight = 0;
  for (std::size_t i = 0; i < nactive; ++i)
    total_weight += spans_[i].count + kActivationWeight;
  std::int64_t acc = 0;
  for (std::size_t i = 0, w = 1; i < nactive && w < k; ++i) {
    acc += spans_[i].count + kActivationWeight;
    while (w < k && acc >= total_weight * static_cast<std::int64_t>(w) /
                               static_cast<std::int64_t>(k))
      shard_bounds_[w++] = i + 1;
  }

  const NodeId num_nodes = graph_->num_nodes();
  pool_->run([&](int worker) {
    const auto uw = static_cast<std::size_t>(worker);
    SendLane* lane = &lanes_[uw];
    for (std::size_t i = shard_bounds_[uw]; i < shard_bounds_[uw + 1]; ++i) {
      const NodeId v = active_[i];
      const auto nbrs = graph_->neighbors(v);
      Context ctx(*this, v, num_nodes, round, nbrs, lane);
      procs[static_cast<std::size_t>(v)]->on_round(
          ctx, {ordered + spans_[i].start,
                static_cast<std::size_t>(spans_[i].count)});
    }
  });
}

PhaseStats Network::run(std::span<Process* const> procs,
                        std::int64_t max_rounds) {
  LCS_CHECK(procs.size() == static_cast<std::size_t>(graph_->num_nodes()),
            "one process per node required");

  // Phase startup is O(active): a previous clean phase ends quiescent
  // (nothing in flight), an aborted one leaves only these containers
  // non-empty — stamp-guarded state needs no reset either way because the
  // tick advances past every stamp an earlier phase wrote.
  slab_fill_.clear();
  slab_fill_to_.clear();
  for (SendLane& lane : lanes_) lane.clear();
  next_active_.clear();
  active_.clear();
  phase_messages_ = 0;
  advance_tick();

  const bool parallel = threads_ > 1;
  const NodeId num_nodes = graph_->num_nodes();

  // Round -1: on_start for every node (sends arrive in round 0). In
  // parallel mode the nodes are sharded evenly; each worker's lane is
  // merged afterwards, exactly like a delivery round's.
  if (!parallel) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      Context ctx(*this, v, num_nodes, -1, graph_->neighbors(v));
      procs[static_cast<std::size_t>(v)]->on_start(ctx);
    }
  } else {
    const auto n = static_cast<std::size_t>(num_nodes);
    const auto k = static_cast<std::size_t>(threads_);
    pool_->run([&](int worker) {
      const auto uw = static_cast<std::size_t>(worker);
      SendLane* lane = &lanes_[uw];
      const std::size_t lo = n * uw / k;
      const std::size_t hi = n * (uw + 1) / k;
      for (std::size_t i = lo; i < hi; ++i) {
        const auto v = static_cast<NodeId>(i);
        Context ctx(*this, v, num_nodes, -1, graph_->neighbors(v), lane);
        procs[i]->on_start(ctx);
      }
    });
    merge_lanes();
  }

  std::int64_t round = 0;
  while (!next_active_.empty()) {
    LCS_CHECK(round < max_rounds,
              "phase exceeded max_rounds without quiescing");

    // Promote next-round state to current: order this round's deliveries
    // destination-major in ascending node order (the engine's
    // deterministic processing order), send-ordered within each
    // destination, so each inbox span reads exactly like the per-node
    // vector of the historical engine.
    active_.swap(next_active_);
    next_active_.clear();
    sort_active(active_);  // deterministic ascending order
    std::size_t nmsg = 0;
    if (parallel) {
      for (const SendLane& lane : lanes_) nmsg += lane.fill.size();
    } else {
      nmsg = slab_fill_.size();
    }
    LCS_CHECK(static_cast<std::int64_t>(nmsg) <= INT32_MAX,
              "more than 2^31 messages in one round");
    phase_messages_ += static_cast<std::int64_t>(nmsg);
    const Incoming* ordered =
        parallel ? scatter_lanes(nmsg) : cursor_scatter(nmsg);
    if (parallel) {
      for (SendLane& lane : lanes_) lane.clear();
    } else {
      slab_fill_.clear();
      slab_fill_to_.clear();
    }
    advance_tick();  // this round's sends stamp separately from deliveries

    if (!parallel) {
      for (std::size_t i = 0; i < active_.size(); ++i) {
        const NodeId v = active_[i];
        const auto nbrs = graph_->neighbors(v);
        Context ctx(*this, v, num_nodes, round, nbrs);
        procs[static_cast<std::size_t>(v)]->on_round(
            ctx, {ordered + spans_[i].start,
                  static_cast<std::size_t>(spans_[i].count)});
      }
    } else {
      deliver_parallel(procs, ordered, round);
      merge_lanes();
    }
    ++round;
  }

  const PhaseStats stats{round, phase_messages_};
  total_rounds_ += stats.rounds;
  total_messages_ += stats.messages;
  return stats;
}

void Network::charge(std::int64_t rounds, const std::string& label) {
  LCS_CHECK(rounds >= 0, "cannot charge negative rounds");
  total_rounds_ += rounds;
  charged_.add(label, rounds);
}

void Network::reset_accounting() {
  total_rounds_ = 0;
  total_messages_ = 0;
  charged_.clear();
}

}  // namespace lcs::congest
