#include "congest/network.h"

#include <algorithm>

#include "util/check.h"

namespace lcs::congest {

void Context::send(EdgeId e, const Message& m) {
  net_.do_send(id_, e, m, round_);
}

void Context::wake_next_round() { net_.do_wake(id_); }

Network::Network(const Graph& graph) : graph_(&graph) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  inbox_.resize(n);
  next_inbox_.resize(n);
  in_next_active_.assign(n, false);
  edge_dir_last_send_.assign(static_cast<std::size_t>(graph.num_edges()) * 2,
                             -2);
}

void Network::do_send(NodeId from, EdgeId e, const Message& m,
                      std::int64_t round) {
  const auto& ed = graph_->edge(e);
  LCS_CHECK(ed.u == from || ed.v == from,
            "process tried to send over a non-incident edge");
  const NodeId to = ed.u == from ? ed.v : ed.u;
  const std::size_t dir =
      static_cast<std::size_t>(e) * 2 + (from == ed.u ? 0 : 1);
  LCS_CHECK(edge_dir_last_send_[dir] != round,
            "CONGEST violation: two sends over one edge in one round");
  edge_dir_last_send_[dir] = round;

  auto& box = next_inbox_[static_cast<std::size_t>(to)];
  box.push_back(Incoming{from, e, m});
  ++phase_messages_;
  if (!in_next_active_[static_cast<std::size_t>(to)]) {
    in_next_active_[static_cast<std::size_t>(to)] = true;
    next_active_.push_back(to);
  }
}

void Network::do_wake(NodeId v) {
  if (!in_next_active_[static_cast<std::size_t>(v)]) {
    in_next_active_[static_cast<std::size_t>(v)] = true;
    next_active_.push_back(v);
  }
}

PhaseStats Network::run(std::span<Process* const> procs,
                        std::int64_t max_rounds) {
  LCS_CHECK(procs.size() == static_cast<std::size_t>(graph_->num_nodes()),
            "one process per node required");

  // Reset transient state.
  for (auto& box : inbox_) box.clear();
  for (auto& box : next_inbox_) box.clear();
  std::fill(in_next_active_.begin(), in_next_active_.end(), false);
  next_active_.clear();
  std::fill(edge_dir_last_send_.begin(), edge_dir_last_send_.end(), -2);
  phase_messages_ = 0;

  // Round -1: on_start for every node (sends arrive in round 0).
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    Context ctx(*this, v, graph_->num_nodes(), -1, graph_->neighbors(v));
    procs[static_cast<std::size_t>(v)]->on_start(ctx);
  }

  std::int64_t round = 0;
  std::vector<NodeId> active;
  while (!next_active_.empty()) {
    LCS_CHECK(round < max_rounds,
              "phase exceeded max_rounds without quiescing");

    // Promote next-round state to current.
    active.swap(next_active_);
    next_active_.clear();
    std::sort(active.begin(), active.end());  // deterministic order
    for (const NodeId v : active) {
      inbox_[static_cast<std::size_t>(v)].swap(
          next_inbox_[static_cast<std::size_t>(v)]);
      next_inbox_[static_cast<std::size_t>(v)].clear();
      in_next_active_[static_cast<std::size_t>(v)] = false;
    }

    for (const NodeId v : active) {
      Context ctx(*this, v, graph_->num_nodes(), round, graph_->neighbors(v));
      procs[static_cast<std::size_t>(v)]->on_round(
          ctx, inbox_[static_cast<std::size_t>(v)]);
      inbox_[static_cast<std::size_t>(v)].clear();
    }
    ++round;
  }

  const PhaseStats stats{round, phase_messages_};
  total_rounds_ += stats.rounds;
  total_messages_ += stats.messages;
  return stats;
}

void Network::charge(std::int64_t rounds, const std::string& label) {
  LCS_CHECK(rounds >= 0, "cannot charge negative rounds");
  total_rounds_ += rounds;
  charged_[label] += rounds;
}

void Network::reset_accounting() {
  total_rounds_ = 0;
  total_messages_ = 0;
  charged_.clear();
}

}  // namespace lcs::congest
