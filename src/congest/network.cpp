#include "congest/network.h"

#include <algorithm>

#include "congest/message.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/worker_pool.h"

namespace lcs::congest {

std::int64_t ChargeTable::at(std::string_view label) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), label,
      [](const Entry& a, std::string_view b) { return a.first < b; });
  LCS_CHECK(it != entries_.end() && it->first == label,
            "no rounds charged under this label");
  return it->second;
}

void ChargeTable::add(std::string_view label, std::int64_t rounds) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), label,
      [](const Entry& a, std::string_view b) { return a.first < b; });
  if (it != entries_.end() && it->first == label)
    it->second += rounds;
  else
    entries_.insert(it, Entry{std::string(label), rounds});
}

Network::Network(const Graph& graph) : graph_(&graph) {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  // Stamps start below any tick the engine will ever produce, so every
  // stamp-guarded structure begins logically empty with no fills needed
  // (tick32() is never negative).
  node_state_.assign(n, NodeState{-1, 0});
  edge_dir_stamp_.assign(static_cast<std::size_t>(graph.num_edges()) * 2, -1);
  edge_ends_.reserve(static_cast<std::size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto& ed = graph.edge(e);
    edge_ends_.emplace_back(ed.u, ed.v);
  }
}

void Network::set_threads(int threads) {
  LCS_CHECK(threads >= 0, "thread count must be non-negative");
  LCS_CHECK(!in_phase_,
            "set_threads may not be called while a phase is running (e.g. "
            "from a process callback): it resizes live round state");
  threads_ = WorkerPool::resolve_threads(threads);
  if (threads_ <= 1) {
    pool_.reset();
    lanes_.clear();
    merge_next_.clear();
    range_sort_scratch_.clear();
    range_shift_ = 0;
    num_ranges_ = 1;
    return;
  }
  if (!pool_ || pool_->size() != threads_)
    pool_ = std::make_unique<WorkerPool>(threads_);
  compute_range_layout();
  if (lanes_.size() != static_cast<std::size_t>(threads_))
    lanes_.resize(static_cast<std::size_t>(threads_));
  for (SendLane& lane : lanes_)
    if (lane.buckets.size() != static_cast<std::size_t>(num_ranges_))
      lane.buckets.resize(static_cast<std::size_t>(num_ranges_));
  merge_next_.resize(static_cast<std::size_t>(num_ranges_));
  range_sort_scratch_.resize(static_cast<std::size_t>(num_ranges_));
}

void Network::set_parallel_round_threshold(std::int64_t work) {
  LCS_CHECK(work >= 0, "threshold must be non-negative");
  LCS_CHECK(!in_phase_,
            "set_parallel_round_threshold may not be called while a phase "
            "is running");
  parallel_threshold_ = work;
}

void Network::compute_range_layout() {
  // Ranges are power-of-two spans of the id space so range_of is a single
  // shift in the send path: the span is the smallest power of two >=
  // ceil(n / threads), giving between threads/2 and threads ranges.
  const std::int64_t n = graph_->num_nodes();
  const std::int64_t k = threads_;
  const std::int64_t per = n <= 0 ? 1 : (n + k - 1) / k;
  int shift = 0;
  while ((std::int64_t{1} << shift) < per) ++shift;
  range_shift_ = shift;
  num_ranges_ = n <= 1 ? 1 : util::checked_cast<int>(((n - 1) >> shift) + 1);
}

void Network::do_send(NodeId from, EdgeId e, const Message& m,
                      std::span<const Graph::Neighbor> from_neighbors,
                      SendLane* lane) {
  // Resolve the destination. For low-degree senders, scan the sender's own
  // adjacency — the process just iterated it, so those lines are hot and
  // the cold random load of edge_ends_[e] is skipped; high-degree senders
  // (hubs) take the O(1) lookup instead of an O(deg) scan.
  NodeId to = kNoNode;
  if (from_neighbors.size() <= 16) {
    for (const auto& nb : from_neighbors) {
      if (nb.edge == e) {
        to = nb.node;
        break;
      }
    }
    if (to == kNoNode) {
      // `e` is not incident to the sender (or out of range): diagnose in
      // validate mode, otherwise fall through to the blind lookup exactly
      // like the high-degree path.
      if (validate_) {
        LCS_CHECK(e >= 0 && e < graph_->num_edges(), "edge id out of range");
        LCS_CHECK(false, "process tried to send over a non-incident edge");
      }
      const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
      to = u == from ? v : u;
    }
  } else {
    if (validate_) {
      LCS_CHECK(e >= 0 && e < graph_->num_edges(), "edge id out of range");
      const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
      LCS_CHECK(u == from || v == from,
                "process tried to send over a non-incident edge");
    }
    const auto& [u, v] = edge_ends_[static_cast<std::size_t>(e)];
    to = u == from ? v : u;
  }
  if (lane != nullptr) {
    // Parallel worker: append to the private lane's destination-range
    // bucket and return. The double-send check and the per-destination
    // accounting mutate shared state, so they are deferred to the merge
    // stage, where each destination range is replayed by exactly one
    // worker in the sequential engine's send order.
    LaneBucket& b = lane->buckets[static_cast<std::size_t>(range_of(to))];
    b.fill.push_back(Incoming{from, e, m});
    b.fill_to.push_back(to);
    return;
  }

  if (validate_) {
    const std::size_t dir =
        static_cast<std::size_t>(e) * 2 +
        (from == edge_ends_[static_cast<std::size_t>(e)].first ? 0 : 1);
    LCS_CHECK(edge_dir_stamp_[dir] != tick_,
              "CONGEST violation: two sends over one edge in one round");
    edge_dir_stamp_[dir] = tick_;
  }

  slab_fill_.push_back(Incoming{from, e, m});
  slab_fill_to_.push_back(to);
  count_message_to(to, tick32(), next_active_);
}

void Network::do_wake(NodeId v, SendLane* lane) {
  if (lane != nullptr) {
    lane->buckets[static_cast<std::size_t>(range_of(v))].wakes.push_back(v);
    return;
  }
  NodeState& st = node_state_[static_cast<std::size_t>(v)];
  const std::int32_t now = tick32();
  if (st.stamp != now) {
    st.stamp = now;
    st.count = 0;
    next_active_.push_back(v);
  }
}

void Network::advance_tick() {
  ++tick_;
  if (tick32() == 0) {
    // 31-bit stamp wrap (once per ~2 billion rounds): a stale stamp could
    // now alias a future tick, so pay one O(n) refill and skip tick32 0.
    for (NodeState& st : node_state_) st.stamp = -1;
    ++tick_;
  }
}

void Network::sort_active(std::vector<NodeId>& a) {
  sort_ids(a.data(), a.size(), radix_scratch_);
}

void Network::sort_ids(NodeId* data, std::size_t size,
                       std::vector<NodeId>& scratch) {
  if (size < 2) return;
  if (size <= 64) {  // insertion sort beats radix setup at this scale
    for (std::size_t i = 1; i < size; ++i) {
      const NodeId key = data[i];
      std::size_t j = i;
      for (; j > 0 && data[j - 1] > key; --j) data[j] = data[j - 1];
      data[j] = key;
    }
    return;
  }

  // LSD radix sort, one byte per pass. Node ids are dense non-negative
  // ints, so passes whose byte is constant across all keys (typically the
  // high bytes) are detected from the histograms and skipped.
  constexpr int kBytes = sizeof(NodeId);
  std::size_t hist[kBytes][256] = {};
  for (std::size_t i = 0; i < size; ++i) {
    const auto key = util::checked_cast<std::uint32_t>(data[i]);
    for (int b = 0; b < kBytes; ++b) ++hist[b][(key >> (8 * b)) & 0xff];
  }
  scratch.resize(size);
  NodeId* src = data;
  NodeId* dst = scratch.data();
  for (int b = 0; b < kBytes; ++b) {
    auto& h = hist[b];
    const std::size_t first = (util::checked_cast<std::uint32_t>(src[0]) >> (8 * b)) & 0xff;
    if (h[first] == size) continue;  // all keys share this byte
    std::size_t offset = 0;
    for (std::size_t bucket = 0; bucket < 256; ++bucket) {
      const std::size_t count = h[bucket];
      h[bucket] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < size; ++i) {
      const auto key = util::checked_cast<std::uint32_t>(src[i]);
      dst[h[(key >> (8 * b)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + size, data);
}

void Network::build_spans(std::size_t nmsg) {
  // Inbox spans from the per-node message counts (prefix sum over the
  // sorted active list); `NodeState::count` doubles as the scatter's
  // write cursor.
  spans_.resize(active_.size());
  const std::int64_t total = build_spans_segment(0, active_.size(), 0);
  LCS_CHECK(total == static_cast<std::int64_t>(nmsg),
            "inbox accounting out of sync");

  // Grow-only: the ordered arena is fully overwritten up to `nmsg` by the
  // scatter, so shrinking (and re-initializing on regrowth) would be pure
  // waste.
  if (slab_ordered_.size() < nmsg) slab_ordered_.resize(nmsg);
}

std::int64_t Network::build_spans_segment(std::size_t lo, std::size_t hi,
                                          std::int64_t base) {
  std::int64_t total = base;
  for (std::size_t i = lo; i < hi; ++i) {
    if (i + 16 < hi)
      __builtin_prefetch(
          &node_state_[static_cast<std::size_t>(active_[i + 16])], 1);
    NodeState& st = node_state_[static_cast<std::size_t>(active_[i])];
    spans_[i] = InboxSpan{util::checked_cast<std::int32_t>(total), st.count};
    st.count = util::checked_cast<std::int32_t>(total);  // scatter write cursor
    total += spans_[i].count;
  }
  return total;
}

void Network::scatter_block(const Incoming* fill, const NodeId* fill_to,
                            std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    // Two-stage prefetch pipeline over the pass's only cold lines: the
    // per-destination cursor (64 ahead), then the store target it points
    // at (24 ahead; a stale cursor there only weakens the hint).
    if (i + 64 < count)
      __builtin_prefetch(
          &node_state_[static_cast<std::size_t>(fill_to[i + 64])], 1);
    if (i + 24 < count)
      __builtin_prefetch(
          &slab_ordered_[static_cast<std::size_t>(
              node_state_[static_cast<std::size_t>(fill_to[i + 24])].count)],
          1);
    NodeState& st = node_state_[static_cast<std::size_t>(fill_to[i])];
    slab_ordered_[static_cast<std::size_t>(st.count++)] = fill[i];
  }
}

const Incoming* Network::cursor_scatter(std::size_t nmsg) {
  build_spans(nmsg);
  scatter_block(slab_fill_.data(), slab_fill_to_.data(), nmsg);
  return slab_ordered_.data();
}

const Incoming* Network::scatter_lanes_sequential(std::size_t nmsg) {
  // Sequential fallback for a small round whose sends live in the lanes:
  // per destination range, scatter its buckets in lane order — the
  // sequential fill order restricted to that range, so every inbox comes
  // out in the sequential engine's delivery order (ranges are disjoint
  // destination sets, so the range iteration order is immaterial).
  build_spans(nmsg);
  for (int r = 0; r < num_ranges_; ++r) {
    for (SendLane& lane : lanes_) {
      LaneBucket& b = lane.buckets[static_cast<std::size_t>(r)];
      scatter_block(b.fill.data(), b.fill_to.data(), b.fill.size());
      b.clear();
    }
  }
  return slab_ordered_.data();
}

const Incoming* Network::promote_parallel(std::size_t nmsg) {
  // Exclusive per-range slab offsets: prefix sums of the (worker, range)
  // bucket sizes — the count arrays the workers built for free during the
  // round. Everything O(messages) below runs on the pool; only this
  // O(threads * ranges) scan is serial.
  range_msg_base_.assign(static_cast<std::size_t>(num_ranges_) + 1, 0);
  for (const SendLane& lane : lanes_)
    for (int r = 0; r < num_ranges_; ++r)
      range_msg_base_[static_cast<std::size_t>(r) + 1] +=
          static_cast<std::int64_t>(
              lane.buckets[static_cast<std::size_t>(r)].fill.size());
  for (int r = 0; r < num_ranges_; ++r)
    range_msg_base_[static_cast<std::size_t>(r) + 1] +=
        range_msg_base_[static_cast<std::size_t>(r)];
  LCS_CHECK(range_msg_base_[static_cast<std::size_t>(num_ranges_)] ==
                static_cast<std::int64_t>(nmsg),
            "inbox accounting out of sync");

  spans_.resize(active_.size());
  if (slab_ordered_.size() < nmsg) slab_ordered_.resize(nmsg);

  pool_->run([&](int r) {
    if (r >= num_ranges_) return;
    const auto ur = static_cast<std::size_t>(r);
    // Worker r owns destination range r end to end: its segment of the
    // active list (recorded by the merge that built this round's active
    // set), its slice [base, base') of the ordered slab, and its buckets.
    const std::size_t lo = range_active_bounds_[ur];
    const std::size_t hi = range_active_bounds_[ur + 1];
    sort_ids(active_.data() + lo, hi - lo, range_sort_scratch_[ur]);

    // Spans and write cursors for the segment, started at the range's
    // exclusive base offset.
    const std::int64_t total =
        build_spans_segment(lo, hi, range_msg_base_[ur]);
    LCS_CHECK(total == range_msg_base_[ur + 1],
              "inbox accounting out of sync");

    for (SendLane& lane : lanes_) {
      LaneBucket& b = lane.buckets[ur];
      scatter_block(b.fill.data(), b.fill_to.data(), b.fill.size());
      b.clear();
    }
  });
  return slab_ordered_.data();
}

void Network::merge_range(int r) {
  // Replay destination range r of every lane into the shared per-node
  // state exactly as the sequential send path would have. Lanes are
  // walked in worker order and each bucket in insertion order; workers
  // own contiguous ascending shards of the active list, so this
  // concatenation *is* the sequential engine's send order restricted to
  // range r — and a destination's full delivery order lives in one range,
  // so counts, the next-active set, and the double-send diagnostics all
  // come out bit-identical. A directed edge determines its destination
  // and hence its range, so each edge_dir_stamp_ cell has exactly one
  // writing worker. Wakeups are replayed after a bucket's sends, which is
  // order-insensitive: a wakeup only stamps a node with count 0 when
  // nothing stamped it yet, and never changes the count otherwise.
  const std::int32_t now = tick32();
  const auto ur = static_cast<std::size_t>(r);
  std::vector<NodeId>& out = merge_next_[ur];
  for (SendLane& lane : lanes_) {
    const LaneBucket& b = lane.buckets[ur];
    const std::size_t nmsg = b.fill.size();
    const Incoming* fill = b.fill.data();
    const NodeId* fill_to = b.fill_to.data();
    for (std::size_t i = 0; i < nmsg; ++i) {
      if (validate_) {
        const Incoming& in = fill[i];
        const std::size_t dir =
            static_cast<std::size_t>(in.edge) * 2 +
            (in.from == edge_ends_[static_cast<std::size_t>(in.edge)].first
                 ? 0
                 : 1);
        LCS_CHECK(edge_dir_stamp_[dir] != tick_,
                  "CONGEST violation: two sends over one edge in one round");
        edge_dir_stamp_[dir] = tick_;
      }
      count_message_to(fill_to[i], now, out);
    }
    for (const NodeId v : b.wakes) {
      NodeState& st = node_state_[static_cast<std::size_t>(v)];
      if (st.stamp != now) {
        st.stamp = now;
        st.count = 0;
        out.push_back(v);
      }
    }
  }
}

void Network::finish_parallel_merge() {
  // Concatenate the per-range next-active lists range-major. Ranges are
  // ascending id spans, so the segments land pre-partitioned for the next
  // promotion (each worker sorts its own segment there); the bounds are
  // recorded now, while the per-range sizes are still known.
  range_active_bounds_.resize(static_cast<std::size_t>(num_ranges_) + 1);
  range_active_bounds_[0] = 0;
  for (int r = 0; r < num_ranges_; ++r)
    range_active_bounds_[static_cast<std::size_t>(r) + 1] =
        range_active_bounds_[static_cast<std::size_t>(r)] +
        merge_next_[static_cast<std::size_t>(r)].size();
  for (int r = 0; r < num_ranges_; ++r) {
    std::vector<NodeId>& part = merge_next_[static_cast<std::size_t>(r)];
    next_active_.insert(next_active_.end(), part.begin(), part.end());
    part.clear();
  }
}

void Network::run_parallel_round(std::span<Process* const> procs,
                                 const Incoming* ordered, std::int64_t round) {
  // Contiguous weight-balanced shards of the sorted active list: worker w
  // processes active_[bounds[w], bounds[w+1]). Weight = inbox size plus a
  // constant per activation, so message-heavy and wakeup-heavy rounds
  // both split evenly. Bounds depend only on deterministic per-round
  // state, so lane contents — and hence the merge order — are
  // reproducible at any thread count.
  constexpr std::int64_t kActivationWeight = 4;
  const std::size_t nactive = active_.size();
  const auto k = static_cast<std::size_t>(threads_);
  shard_bounds_.assign(k + 1, nactive);
  shard_bounds_[0] = 0;
  std::int64_t total_weight = 0;
  for (std::size_t i = 0; i < nactive; ++i)
    total_weight += spans_[i].count + kActivationWeight;
  std::int64_t acc = 0;
  for (std::size_t i = 0, w = 1; i < nactive && w < k; ++i) {
    acc += spans_[i].count + kActivationWeight;
    while (w < k && acc >= total_weight * static_cast<std::int64_t>(w) /
                               static_cast<std::int64_t>(k))
      shard_bounds_[w++] = i + 1;
  }

  // One pool dispatch for both halves of the round: deliver into the
  // lanes, then (one barrier later) merge the destination ranges.
  const NodeId num_nodes = graph_->num_nodes();
  pool_->run_staged(2, [&](int stage, int worker) {
    if (stage == 0) {
      const auto uw = static_cast<std::size_t>(worker);
      SendLane* lane = &lanes_[uw];
      for (std::size_t i = shard_bounds_[uw]; i < shard_bounds_[uw + 1];
           ++i) {
        const NodeId v = active_[i];
        const auto nbrs = graph_->neighbors(v);
        Context ctx(*this, v, num_nodes, round, nbrs, lane);
        procs[static_cast<std::size_t>(v)]->on_round(
            ctx, {ordered + spans_[i].start,
                  static_cast<std::size_t>(spans_[i].count)});
      }
    } else if (worker < num_ranges_) {
      merge_range(worker);
    }
  });
}

PhaseStats Network::run(std::span<Process* const> procs,
                        std::int64_t max_rounds) {
  LCS_CHECK(procs.size() == static_cast<std::size_t>(graph_->num_nodes()),
            "one process per node required");
  LCS_CHECK(!in_phase_,
            "Network::run is not reentrant (called from a process "
            "callback?)");
  in_phase_ = true;
  struct InPhaseReset {  // clears the flag on every exit, aborts included
    bool* flag;
    ~InPhaseReset() { *flag = false; }
  } in_phase_reset{&in_phase_};

  // Phase startup is O(active): a previous clean phase ends quiescent
  // (nothing in flight), an aborted one leaves only these containers
  // non-empty — stamp-guarded state needs no reset either way because the
  // tick advances past every stamp an earlier phase wrote.
  slab_fill_.clear();
  slab_fill_to_.clear();
  for (SendLane& lane : lanes_) lane.clear();
  for (std::vector<NodeId>& part : merge_next_) part.clear();
  next_active_.clear();
  active_.clear();
  fill_in_lanes_ = false;
  phase_messages_ = 0;
  advance_tick();

  const NodeId num_nodes = graph_->num_nodes();

  // Round -1: on_start for every node (sends arrive in round 0). In
  // parallel mode the nodes are sharded evenly; the merge stage follows
  // one barrier later, exactly like a delivery round's. Networks below
  // the fallback threshold start sequentially — same observables.
  if (threads_ <= 1 ||
      static_cast<std::int64_t>(num_nodes) < parallel_threshold_) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      Context ctx(*this, v, num_nodes, -1, graph_->neighbors(v));
      procs[static_cast<std::size_t>(v)]->on_start(ctx);
    }
  } else {
    const auto n = static_cast<std::size_t>(num_nodes);
    const auto k = static_cast<std::size_t>(threads_);
    pool_->run_staged(2, [&](int stage, int worker) {
      const auto uw = static_cast<std::size_t>(worker);
      if (stage == 0) {
        SendLane* lane = &lanes_[uw];
        const std::size_t lo = n * uw / k;
        const std::size_t hi = n * (uw + 1) / k;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto v = util::checked_cast<NodeId>(i);
          Context ctx(*this, v, num_nodes, -1, graph_->neighbors(v), lane);
          procs[i]->on_start(ctx);
        }
      } else if (worker < num_ranges_) {
        merge_range(worker);
      }
    });
    finish_parallel_merge();
    fill_in_lanes_ = true;
  }

  std::int64_t round = 0;
  while (!next_active_.empty()) {
    LCS_CHECK(round < max_rounds,
              "phase exceeded max_rounds without quiescing");

    // This round's work level — pending messages plus activations —
    // decides the engine path up front: below the threshold the round
    // runs end to end on the sequential path (no pool dispatch), above it
    // promotion, delivery, and merge all run on the pool. Observables are
    // identical either way.
    std::size_t nmsg = 0;
    if (fill_in_lanes_) {
      for (const SendLane& lane : lanes_)
        for (const LaneBucket& b : lane.buckets) nmsg += b.fill.size();
    } else {
      nmsg = slab_fill_.size();
    }
    const bool par_round =
        threads_ > 1 &&
        static_cast<std::int64_t>(nmsg) +
                static_cast<std::int64_t>(next_active_.size()) >=
            parallel_threshold_;
    LCS_CHECK(static_cast<std::int64_t>(nmsg) <= INT32_MAX,
              "engine limit exceeded: more than 2^31 - 1 messages in one "
              "round");
    phase_messages_ += static_cast<std::int64_t>(nmsg);

    // Promote next-round state to current: order this round's deliveries
    // destination-major in ascending node order (the engine's
    // deterministic processing order), send-ordered within each
    // destination, so each inbox span reads exactly like the per-node
    // vector of the historical engine. Lane-resident sends (previous
    // round ran parallel) scatter per destination range — on the pool
    // when this round is parallel too, serially otherwise; fill-slab
    // sends take the sequential cursor scatter.
    active_.swap(next_active_);
    next_active_.clear();
    const Incoming* ordered;
    if (fill_in_lanes_) {
      if (par_round) {
        ordered = promote_parallel(nmsg);  // sorts its segments itself
      } else {
        sort_active(active_);
        ordered = scatter_lanes_sequential(nmsg);
      }
      fill_in_lanes_ = false;
    } else {
      sort_active(active_);  // deterministic ascending order
      ordered = cursor_scatter(nmsg);
      slab_fill_.clear();
      slab_fill_to_.clear();
    }
    advance_tick();  // this round's sends stamp separately from deliveries

    if (!par_round) {
      for (std::size_t i = 0; i < active_.size(); ++i) {
        const NodeId v = active_[i];
        const auto nbrs = graph_->neighbors(v);
        Context ctx(*this, v, num_nodes, round, nbrs);
        procs[static_cast<std::size_t>(v)]->on_round(
            ctx, {ordered + spans_[i].start,
                  static_cast<std::size_t>(spans_[i].count)});
      }
    } else {
      run_parallel_round(procs, ordered, round);
      finish_parallel_merge();
      fill_in_lanes_ = true;
    }
    ++round;
  }

  const PhaseStats stats{round, phase_messages_};
  total_rounds_ += stats.rounds;
  total_messages_ += stats.messages;
  return stats;
}

void Network::charge(std::int64_t rounds, const std::string& label) {
  LCS_CHECK(rounds >= 0, "cannot charge negative rounds");
  total_rounds_ += rounds;
  charged_.add(label, rounds);
}

void Network::reset_accounting() {
  total_rounds_ = 0;
  total_messages_ = 0;
  charged_.clear();
}

}  // namespace lcs::congest
