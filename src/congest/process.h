/// \file process.h
/// Per-node state machines — the programming model of the simulator.
///
/// A distributed algorithm is a `Process` subclass instantiated once per
/// node. The engine invokes `on_start` before round 0 and `on_round`
/// whenever the node has incoming messages or requested a wakeup. A node
/// that neither receives nor requests wakeups sleeps for free (the engine
/// is activity-driven), but simulated time still advances globally.
///
/// Faithfulness contract: a process may only consult
///   * its own node id and its incident edges (`Context::neighbors`),
///   * the global bound `num_nodes()` (CONGEST nodes know a poly bound on n),
///   * its own state, including state persisted from earlier phases,
///   * the messages it receives.
/// State persisted between phases lives in per-node arrays (see `PerNode`);
/// by convention, the process for node v reads only index v.
#pragma once

#include <span>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"

namespace lcs::congest {

class Network;
struct SendLane;

/// Per-node state carried between phases. Convention: the process for node
/// v only touches element v; the array is merely centralized storage for
/// what each node keeps locally.
template <class T>
using PerNode = std::vector<T>;

/// Handle through which a process interacts with the network in a round.
class Context {
 public:
  NodeId id() const { return id_; }
  /// Number of nodes in the network (nodes know a polynomial bound on n;
  /// we give them the exact value, which is the standard assumption).
  NodeId num_nodes() const { return num_nodes_; }
  /// Current round (0 = the round right after on_start).
  std::int64_t round() const { return round_; }
  /// Incident edges of this node.
  std::span<const Graph::Neighbor> neighbors() const { return neighbors_; }

  /// Send `m` over incident edge `e`. At most one send per edge per round
  /// (checked when the network's validate mode is on). The message is
  /// delivered at the start of the next round. Defined inline in
  /// network.h so the per-message path inlines into process code.
  void send(EdgeId e, const Message& m);

  /// Ensure on_round is invoked next round even without incoming messages.
  /// Defined inline in network.h.
  void wake_next_round();

 private:
  friend class Network;
  Context(Network& net, NodeId id, NodeId num_nodes, std::int64_t round,
          std::span<const Graph::Neighbor> neighbors,
          SendLane* lane = nullptr)
      : net_(net),
        id_(id),
        num_nodes_(num_nodes),
        round_(round),
        neighbors_(neighbors),
        lane_(lane) {}

  Network& net_;
  NodeId id_;
  NodeId num_nodes_;
  std::int64_t round_;
  std::span<const Graph::Neighbor> neighbors_;
  /// Worker-private send lane in parallel mode; nullptr on the sequential
  /// engine path (see network.h).
  SendLane* lane_;
};

class Process {
 public:
  virtual ~Process() = default;

  /// Called once before the first round; may send and request wakeups.
  virtual void on_start(Context& /*ctx*/) {}

  /// Called in every round where this node has incoming messages or asked
  /// to be woken. `inbox` holds the messages sent to this node in the
  /// previous round.
  virtual void on_round(Context& ctx, std::span<const Incoming> inbox) = 0;
};

}  // namespace lcs::congest
