/// \file network.h
/// The synchronous CONGEST engine.
///
/// `Network` executes *phases*: a phase instantiates one `Process` per node
/// and runs synchronous rounds until the system is quiescent (no messages in
/// flight, no wakeups pending) or a round limit trips. Rounds and messages
/// are accounted exactly; coordination costs that a real deployment would
/// pay but that the simulator performs centrally (e.g. the O(D) termination
/// echo after a quiescent phase, or broadcasting a shared random seed) are
/// charged explicitly through `charge()` with a label, so every round in
/// `total_rounds()` is justified.
///
/// The engine is activity-driven: per round it touches only nodes that
/// received a message or requested a wakeup, so simulation work is
/// proportional to the total message count, not rounds × nodes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/message.h"
#include "congest/process.h"
#include "graph/graph.h"

namespace lcs::congest {

/// Round/message counts for one phase.
struct PhaseStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
};

class Network {
 public:
  /// Default per-phase round limit; a phase exceeding it is a bug
  /// (non-quiescing protocol) and fails loudly.
  static constexpr std::int64_t kDefaultMaxRounds = 50'000'000;

  explicit Network(const Graph& graph);

  const Graph& graph() const { return *graph_; }
  NodeId num_nodes() const { return graph_->num_nodes(); }

  /// Run one phase over the given per-node processes (`procs[v]` is node
  /// v's process; size must equal num_nodes). Returns this phase's stats
  /// and adds them to the running totals.
  PhaseStats run(std::span<Process* const> procs,
                 std::int64_t max_rounds = kDefaultMaxRounds);

  /// Account `rounds` additional rounds of explicitly-charged coordination
  /// (e.g. termination-detection echo, seed broadcast). Labels are
  /// aggregated for reporting.
  void charge(std::int64_t rounds, const std::string& label);

  std::int64_t total_rounds() const { return total_rounds_; }
  std::int64_t total_messages() const { return total_messages_; }
  const std::map<std::string, std::int64_t>& charged_rounds() const {
    return charged_;
  }

  /// Reset the accumulated totals (the topology is preserved).
  void reset_accounting();

 private:
  friend class Context;
  void do_send(NodeId from, EdgeId e, const Message& m, std::int64_t round);
  void do_wake(NodeId v);

  const Graph* graph_;

  // Per-phase transient state.
  std::vector<std::vector<Incoming>> inbox_;
  std::vector<std::vector<Incoming>> next_inbox_;
  std::vector<NodeId> next_active_;
  std::vector<bool> in_next_active_;
  std::vector<std::int64_t> edge_dir_last_send_;  // per directed edge
  std::int64_t phase_messages_ = 0;

  std::int64_t total_rounds_ = 0;
  std::int64_t total_messages_ = 0;
  std::map<std::string, std::int64_t> charged_;
};

/// Convenience: run a phase over a vector of concrete processes.
template <class P>
PhaseStats run_phase(Network& net, std::vector<P>& procs,
                     std::int64_t max_rounds = Network::kDefaultMaxRounds) {
  static_assert(std::is_base_of_v<Process, P>);
  std::vector<Process*> ptrs;
  ptrs.reserve(procs.size());
  for (auto& p : procs) ptrs.push_back(&p);
  return net.run(ptrs, max_rounds);
}

}  // namespace lcs::congest
