/// \file network.h
/// The synchronous CONGEST engine.
///
/// `Network` executes *phases*: a phase instantiates one `Process` per node
/// and runs synchronous rounds until the system is quiescent (no messages in
/// flight, no wakeups pending) or a round limit trips. Rounds and messages
/// are accounted exactly; coordination costs that a real deployment would
/// pay but that the simulator performs centrally (e.g. the O(D) termination
/// echo after a quiescent phase, or broadcasting a shared random seed) are
/// charged explicitly through `charge()` with a label, so every round in
/// `total_rounds()` is justified.
///
/// The engine is activity-driven: per round it touches only nodes that
/// received a message or requested a wakeup, so simulation work is
/// proportional to the total message count, not rounds × nodes.
///
/// ## Engine internals (slab inboxes, epoch stamps, O(active) scheduling)
///
/// The hot path is allocation-free in the steady state and touches O(active
/// + messages) memory per round:
///
///  * **Slab inboxes.** Messages live in two arena slabs that are
///    double-buffered between the round being filled and the round being
///    delivered. A send appends one `Incoming` to the *fill* slab (plus its
///    destination in a parallel array) and bumps a per-node epoch-stamped
///    message count — one 16-byte `NodeState` touch, no per-message or
///    per-node heap allocation (slab capacity persists across rounds and
///    phases). At round promotion the fill slab is counting-scattered into
///    the *ordered* slab, destination-major in ascending node order and
///    send-ordered within each destination, so every inbox a process sees
///    is a contiguous slab range: the public API stays
///    `std::span<const Incoming>` with zero per-message copies at delivery,
///    the whole round's delivery is one sequential pass over the ordered
///    slab, and per-node delivery order matches the historical
///    vector-of-vectors engine bit-for-bit.
///
///  * **Epoch-stamped resets.** A global monotone `tick_` advances once per
///    phase start and once per round. Membership tests that previously
///    required O(n) or O(m) `std::fill` resets per phase — "is v already in
///    next round's active list", "how many messages does v have in the fill
///    round", "did this directed edge already carry a send this round" — are
///    all expressed as `stamp[x] == tick_`, so nothing is ever cleared and
///    `run` startup is O(active), independent of n and m.
///
///  * **O(active) scheduling.** The active list is ordered ascending by node
///    id each round (the engine's determinism contract) with an LSD radix
///    sort over the id bytes (insertion sort below a small cutoff), so
///    scheduling costs O(active) per round instead of O(active log active).
///
/// ## Validation mode
///
/// `set_validate()` toggles the CONGEST faithfulness checks in the send
/// path: that the sender is an endpoint of the edge it sends over, and that
/// each directed edge carries at most one message per round. Validation is
/// **on by default** (and in all tests); benchmarks turn it off to measure
/// raw engine throughput. With validation off the checks are skipped
/// entirely — behavior, delivery order, and all round/message accounting
/// are unchanged for protocols that obey the model, but a violating
/// protocol is no longer diagnosed. Validation works identically in
/// parallel mode: the read-only incidence checks run inside the workers,
/// and the one-send-per-directed-edge check runs during the (sequential,
/// deterministically ordered) lane merge, so a violating protocol is
/// diagnosed at every thread count.
///
/// ## Parallel mode (`set_threads`)
///
/// Rounds are data-parallel per node on the delivery side and data-parallel
/// per *destination range* on the promotion side, so `set_threads(k)` with
/// k > 1 runs both halves of a round on a persistent `WorkerPool`:
///
///  * **Delivery.** Each worker processes a *contiguous shard* of the
///    sorted active list (shard boundaries balance inbox sizes plus a
///    constant per activation, computed from deterministic per-round state
///    only) and appends its sends and wakeups to a private `SendLane`
///    instead of the shared engine state. A lane is bucketed by
///    *destination range* — the node-id space is split into at most k
///    power-of-two-aligned ranges — so every (worker, range) bucket's size
///    is a ready-made per-worker per-destination-range count, and a
///    bucket's contents are that worker's sends into that range in send
///    order.
///
///  * **Promotion.** Immediately after delivery (same pool dispatch, one
///    `run_staged` barrier later) worker r *merges* range r: it replays
///    bucket (l, r) of every lane l in lane order — because workers own
///    ascending shards of the active list, that concatenation is exactly
///    the sequential engine's send order restricted to range r — stamping
///    next-active nodes, accumulating per-node counts, and running the
///    one-send-per-directed-edge check (a directed edge determines its
///    destination, hence its range, so each `edge_dir_stamp_` cell has
///    exactly one writer). At the next round's promotion the counting
///    scatter is parallel the same way: per-range slab offsets are prefix
///    sums of the bucket sizes, and worker r sorts its segment of the
///    active list, builds its spans and write cursors from its exclusive
///    base offset, and runs `scatter_block` passes over its lanes' r
///    buckets into a disjoint destination range of the ordered slab. No
///    O(messages) promotion step runs on one thread; only the O(active)
///    next-active concatenation and shard planning stay serial.
///
/// **Adaptive sequential fallback.** Fork-join costs a few microseconds
/// per round, which dominates tiny rounds (a high-diameter flood is
/// thousands of rounds of a few hundred messages). When a round's pending
/// messages + active nodes fall below `parallel_round_threshold()` the
/// round runs on the sequential path even with `threads() > 1` — same
/// code, same observables, no pool dispatch; rounds above it run parallel.
/// The default (`kDefaultParallelRoundThreshold`) is calibrated so the
/// fallback covers every round whose sequential cost is within ~2x of the
/// measured per-round fork-join overhead; `set_parallel_round_threshold`
/// overrides it (0 forces every round parallel — the determinism tests do
/// this to pin the parallel promotion path).
///
/// **Determinism contract:** for any protocol that obeys the faithfulness
/// rules in process.h (each process touches only its own node's state),
/// every observable is bit-identical at every thread count and every
/// fallback threshold: inbox contents and per-node delivery order, node
/// processing order, `PhaseStats`, `total_rounds` / `total_messages`,
/// charged labels, and validation diagnostics. The only thing parallel
/// mode may change is which thread a callback runs on — so process code
/// must be race-free across *different* nodes (the faithfulness contract
/// already requires that; a process that mutates state shared between
/// nodes is outside the CONGEST model).
///
/// `set_threads(1)` (the default) is the unchanged sequential engine with
/// zero synchronization; `set_threads(0)` resolves to the hardware
/// concurrency. The thread count may be changed between phases at will,
/// but never from inside a running phase (e.g. from a process callback) —
/// that would resize the engine's live round state and is diagnosed with
/// `LCS_CHECK`.
///
/// ## Engine limits
///
/// A single round carries at most 2^31 - 1 messages, and consequently a
/// single node receives at most 2^31 - 1 messages per round (inbox spans
/// and per-node counts are 32-bit by design — see `NodeState`). Exceeding
/// the limit is diagnosed with a clear `CheckFailure` ("engine limit"), in
/// the send path for a single hot destination and at round promotion for
/// the round total, never silent wraparound. At ~48 bytes per pending
/// message the limit corresponds to a ~100 GB fill slab, so real
/// workloads hit memory long before the diagnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "congest/message.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/worker_pool.h"

namespace lcs::congest {

/// One destination range's slice of a worker's sends: payloads in `fill`,
/// destinations in the parallel `fill_to` (send order), wakeups in `wakes`
/// (duplicates allowed — the merge dedupes via the epoch stamps).
struct LaneBucket {
  std::vector<Incoming> fill;
  std::vector<NodeId> fill_to;
  std::vector<NodeId> wakes;

  void clear() {
    fill.clear();
    fill_to.clear();
    wakes.clear();
  }
};

/// One worker's private send-side state in parallel mode, bucketed by
/// destination range (`Network::range_of`): bucket sizes double as the
/// per-worker per-destination-range counts that drive the parallel merge
/// and scatter. Capacities persist across rounds and phases, like the
/// sequential slabs. Over-aligned so adjacent lanes' headers never share a
/// cache line.
struct alignas(128) SendLane {
  std::vector<LaneBucket> buckets;  // one per destination range

  void clear() {
    for (LaneBucket& b : buckets) b.clear();
  }
};

/// Round/message counts for one phase.
struct PhaseStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
};

/// Flat label → rounds accounting for `Network::charge`. A sorted
/// vector of (label, rounds) pairs: the handful of distinct labels a run
/// produces makes a tree map pure overhead. Iteration yields pairs in
/// lexicographic label order (as `std::map` did).
class ChargeTable {
 public:
  using Entry = std::pair<std::string, std::int64_t>;
  using const_iterator = std::vector<Entry>::const_iterator;

  /// Rounds charged under `label`; fails if the label was never charged.
  std::int64_t at(std::string_view label) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

 private:
  friend class Network;
  void add(std::string_view label, std::int64_t rounds);
  void clear() { entries_.clear(); }

  std::vector<Entry> entries_;  // sorted by label
};

class Network {
 public:
  /// Default per-phase round limit; a phase exceeding it is a bug
  /// (non-quiescing protocol) and fails loudly.
  static constexpr std::int64_t kDefaultMaxRounds = 50'000'000;

  explicit Network(const Graph& graph);

  const Graph& graph() const { return *graph_; }
  NodeId num_nodes() const { return graph_->num_nodes(); }

  /// Run one phase over the given per-node processes (`procs[v]` is node
  /// v's process; size must equal num_nodes). Returns this phase's stats
  /// and adds them to the running totals.
  PhaseStats run(std::span<Process* const> procs,
                 std::int64_t max_rounds = kDefaultMaxRounds);

  /// Toggle the CONGEST faithfulness checks (incident-edge and
  /// one-send-per-directed-edge-per-round) in the send path. On by
  /// default; benchmarks turn it off. See the header comment.
  void set_validate(bool on) { validate_ = on; }
  bool validate() const { return validate_; }

  /// Number of worker threads that execute process callbacks and run
  /// round promotion. 1 (the default) is the sequential engine; 0 resolves
  /// to the hardware concurrency; k > 1 runs each round's delivery in k
  /// contiguous shards and its promotion over at most k destination
  /// ranges, on a persistent worker pool. Bit-identical observables at
  /// every thread count — see the "Parallel mode" header comment for the
  /// determinism contract. May be called between phases at any time, but
  /// never from inside a running phase (diagnosed with LCS_CHECK): it
  /// resizes the lanes and range structures a live round is using.
  void set_threads(int threads);
  /// The resolved thread count (never 0).
  int threads() const { return threads_; }

  /// Default `parallel_round_threshold()`: rounds whose pending messages +
  /// active nodes fall below this run sequentially even with threads() >
  /// 1. Calibrated on the E10 grid-flood bench (see bench_e10_network):
  /// ~2x the round size where one round's sequential cost equals the
  /// measured per-round fork-join overhead, so tiny rounds never pay the
  /// dispatch and message-heavy rounds keep the full parallel path.
  static constexpr std::int64_t kDefaultParallelRoundThreshold = 2048;

  /// Override the adaptive-fallback threshold (0 forces every round onto
  /// the parallel path; the determinism tests use that to pin parallel
  /// promotion on small graphs). Observables are identical at any value.
  /// Like set_threads, must not be called from inside a running phase.
  void set_parallel_round_threshold(std::int64_t work);
  std::int64_t parallel_round_threshold() const {
    return parallel_threshold_;
  }

  /// Account `rounds` additional rounds of explicitly-charged coordination.
  /// Labels are aggregated for reporting. Conventional labels:
  ///   "seed-broadcast" — flooding a shared random seed from the root;
  ///   "termination"    — the O(D) convergecast echo that detects
  ///                      quiescence, which the simulator observes for free.
  /// New call sites should reuse these or add a short kebab-case label.
  void charge(std::int64_t rounds, const std::string& label);

  std::int64_t total_rounds() const { return total_rounds_; }
  std::int64_t total_messages() const { return total_messages_; }
  const ChargeTable& charged_rounds() const { return charged_; }

  /// Reset the accumulated totals (the topology is preserved).
  void reset_accounting();

  /// Scratch storage reused by `run_phase` across phases so building the
  /// `Process*` view allocates only until the high-water mark is reached.
  std::vector<Process*>& process_scratch() { return proc_scratch_; }

 private:
  friend class Context;
  friend struct NetworkTestPeer;

  /// Epoch-stamped per-node round state: `stamp == tick32()` means the
  /// node is in the round currently being filled; `count` is its message
  /// count in that round (0 for a wakeup-only activation). During the
  /// scatter pass `count` is repurposed as the node's write cursor into
  /// the ordered slab. The stamp is the low 31 bits of the global tick —
  /// an 8-byte cell halves the footprint of the engine's hottest
  /// random-access array; `advance_tick` refills the array on the (rare)
  /// wrap so stale stamps can never alias a live tick. The 32-bit count
  /// is why a node's per-round inbox is capped at 2^31 - 1 messages (see
  /// "Engine limits" above).
  struct NodeState {
    std::int32_t stamp;
    std::int32_t count;
  };

  /// Contiguous range of one node's messages in the ordered slab.
  struct InboxSpan {
    std::int32_t start;
    std::int32_t count;
  };

  void do_send(NodeId from, EdgeId e, const Message& m,
               std::span<const Graph::Neighbor> from_neighbors,
               SendLane* lane);
  void do_wake(NodeId v, SendLane* lane);
  /// The 31-bit view of `tick_` that `NodeState::stamp` compares against.
  std::int32_t tick32() const {
    return util::checked_cast<std::int32_t>(tick_ & 0x7fffffff);
  }
  /// Bump the global epoch; on 31-bit wrap, invalidate all node stamps.
  void advance_tick();
  /// Ascending-id order of the active list (LSD radix over id bytes).
  void sort_active(std::vector<NodeId>& a);
  /// The radix core behind sort_active, callable per range segment with a
  /// caller-owned scratch buffer so segments sort concurrently.
  static void sort_ids(NodeId* data, std::size_t size,
                       std::vector<NodeId>& scratch);

  /// Destination range of node v (ranges are power-of-two spans of the id
  /// space, at most threads() of them — see compute_range_layout).
  int range_of(NodeId v) const { return util::checked_cast<int>(v >> range_shift_); }
  /// Recompute range_shift_ / num_ranges_ from num_nodes and threads_ and
  /// size the per-range structures.
  void compute_range_layout();

  /// Stamp `to` into the round being filled and count one message for it,
  /// diagnosing per-node inbox overflow; newly stamped nodes append to
  /// `out_active` (next_active_ on the sequential path, the range's
  /// merge_next_ slot in the parallel merge replay).
  void count_message_to(NodeId to, std::int32_t now,
                        std::vector<NodeId>& out_active) {
    NodeState& st = node_state_[static_cast<std::size_t>(to)];
    if (st.stamp != now) {
      st.stamp = now;
      st.count = 1;
      out_active.push_back(to);
    } else {
      LCS_CHECK(st.count != INT32_MAX,
                "engine limit exceeded: a node received 2^31 - 1 messages "
                "in one round");
      ++st.count;
    }
  }

  /// Produce the destination-major ordering of the fill slab and the
  /// per-active-node `spans_` into it via a counting scatter through
  /// per-node cursors; returns the ordered message array.
  const Incoming* cursor_scatter(std::size_t nmsg);

  /// Shared first half of the sequential scatters: build `spans_` and turn
  /// each active node's `NodeState::count` into its write cursor; grow the
  /// ordered slab to `nmsg`.
  void build_spans(std::size_t nmsg);
  /// The count-to-cursor core of every scatter: for active_[lo, hi), fill
  /// `spans_` and repurpose each node's count as its write cursor,
  /// starting at slab offset `base`; returns the end offset. Disjoint
  /// segments run concurrently (promote_parallel) or back to back
  /// (build_spans).
  std::int64_t build_spans_segment(std::size_t lo, std::size_t hi,
                                   std::int64_t base);
  /// Scatter one contiguous block of (payload, destination) pairs through
  /// the node-state cursors into the ordered slab.
  void scatter_block(const Incoming* fill, const NodeId* fill_to,
                     std::size_t count);
  /// Sequential-fallback scatter of lane-resident sends: for each range,
  /// scatter its buckets in lane order (the sequential fill order
  /// restricted to the range) and clear them.
  const Incoming* scatter_lanes_sequential(std::size_t nmsg);
  /// Parallel promotion of lane-resident sends: worker r sorts its range's
  /// segment of the active list, builds its spans and cursors from the
  /// prefix-summed bucket counts, and scatter_blocks its buckets into its
  /// disjoint slice of the ordered slab. Requires fill_in_lanes_ (the
  /// previous round merged in parallel, so range_active_bounds_ is fresh).
  const Incoming* promote_parallel(std::size_t nmsg);
  /// Merge replay of destination range r: walk bucket (l, r) of every lane
  /// l in lane order — the sequential send order restricted to range r —
  /// stamping per-node state, appending to merge_next_[r], and running the
  /// double-send check. Runs concurrently across ranges.
  void merge_range(int r);
  /// Serial tail of the parallel merge: concatenate merge_next_ into
  /// next_active_ (range-major; segments sort in the next promotion) and
  /// record the per-range segment bounds.
  void finish_parallel_merge();
  /// Run one round's `on_round` callbacks and the following merge as one
  /// two-stage pool job: stage 0 delivers contiguous weight-balanced
  /// shards of `active_` into the lanes, stage 1 merges the destination
  /// ranges.
  void run_parallel_round(std::span<Process* const> procs,
                          const Incoming* ordered, std::int64_t round);

  const Graph* graph_;
  bool validate_ = true;

  /// Global epoch: advances at every phase start and every round. All
  /// "reset per round/phase" state below is stamp-guarded against it.
  std::int64_t tick_ = 0;

  // Message arenas. Sends append the payload to `slab_fill_` and the
  // destination to the parallel `slab_fill_to_` (send order); round
  // promotion counting-scatters them destination-major into
  // `slab_ordered_`, from which all inbox spans are served. Capacities
  // persist across rounds and phases.
  std::vector<Incoming> slab_fill_;
  std::vector<NodeId> slab_fill_to_;
  std::vector<Incoming> slab_ordered_;

  std::vector<NodeState> node_state_;
  std::vector<NodeId> next_active_;

  // Endpoints of every edge, sans weight: half the footprint of the full
  // `Graph::Edge` array for the per-send destination lookup.
  std::vector<std::pair<NodeId, NodeId>> edge_ends_;

  // Tick of the last send over each directed edge (2e, 2e+1); used only
  // when validation is on.
  std::vector<std::int64_t> edge_dir_stamp_;

  // Reused per-round scratch (capacity persists across rounds/phases).
  std::vector<NodeId> active_;
  std::vector<InboxSpan> spans_;  // aligned with active_
  std::vector<NodeId> radix_scratch_;
  std::vector<Process*> proc_scratch_;

  // Parallel mode: resolved thread count (1 = sequential), the persistent
  // worker team, one send lane per worker, and the per-round shard
  // boundaries into `active_` (size threads_ + 1).
  int threads_ = 1;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<SendLane> lanes_;
  std::vector<std::size_t> shard_bounds_;

  // Destination-range layout for parallel promotion: ranges are
  // 2^range_shift_-wide spans of the id space, num_ranges_ <= threads_ of
  // them. Recomputed by set_threads.
  int range_shift_ = 0;
  int num_ranges_ = 1;
  // Per-range promotion state: merge_next_[r] collects range r's newly
  // active nodes during the merge stage; range_active_bounds_ (size
  // num_ranges_ + 1) are the resulting segment bounds of the *next*
  // active list; range_msg_base_ caches the prefix-summed per-range
  // message offsets into the ordered slab; range_sort_scratch_[r] is
  // range r's private radix buffer.
  std::vector<std::vector<NodeId>> merge_next_;
  std::vector<std::size_t> range_active_bounds_;
  std::vector<std::int64_t> range_msg_base_;
  std::vector<std::vector<NodeId>> range_sort_scratch_;

  // Adaptive fallback: rounds below this work level (pending messages +
  // active nodes) run sequentially even with threads_ > 1.
  std::int64_t parallel_threshold_ = kDefaultParallelRoundThreshold;
  // Where the pending round's sends live: the worker lanes (previous
  // round ran parallel) or the sequential fill slab.
  bool fill_in_lanes_ = false;
  // A phase is currently running on this network (guards set_threads).
  bool in_phase_ = false;

  std::int64_t phase_messages_ = 0;

  std::int64_t total_rounds_ = 0;
  std::int64_t total_messages_ = 0;
  ChargeTable charged_;
};

/// White-box access for the engine's own tests — never use outside
/// `tests/`. Lets a test start the epoch counter near the 31-bit stamp
/// wrap and prime a node's in-flight message count at the inbox limit,
/// states that would otherwise take ~2^31 rounds or sends to reach.
struct NetworkTestPeer {
  static void set_tick(Network& net, std::int64_t tick) { net.tick_ = tick; }
  static std::int64_t tick(const Network& net) { return net.tick_; }
  /// Pretend `v` already received `count` messages in the round currently
  /// being filled (stamps it with the live tick).
  static void prime_inbox_count(Network& net, NodeId v, std::int32_t count) {
    net.node_state_[static_cast<std::size_t>(v)] =
        Network::NodeState{net.tick32(), count};
  }
};

// Context's send/wake are defined here (not in a .cpp) so the per-message
// entry point inlines into process code; the sender's neighbor span rides
// along to resolve the destination from cache-warm adjacency.
inline void Context::send(EdgeId e, const Message& m) {
  net_.do_send(id_, e, m, neighbors_, lane_);
}
inline void Context::wake_next_round() { net_.do_wake(id_, lane_); }

/// Convenience: run a phase over a vector of concrete processes. The
/// pointer view is built in `Network`-owned scratch, so repeated phases on
/// the same network do not reallocate it.
template <class P>
PhaseStats run_phase(Network& net, std::vector<P>& procs,
                     std::int64_t max_rounds = Network::kDefaultMaxRounds) {
  static_assert(std::is_base_of_v<Process, P>);
  auto& ptrs = net.process_scratch();
  ptrs.clear();
  ptrs.reserve(procs.size());
  for (auto& p : procs) ptrs.push_back(&p);
  return net.run(ptrs, max_rounds);
}

}  // namespace lcs::congest
