/// \file message.h
/// The unit of communication in the CONGEST model: per round, each node may
/// send at most one message over each incident edge, and a message carries
/// `O(log n)` bits.
///
/// We fix the payload at a small constant number of 64-bit words (enough for
/// an id, a weight, and an auxiliary field — exactly the "O(log n)-bit"
/// budget every algorithm in the paper uses). The fixed-size array makes it
/// structurally impossible for an algorithm to smuggle unbounded data in a
/// single round; multi-value transfers must be spread over multiple rounds,
/// which is where the paper's round complexities come from.
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.h"

namespace lcs::congest {

struct Message {
  /// Number of 64-bit payload words; 3 words + tag ≈ O(log n) bits.
  static constexpr int kMaxWords = 3;

  /// Algorithm-defined message kind.
  std::uint32_t tag = 0;
  std::array<std::uint64_t, kMaxWords> words{};

  Message() = default;
  explicit Message(std::uint32_t t, std::uint64_t w0 = 0, std::uint64_t w1 = 0,
                   std::uint64_t w2 = 0)
      : tag(t), words{w0, w1, w2} {}
};

/// A received message together with where it came from.
struct Incoming {
  NodeId from = kNoNode;  ///< the sending neighbor
  EdgeId edge = kNoEdge;  ///< the connecting edge
  Message msg;
};

}  // namespace lcs::congest
