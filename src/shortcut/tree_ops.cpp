#include "shortcut/tree_ops.h"

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

class TreeBroadcastProcess final : public congest::Process {
 public:
  TreeBroadcastProcess(NodeId id, const SpanningTree& tree,
                       std::uint64_t root_word, std::uint64_t& out)
      : id_(id), tree_(tree), root_word_(root_word), out_(out) {}

  void on_start(Context& ctx) override {
    if (id_ != tree_.root) return;
    out_ = root_word_;
    forward(ctx, root_word_);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      out_ = in.msg.words[0];
      forward(ctx, out_);
    }
  }

 private:
  void forward(Context& ctx, std::uint64_t word) {
    for (const EdgeId ce : tree_.children_edges[static_cast<std::size_t>(id_)])
      ctx.send(ce, Message(0, word));
  }

  NodeId id_;
  const SpanningTree& tree_;
  std::uint64_t root_word_;
  std::uint64_t& out_;
};

enum OrTag : std::uint32_t { kUp, kDown };

class GlobalOrProcess final : public congest::Process {
 public:
  GlobalOrProcess(NodeId id, const SpanningTree& tree, bool bit)
      : id_(id), tree_(tree), acc_(bit) {}

  bool result = false;

  void on_start(Context& ctx) override {
    pending_ = util::checked_cast<int>(
        tree_.children_edges[static_cast<std::size_t>(id_)].size());
    maybe_send_up(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      if (in.msg.tag == kUp) {
        acc_ = acc_ || in.msg.words[0] != 0;
        --pending_;
      } else {
        finish(ctx, in.msg.words[0] != 0);
      }
    }
    maybe_send_up(ctx);
  }

 private:
  void maybe_send_up(Context& ctx) {
    if (sent_up_ || pending_ > 0) return;
    sent_up_ = true;
    if (id_ == tree_.root) {
      finish(ctx, acc_);
    } else {
      ctx.send(tree_.parent_edge[static_cast<std::size_t>(id_)],
               Message(kUp, acc_ ? 1 : 0));
    }
  }

  void finish(Context& ctx, bool value) {
    result = value;
    for (const EdgeId ce : tree_.children_edges[static_cast<std::size_t>(id_)])
      ctx.send(ce, Message(kDown, value ? 1 : 0));
  }

  NodeId id_;
  const SpanningTree& tree_;
  bool acc_;
  int pending_ = 0;
  bool sent_up_ = false;
};

}  // namespace

congest::PerNode<std::uint64_t> broadcast_word_from_root(
    congest::Network& net, const SpanningTree& tree, std::uint64_t word) {
  congest::PerNode<std::uint64_t> out(
      static_cast<std::size_t>(net.num_nodes()), 0);
  std::vector<TreeBroadcastProcess> procs;
  procs.reserve(out.size());
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, tree, word, out[static_cast<std::size_t>(v)]);
  congest::run_phase(net, procs);
  return out;
}

bool global_or(congest::Network& net, const SpanningTree& tree,
               const congest::PerNode<bool>& bits) {
  LCS_CHECK(bits.size() == static_cast<std::size_t>(net.num_nodes()),
            "one bit per node required");
  std::vector<GlobalOrProcess> procs;
  procs.reserve(bits.size());
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, tree, bits[static_cast<std::size_t>(v)]);
  congest::run_phase(net, procs);
  // All nodes must agree; return (and assert) the common value.
  const bool result = procs.front().result;
  for (const auto& p : procs)
    LCS_CHECK(p.result == result, "global OR disagreement");
  return result;
}

}  // namespace lcs
