#include "shortcut/core_fast.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/core_slow.h"
#include "shortcut/tree_ops.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

enum Tag : std::uint32_t { kId, kEnd };

/// Sorted duplicate-free id set backed by a flat vector. The id sets here
/// stay small (the streaming phase caps membership at `threshold`; routing
/// holds the ids crossing one tree edge), so binary-search insertion into a
/// reserved vector beats a node-allocating `std::set` on every axis (at
/// most one allocation, contiguous scans, trivial iteration).
class SortedIdSet {
 public:
  void reserve(std::size_t n) { ids_.reserve(n); }

  /// Returns true iff `x` was not present.
  bool insert(PartId x) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), x);
    if (it != ids_.end() && *it == x) return false;
    ids_.insert(it, x);
    return true;
  }

  std::size_t size() const { return ids_.size(); }
  const std::vector<PartId>& values() const { return ids_; }

 private:
  std::vector<PartId> ids_;  // sorted ascending
};

/// Phase 2: bottom-up streaming of *active* part ids; an edge becomes
/// unusable when at least `threshold` distinct active ids want it.
class SampledStreamProcess final : public congest::Process {
 public:
  SampledStreamProcess(NodeId id, const SpanningTree& tree, PartId active_id,
                       std::int32_t threshold)
      : id_(id), tree_(tree), threshold_(threshold) {
    ids_.reserve(static_cast<std::size_t>(threshold));
    if (active_id != kNoPart) ids_.insert(active_id);
  }

  bool unusable = false;

  void on_start(Context& ctx) override {
    pending_children_ = util::checked_cast<int>(
        tree_.children_edges[static_cast<std::size_t>(id_)].size());
    if (pending_children_ == 0) begin_streaming(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      switch (in.msg.tag) {
        case kId:
          if (util::checked_cast<std::int32_t>(ids_.size()) < threshold_)
            ids_.insert(util::checked_cast<PartId>(in.msg.words[0]));
          else
            saturated_ = true;
          break;
        case kEnd:
          --pending_children_;
          break;
        default:
          LCS_CHECK(false, "unknown CoreFast tag");
      }
    }
    if (!streaming_ && pending_children_ == 0) {
      begin_streaming(ctx);
    } else if (streaming_) {
      continue_streaming(ctx);
    }
  }

 private:
  void begin_streaming(Context& ctx) {
    streaming_ = true;
    // Unusable when the count of distinct active ids reaches the threshold.
    if (saturated_ ||
        util::checked_cast<std::int32_t>(ids_.size()) >= threshold_) {
      unusable = true;
    } else {
      to_send_ = ids_.values();
    }
    continue_streaming(ctx);
  }

  void continue_streaming(Context& ctx) {
    if (end_sent_) return;
    const EdgeId pe = tree_.parent_edge[static_cast<std::size_t>(id_)];
    if (pe == kNoEdge) {
      end_sent_ = true;
      return;
    }
    if (!unusable && cursor_ < to_send_.size()) {
      ctx.send(pe, Message(kId, static_cast<std::uint64_t>(
                                    to_send_[cursor_++])));
      ctx.wake_next_round();
      return;
    }
    ctx.send(pe, Message(kEnd));
    end_sent_ = true;
  }

  NodeId id_;
  const SpanningTree& tree_;
  std::int32_t threshold_;
  SortedIdSet ids_;  // bounded: never grows past threshold_
  std::vector<PartId> to_send_;
  bool saturated_ = false;
  int pending_children_ = 0;
  bool streaming_ = false;
  bool end_sent_ = false;
  std::size_t cursor_ = 0;
};

/// Phase 3 (Algorithm 2 steps 3–5): route every part id up the tree until
/// its first unusable edge; forward the minimum unforwarded id each round.
class RouteAllProcess final : public congest::Process {
 public:
  RouteAllProcess(NodeId id, const SpanningTree& tree, PartId own_part,
                  bool parent_unusable)
      : id_(id), tree_(tree), parent_unusable_(parent_unusable) {
    if (own_part != kNoPart) {
      known_.insert(own_part);
      unforwarded_.push(own_part);
    }
  }

  /// Q_v: all ids that can see this node's parent edge.
  std::vector<PartId> ids() const { return known_.values(); }

  void on_start(Context& ctx) override { forward(ctx); }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      const auto j = util::checked_cast<PartId>(in.msg.words[0]);
      if (known_.insert(j)) unforwarded_.push(j);
    }
    forward(ctx);
  }

 private:
  void forward(Context& ctx) {
    const EdgeId pe = tree_.parent_edge[static_cast<std::size_t>(id_)];
    if (pe == kNoEdge || parent_unusable_ || unforwarded_.empty()) return;
    const PartId j = unforwarded_.top();
    unforwarded_.pop();
    ctx.send(pe, Message(kId, static_cast<std::uint64_t>(j)));
    if (!unforwarded_.empty()) ctx.wake_next_round();
  }

  NodeId id_;
  const SpanningTree& tree_;
  bool parent_unusable_;
  SortedIdSet known_;
  // Min-first queue: each round forwards the smallest unforwarded id,
  // exactly as iterating a std::set from begin() did. Ids enter at most
  // once (guarded by known_), so the heap holds no duplicates.
  std::priority_queue<PartId, std::vector<PartId>, std::greater<PartId>>
      unforwarded_;
};

}  // namespace

double core_fast_sampling_probability(NodeId n, std::int32_t c, double gamma) {
  LCS_CHECK(n >= 1 && c >= 1 && gamma > 0, "bad CoreFast parameters");
  const double log_n = std::log2(static_cast<double>(std::max<NodeId>(n, 2)));
  return std::min(1.0, gamma * log_n / (2.0 * static_cast<double>(c)));
}

CoreResult core_fast(congest::Network& net, const SpanningTree& tree,
                     const congest::PerNode<PartId>& active_part_of,
                     const CoreFastParams& params) {
  const NodeId n = net.num_nodes();
  LCS_CHECK(params.c >= 1, "congestion budget must be positive");
  LCS_CHECK(active_part_of.size() == static_cast<std::size_t>(n),
            "one part id per node required");

  // Phase 1: flood the shared-randomness seed from the root (O(D) rounds).
  const auto seeds = broadcast_word_from_root(net, tree, params.seed);

  const double p = core_fast_sampling_probability(n, params.c, params.gamma);
  const auto threshold = util::checked_trunc<std::int32_t>(
      std::max(1.0, std::ceil(4.0 * static_cast<double>(params.c) * p)));

  // Phase 2: stream sampled ids bottom-up to find the unusable edges.
  // Every node derives its part's coin from the seed it received — shared
  // randomness without further communication.
  std::vector<SampledStreamProcess> stream;
  stream.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const PartId j = active_part_of[static_cast<std::size_t>(v)];
    const bool active =
        j != kNoPart &&
        hash_coin(seeds[static_cast<std::size_t>(v)],
                  static_cast<std::uint64_t>(j), p);
    stream.emplace_back(v, tree, active ? j : kNoPart, threshold);
  }
  congest::run_phase(net, stream);

  // Phase 3: route all ids up to their first unusable edge.
  std::vector<RouteAllProcess> route;
  route.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    route.emplace_back(v, tree, active_part_of[static_cast<std::size_t>(v)],
                       stream[static_cast<std::size_t>(v)].unusable);
  congest::run_phase(net, route);

  CoreResult result;
  result.shortcut.parts_on_edge.resize(
      static_cast<std::size_t>(net.graph().num_edges()));
  result.parent_edge_unusable.assign(static_cast<std::size_t>(n), false);
  for (NodeId v = 0; v < n; ++v) {
    const bool unusable = stream[static_cast<std::size_t>(v)].unusable;
    result.parent_edge_unusable[static_cast<std::size_t>(v)] = unusable;
    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    if (pe != kNoEdge && !unusable) {
      result.shortcut.parts_on_edge[static_cast<std::size_t>(pe)] =
          route[static_cast<std::size_t>(v)].ids();
    }
  }
  return result;
}

}  // namespace lcs
