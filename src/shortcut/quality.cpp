#include "shortcut/quality.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "graph/graph.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

std::vector<bool> bfs_forest_edges(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<bool> forest(static_cast<std::size_t>(g.num_edges()), false);
  std::vector<bool> visited(n, false);
  std::deque<NodeId> queue;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    visited[static_cast<std::size_t>(root)] = true;
    queue.push_back(root);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const auto& nb : g.neighbors(v)) {
        if (visited[static_cast<std::size_t>(nb.node)]) continue;
        visited[static_cast<std::size_t>(nb.node)] = true;
        forest[static_cast<std::size_t>(nb.edge)] = true;
        queue.push_back(nb.node);
      }
    }
  }
  return forest;
}

ForestQuality forest_part_quality(const Graph& g,
                                  const std::vector<PartId>& part_of,
                                  const std::vector<bool>& forest_edge) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  LCS_CHECK(part_of.size() == n, "part labeling size mismatch");
  LCS_CHECK(forest_edge.size() == static_cast<std::size_t>(g.num_edges()),
            "forest flag size mismatch");

  // One BFS sweep over the flagged edges: component ids (in discovery
  // order), parent node/edge per node, and per-component node lists in BFS
  // order (so subtree counts fold in one reverse pass).
  std::vector<std::int32_t> comp(n, -1);
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  std::vector<std::vector<NodeId>> comp_order;
  std::int64_t flagged = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (forest_edge[static_cast<std::size_t>(e)]) ++flagged;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (comp[static_cast<std::size_t>(root)] >= 0) continue;
    const auto c = util::checked_cast<std::int32_t>(comp_order.size());
    comp_order.emplace_back();
    auto& order = comp_order.back();
    comp[static_cast<std::size_t>(root)] = c;
    order.push_back(root);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const NodeId v = order[head];
      for (const auto& nb : g.neighbors(v)) {
        if (!forest_edge[static_cast<std::size_t>(nb.edge)]) continue;
        if (comp[static_cast<std::size_t>(nb.node)] >= 0) continue;
        comp[static_cast<std::size_t>(nb.node)] = c;
        parent[static_cast<std::size_t>(nb.node)] = v;
        parent_edge[static_cast<std::size_t>(nb.node)] = nb.edge;
        order.push_back(nb.node);
      }
    }
  }
  LCS_CHECK(flagged == static_cast<std::int64_t>(n) -
                           static_cast<std::int64_t>(comp_order.size()),
            "forest_edge flags contain a cycle");

  // Group part members by (part, component): each group spans one Steiner
  // subtree. Groups are processed in (part id, discovery order of the
  // component) order, so every output is a pure function of the inputs.
  PartId num_parts = 0;
  for (const PartId p : part_of) num_parts = std::max(num_parts, p + 1);
  std::vector<std::vector<NodeId>> part_members(
      static_cast<std::size_t>(num_parts));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PartId p = part_of[static_cast<std::size_t>(v)];
    if (p == kNoPart) continue;
    LCS_CHECK(p >= 0, "negative part label that is not kNoPart");
    part_members[static_cast<std::size_t>(p)].push_back(v);
  }

  std::vector<std::int32_t> load(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<std::int32_t> cnt(n, 0);
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> steiner_adj(n);
  std::vector<NodeId> touched;
  std::vector<std::int32_t> dist(n, -1);
  ForestQuality q;

  auto farthest_in_steiner = [&](NodeId src) {
    // BFS over the group's Steiner edges; returns (node, hops) of the
    // farthest node (first encountered at max depth — deterministic).
    std::deque<NodeId> queue{src};
    std::vector<NodeId> seen{src};
    dist[static_cast<std::size_t>(src)] = 0;
    NodeId far = src;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const auto& [to, via] : steiner_adj[static_cast<std::size_t>(v)]) {
        if (dist[static_cast<std::size_t>(to)] >= 0) continue;
        dist[static_cast<std::size_t>(to)] =
            dist[static_cast<std::size_t>(v)] + 1;
        if (dist[static_cast<std::size_t>(to)] >
            dist[static_cast<std::size_t>(far)])
          far = to;
        queue.push_back(to);
        seen.push_back(to);
      }
    }
    const std::int32_t d = dist[static_cast<std::size_t>(far)];
    for (const NodeId v : seen) dist[static_cast<std::size_t>(v)] = -1;
    return std::pair<NodeId, std::int32_t>{far, d};
  };

  for (const auto& members : part_members) {
    if (members.size() < 2) continue;
    // Split the part's members by forest component; fragments with a single
    // member span no edges.
    for (const NodeId v : members) ++cnt[static_cast<std::size_t>(v)];
    // Per component containing members, fold subtree counts in reverse BFS
    // order and collect Steiner edges (0 < below < group size).
    std::vector<std::int32_t> comps;
    std::vector<std::int32_t> group_size;
    for (const NodeId v : members) {
      const std::int32_t c = comp[static_cast<std::size_t>(v)];
      bool known = false;
      for (std::size_t i = 0; i < comps.size(); ++i) {
        if (comps[i] == c) {
          ++group_size[i];
          known = true;
          break;
        }
      }
      if (!known) {
        comps.push_back(c);
        group_size.push_back(1);
      }
    }
    for (std::size_t ci = 0; ci < comps.size(); ++ci) {
      if (group_size[ci] < 2) continue;
      const auto& order = comp_order[static_cast<std::size_t>(comps[ci])];
      touched.clear();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId v = *it;
        const std::int32_t below = cnt[static_cast<std::size_t>(v)];
        if (below > 0 && below < group_size[ci] &&
            parent[static_cast<std::size_t>(v)] != kNoNode) {
          const EdgeId e = parent_edge[static_cast<std::size_t>(v)];
          const NodeId p = parent[static_cast<std::size_t>(v)];
          ++load[static_cast<std::size_t>(e)];
          q.congestion = std::max(q.congestion, load[static_cast<std::size_t>(e)]);
          steiner_adj[static_cast<std::size_t>(v)].push_back({p, e});
          steiner_adj[static_cast<std::size_t>(p)].push_back({v, e});
          touched.push_back(v);
          touched.push_back(p);
        }
        if (parent[static_cast<std::size_t>(v)] != kNoNode)
          cnt[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])] +=
              below;
      }
      if (!touched.empty()) {
        // Steiner subtree diameter by double BFS from any member of the
        // fragment (the first in `members` order with this component id).
        NodeId src = kNoNode;
        for (const NodeId v : members) {
          if (comp[static_cast<std::size_t>(v)] == comps[ci]) {
            src = v;
            break;
          }
        }
        const auto [far, d1] = farthest_in_steiner(src);
        (void)d1;
        q.dilation = std::max(q.dilation, farthest_in_steiner(far).second);
        for (const NodeId v : touched)
          steiner_adj[static_cast<std::size_t>(v)].clear();
      }
      // The reverse fold left member counts accumulated along root paths;
      // clear by re-walking the component (cheap, already O(comp)).
      for (const NodeId v : order) cnt[static_cast<std::size_t>(v)] = 0;
    }
    // Components that held members but were skipped (single-member
    // fragments) still carry their +1 marks; clear them too.
    for (const NodeId v : members) cnt[static_cast<std::size_t>(v)] = 0;
  }
  return q;
}

std::vector<EdgeId> steiner_subtree_edges(const Graph& g,
                                          const SpanningTree& tree,
                                          const std::vector<NodeId>& members) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  LCS_CHECK(tree.depth.size() == n, "Steiner query tree/graph size mismatch");
  std::vector<std::int32_t> cnt(n, 0);
  for (const NodeId v : members) {
    LCS_CHECK(v >= 0 && static_cast<std::size_t>(v) < n,
              "Steiner member out of range");
    LCS_CHECK(cnt[static_cast<std::size_t>(v)] == 0,
              "duplicate Steiner member " + std::to_string(v));
    cnt[static_cast<std::size_t>(v)] = 1;
  }
  const auto total = util::checked_cast<std::int32_t>(members.size());
  if (total < 2) return {};

  // Top-down BFS order via the children lists, folded in reverse: the edge
  // above v is in the Steiner subtree iff v's subtree holds some but not
  // all members.
  std::vector<NodeId> order;
  order.reserve(n);
  order.push_back(tree.root);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (const EdgeId ce : tree.children_edges[static_cast<std::size_t>(v)])
      order.push_back(g.other_endpoint(ce, v));
  }
  LCS_CHECK(order.size() == n, "Steiner query tree does not span the graph");

  std::vector<EdgeId> edges;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (v == tree.root) continue;
    const std::int32_t below = cnt[static_cast<std::size_t>(v)];
    if (below > 0 && below < total)
      edges.push_back(tree.parent_edge[static_cast<std::size_t>(v)]);
    cnt[static_cast<std::size_t>(
        tree.parent[static_cast<std::size_t>(v)])] += below;
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace lcs
