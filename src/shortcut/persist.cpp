#include "shortcut/persist.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"
#include "util/bytes.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

constexpr char kRecordMagic[4] = {'L', 'C', 'S', 'S'};

}  // namespace

SpanningTree tree_from_parent_edges(const Graph& g, NodeId root,
                                    std::vector<EdgeId> parent_edge) {
  const NodeId n = g.num_nodes();
  LCS_CHECK(root >= 0 && root < n, "shortcut record root out of range");
  LCS_CHECK(parent_edge.size() == static_cast<std::size_t>(n),
            "shortcut record parent-edge count mismatch");

  SpanningTree tree;
  tree.root = root;
  tree.parent_edge = std::move(parent_edge);
  tree.parent.assign(static_cast<std::size_t>(n), kNoNode);
  tree.depth.assign(static_cast<std::size_t>(n), -1);
  tree.children_edges.resize(static_cast<std::size_t>(n));

  LCS_CHECK(tree.parent_edge[static_cast<std::size_t>(root)] == kNoEdge,
            "shortcut record root has a parent edge");
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    LCS_CHECK(pe >= 0 && pe < g.num_edges(),
              "shortcut record parent edge out of range at node " +
                  std::to_string(v));
    const auto& ed = g.edge(pe);
    LCS_CHECK(ed.u == v || ed.v == v,
              "shortcut record parent edge not incident to node " +
                  std::to_string(v));
    const NodeId parent = g.other_endpoint(pe, v);
    tree.parent[static_cast<std::size_t>(v)] = parent;
    tree.children_edges[static_cast<std::size_t>(parent)].push_back(pe);
  }
  // Children in edge-id order: the construction order is not persisted and
  // nothing rendered from a record depends on it, so pick the canonical one.
  for (auto& edges : tree.children_edges)
    std::sort(edges.begin(), edges.end());

  // Depths by walking down from the root; a cycle or disconnection in the
  // parent edges leaves some depth unset and is diagnosed below.
  std::vector<NodeId> frontier{root};
  tree.depth[static_cast<std::size_t>(root)] = 0;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const EdgeId ce : tree.children_edges[static_cast<std::size_t>(v)]) {
        const NodeId c = g.other_endpoint(ce, v);
        LCS_CHECK(tree.depth[static_cast<std::size_t>(c)] < 0,
                  "shortcut record parent edges contain a cycle");
        tree.depth[static_cast<std::size_t>(c)] =
            tree.depth[static_cast<std::size_t>(v)] + 1;
        next.push_back(c);
        ++visited;
      }
    }
    frontier = std::move(next);
  }
  LCS_CHECK(visited == static_cast<std::size_t>(n),
            "shortcut record parent edges do not span the graph");
  tree.finalize(g);
  return tree;
}

std::string encode_shortcut_record(const ShortcutRunRecord& record) {
  ByteWriter w;
  w.put_u64(record.spec_hash);
  w.put_u64(record.partition_hash);
  w.put_u64(record.seed);
  w.put_string(record.backend);

  w.put_i32(record.tree.root);
  w.put_u64(record.tree.parent_edge.size());
  for (const EdgeId pe : record.tree.parent_edge) w.put_i32(pe);

  w.put_u64(record.shortcut.parts_on_edge.size());
  std::uint32_t nonempty = 0;
  for (const auto& parts : record.shortcut.parts_on_edge)
    if (!parts.empty()) ++nonempty;
  w.put_u32(nonempty);
  for (std::size_t e = 0; e < record.shortcut.parts_on_edge.size(); ++e) {
    const auto& parts = record.shortcut.parts_on_edge[e];
    if (parts.empty()) continue;
    w.put_i32(util::checked_cast<EdgeId>(e));
    w.put_u32(util::checked_cast<std::uint32_t>(parts.size()));
    for (const PartId p : parts) w.put_i32(p);
  }

  w.put_i32(record.stats.iterations);
  w.put_i32(record.stats.trials);
  w.put_i32(record.stats.used_c);
  w.put_i32(record.stats.used_b);
  w.put_i64(record.stats.rounds);

  w.put_i64(record.setup_rounds);
  w.put_i64(record.setup_messages);
  w.put_i64(record.algo_rounds);
  w.put_i64(record.algo_messages);

  w.put_u32(util::checked_cast<std::uint32_t>(record.charges.size()));
  for (const auto& [label, rounds] : record.charges) {
    w.put_string(label);
    w.put_i64(rounds);
  }

  w.put_u32(util::checked_cast<std::uint32_t>(record.backend_stats.size()));
  for (const auto& [label, value] : record.backend_stats) {
    w.put_string(label);
    w.put_i64(value);
  }
  return w.take();
}

ShortcutRunRecord decode_shortcut_record(std::string_view bytes,
                                         const Graph& g,
                                         std::uint64_t expect_spec_hash,
                                         std::uint64_t expect_partition_hash,
                                         std::string_view expect_backend) {
  ByteReader r(bytes, "shortcut record");
  ShortcutRunRecord record;
  record.spec_hash = r.get_u64("spec hash");
  record.partition_hash = r.get_u64("partition hash");
  record.seed = r.get_u64("seed");
  record.backend = std::string(r.get_string("backend"));
  LCS_CHECK(record.spec_hash == expect_spec_hash &&
                record.partition_hash == expect_partition_hash,
            "shortcut record key mismatch (cached for a different scenario "
            "or partition)");
  LCS_CHECK(record.backend == expect_backend,
            "shortcut record backend mismatch (cached '" + record.backend +
                "', requested '" + std::string(expect_backend) + "')");

  const NodeId root = r.get_i32("tree root");
  const std::uint64_t n = r.get_u64("tree node count");
  LCS_CHECK(n == static_cast<std::uint64_t>(g.num_nodes()),
            "shortcut record is for " + std::to_string(n) +
                " nodes, graph has " + std::to_string(g.num_nodes()));
  std::vector<EdgeId> parent_edge;
  parent_edge.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t v = 0; v < n; ++v)
    parent_edge.push_back(r.get_i32("parent edge"));
  record.tree = tree_from_parent_edges(g, root, std::move(parent_edge));

  const std::uint64_t m = r.get_u64("edge count");
  LCS_CHECK(m == static_cast<std::uint64_t>(g.num_edges()),
            "shortcut record is for " + std::to_string(m) +
                " edges, graph has " + std::to_string(g.num_edges()));
  record.shortcut.parts_on_edge.assign(static_cast<std::size_t>(m), {});
  const std::uint32_t nonempty = r.get_u32("nonempty edge count");
  for (std::uint32_t i = 0; i < nonempty; ++i) {
    const EdgeId e = r.get_i32("shortcut edge id");
    LCS_CHECK(e >= 0 && static_cast<std::uint64_t>(e) < m,
              "shortcut record edge id out of range");
    auto& parts = record.shortcut.parts_on_edge[static_cast<std::size_t>(e)];
    LCS_CHECK(parts.empty(), "shortcut record repeats edge " + std::to_string(e));
    const std::uint32_t count = r.get_u32("part count");
    LCS_CHECK(count >= 1, "shortcut record lists edge with no parts");
    parts.reserve(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      const PartId p = r.get_i32("part id");
      LCS_CHECK(parts.empty() || parts.back() < p,
                "shortcut record part list not strictly increasing on edge " +
                    std::to_string(e));
      parts.push_back(p);
    }
  }

  record.stats.iterations = r.get_i32("iterations");
  record.stats.trials = r.get_i32("trials");
  record.stats.used_c = r.get_i32("used_c");
  record.stats.used_b = r.get_i32("used_b");
  record.stats.rounds = r.get_i64("stats rounds");

  record.setup_rounds = r.get_i64("setup rounds");
  record.setup_messages = r.get_i64("setup messages");
  record.algo_rounds = r.get_i64("algorithm rounds");
  record.algo_messages = r.get_i64("algorithm messages");

  const std::uint32_t charge_count = r.get_u32("charge count");
  record.charges.reserve(charge_count);
  for (std::uint32_t i = 0; i < charge_count; ++i) {
    std::string label(r.get_string("charge label"));
    const std::int64_t rounds = r.get_i64("charge rounds");
    record.charges.emplace_back(std::move(label), rounds);
  }

  const std::uint32_t stat_count = r.get_u32("backend stat count");
  record.backend_stats.reserve(stat_count);
  for (std::uint32_t i = 0; i < stat_count; ++i) {
    std::string label(r.get_string("backend stat label"));
    const std::int64_t value = r.get_i64("backend stat value");
    record.backend_stats.emplace_back(std::move(label), value);
  }
  r.expect_done();
  return record;
}

void save_shortcut_record(const ShortcutRunRecord& record,
                          const std::string& path) {
  ByteWriter header;
  header.put_u32(kShortcutRecordVersion);
  std::string bytes(kRecordMagic, 4);
  bytes += header.bytes();
  bytes += encode_shortcut_record(record);
  save_bytes_atomic(bytes, path);
}

ShortcutRunRecord load_shortcut_record(const std::string& path, const Graph& g,
                                       std::uint64_t expect_spec_hash,
                                       std::uint64_t expect_partition_hash,
                                       std::string_view expect_backend) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  LCS_CHECK(in.is_open(), "cannot open shortcut record '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  LCS_CHECK(bytes.size() >= 8 &&
                std::memcmp(bytes.data(), kRecordMagic, 4) == 0,
            "not an LCS shortcut record (bad magic): '" + path + "'");
  ByteReader header(std::string_view(bytes).substr(4, 4), "shortcut record");
  const std::uint32_t version = header.get_u32("version");
  LCS_CHECK(version == kShortcutRecordVersion,
            "unsupported shortcut record version " + std::to_string(version));
  return decode_shortcut_record(std::string_view(bytes).substr(8), g,
                                expect_spec_hash, expect_partition_hash,
                                expect_backend);
}

}  // namespace lcs
