/// \file find_shortcut.h
/// The FindShortcut framework (Theorem 3) and the unknown-parameter
/// doubling wrapper (Appendix A).
///
/// FindShortcut alternates a core subroutine (CoreFast by default, CoreSlow
/// optionally) with Verification: each iteration computes a tentative
/// shortcut whose congestion is O(c), keeps the parts whose block count is
/// at most 3b ("good" parts, at least half of the remainder w.h.p.), and
/// retries with the rest. After O(log N) iterations every part is fixed;
/// the union of the fixed subgraphs has congestion O(c log N) and block
/// parameter 3b. Whether any part remains is decided by an O(D)
/// OR-convergecast over the tree, exactly as in Section 5.2.
///
/// The doubling wrapper removes the need to know (b, c): it runs trials
/// with (b̂, ĉ) = (2^t, 2^t), declaring a trial failed when the iteration
/// budget is exhausted, which adds a log(bc) factor — and lets the
/// construction *discover* much better shortcuts than the theoretical bound
/// whenever they exist (Appendix A's observation).
#pragma once

#include <optional>

#include "congest/network.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct FindShortcutParams {
  std::int32_t c = 1;   ///< assumed congestion of an existing shortcut
  std::int32_t b = 1;   ///< assumed block parameter of an existing shortcut
  bool use_fast = true; ///< CoreFast (randomized) vs CoreSlow (deterministic)
  double gamma = 4.0;   ///< CoreFast sampling constant
  std::uint64_t seed = 1;  ///< shared-randomness seed
  /// Iteration cap per trial; 0 = automatic (2·log2(N) + 8).
  std::int32_t max_iterations = 0;
};

struct FindShortcutStats {
  std::int32_t iterations = 0;  ///< core+verify iterations actually run
  std::int32_t trials = 1;      ///< doubling trials (1 when params known)
  std::int32_t used_c = 0;      ///< c of the successful trial
  std::int32_t used_b = 0;      ///< b of the successful trial
  std::int64_t rounds = 0;      ///< CONGEST rounds consumed by the call
};

struct FindShortcutResult {
  ShortcutState state;  ///< combined shortcut + distributed representation
  FindShortcutStats stats;
};

/// Theorem 3: construct a T-restricted shortcut for `partition`, assuming a
/// (c, b) shortcut exists. Throws CheckFailure if the iteration budget is
/// exhausted (i.e. the assumption was too optimistic — use the doubling
/// variant when unsure).
FindShortcutResult find_shortcut(congest::Network& net,
                                 const SpanningTree& tree,
                                 const Partition& partition,
                                 const FindShortcutParams& params);

/// Appendix A: construct a shortcut without knowing (b, c), doubling the
/// estimates after every failed trial. `params.c` / `params.b` seed the
/// first trial.
FindShortcutResult find_shortcut_doubling(congest::Network& net,
                                          const SpanningTree& tree,
                                          const Partition& partition,
                                          FindShortcutParams params);

}  // namespace lcs
