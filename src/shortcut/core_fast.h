/// \file core_fast.h
/// The randomized core subroutine (Algorithm 2 / Lemma 5), O(D log n + c)
/// rounds.
///
/// CoreSlow's bottleneck is streaming up to 2c part ids over every tree
/// edge. CoreFast estimates the contention instead: a shared-randomness
/// seed is flooded over the tree (one word, O(D) rounds); every part then
/// becomes *active* with probability p = γ·log₂(n)/(2c), consistently at
/// all of its nodes, by hashing (seed, part id). Only active ids stream
/// bottom-up, and an edge is declared unusable when ≥ 4c·p = 2γ·log₂(n)
/// active ids want it — so the streaming phase costs O(D log n) rounds.
/// Finally *all* ids are routed up the tree until their first unusable edge
/// (a Lemma 2 tree-routing instance, O(D + c) rounds w.h.p.).
///
/// Guarantees (Lemma 5): congestion ≤ 8c w.h.p.; at least half the parts
/// get ≤ 3b block components whenever a (c, b) shortcut exists.
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/core_slow.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct CoreFastParams {
  std::int32_t c = 1;        ///< assumed congestion of the existential shortcut
  double gamma = 4.0;        ///< sampling constant γ (paper: "sufficiently large")
  std::uint64_t seed = 1;    ///< shared-randomness seed (flooded from the root)
};

/// Run CoreFast. Interface mirrors core_slow(); rounds accounted in `net`
/// include the seed flood, the sampled streaming phase, and the full
/// routing phase.
CoreResult core_fast(congest::Network& net, const SpanningTree& tree,
                     const congest::PerNode<PartId>& active_part_of,
                     const CoreFastParams& params);

/// The sampling probability CoreFast uses for a given (n, c, γ), clamped to
/// (0, 1]. Exposed for tests and the sampling ablation bench.
double core_fast_sampling_probability(NodeId n, std::int32_t c, double gamma);

}  // namespace lcs
