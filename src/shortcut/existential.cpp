#include "shortcut/existential.h"

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

/// Nodes ordered by decreasing depth: a bottom-up sweep order.
std::vector<NodeId> bottom_up_order(const SpanningTree& tree) {
  std::vector<NodeId> order(static_cast<std::size_t>(tree.num_nodes()));
  for (NodeId v = 0; v < tree.num_nodes(); ++v)
    order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree.depth[static_cast<std::size_t>(a)] >
           tree.depth[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

Shortcut greedy_blocked_shortcut(const Graph& g, const SpanningTree& tree,
                                 const Partition& partition,
                                 std::int32_t threshold) {
  LCS_CHECK(threshold >= 0, "threshold must be non-negative");
  Shortcut s;
  s.parts_on_edge.resize(static_cast<std::size_t>(g.num_edges()));

  // ids_below[v]: distinct part ids visible at v from below through usable
  // edges (mirrors L_v of Algorithm 1).
  std::vector<std::set<PartId>> ids_below(
      static_cast<std::size_t>(g.num_nodes()));
  for (const NodeId v : bottom_up_order(tree)) {
    auto& ids = ids_below[static_cast<std::size_t>(v)];
    if (partition.part(v) != kNoPart) ids.insert(partition.part(v));

    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    if (pe == kNoEdge) continue;
    if (util::checked_cast<std::int32_t>(ids.size()) > threshold) {
      // Unusable: nothing propagates past this edge.
      continue;
    }
    s.parts_on_edge[static_cast<std::size_t>(pe)] =
        std::vector<PartId>(ids.begin(), ids.end());
    auto& parent_ids =
        ids_below[static_cast<std::size_t>(
            tree.parent[static_cast<std::size_t>(v)])];
    parent_ids.insert(ids.begin(), ids.end());
  }
  return s;
}

Shortcut full_ancestor_shortcut(const Graph& g, const SpanningTree& tree,
                                const Partition& partition) {
  // With an infinite threshold nothing is ever unusable.
  return greedy_blocked_shortcut(g, tree, partition,
                                 std::max(g.num_nodes(), 1));
}

std::vector<ParetoPoint> pareto_sweep(const Graph& g, const SpanningTree& tree,
                                      const Partition& partition) {
  std::vector<ParetoPoint> points;
  const std::int32_t c_full =
      congestion(g, partition, full_ancestor_shortcut(g, tree, partition));
  for (std::int32_t threshold = 1;; threshold *= 2) {
    const Shortcut s =
        greedy_blocked_shortcut(g, tree, partition, threshold);
    ParetoPoint point;
    point.threshold = threshold;
    point.congestion = congestion(g, partition, s);
    point.block = block_parameter(g, partition, s);
    points.push_back(point);
    if (threshold >= c_full) break;
  }
  return points;
}

ParetoPoint best_existential_for_block(const Graph& g,
                                       const SpanningTree& tree,
                                       const Partition& partition,
                                       std::int32_t b) {
  LCS_CHECK(b >= 1, "block budget must be positive");
  const auto points = pareto_sweep(g, tree, partition);
  const ParetoPoint* best = nullptr;
  for (const auto& p : points) {
    if (p.block <= b && (best == nullptr || p.congestion < best->congestion))
      best = &p;
  }
  LCS_CHECK(best != nullptr,
            "sweep must contain a block-1 point (full ancestor)");
  return *best;
}

}  // namespace lcs
