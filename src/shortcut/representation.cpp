#include "shortcut/representation.h"

#include <algorithm>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "shortcut/tree_routing.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

ShortcutState compute_shortcut_state(congest::Network& net,
                                     const SpanningTree& tree,
                                     const Partition& partition,
                                     Shortcut shortcut) {
  const auto n = static_cast<std::size_t>(net.num_nodes());
  const auto m = static_cast<std::size_t>(net.graph().num_edges());

  ShortcutState state;
  state.shortcut = std::move(shortcut);
  state.root_id_on_edge.resize(m);
  state.root_depth_on_edge.resize(m);
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t k = state.shortcut.parts_on_edge[e].size();
    state.root_id_on_edge[e].assign(k, kNoNode);
    state.root_depth_on_edge[e].assign(k, -1);
  }
  state.own_block_root.assign(n, kNoNode);
  state.own_block_root_depth.assign(n, -1);
  state.own_singleton.assign(n, false);

  // Each component root floods its own id; the depth rides along in the
  // message. At every node the broadcast fills the parent-edge slot (each
  // component edge is filled exactly once, by its lower endpoint) and, for
  // nodes of the part itself, the own-block fields.
  auto root_value = [](NodeId root, PartId) -> std::uint64_t {
    return static_cast<std::uint64_t>(root);
  };
  auto on_receive = [&](NodeId v, PartId j, std::uint64_t value,
                        std::int32_t root_depth) {
    const auto root = util::checked_cast<NodeId>(value);
    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    if (pe != kNoEdge) {
      const auto& list =
          state.shortcut.parts_on_edge[static_cast<std::size_t>(pe)];
      const auto it = std::lower_bound(list.begin(), list.end(), j);
      if (it != list.end() && *it == j) {
        const auto idx = static_cast<std::size_t>(it - list.begin());
        state.root_id_on_edge[static_cast<std::size_t>(pe)][idx] = root;
        state.root_depth_on_edge[static_cast<std::size_t>(pe)][idx] =
            root_depth;
      }
    }
    if (partition.part(v) == j) {
      state.own_block_root[static_cast<std::size_t>(v)] = root;
      state.own_block_root_depth[static_cast<std::size_t>(v)] = root_depth;
    }
  };
  run_component_broadcast(net, tree, state.shortcut, root_value, on_receive);

  // Singleton components: a part node with no incident own-part shortcut
  // edge roots its own (empty) component. This is purely local knowledge.
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const PartId j = partition.part(v);
    if (j == kNoPart) continue;
    if (state.own_block_root[static_cast<std::size_t>(v)] == kNoNode) {
      state.own_block_root[static_cast<std::size_t>(v)] = v;
      state.own_block_root_depth[static_cast<std::size_t>(v)] =
          tree.depth[static_cast<std::size_t>(v)];
      state.own_singleton[static_cast<std::size_t>(v)] = true;
    }
  }

  // Every (edge, part) slot must have been filled.
  for (std::size_t e = 0; e < m; ++e) {
    for (const NodeId r : state.root_id_on_edge[e])
      LCS_CHECK(r != kNoNode, "component broadcast missed an edge slot");
  }
  return state;
}

}  // namespace lcs
