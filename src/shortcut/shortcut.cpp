#include "shortcut/shortcut.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/union_find.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

bool Shortcut::edge_used_by(EdgeId e, PartId i) const {
  const auto& list = parts_on_edge[static_cast<std::size_t>(e)];
  return std::binary_search(list.begin(), list.end(), i);
}

std::vector<std::vector<EdgeId>> Shortcut::edges_of_parts(
    PartId num_parts) const {
  std::vector<std::vector<EdgeId>> result(static_cast<std::size_t>(num_parts));
  for (EdgeId e = 0; e < util::checked_cast<EdgeId>(parts_on_edge.size()); ++e) {
    for (const PartId i : parts_on_edge[static_cast<std::size_t>(e)])
      result[static_cast<std::size_t>(i)].push_back(e);
  }
  return result;
}

void validate_shortcut(const Graph& g, const SpanningTree& tree,
                       const Partition& p, const Shortcut& s) {
  LCS_CHECK(s.parts_on_edge.size() == static_cast<std::size_t>(g.num_edges()),
            "shortcut must cover every edge id");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& list = s.parts_on_edge[static_cast<std::size_t>(e)];
    if (!list.empty())
      LCS_CHECK(tree.is_tree_edge(e),
                "T-restriction violated: non-tree edge assigned");
    LCS_CHECK(std::is_sorted(list.begin(), list.end()) &&
                  std::adjacent_find(list.begin(), list.end()) == list.end(),
              "part lists must be strictly increasing");
    for (const PartId i : list)
      LCS_CHECK(i >= 0 && i < p.num_parts, "part id out of range");
  }
}

std::int32_t congestion(const Graph& g, const Partition& p,
                        const Shortcut& s) {
  std::int32_t worst = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& list = s.parts_on_edge[static_cast<std::size_t>(e)];
    auto count = util::checked_cast<std::int32_t>(list.size());
    const auto& ed = g.edge(e);
    const PartId pu = p.part(ed.u);
    // e ∈ G[Pi] iff both endpoints belong to the same part i.
    if (pu != kNoPart && pu == p.part(ed.v) &&
        !std::binary_search(list.begin(), list.end(), pu)) {
      ++count;
    }
    worst = std::max(worst, count);
  }
  return worst;
}

namespace {

/// Involved nodes of part i (Pi members plus Hi endpoints), sorted unique,
/// and Hi's edge list.
struct PartView {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> shortcut_edges;
  std::vector<NodeId> members;
};

PartView make_part_view(const Graph& g, const std::vector<NodeId>& members,
                        const std::vector<EdgeId>& shortcut_edges) {
  PartView view;
  view.members = members;
  view.shortcut_edges = shortcut_edges;
  view.nodes = members;
  for (const EdgeId e : shortcut_edges) {
    view.nodes.push_back(g.edge(e).u);
    view.nodes.push_back(g.edge(e).v);
  }
  std::sort(view.nodes.begin(), view.nodes.end());
  view.nodes.erase(std::unique(view.nodes.begin(), view.nodes.end()),
                   view.nodes.end());
  return view;
}

std::size_t local_index(const std::vector<NodeId>& sorted_nodes, NodeId v) {
  const auto it =
      std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), v);
  LCS_CHECK(it != sorted_nodes.end() && *it == v, "node not in part view");
  return static_cast<std::size_t>(it - sorted_nodes.begin());
}

std::int32_t count_block_components(const Graph& g, const PartView& view) {
  UnionFind uf(view.nodes.size());
  for (const EdgeId e : view.shortcut_edges) {
    uf.unite(local_index(view.nodes, g.edge(e).u),
             local_index(view.nodes, g.edge(e).v));
  }
  // Count distinct components that contain a member of Pi.
  std::vector<std::size_t> roots;
  roots.reserve(view.members.size());
  for (const NodeId v : view.members)
    roots.push_back(uf.find(local_index(view.nodes, v)));
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return util::checked_cast<std::int32_t>(roots.size());
}

/// Local adjacency of G[Pi] + Hi over view.nodes indices.
std::vector<std::vector<std::size_t>> part_subgraph_adjacency(
    const Graph& g, const Partition& p, PartId i, const PartView& view) {
  std::vector<std::vector<std::size_t>> adj(view.nodes.size());
  auto add = [&](NodeId a, NodeId b) {
    const std::size_t la = local_index(view.nodes, a);
    const std::size_t lb = local_index(view.nodes, b);
    adj[la].push_back(lb);
    adj[lb].push_back(la);
  };
  for (const EdgeId e : view.shortcut_edges) add(g.edge(e).u, g.edge(e).v);
  for (const NodeId v : view.members) {
    for (const auto& nb : g.neighbors(v)) {
      // Each G[Pi] edge from the lower endpoint only, to avoid duplicates.
      if (p.part(nb.node) == i && v < nb.node) add(v, nb.node);
    }
  }
  return adj;
}

/// BFS in a local adjacency structure; returns distances (-1 unreachable).
std::vector<std::int32_t> local_bfs(
    const std::vector<std::vector<std::size_t>>& adj, std::size_t src) {
  std::vector<std::int32_t> dist(adj.size(), -1);
  std::deque<std::size_t> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const std::size_t w : adj[v]) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

constexpr std::int32_t kInfiniteDiameter =
    std::numeric_limits<std::int32_t>::max();

/// Exact diameter of the local subgraph; kInfiniteDiameter if disconnected.
std::int32_t local_diameter_exact(
    const std::vector<std::vector<std::size_t>>& adj) {
  std::int32_t best = 0;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    const auto dist = local_bfs(adj, v);
    for (const std::int32_t d : dist) {
      if (d < 0) return kInfiniteDiameter;
      best = std::max(best, d);
    }
  }
  return best;
}

std::int32_t local_diameter_double_sweep(
    const std::vector<std::vector<std::size_t>>& adj) {
  if (adj.empty()) return 0;
  auto sweep = [&](std::size_t src) -> std::pair<std::size_t, std::int32_t> {
    const auto dist = local_bfs(adj, src);
    std::size_t far = src;
    std::int32_t far_d = 0;
    for (std::size_t v = 0; v < dist.size(); ++v) {
      if (dist[v] < 0) return {v, kInfiniteDiameter};
      if (dist[v] > far_d) {
        far_d = dist[v];
        far = v;
      }
    }
    return {far, far_d};
  };
  const auto [far1, d1] = sweep(0);
  if (d1 == kInfiniteDiameter) return kInfiniteDiameter;
  return sweep(far1).second;
}

}  // namespace

std::int32_t block_component_count(const Graph& g, const Partition& p,
                                   const Shortcut& s, PartId i) {
  LCS_CHECK(i >= 0 && i < p.num_parts, "part id out of range");
  const auto groups = p.members();
  const auto edges = s.edges_of_parts(p.num_parts);
  const auto view =
      make_part_view(g, groups[static_cast<std::size_t>(i)],
                     edges[static_cast<std::size_t>(i)]);
  return count_block_components(g, view);
}

std::int32_t block_parameter(const Graph& g, const Partition& p,
                             const Shortcut& s) {
  const auto groups = p.members();
  const auto edges = s.edges_of_parts(p.num_parts);
  std::int32_t worst = 0;
  for (PartId i = 0; i < p.num_parts; ++i) {
    const auto view =
        make_part_view(g, groups[static_cast<std::size_t>(i)],
                       edges[static_cast<std::size_t>(i)]);
    worst = std::max(worst, count_block_components(g, view));
  }
  return worst;
}

std::int32_t dilation(const Graph& g, const Partition& p, const Shortcut& s) {
  const auto groups = p.members();
  const auto edges = s.edges_of_parts(p.num_parts);
  std::int32_t worst = 0;
  for (PartId i = 0; i < p.num_parts; ++i) {
    const auto view =
        make_part_view(g, groups[static_cast<std::size_t>(i)],
                       edges[static_cast<std::size_t>(i)]);
    const auto adj = part_subgraph_adjacency(g, p, i, view);
    const std::int32_t d = local_diameter_exact(adj);
    if (d == kInfiniteDiameter) return kInfiniteDiameter;
    worst = std::max(worst, d);
  }
  return worst;
}

std::int32_t dilation_estimate(const Graph& g, const Partition& p,
                               const Shortcut& s) {
  const auto groups = p.members();
  const auto edges = s.edges_of_parts(p.num_parts);
  std::int32_t worst = 0;
  for (PartId i = 0; i < p.num_parts; ++i) {
    const auto view =
        make_part_view(g, groups[static_cast<std::size_t>(i)],
                       edges[static_cast<std::size_t>(i)]);
    const auto adj = part_subgraph_adjacency(g, p, i, view);
    const std::int32_t d = local_diameter_double_sweep(adj);
    if (d == kInfiniteDiameter) return kInfiniteDiameter;
    worst = std::max(worst, d);
  }
  return worst;
}

std::int64_t lemma1_dilation_bound(const SpanningTree& tree, std::int32_t b) {
  return static_cast<std::int64_t>(b) * (2 * tree.height + 1);
}

}  // namespace lcs
