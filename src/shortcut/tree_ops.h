/// \file tree_ops.h
/// Small whole-tree primitives used by the construction framework:
///
///  * `broadcast_word_from_root` — the root floods one word down the tree in
///    O(D) rounds. Used to distribute the shared-randomness seed (the paper
///    shares O(log² n) random bits in O(D + log n) rounds; our protocols
///    need one 64-bit word, which fits a single message).
///  * `global_or` — an OR-convergecast up the tree followed by a broadcast
///    of the result, O(D) rounds. FindShortcut uses it as the "are any
///    parts still unfinished?" termination check ("the check can be
///    executed via a O(D) convergecast on the entire tree T", Section 5.2).
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Flood `word` (known to the tree root) down all tree edges; returns the
/// word as received by every node. O(height) rounds.
congest::PerNode<std::uint64_t> broadcast_word_from_root(
    congest::Network& net, const SpanningTree& tree, std::uint64_t word);

/// OR of the per-node bits, computed by convergecast + broadcast on the
/// tree so that *every node* learns the result. O(height) rounds.
bool global_or(congest::Network& net, const SpanningTree& tree,
               const congest::PerNode<bool>& bits);

}  // namespace lcs
