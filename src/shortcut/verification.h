/// \file verification.h
/// The Verification subroutine (Lemmas 3 and 6): given a tentative
/// T-restricted shortcut, decide *for every part in parallel* whether its
/// shortcut subgraph has at most `b_limit` block components, in
/// O(b_limit · (D + c)) rounds.
///
/// Following the paper's proof, each part's subgraph is treated as a
/// supergraph of block components (supernodes):
///  1. every supernode floods the minimum block id for `b_limit` supersteps
///     and keeps the smallest seen (candidate leader);
///  2. supernodes that believe themselves leader grow a BFS tree over the
///     supergraph (distance relaxation for `b_limit` supersteps);
///  3. each non-root supernode picks one boundary edge to its BFS parent,
///     and supernode counts are accumulated root-ward, deepest level first;
///  4. the root's verdict (count ≤ b_limit and no anomaly) floods back.
///
/// Anomalies — two adjacent supernodes with different leaders (the paper's
/// "two neighboring supernodes in different BFS trees"), or a reached
/// supernode adjacent to an unreached one — raise flags that saturate the
/// count, so a part passes only if its supergraph really has a single
/// leader, a complete BFS, and at most `b_limit` supernodes. Every member
/// of a part reaches the same verdict (checked).
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct VerificationResult {
  /// Verdict at each node for its own part (false for part-less nodes).
  congest::PerNode<bool> node_good;
  /// Part-level verdicts, derived from the (unanimous) member verdicts.
  /// Parts with no members are reported as false.
  std::vector<bool> part_good;
};

/// Run Verification with block budget `b_limit` >= 1. `partition` may leave
/// nodes unassigned; `state` must be the representation of the tentative
/// shortcut under the same partition.
VerificationResult verify_block_parameter(congest::Network& net,
                                          const SpanningTree& tree,
                                          const Partition& partition,
                                          const ShortcutState& state,
                                          std::int32_t b_limit,
                                          const NeighborParts& neighbor_parts);

}  // namespace lcs
