#include "shortcut/verification.h"

#include <algorithm>
#include <limits>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"
#include "util/check.h"

namespace lcs {

namespace {

constexpr std::uint64_t kIdentityMin = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kInfDepth = 0xFFFFFFFFu;
/// A count contribution that can never pass `count <= b_limit`; used to
/// fold anomaly flags into the supernode count.
constexpr std::uint64_t kHuge = std::uint64_t{1} << 40;
constexpr std::uint64_t kSatCap = std::uint64_t{1} << 62;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return std::min(a + b, kSatCap);
}

std::uint64_t pack(std::uint64_t hi32, std::uint64_t lo32) {
  return (hi32 << 32) | (lo32 & 0xFFFFFFFFu);
}

enum Verdict : std::uint64_t { kUnknown = 0, kGood = 1, kBad = 2 };

}  // namespace

VerificationResult verify_block_parameter(congest::Network& net,
                                          const SpanningTree& tree,
                                          const Partition& partition,
                                          const ShortcutState& state,
                                          std::int32_t b_limit,
                                          const NeighborParts& neighbor_parts) {
  LCS_CHECK(b_limit >= 1, "block budget must be positive");
  const auto n = static_cast<std::size_t>(net.num_nodes());

  auto is_member = [&](NodeId v, PartId j) {
    return j != kNoPart && partition.part(v) == j;
  };

  // Per-node protocol state (each node only touches its own slot).
  std::vector<std::uint64_t> lead(n, kIdentityMin);
  std::vector<std::uint64_t> depth_s(n, kInfDepth);
  std::vector<char> flag(n, 0);
  std::vector<std::uint64_t> best_cand(n, kInfDepth);
  std::vector<std::uint64_t> parent_choice(n, kIdentityMin);
  std::vector<std::uint64_t> pending_in(n, 0);
  std::vector<std::uint64_t> last_agg(n, 0);
  std::vector<std::uint64_t> verdict(n, kUnknown);

  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (partition.part(v) != kNoPart)
      lead[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(
          state.own_block_root[static_cast<std::size_t>(v)]);
  }

  const auto u64 = [](NodeId v) { return static_cast<std::size_t>(v); };

  // --- Phase V1: leader min-flood over the supergraph --------------------
  {
    SuperstepHooks hooks;
    hooks.identity = kIdentityMin;
    hooks.combine = [](std::uint64_t a, std::uint64_t b) {
      return std::min(a, b);
    };
    hooks.contribution = [&](NodeId v, PartId j) {
      return is_member(v, j) ? lead[u64(v)] : kIdentityMin;
    };
    hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
      if (is_member(v, j)) lead[u64(v)] = std::min(lead[u64(v)], agg);
    };
    hooks.cross_message = [&](NodeId v, NodeId, EdgeId) {
      return std::optional<std::uint64_t>(lead[u64(v)]);
    };
    hooks.on_cross = [&](NodeId v, NodeId, EdgeId, std::uint64_t value) {
      lead[u64(v)] = std::min(lead[u64(v)], value);
    };
    for (std::int32_t step = 0; step < b_limit; ++step)
      run_superstep(net, tree, partition, state, neighbor_parts, hooks);
  }

  // --- Phase V2: BFS depths from self-believed leader supernodes ---------
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (partition.part(v) == kNoPart) continue;
    const auto block = static_cast<std::uint64_t>(
        state.own_block_root[u64(v)]);
    depth_s[u64(v)] = (lead[u64(v)] == block) ? 0 : kInfDepth;
  }
  {
    SuperstepHooks hooks;
    hooks.identity = kIdentityMin;
    hooks.combine = [](std::uint64_t a, std::uint64_t b) {
      return std::min(a, b);
    };
    hooks.cross_message = [&](NodeId v, NodeId, EdgeId) {
      return std::optional<std::uint64_t>(
          pack(lead[u64(v)], depth_s[u64(v)]));
    };
    hooks.on_cross = [&](NodeId v, NodeId, EdgeId, std::uint64_t value) {
      const std::uint64_t other_lead = value >> 32;
      const std::uint64_t other_depth = value & 0xFFFFFFFFu;
      if (other_lead != lead[u64(v)]) {
        flag[u64(v)] = 1;
      } else if (other_depth != kInfDepth) {
        best_cand[u64(v)] = std::min(best_cand[u64(v)], other_depth + 1);
      }
    };
    hooks.contribution = [&](NodeId v, PartId j) {
      if (!is_member(v, j)) return kIdentityMin;
      return std::min(depth_s[u64(v)], best_cand[u64(v)]);
    };
    hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
      if (is_member(v, j))
        depth_s[u64(v)] = std::min<std::uint64_t>(agg, kInfDepth);
    };
    for (std::int32_t step = 0; step < b_limit; ++step) {
      std::fill(best_cand.begin(), best_cand.end(),
                static_cast<std::uint64_t>(kInfDepth));
      run_superstep(net, tree, partition, state, neighbor_parts, hooks);
    }
  }

  // --- Phase V2.5: choose one boundary edge to the BFS parent ------------
  {
    std::vector<std::uint64_t> cand_edge(n, kIdentityMin);
    SuperstepHooks hooks;
    hooks.identity = kIdentityMin;
    hooks.combine = [](std::uint64_t a, std::uint64_t b) {
      return std::min(a, b);
    };
    hooks.cross_message = [&](NodeId v, NodeId, EdgeId) {
      return std::optional<std::uint64_t>(
          pack(lead[u64(v)], depth_s[u64(v)]));
    };
    hooks.on_cross = [&](NodeId v, NodeId, EdgeId e, std::uint64_t value) {
      const std::uint64_t other_lead = value >> 32;
      const std::uint64_t other_depth = value & 0xFFFFFFFFu;
      const std::uint64_t mine = depth_s[u64(v)];
      if (other_lead != lead[u64(v)]) {
        flag[u64(v)] = 1;
      } else if (other_depth == kInfDepth && mine != kInfDepth) {
        // Same leader but unreached neighbor: the BFS did not cover the
        // supergraph within b_limit steps, so the part has too many blocks.
        flag[u64(v)] = 1;
      } else if (mine != kInfDepth && other_depth + 1 == mine) {
        cand_edge[u64(v)] =
            std::min(cand_edge[u64(v)], static_cast<std::uint64_t>(e));
      }
    };
    hooks.contribution = [&](NodeId v, PartId j) {
      return is_member(v, j) ? cand_edge[u64(v)] : kIdentityMin;
    };
    hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
      if (is_member(v, j)) parent_choice[u64(v)] = agg;
    };
    run_superstep(net, tree, partition, state, neighbor_parts, hooks);
  }

  // --- Phase V3: count supernodes up the super-BFS tree ------------------
  {
    SuperstepHooks sum_hooks;
    sum_hooks.identity = 0;
    sum_hooks.combine = sat_add;
    sum_hooks.contribution = [&](NodeId v, PartId j) -> std::uint64_t {
      if (!is_member(v, j)) return 0;
      return sat_add(pending_in[u64(v)], flag[u64(v)] ? kHuge : 0);
    };
    sum_hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
      if (is_member(v, j)) last_agg[u64(v)] = agg;
    };

    // V3.0: aggregate-only superstep so the deepest components know their
    // own flag totals before sending.
    run_superstep(net, tree, partition, state, neighbor_parts, sum_hooks);

    for (std::int32_t tau = b_limit; tau >= 1; --tau) {
      SuperstepHooks hooks = sum_hooks;
      hooks.cross_message = [&, tau](NodeId v, NodeId,
                                     EdgeId e) -> std::optional<std::uint64_t> {
        if (depth_s[u64(v)] != static_cast<std::uint64_t>(tau)) {
          return std::nullopt;
        }
        if (parent_choice[u64(v)] != static_cast<std::uint64_t>(e)) {
          return std::nullopt;
        }
        return sat_add(last_agg[u64(v)], 1);  // this component's subtree count
      };
      hooks.on_cross = [&](NodeId v, NodeId, EdgeId, std::uint64_t value) {
        pending_in[u64(v)] = sat_add(pending_in[u64(v)], value);
      };
      run_superstep(net, tree, partition, state, neighbor_parts, hooks);
    }
  }

  // --- Phase V4: verdict flood from the leader supernode ------------------
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (partition.part(v) == kNoPart) continue;
    if (depth_s[u64(v)] == 0) {
      const std::uint64_t total = sat_add(last_agg[u64(v)], 1);
      verdict[u64(v)] =
          total <= static_cast<std::uint64_t>(b_limit) ? kGood : kBad;
    }
  }
  {
    SuperstepHooks hooks;
    hooks.identity = kUnknown;
    hooks.combine = [](std::uint64_t a, std::uint64_t b) {
      return std::max(a, b);
    };
    hooks.cross_message = [&](NodeId v, NodeId,
                              EdgeId) -> std::optional<std::uint64_t> {
      if (verdict[u64(v)] == kUnknown) return std::nullopt;
      return pack(lead[u64(v)], verdict[u64(v)]);
    };
    hooks.on_cross = [&](NodeId v, NodeId, EdgeId, std::uint64_t value) {
      const std::uint64_t other_lead = value >> 32;
      const std::uint64_t other_verdict = value & 0xFFFFFFFFu;
      if (other_lead == lead[u64(v)])
        verdict[u64(v)] = std::max(verdict[u64(v)], other_verdict);
    };
    hooks.contribution = [&](NodeId v, PartId j) {
      return is_member(v, j) ? verdict[u64(v)] : kUnknown;
    };
    hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
      if (is_member(v, j)) verdict[u64(v)] = std::max(verdict[u64(v)], agg);
    };
    for (std::int32_t step = 0; step < b_limit; ++step)
      run_superstep(net, tree, partition, state, neighbor_parts, hooks);
  }

  // --- Local decisions ----------------------------------------------------
  VerificationResult result;
  result.node_good.assign(n, false);
  result.part_good.assign(static_cast<std::size_t>(partition.num_parts),
                          false);
  std::vector<char> part_seen(static_cast<std::size_t>(partition.num_parts),
                              0);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const PartId j = partition.part(v);
    if (j == kNoPart) continue;
    const bool good = verdict[u64(v)] == kGood && !flag[u64(v)] &&
                      depth_s[u64(v)] != kInfDepth;
    result.node_good[u64(v)] = good;
    if (!part_seen[static_cast<std::size_t>(j)]) {
      part_seen[static_cast<std::size_t>(j)] = 1;
      result.part_good[static_cast<std::size_t>(j)] = good;
    } else {
      LCS_CHECK(result.part_good[static_cast<std::size_t>(j)] == good,
                "verification verdict must be unanimous within a part");
    }
  }
  return result;
}

}  // namespace lcs
