#include "shortcut/find_shortcut.h"

#include <algorithm>
#include <cmath>

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/core_fast.h"
#include "shortcut/core_slow.h"
#include "shortcut/representation.h"
#include "shortcut/shortcut.h"
#include "shortcut/superstep.h"
#include "shortcut/tree_ops.h"
#include "shortcut/verification.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

namespace {

std::int32_t auto_iteration_cap(PartId num_parts) {
  const double log_n = std::log2(std::max<double>(2.0, num_parts));
  return util::checked_trunc<std::int32_t>(2.0 * log_n) + 8;
}

/// One full attempt with fixed (c, b). Returns the combined shortcut or
/// nullopt if the iteration budget ran out with parts still unserved.
std::optional<Shortcut> try_find(congest::Network& net,
                                 const SpanningTree& tree,
                                 const Partition& partition,
                                 const FindShortcutParams& params,
                                 std::int32_t max_iterations,
                                 std::int32_t& iterations_used) {
  const NodeId n = net.num_nodes();

  // Working copy of the partition: nodes of satisfied parts flip to kNoPart.
  Partition remaining = partition;

  Shortcut combined;
  combined.parts_on_edge.resize(
      static_cast<std::size_t>(net.graph().num_edges()));

  for (std::int32_t iter = 0; iter < max_iterations; ++iter) {
    ++iterations_used;

    // Core subroutine on the not-yet-satisfied parts.
    CoreResult core =
        params.use_fast
            ? core_fast(net, tree, remaining.part_of,
                        CoreFastParams{params.c, params.gamma,
                                       hash64(params.seed,
                                              static_cast<std::uint64_t>(
                                                  iterations_used))})
            : core_slow(net, tree, remaining.part_of, params.c);

    // Distributed representation + verification with block budget 3b.
    ShortcutState tentative = compute_shortcut_state(
        net, tree, remaining, std::move(core.shortcut));
    const NeighborParts neighbor_parts =
        exchange_neighbor_parts(net, remaining);
    const VerificationResult verdict = verify_block_parameter(
        net, tree, remaining, tentative, 3 * params.b, neighbor_parts);

    // Fix the subgraphs of good parts and retire those parts. Each part is
    // fixed in exactly one iteration, so the per-edge id lists stay sorted
    // after a merge.
    for (EdgeId e = 0; e < net.graph().num_edges(); ++e) {
      const auto& tentative_list =
          tentative.shortcut.parts_on_edge[static_cast<std::size_t>(e)];
      if (tentative_list.empty()) continue;
      auto& out = combined.parts_on_edge[static_cast<std::size_t>(e)];
      std::vector<PartId> merged;
      merged.reserve(out.size() + tentative_list.size());
      std::vector<PartId> kept;
      for (const PartId j : tentative_list) {
        if (verdict.part_good[static_cast<std::size_t>(j)]) kept.push_back(j);
      }
      std::merge(out.begin(), out.end(), kept.begin(), kept.end(),
                 std::back_inserter(merged));
      out = std::move(merged);
    }
    congest::PerNode<bool> still_active(static_cast<std::size_t>(n), false);
    bool any = false;
    for (NodeId v = 0; v < n; ++v) {
      const PartId j = remaining.part(v);
      if (j == kNoPart) continue;
      if (verdict.node_good[static_cast<std::size_t>(v)]) {
        remaining.part_of[static_cast<std::size_t>(v)] = kNoPart;
      } else {
        still_active[static_cast<std::size_t>(v)] = true;
        any = true;
      }
    }

    // Global termination check: one OR-convergecast over T (O(D) rounds).
    const bool parts_remain = global_or(net, tree, still_active);
    LCS_CHECK(parts_remain == any, "termination check disagrees");
    if (!parts_remain) return combined;
  }
  return std::nullopt;
}

}  // namespace

FindShortcutResult find_shortcut(congest::Network& net,
                                 const SpanningTree& tree,
                                 const Partition& partition,
                                 const FindShortcutParams& params) {
  LCS_CHECK(params.c >= 1 && params.b >= 1, "parameters must be positive");
  const std::int32_t cap = params.max_iterations > 0
                               ? params.max_iterations
                               : auto_iteration_cap(partition.num_parts);

  const std::int64_t rounds_before = net.total_rounds();
  FindShortcutStats stats;
  stats.used_c = params.c;
  stats.used_b = params.b;

  auto shortcut =
      try_find(net, tree, partition, params, cap, stats.iterations);
  LCS_CHECK(shortcut.has_value(),
            "FindShortcut exhausted its iteration budget; the assumed (c, b) "
            "is too small — use find_shortcut_doubling");

  FindShortcutResult result;
  result.state =
      compute_shortcut_state(net, tree, partition, *std::move(shortcut));
  stats.rounds = net.total_rounds() - rounds_before;
  result.stats = stats;
  return result;
}

FindShortcutResult find_shortcut_doubling(congest::Network& net,
                                          const SpanningTree& tree,
                                          const Partition& partition,
                                          FindShortcutParams params) {
  LCS_CHECK(params.c >= 1 && params.b >= 1, "parameters must be positive");
  const std::int64_t rounds_before = net.total_rounds();
  const std::int32_t cap = params.max_iterations > 0
                               ? params.max_iterations
                               : auto_iteration_cap(partition.num_parts);

  FindShortcutStats stats;
  stats.trials = 0;
  // A (c, b) = (n, 1) shortcut always exists (assign every ancestor edge to
  // every part: nothing ever exceeds the threshold), so doubling terminates.
  const std::int64_t limit = 4 * static_cast<std::int64_t>(net.num_nodes()) + 4;
  for (;;) {
    ++stats.trials;
    std::int32_t iterations = 0;
    auto shortcut = try_find(net, tree, partition, params, cap, iterations);
    stats.iterations += iterations;
    if (shortcut.has_value()) {
      stats.used_c = params.c;
      stats.used_b = params.b;
      FindShortcutResult result;
      result.state =
          compute_shortcut_state(net, tree, partition, *std::move(shortcut));
      stats.rounds = net.total_rounds() - rounds_before;
      result.stats = stats;
      return result;
    }
    LCS_CHECK(params.c <= limit && params.b <= limit,
              "doubling failed to converge (bug: a trivial shortcut exists)");
    params.c *= 2;
    params.b *= 2;
  }
}

}  // namespace lcs
