/// \file persist.h
/// Persistence of constructed shortcut structures — the cache records the
/// shortcut service (`lcs_serve`) stores so a warm start answers shortcut
/// requests from pure I/O, with zero engine construction calls.
///
/// A `ShortcutRunRecord` is everything the report renderer needs for one
/// `--algo=shortcut` run on one (scenario, seed):
///  * the constructed structures — the BFS spanning tree (as parent edges;
///    the rest is rebuilt deterministically on load) and the T-restricted
///    shortcut (per-edge part lists) — from which congestion / block /
///    dilation and the validation section are recomputed, and
///  * the engine accounting the construction consumed (setup and algorithm
///    rounds/messages, the charged-round breakdown, FindShortcut stats),
///    which cannot be recomputed without re-running the engine.
///
/// The record is keyed by (spec hash, partition hash, seed, backend);
/// decoding verifies the keys match the scenario and backend it is being
/// applied to, so a stale or mismatched cache file is diagnosed, never
/// silently served.
///
/// ## File format (`.lcss`)
///
///     magic 'LCSS' | u32 version (2)
///     u64 spec_hash | u64 partition_hash | u64 seed | string backend
///     i32 root | u64 n | n x i32 parent_edge
///     u64 m | per tree edge with a nonempty part list:
///         (i32 edge | u32 count | count x i32 part)   -- see encode
///     stats: i32 iterations | i32 trials | i32 used_c | i32 used_b
///            | i64 rounds
///     i64 setup_rounds | i64 setup_messages
///     i64 algo_rounds | i64 algo_messages
///     u32 charge_count | charge_count x (string label | i64 rounds)
///     u32 backend_stat_count | backend_stat_count x (string label | i64)
///
/// Version history: v1 had no backend field and no backend stats; v1 files
/// are rejected loudly ("unsupported shortcut record version 1" — delete
/// the cache directory to regenerate), never misread as v2.
///
/// All fields little-endian via util/bytes.h; truncation and layout drift
/// are diagnosed field-by-field. Writes go through the same atomic
/// temp-file + rename path as the graph cache (io.h "Atomic writes").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

inline constexpr std::uint32_t kShortcutRecordVersion = 2;

/// One cached `--algo=shortcut` construction (see file comment).
struct ShortcutRunRecord {
  std::uint64_t spec_hash = 0;
  std::uint64_t partition_hash = 0;
  std::uint64_t seed = 0;
  /// Name of the backend that built the record (part of the cache key: the
  /// same scenario under two backends yields two distinct records).
  std::string backend;

  SpanningTree tree;
  Shortcut shortcut;
  FindShortcutStats stats;
  /// Backend-specific named statistics (empty for the default backend,
  /// whose result block renders `stats` above instead).
  std::vector<std::pair<std::string, std::int64_t>> backend_stats;

  std::int64_t setup_rounds = 0;
  std::int64_t setup_messages = 0;
  std::int64_t algo_rounds = 0;
  std::int64_t algo_messages = 0;
  std::vector<std::pair<std::string, std::int64_t>> charges;
};

/// Rebuild a full SpanningTree from its parent-edge array (parents, depths,
/// children lists — children sorted by edge id — and the finalize lookups).
/// Throws CheckFailure unless the edges form a rooted spanning tree of `g`.
[[nodiscard]] SpanningTree tree_from_parent_edges(const Graph& g, NodeId root,
                                    std::vector<EdgeId> parent_edge);

[[nodiscard]] std::string encode_shortcut_record(const ShortcutRunRecord& record);

/// Decode against the graph the record was built for; validates every id
/// against `g` and the key fields against `expect_spec_hash` /
/// `expect_partition_hash` / `expect_backend` (pass the hashes of the
/// scenario being served and the resolved backend name).
[[nodiscard]] ShortcutRunRecord decode_shortcut_record(std::string_view bytes,
                                         const Graph& g,
                                         std::uint64_t expect_spec_hash,
                                         std::uint64_t expect_partition_hash,
                                         std::string_view expect_backend);

/// Atomic file wrappers (magic + version + encode/decode payload).
void save_shortcut_record(const ShortcutRunRecord& record,
                          const std::string& path);
[[nodiscard]] ShortcutRunRecord load_shortcut_record(const std::string& path, const Graph& g,
                                       std::uint64_t expect_spec_hash,
                                       std::uint64_t expect_partition_hash,
                                       std::string_view expect_backend);

}  // namespace lcs
