#include "shortcut/part_routing.h"

#include <algorithm>

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

congest::PerNode<std::uint64_t> part_min_flood(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps, const congest::PerNode<std::uint64_t>& init) {
  LCS_CHECK(b_steps >= 1, "need at least one superstep");
  LCS_CHECK(init.size() == static_cast<std::size_t>(net.num_nodes()),
            "one value per node required");

  congest::PerNode<std::uint64_t> value = init;
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    if (partition.part(v) == kNoPart)
      value[static_cast<std::size_t>(v)] = kNoValue;

  const auto u64 = [](NodeId v) { return static_cast<std::size_t>(v); };
  SuperstepHooks hooks;
  hooks.identity = kNoValue;
  hooks.combine = [](std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  };
  hooks.contribution = [&](NodeId v, PartId j) {
    return partition.part(v) == j ? value[u64(v)] : kNoValue;
  };
  hooks.on_aggregate = [&](NodeId v, PartId j, std::uint64_t agg) {
    if (partition.part(v) == j) value[u64(v)] = std::min(value[u64(v)], agg);
  };
  hooks.cross_message = [&](NodeId v, NodeId, EdgeId) {
    return std::optional<std::uint64_t>(value[u64(v)]);
  };
  hooks.on_cross = [&](NodeId v, NodeId, EdgeId, std::uint64_t received) {
    value[u64(v)] = std::min(value[u64(v)], received);
  };

  for (std::int32_t step = 0; step < b_steps; ++step)
    run_superstep(net, tree, partition, state, neighbor_parts, hooks);
  return value;
}

congest::PerNode<NodeId> elect_part_leaders(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps) {
  congest::PerNode<std::uint64_t> ids(
      static_cast<std::size_t>(net.num_nodes()), kNoValue);
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    ids[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v);
  const auto mins = part_min_flood(net, tree, partition, state,
                                   neighbor_parts, b_steps, ids);
  congest::PerNode<NodeId> leaders(static_cast<std::size_t>(net.num_nodes()),
                                   kNoNode);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (partition.part(v) != kNoPart)
      leaders[static_cast<std::size_t>(v)] =
          util::checked_cast<NodeId>(mins[static_cast<std::size_t>(v)]);
  }
  return leaders;
}

congest::PerNode<std::uint64_t> part_broadcast(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps,
    const congest::PerNode<std::uint64_t>& value_at_source) {
  return part_min_flood(net, tree, partition, state, neighbor_parts, b_steps,
                        value_at_source);
}

}  // namespace lcs
