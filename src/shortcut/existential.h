/// \file existential.h
/// Centralized *existential* references: the "(c, b) shortcut that exists"
/// side of the paper's statements.
///
/// Theorem 3 promises a shortcut within a log factor of the best
/// T-restricted shortcut that *exists*. To quantify that in benches and
/// tests we need ground truth, computed centrally (these are oracles, not
/// protocols):
///
///  * `full_ancestor_shortcut` — Hi = all tree edges between Pi's nodes and
///    the root. Block parameter exactly 1 (every subgraph contains the
///    root); its congestion `c_full` is the largest congestion any
///    ancestor-greedy shortcut may need.
///  * `greedy_blocked_shortcut(threshold)` — the centralized analogue of
///    CoreSlow: process edges bottom-up and cut an edge once more than
///    `threshold` parts want it. Sweeping the threshold traces a
///    congestion/block-parameter Pareto curve: the existential (c, b)
///    pairs the constructions are measured against. With
///    threshold >= c_full it reproduces the full-ancestor shortcut, so the
///    curve always terminates at (c_full, 1).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Hi = every tree edge on a root-path of a Pi node. Block parameter 1.
Shortcut full_ancestor_shortcut(const Graph& g, const SpanningTree& tree,
                                const Partition& partition);

/// Bottom-up ancestor assignment with an unusable threshold (centralized
/// CoreSlow at threshold `threshold` instead of 2c). Deterministic.
Shortcut greedy_blocked_shortcut(const Graph& g, const SpanningTree& tree,
                                 const Partition& partition,
                                 std::int32_t threshold);

/// One point of the congestion/block trade-off curve.
struct ParetoPoint {
  std::int32_t threshold = 0;    ///< unusable threshold used
  std::int32_t congestion = 0;   ///< measured congestion (Definition 1)
  std::int32_t block = 0;        ///< measured block parameter
};

/// Evaluate greedy_blocked_shortcut on a doubling threshold ladder
/// 1, 2, 4, ..., >= c_full. The last point always has block parameter 1.
std::vector<ParetoPoint> pareto_sweep(const Graph& g, const SpanningTree& tree,
                                      const Partition& partition);

/// The smallest existential (c, b) with c <= threshold limit implied by the
/// sweep for a given block budget: min congestion over sweep points with
/// block <= b. Returns the point; requires such a point to exist (b >= 1
/// always works via the full-ancestor point).
ParetoPoint best_existential_for_block(const Graph& g,
                                       const SpanningTree& tree,
                                       const Partition& partition,
                                       std::int32_t b);

}  // namespace lcs
