/// \file representation.h
/// The "distributed representation" of a computed shortcut (Section 4.1):
/// after construction, each node must know (i) its own and its neighbors'
/// T-depths, (ii) which incident edges are tree edges, and (iii) the part
/// ids that may use its parent edge *along with the depth (and identity) of
/// their block-component roots*.
///
/// (i) and (ii) come from the BFS phase. This module computes (iii) with a
/// single component-broadcast (Lemma 2): every block-component root — a node
/// that sees a part id on a child edge but not on its parent edge — floods
/// (root id, root depth) down its component. The root id doubles as a
/// *block id*, unique within each part, which verification and part routing
/// rely on.
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// A shortcut plus the per-node knowledge required to route on it.
struct ShortcutState {
  Shortcut shortcut;

  /// Aligned with shortcut.parts_on_edge[e]: the node id / depth of the
  /// block-component root for that (edge, part) pair.
  std::vector<std::vector<NodeId>> root_id_on_edge;
  std::vector<std::vector<std::int32_t>> root_depth_on_edge;

  /// For each node v in a part: the block id (component root) and its depth
  /// for v's own component. Nodes with no incident own-part shortcut edge
  /// form singleton components rooted at themselves. kNoNode for nodes
  /// outside every part.
  congest::PerNode<NodeId> own_block_root;
  congest::PerNode<std::int32_t> own_block_root_depth;

  /// True if v's own-part component is the singleton {v}.
  congest::PerNode<bool> own_singleton;
};

/// Run the representation phase for `shortcut` (rounds accounted in `net`)
/// and bundle the results. The shortcut must be valid for (tree, partition).
ShortcutState compute_shortcut_state(congest::Network& net,
                                     const SpanningTree& tree,
                                     const Partition& partition,
                                     Shortcut shortcut);

}  // namespace lcs
