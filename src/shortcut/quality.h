/// \file quality.h
/// Steiner-subtree congestion × dilation measures on trees and forests —
/// the shared quality vocabulary of the shortcut backends and the dynamic
/// churn metrics.
///
/// A set of member nodes on a (spanning) tree spans a unique *Steiner
/// subtree*: the minimal subtree connecting all members. Two layers measure
/// quality in exactly these terms:
///
///  * the shortcut backends (src/shortcut/backend/) that construct each
///    part's `Hi` as a Steiner subtree on some spanning tree need the edge
///    set itself (`steiner_subtree_edges`);
///  * the dynamic churn metrics (src/dynamic/churn.h) score a maintained
///    spanning forest as a routing skeleton by the congestion × dilation of
///    the per-part Steiner subtrees (`forest_part_quality`).
///
/// Both views were previously duplicated between graph/metrics and the
/// shortcut verification path; this header is now the single home.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Deterministic BFS spanning forest of `g` (the "fresh construction"
/// baseline for dynamically maintained trees): each component is rooted at
/// its minimum node id and explored in adjacency order. Returns one flag per
/// edge id; flagged edges form a spanning forest.
std::vector<bool> bfs_forest_edges(const Graph& g);

/// Shortcut-style quality of a spanning forest as a routing skeleton for a
/// partition (the dynamic counterpart of `congestion` × `dilation_estimate`
/// in shortcut/shortcut.h, measured on an arbitrary tree structure instead
/// of a constructed shortcut):
///  * for every part, its members inside one forest component span a
///    *Steiner subtree* (the minimal subtree connecting them — under churn
///    a part may straddle several components, each fragment spanning its
///    own subtree);
///  * `congestion` = max over forest edges of the number of such subtrees
///    containing the edge;
///  * `dilation` = max over subtrees of the subtree diameter in hops.
/// Both are 0 when no part has two members in a common component.
struct ForestQuality {
  std::int32_t congestion = 0;
  std::int32_t dilation = 0;
  /// congestion * dilation — the figure of merit the paper's framework
  /// bounds (rounds ~ congestion + dilation; the product is the standard
  /// single-number summary used across the benches).
  std::int64_t product() const {
    return static_cast<std::int64_t>(congestion) *
           static_cast<std::int64_t>(dilation);
  }
  friend bool operator==(const ForestQuality&, const ForestQuality&) = default;
};

/// Requires: `forest_edge[e]` flags form a forest (no cycles — diagnosed),
/// `part_of[v]` in [-1, num parts). O(parts × n + m).
ForestQuality forest_part_quality(const Graph& g,
                                  const std::vector<PartId>& part_of,
                                  const std::vector<bool>& forest_edge);

/// Edge ids of the unique Steiner subtree of `members` on `tree` — the
/// minimal subtree of the spanning tree containing every member. Sorted
/// ascending; empty when fewer than two members. Duplicate or out-of-range
/// members are diagnosed. O(n).
[[nodiscard]] std::vector<EdgeId> steiner_subtree_edges(
    const Graph& g, const SpanningTree& tree,
    const std::vector<NodeId>& members);

}  // namespace lcs
