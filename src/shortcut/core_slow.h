/// \file core_slow.h
/// The deterministic core subroutine (Algorithm 1 / Lemma 7).
///
/// Every part tries to claim all tree edges between its nodes and the root.
/// Edges are processed bottom-up: node v collects the part ids visible
/// through its children, adds its own, and — if at most `2c` distinct ids
/// want the parent edge — streams them up (one id per round); otherwise it
/// marks its parent edge *unusable* and sends nothing past it. Guarantees
/// (Lemma 7): congestion at most 2c; at least half the parts end up with at
/// most 3b block components whenever a (c, b) T-restricted shortcut exists;
/// O(D·c) rounds.
#pragma once

#include "congest/network.h"
#include "congest/process.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct CoreResult {
  Shortcut shortcut;
  /// Per node: whether its parent edge was declared unusable.
  congest::PerNode<bool> parent_edge_unusable;
};

/// Run CoreSlow with congestion budget `c` (threshold 2c).
///
/// `active_part_of[v]` is the part id node v injects (kNoPart to stay
/// silent) — FindShortcut passes the not-yet-finished parts here while
/// already-satisfied parts' nodes keep relaying without claiming edges.
CoreResult core_slow(congest::Network& net, const SpanningTree& tree,
                     const congest::PerNode<PartId>& active_part_of,
                     std::int32_t c);

/// CoreSlow with an explicit unusable threshold instead of the paper's 2c —
/// used by the threshold-ablation bench (A2). core_slow(c) equals
/// core_slow_threshold(2c).
CoreResult core_slow_threshold(congest::Network& net, const SpanningTree& tree,
                               const congest::PerNode<PartId>& active_part_of,
                               std::int32_t threshold);

}  // namespace lcs
