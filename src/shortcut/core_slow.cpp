#include "shortcut/core_slow.h"

#include <algorithm>
#include <set>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

enum Tag : std::uint32_t { kId, kEnd };

/// Bottom-up list streaming: wait for END from every child, union the ids,
/// decide usability of the parent edge, stream ids (or just END) upward.
class CoreSlowProcess final : public congest::Process {
 public:
  CoreSlowProcess(NodeId id, const SpanningTree& tree, PartId own_part,
                  std::int32_t threshold)
      : id_(id), tree_(tree), threshold_(threshold) {
    if (own_part != kNoPart) ids_.insert(own_part);
  }

  // Outputs.
  bool unusable = false;
  std::vector<PartId> assigned;  ///< ids on the parent edge (usable only)

  void on_start(Context& ctx) override {
    pending_children_ = util::checked_cast<int>(
        tree_.children_edges[static_cast<std::size_t>(id_)].size());
    if (pending_children_ == 0) begin_streaming(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      switch (in.msg.tag) {
        case kId: {
          const auto j = util::checked_cast<PartId>(in.msg.words[0]);
          // Cap the stored set just above the threshold: once the edge is
          // over budget the exact surplus no longer matters.
          if (util::checked_cast<std::int32_t>(ids_.size()) <= threshold_)
            ids_.insert(j);
          break;
        }
        case kEnd:
          --pending_children_;
          break;
        default:
          LCS_CHECK(false, "unknown CoreSlow tag");
      }
    }
    if (!streaming_ && pending_children_ == 0) {
      begin_streaming(ctx);
    } else if (streaming_) {
      continue_streaming(ctx);
    }
  }

 private:
  void begin_streaming(Context& ctx) {
    streaming_ = true;
    if (util::checked_cast<std::int32_t>(ids_.size()) > threshold_) {
      unusable = true;
    } else {
      assigned.assign(ids_.begin(), ids_.end());
    }
    cursor_ = 0;
    continue_streaming(ctx);
  }

  void continue_streaming(Context& ctx) {
    if (end_sent_) return;
    const EdgeId pe = tree_.parent_edge[static_cast<std::size_t>(id_)];
    if (pe == kNoEdge) {  // tree root: nothing above to inform
      end_sent_ = true;
      return;
    }
    if (!unusable && cursor_ < assigned.size()) {
      ctx.send(pe, Message(kId, static_cast<std::uint64_t>(
                                    assigned[cursor_++])));
      ctx.wake_next_round();
      return;
    }
    ctx.send(pe, Message(kEnd));
    end_sent_ = true;
  }

  NodeId id_;
  const SpanningTree& tree_;
  std::int32_t threshold_;
  std::set<PartId> ids_;
  int pending_children_ = 0;
  bool streaming_ = false;
  bool end_sent_ = false;
  std::size_t cursor_ = 0;
};

}  // namespace

CoreResult core_slow(congest::Network& net, const SpanningTree& tree,
                     const congest::PerNode<PartId>& active_part_of,
                     std::int32_t c) {
  LCS_CHECK(c >= 1, "congestion budget must be positive");
  return core_slow_threshold(net, tree, active_part_of, 2 * c);
}

CoreResult core_slow_threshold(congest::Network& net, const SpanningTree& tree,
                               const congest::PerNode<PartId>& active_part_of,
                               std::int32_t threshold) {
  LCS_CHECK(threshold >= 1, "threshold must be positive");
  const NodeId n = net.num_nodes();
  LCS_CHECK(active_part_of.size() == static_cast<std::size_t>(n),
            "one part id per node required");

  std::vector<CoreSlowProcess> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    procs.emplace_back(v, tree, active_part_of[static_cast<std::size_t>(v)],
                       threshold);
  congest::run_phase(net, procs);

  CoreResult result;
  result.shortcut.parts_on_edge.resize(
      static_cast<std::size_t>(net.graph().num_edges()));
  result.parent_edge_unusable.assign(static_cast<std::size_t>(n), false);
  for (NodeId v = 0; v < n; ++v) {
    auto& p = procs[static_cast<std::size_t>(v)];
    result.parent_edge_unusable[static_cast<std::size_t>(v)] = p.unusable;
    const EdgeId pe = tree.parent_edge[static_cast<std::size_t>(v)];
    if (pe != kNoEdge && !p.unusable) {
      result.shortcut.parts_on_edge[static_cast<std::size_t>(pe)] =
          std::move(p.assigned);
    }
  }
  return result;
}

}  // namespace lcs
