#include "shortcut/superstep.h"

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "shortcut/tree_routing.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

/// One round: every node announces its part id on all incident edges.
class PartExchangeProcess final : public congest::Process {
 public:
  PartExchangeProcess(NodeId id, const Partition& partition,
                      std::vector<PartId>& out)
      : id_(id), partition_(partition), out_(out) {}

  void on_start(Context& ctx) override {
    const auto encoded = static_cast<std::uint64_t>(
        partition_.part(id_) == kNoPart
            ? std::uint64_t{0}
            : static_cast<std::uint64_t>(partition_.part(id_)) + 1);
    for (const auto& nb : ctx.neighbors()) ctx.send(nb.edge, Message(0, encoded));
    out_.assign(ctx.neighbors().size(), kNoPart);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      // Locate the neighbor slot for this edge.
      const auto nbs = ctx.neighbors();
      for (std::size_t k = 0; k < nbs.size(); ++k) {
        if (nbs[k].edge == in.edge) {
          out_[k] = in.msg.words[0] == 0
                        ? kNoPart
                        : util::checked_cast<PartId>(in.msg.words[0] - 1);
          break;
        }
      }
    }
  }

 private:
  NodeId id_;
  const Partition& partition_;
  std::vector<PartId>& out_;
};

/// One round: part members send hook-provided words to same-part neighbors.
class CrossExchangeProcess final : public congest::Process {
 public:
  CrossExchangeProcess(NodeId id, const Partition& partition,
                       const NeighborParts& neighbor_parts,
                       const SuperstepHooks& hooks)
      : id_(id),
        partition_(partition),
        neighbor_parts_(neighbor_parts),
        hooks_(hooks) {}

  void on_start(Context& ctx) override {
    const PartId j = partition_.part(id_);
    if (j == kNoPart) return;
    const auto nbs = ctx.neighbors();
    const auto& parts = neighbor_parts_.of[static_cast<std::size_t>(id_)];
    for (std::size_t k = 0; k < nbs.size(); ++k) {
      if (parts[k] != j) continue;
      const auto msg = hooks_.cross_message(id_, nbs[k].node, nbs[k].edge);
      if (msg.has_value()) ctx.send(nbs[k].edge, Message(0, *msg));
    }
  }

  void on_round(Context&, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox)
      hooks_.on_cross(id_, in.from, in.edge, in.msg.words[0]);
  }

 private:
  NodeId id_;
  const Partition& partition_;
  const NeighborParts& neighbor_parts_;
  const SuperstepHooks& hooks_;
};

}  // namespace

NeighborParts exchange_neighbor_parts(congest::Network& net,
                                      const Partition& partition) {
  NeighborParts result;
  result.of.resize(static_cast<std::size_t>(net.num_nodes()));
  std::vector<PartExchangeProcess> procs;
  procs.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, partition, result.of[static_cast<std::size_t>(v)]);
  congest::run_phase(net, procs);
  return result;
}

void run_superstep(congest::Network& net, const SpanningTree& tree,
                   const Partition& partition, const ShortcutState& state,
                   const NeighborParts& neighbor_parts,
                   const SuperstepHooks& hooks) {
  LCS_CHECK(hooks.contribution && hooks.combine && hooks.on_aggregate,
            "superstep hooks incomplete");

  // 1. Cross-edge exchange between adjacent supernodes over G[Pi] edges.
  if (hooks.cross_message) {
    LCS_CHECK(static_cast<bool>(hooks.on_cross),
              "cross_message requires on_cross");
    std::vector<CrossExchangeProcess> procs;
    procs.reserve(static_cast<std::size_t>(net.num_nodes()));
    for (NodeId v = 0; v < net.num_nodes(); ++v)
      procs.emplace_back(v, partition, neighbor_parts, hooks);
    congest::run_phase(net, procs);
  }

  // 2. Convergecast within components; roots hold the per-component result.
  //    Keyed by (root, part) — a root may close components of several
  //    parts — but indexed *per root node*, not in one shared map: every
  //    slot is written and read only through that root's own callbacks, so
  //    this is genuine per-node state and stays race-free when the engine
  //    runs callbacks for different nodes on different workers (a shared
  //    hash map would race on rehash when two roots finish in one round).
  //    This holds regardless of the engine's round path: with parallel
  //    promotion the aggregation rounds of large instances run delivery
  //    and merge on the pool, while the many tiny superstep phases (the
  //    one-round cross exchange, per-component cast tails) take the
  //    engine's sequential fallback — per-node slots are the contract
  //    that keeps both paths observably identical, so the accounting
  //    (rounds, messages, charge labels) never depends on thread count.
  std::vector<std::vector<std::pair<PartId, std::uint64_t>>> root_agg(
      static_cast<std::size_t>(net.num_nodes()));
  run_component_convergecast(
      net, tree, state.shortcut, state.root_depth_on_edge, hooks.contribution,
      hooks.combine,
      [&](NodeId root, PartId j, std::uint64_t agg) {
        auto& slots = root_agg[static_cast<std::size_t>(root)];
        for (auto& [part, value] : slots) {
          if (part == j) {
            value = agg;
            return;
          }
        }
        slots.emplace_back(j, agg);
      });

  // 3. Broadcast the aggregates back down the components.
  run_component_broadcast(
      net, tree, state.shortcut,
      [&](NodeId root, PartId j) -> std::uint64_t {
        for (const auto& [part, value] :
             root_agg[static_cast<std::size_t>(root)])
          if (part == j) return value;
        LCS_CHECK(false, "missing aggregate at component root");
        return 0;
      },
      [&](NodeId v, PartId j, std::uint64_t value, std::int32_t) {
        hooks.on_aggregate(v, j, value);
      });

  // Singleton components never exchange intra-component messages: their
  // aggregate is the node's own contribution (a local computation, zero
  // rounds).
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!state.own_singleton[static_cast<std::size_t>(v)]) continue;
    const PartId j = partition.part(v);
    hooks.on_aggregate(v, j, hooks.contribution(v, j));
  }
}

}  // namespace lcs
