/// \file naive.cpp
/// The `naive` backend: the folklore tree-restricted baseline. Each part's
/// `Hi` is simply the Steiner subtree of its members on the BFS tree —
/// connected by construction, so the block parameter is 1 and Lemma 1 gives
/// dilation at most 2D + 1; congestion, however, can reach the part count
/// (every subtree may cross the root). It is the cheap lower anchor of the
/// backend comparison: any construction that beats it on congestion per
/// family is doing real work.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "shortcut/backend/builtins.h"
#include "shortcut/quality.h"

namespace lcs::backend {

Backend make_naive_backend() {
  Backend b;
  b.name = "naive";
  b.paper = "folklore";
  b.summary = "per-part Steiner subtrees on the BFS tree (block parameter 1)";
  b.applicable = [](const scenario::Scenario&) { return std::string(); };
  b.construct = [](const BackendInput& in) {
    const Graph& g = in.sc.graph;
    const std::vector<std::vector<NodeId>> members =
        in.sc.partition.members();
    BackendOutput out;
    out.tree = in.bfs_tree;
    out.shortcut.parts_on_edge.assign(
        static_cast<std::size_t>(g.num_edges()), {});
    std::int64_t steiner_edges = 0;
    // Ascending part order keeps every per-edge part list strictly
    // increasing, as the shortcut representation requires.
    for (PartId i = 0; i < in.sc.partition.num_parts; ++i) {
      for (const EdgeId e : steiner_subtree_edges(
               g, in.bfs_tree, members[static_cast<std::size_t>(i)])) {
        out.shortcut.parts_on_edge[static_cast<std::size_t>(e)].push_back(i);
        ++steiner_edges;
      }
    }
    out.stats.emplace_back("steiner_edges", steiner_edges);
    return out;
  };
  return b;
}

}  // namespace lcs::backend
