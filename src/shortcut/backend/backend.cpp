#include "shortcut/backend/backend.h"

#include <utility>

#include "scenario/scenario.h"
#include "shortcut/backend/builtins.h"
#include "util/check.h"

namespace lcs::backend {

namespace {

std::vector<Backend> make_builtin_backends() {
  std::vector<Backend> list;
  list.push_back(make_hiz16_backend());
  list.push_back(make_kkoi19_backend());
  list.push_back(make_naive_backend());
  return list;
}

std::vector<Backend>& registry() {
  static std::vector<Backend> list = make_builtin_backends();
  return list;
}

}  // namespace

void register_backend(Backend backend) {
  LCS_CHECK(!backend.name.empty() && backend.construct != nullptr &&
                backend.applicable != nullptr,
            "shortcut backend needs a name, an applicability predicate, and "
            "a construction");
  for (const Backend& b : registry())
    LCS_CHECK(b.name != backend.name,
              "shortcut backend '" + backend.name + "' is already registered");
  registry().push_back(std::move(backend));
}

const std::vector<Backend>& backends() { return registry(); }

const Backend* find_backend(std::string_view name) {
  for (const Backend& b : registry())
    if (b.name == name) return &b;
  return nullptr;
}

std::vector<std::string> applicable_backend_names(
    const scenario::Scenario& sc) {
  std::vector<std::string> names;
  for (const Backend& b : registry())
    if (b.applicable(sc).empty()) names.push_back(b.name);
  return names;
}

std::string registered_backend_names() {
  std::string names;
  for (const Backend& b : registry()) {
    if (!names.empty()) names += ", ";
    names += b.name;
  }
  return names;
}

}  // namespace lcs::backend
