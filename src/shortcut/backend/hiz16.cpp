/// \file hiz16.cpp
/// The `hiz16` backend: the paper's own FindShortcut doubling pipeline
/// (CoreFast + Verification, Appendix A's unknown-parameter wrapper) run on
/// the BFS tree. This is the default backend; the registry wrapper adds no
/// behavior on top of `find_shortcut_doubling`, which keeps its reports
/// byte-identical to the pre-registry pipeline.
#include <string>
#include <utility>

#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "shortcut/backend/builtins.h"
#include "shortcut/find_shortcut.h"

namespace lcs::backend {

Backend make_hiz16_backend() {
  Backend b;
  b.name = kDefaultBackend;
  b.paper = "Haeupler, Izumi, Zuzic (PODC 2016)";
  b.summary =
      "FindShortcut doubling (CoreFast + Verification) on the BFS tree";
  b.applicable = [](const scenario::Scenario&) { return std::string(); };
  b.construct = [](const BackendInput& in) {
    FindShortcutParams params;
    params.seed = in.seed;
    FindShortcutResult found =
        find_shortcut_doubling(in.net, in.bfs_tree, in.sc.partition, params);
    BackendOutput out;
    out.tree = in.bfs_tree;
    out.shortcut = std::move(found.state.shortcut);
    out.find_stats = found.stats;
    return out;
  };
  return b;
}

}  // namespace lcs::backend
