/// \file backend.h
/// The `ShortcutBackend` registry: pluggable shortcut constructions behind
/// one vocabulary, mirroring the scenario-family registry (scenario.h).
///
/// A *backend* is one way to turn (scenario, engine, BFS tree, seed) into a
/// tree-restricted shortcut: a spanning tree of its choosing plus the
/// per-edge part lists, and whatever named statistics its construction
/// produces. The driver runs whichever backend `--backend` names (default
/// `hiz16`, the paper's own pipeline) and renders a shared quality block —
/// congestion, block parameter, dilation estimate, rounds, messages — with
/// identical keys for every backend, so `--sweep` curves and the
/// comparison table (tools/backend_compare.sh) line up per family.
///
/// ## Built-in backends
///
///  * `hiz16` — Haeupler–Izumi–Zuzic (PODC 2016): the embedding-free
///    FindShortcut doubling pipeline (CoreFast + Verification) on the BFS
///    tree. The engine construction; always applicable. Reports that do
///    not name a backend run it and are byte-identical to the
///    pre-registry report format.
///  * `kkoi19` — Kitamura–Kitagawa–Otachi–Izumi ("Low-Congestion Shortcut
///    and Graph Parameters"): treewidth-parameterized construction — per-
///    part Steiner subtrees on a perfect-elimination spanning tree.
///    Applicable to families with a known width bound (`ktree`).
///  * `naive` — the folklore tree-restricted baseline: per-part Steiner
///    subtrees on the BFS tree itself. Block parameter 1, dilation at most
///    2D, congestion up to the part count; always applicable.
///
/// ## Applicability
///
/// `Backend::applicable(sc)` returns the empty string when the backend can
/// run on `sc`, else the reason it cannot (e.g. no known width bound). The
/// driver turns a non-empty reason into the structured `{"error":{...}}`
/// JSON naming the backends that *are* applicable — a parameterized
/// construction on the wrong family fails loudly, never runs degenerately.
///
/// ## Determinism
///
/// A backend's construct is a pure function of (scenario, seed, engine
/// state); all randomness flows through the seeded engine/`Rng` paths, so
/// (spec, backend, seed) is a complete reproducer and backend report cells
/// are golden-pinned like every other cell.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "congest/network.h"
#include "scenario/scenario.h"
#include "shortcut/find_shortcut.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs::backend {

/// The default backend — the paper's own construction. Requests that do
/// not name a backend resolve to it, and its reports carry no backend
/// field, preserving the pre-registry report bytes.
inline constexpr const char* kDefaultBackend = "hiz16";

/// What a backend construction sees: the resolved scenario, the engine
/// (with the BFS tree already built on it — those rounds are the setup
/// accounting), that BFS tree, and the run seed.
struct BackendInput {
  const scenario::Scenario& sc;
  congest::Network& net;
  const SpanningTree& bfs_tree;
  std::uint64_t seed = 1;
};

/// What a backend construction returns: the spanning tree its shortcut is
/// restricted to (the BFS tree, or one of its own making), the shortcut,
/// and accounting.
struct BackendOutput {
  SpanningTree tree;
  Shortcut shortcut;
  /// FindShortcut pipeline stats — populated by `hiz16`, default for
  /// centralized constructions (their result blocks render `stats` below
  /// instead).
  FindShortcutStats find_stats;
  /// Named backend-specific statistics, rendered into the result block in
  /// this order (e.g. kkoi19's measured elimination width).
  std::vector<std::pair<std::string, std::int64_t>> stats;
};

/// A registered shortcut construction.
struct Backend {
  std::string name;
  std::string paper;    ///< citation tag for --list-backends and the README
  std::string summary;  ///< one-line description for --list-backends
  /// Empty string = applicable to `sc`; otherwise the reason it is not.
  std::function<std::string(const scenario::Scenario&)> applicable;
  std::function<BackendOutput(const BackendInput&)> construct;
};

/// Register an additional backend (e.g. from an experiment binary). The
/// name must not collide with a built-in or previously registered backend.
void register_backend(Backend backend);

/// All registered backends (built-ins first), for help output.
const std::vector<Backend>& backends();

/// Registered backend by name, or nullptr.
const Backend* find_backend(std::string_view name);

/// Names of the registered backends applicable to `sc`, in registry order.
std::vector<std::string> applicable_backend_names(const scenario::Scenario& sc);

/// "hiz16, kkoi19, naive, ..." — all registered names, for diagnostics.
std::string registered_backend_names();

}  // namespace lcs::backend
