/// \file builtins.h
/// Internal: constructors of the built-in backends, one per translation
/// unit (hiz16.cpp, kkoi19.cpp, naive.cpp), assembled into the registry by
/// backend.cpp. Not part of the public backend API.
#pragma once

#include "shortcut/backend/backend.h"

namespace lcs::backend {

Backend make_hiz16_backend();
Backend make_kkoi19_backend();
Backend make_naive_backend();

}  // namespace lcs::backend
