/// \file kkoi19.cpp
/// The `kkoi19` backend: the treewidth-parameterized construction of
/// Kitamura, Kitagawa, Otachi, Izumi ("Low-Congestion Shortcut and Graph
/// Parameters"), specialized to the centralized setting:
///
///  1. eliminate nodes greedily by minimum remaining degree (ties to the
///     lowest id). On a k-tree every minimum-degree node is simplicial, so
///     this recovers a perfect elimination ordering and the maximum
///     remaining degree at elimination *is* the treewidth k;
///  2. the *elimination tree* — parent(v) = the earliest-eliminated
///     neighbor that outlives v — is then a spanning tree of G whose height
///     tracks the elimination depth;
///  3. each part's `Hi` is the Steiner subtree of its members on that tree,
///     so the block parameter is 1 and congestion is bounded by the number
///     of parts whose subtrees share an elimination-tree edge — on
///     width-bounded families this beats the BFS-tree constructions, which
///     funnel every part through the BFS root's neighborhood.
///
/// The elimination order is only perfect (and step 2 only yields a
/// low-height tree) on width-bounded graphs, so the backend declares itself
/// applicable to the `ktree` family alone; the driver reports anything else
/// as a structured error naming the applicable backends.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "scenario/scenario.h"
#include "shortcut/backend/backend.h"
#include "shortcut/backend/builtins.h"
#include "shortcut/persist.h"
#include "shortcut/quality.h"
#include "tree/spanning_tree.h"
#include "util/check.h"

namespace lcs::backend {

namespace {

struct Elimination {
  std::vector<std::int32_t> order;  ///< order[v] = elimination index of v
  std::int32_t width = 0;           ///< max remaining degree at elimination
};

/// Greedy minimum-degree elimination, deterministic (ties to lowest id).
Elimination min_degree_elimination(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Elimination elim;
  elim.order.assign(n, -1);
  std::vector<std::int32_t> deg(n, 0);
  std::set<std::pair<std::int32_t, NodeId>> queue;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    queue.insert({deg[static_cast<std::size_t>(v)], v});
  }
  std::vector<bool> eliminated(n, false);
  for (std::int32_t step = 0; step < g.num_nodes(); ++step) {
    const auto [d, v] = *queue.begin();
    queue.erase(queue.begin());
    elim.order[static_cast<std::size_t>(v)] = step;
    eliminated[static_cast<std::size_t>(v)] = true;
    elim.width = std::max(elim.width, d);
    for (const Graph::Neighbor& nb : g.neighbors(v)) {
      const auto u = static_cast<std::size_t>(nb.node);
      if (eliminated[u]) continue;
      queue.erase({deg[u], nb.node});
      --deg[u];
      queue.insert({deg[u], nb.node});
    }
  }
  return elim;
}

/// The elimination tree: parent(v) = the neighbor with the smallest
/// elimination index still greater than v's; the last-eliminated node is
/// the root. A spanning tree for connected chordal inputs —
/// tree_from_parent_edges re-validates either way.
SpanningTree elimination_tree(const Graph& g,
                              const std::vector<std::int32_t>& order) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  NodeId root = kNoNode;
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (order[static_cast<std::size_t>(v)] == g.num_nodes() - 1) {
      root = v;
      continue;
    }
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    EdgeId best_edge = kNoEdge;
    for (const Graph::Neighbor& nb : g.neighbors(v)) {
      const std::int32_t o = order[static_cast<std::size_t>(nb.node)];
      if (o > order[static_cast<std::size_t>(v)] && o < best) {
        best = o;
        best_edge = nb.edge;
      }
    }
    LCS_CHECK(best_edge != kNoEdge,
              "elimination tree: node has no later-eliminated neighbor "
              "(graph disconnected?)");
    parent_edge[static_cast<std::size_t>(v)] = best_edge;
  }
  LCS_CHECK(root != kNoNode, "elimination tree: no last-eliminated node");
  return tree_from_parent_edges(g, root, std::move(parent_edge));
}

}  // namespace

Backend make_kkoi19_backend() {
  Backend b;
  b.name = "kkoi19";
  b.paper = "Kitamura, Kitagawa, Otachi, Izumi (2019)";
  b.summary =
      "per-part Steiner subtrees on the minimum-degree elimination tree "
      "(treewidth-parameterized; ktree family)";
  b.applicable = [](const scenario::Scenario& sc) {
    if (sc.family == "ktree") return std::string();
    return std::string(
        "the treewidth-parameterized construction needs a family with a "
        "known width bound (ktree)");
  };
  b.construct = [](const BackendInput& in) {
    const Graph& g = in.sc.graph;
    const Elimination elim = min_degree_elimination(g);
    BackendOutput out;
    out.tree = elimination_tree(g, elim.order);
    out.shortcut.parts_on_edge.assign(
        static_cast<std::size_t>(g.num_edges()), {});
    const std::vector<std::vector<NodeId>> members =
        in.sc.partition.members();
    std::int64_t steiner_edges = 0;
    for (PartId i = 0; i < in.sc.partition.num_parts; ++i) {
      for (const EdgeId e : steiner_subtree_edges(
               g, out.tree, members[static_cast<std::size_t>(i)])) {
        out.shortcut.parts_on_edge[static_cast<std::size_t>(e)].push_back(i);
        ++steiner_edges;
      }
    }
    out.stats.emplace_back("width", elim.width);
    out.stats.emplace_back("steiner_edges", steiner_edges);
    return out;
  };
  return b;
}

}  // namespace lcs::backend
