/// \file shortcut.h
/// Tree-restricted low-congestion shortcuts: types and quality measures.
///
/// Paper correspondence:
///  * Definition 1 — a shortcut assigns each part `Pi` an edge set `Hi`;
///    *congestion* bounds how many subgraphs `G[Pi] + Hi` contain any edge,
///    *dilation* bounds the diameter of every `G[Pi] + Hi`.
///  * Definition 2 — `T`-restricted: every `Hi` uses only edges of a fixed
///    rooted spanning tree `T`.
///  * Definition 3 — the *block parameter* `b`: an upper bound on the number
///    of connected components of `(V, Hi)` that intersect `Pi` ("block
///    components"; each is a subtree of `T`). Isolated `Pi` nodes count.
///  * Lemma 1 — block parameter `b` implies dilation at most `b(2D+1)`.
///
/// Representation: per tree edge, the sorted list of parts whose `Hi`
/// contains it. This matches the paper's distributed representation ("each
/// node knows all the part IDs that can use its parent edge") and makes the
/// congestion measure immediate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "tree/spanning_tree.h"

namespace lcs {

struct Shortcut {
  /// parts_on_edge[e]: parts i with e ∈ Hi, strictly increasing.
  /// Non-tree edges must have empty lists (T-restriction).
  std::vector<std::vector<PartId>> parts_on_edge;

  /// True if tree edge `e` belongs to Hi for part `i`.
  bool edge_used_by(EdgeId e, PartId i) const;

  /// Hi as an edge list, for all parts (index = part id).
  std::vector<std::vector<EdgeId>> edges_of_parts(PartId num_parts) const;
};

/// Throws unless `s` is a well-formed T-restricted shortcut for (g, tree, p):
/// lists sorted/unique/in-range and only on tree edges.
void validate_shortcut(const Graph& g, const SpanningTree& tree,
                       const Partition& p, const Shortcut& s);

/// Exact congestion per Definition 1: max over edges e of the number of
/// distinct parts i with e ∈ G[Pi] + Hi. Counts the part that owns both
/// endpoints of e even when e is not in Hi.
std::int32_t congestion(const Graph& g, const Partition& p, const Shortcut& s);

/// Number of block components of part `i` (Definition 3): components of
/// (V, Hi) that contain at least one node of Pi. Isolated Pi nodes count as
/// singleton components.
std::int32_t block_component_count(const Graph& g, const Partition& p,
                                   const Shortcut& s, PartId i);

/// Block parameter: max over parts of block_component_count.
std::int32_t block_parameter(const Graph& g, const Partition& p,
                             const Shortcut& s);

/// Exact dilation per Definition 1: max over parts of the diameter of
/// G[Pi] + Hi. O(sum over parts of |subgraph| * BFS) — use on test-sized
/// inputs; see dilation_estimate for large ones.
std::int32_t dilation(const Graph& g, const Partition& p, const Shortcut& s);

/// Double-sweep lower bound of the dilation (exact on trees). O(m) per part.
std::int32_t dilation_estimate(const Graph& g, const Partition& p,
                               const Shortcut& s);

/// Lemma 1 bound: b(2D+1) where D = tree height. Tests assert
/// dilation <= lemma1_dilation_bound.
std::int64_t lemma1_dilation_bound(const SpanningTree& tree, std::int32_t b);

}  // namespace lcs
