/// \file tree_routing.h
/// Pipelined routing on families of subtrees — the paper's Lemma 2.
///
/// Setting: a rooted spanning tree `T` of depth `D` and a family of subtrees
/// such that every tree edge lies in at most `c` subtrees. In our encoding a
/// subtree is a *block component*: a maximal connected set of tree edges
/// carrying the same part id (`Shortcut::parts_on_edge`). Lemma 2 says a
/// convergecast or broadcast on *all* subtrees in parallel finishes in
/// `O(D + c)` rounds when messages over a contested edge are prioritized by
/// (depth of the subtree root, subtree id).
///
/// Two one-phase engines are provided:
///  * `run_component_broadcast` — each component root injects one word; it
///    is delivered to every node of the component. Messages carry the root
///    depth, so the Lemma 2 priority is available on arrival (this is also
///    how the per-edge root depths of the "distributed representation" are
///    computed in the first place).
///  * `run_component_convergecast` — every node of a component contributes
///    one word; an associative, commutative combiner folds them toward the
///    component root. Upward priorities use per-edge root depths that must
///    have been computed beforehand (see representation.h).
///
/// Nodes only consult local data: the ids on their incident tree edges, the
/// per-edge priorities, and callbacks that read/write their own node's slot.
#pragma once

#include <cstdint>
#include <functional>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// How contested edges order their pending messages (Lemma 2 uses
/// kRootDepth; the alternatives exist for the ablation bench A3).
enum class RoutingPriority {
  kRootDepth,  ///< (subtree-root depth, part id) — the paper's rule
  kPartId,     ///< (part id) only
  kFifo,       ///< arrival order
};

/// Broadcast one word from every block-component root to all nodes of that
/// component.
///
/// `root_value(v, j)` is invoked once per component rooted at node `v` with
/// part id `j` and returns the word to broadcast. `on_receive(v, j, value,
/// root_depth)` fires at every node of the component, including the root
/// itself. Returns the phase stats (rounds, messages).
congest::PhaseStats run_component_broadcast(
    congest::Network& net, const SpanningTree& tree, const Shortcut& shortcut,
    const std::function<std::uint64_t(NodeId root, PartId j)>& root_value,
    const std::function<void(NodeId v, PartId j, std::uint64_t value,
                             std::int32_t root_depth)>& on_receive,
    RoutingPriority priority = RoutingPriority::kRootDepth);

/// Convergecast one word from every node of each block component to the
/// component root.
///
/// `contribution(v, j)` is invoked once per node per incident component and
/// returns the word that node feeds in. `combine` must be associative and
/// commutative. `on_root_result(v, j, agg)` fires at each component root.
/// `root_depth_on_edge` must align element-wise with
/// `shortcut.parts_on_edge` (see representation.h).
congest::PhaseStats run_component_convergecast(
    congest::Network& net, const SpanningTree& tree, const Shortcut& shortcut,
    const std::vector<std::vector<std::int32_t>>& root_depth_on_edge,
    const std::function<std::uint64_t(NodeId v, PartId j)>& contribution,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine,
    const std::function<void(NodeId root, PartId j, std::uint64_t agg)>&
        on_root_result,
    RoutingPriority priority = RoutingPriority::kRootDepth);

}  // namespace lcs
