/// \file superstep.h
/// The *supergraph superstep*: the communication step underlying Theorem 2
/// and Lemmas 3/6.
///
/// The paper views each part's shortcut subgraph as a supergraph whose
/// supernodes are block components. One algorithmic step on the supergraph
/// ("supernodes talk to their neighbors, then internally agree") costs
/// O(D + c) CONGEST rounds:
///   1. one round in which part members exchange a word with their same-part
///      graph neighbors (the G[Pi] edges that connect adjacent supernodes —
///      these are disjoint across parts, so never congested),
///   2. convergecast one word from all nodes of each block component to its
///      root (Lemma 2),
///   3. broadcast the aggregate back to all nodes of the component.
/// Running the cross-edge exchange *first* guarantees that all nodes of a
/// component end every superstep agreeing on the component state (the final
/// word every node saw is the component aggregate).
/// Singleton components short-circuit steps 2–3 locally (zero rounds).
///
/// Verification and all part-level primitives are loops of this superstep
/// with different hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Per-node knowledge cached across supersteps: each node's list of
/// neighbors' part ids (learned in a single setup round).
struct NeighborParts {
  /// Aligned with Graph::neighbors(v).
  congest::PerNode<std::vector<PartId>> of;
};

/// One-round exchange in which every node tells its neighbors its part id.
NeighborParts exchange_neighbor_parts(congest::Network& net,
                                      const Partition& partition);

struct SuperstepHooks {
  /// Word fed by node v into the aggregate of its part-j component. Called
  /// for every node of the component (relays included); return `identity`
  /// to contribute nothing.
  std::function<std::uint64_t(NodeId v, PartId j)> contribution;
  /// Associative + commutative combiner and its identity element.
  std::function<std::uint64_t(std::uint64_t, std::uint64_t)> combine;
  std::uint64_t identity = 0;
  /// Fires at every node of the component with the component-wide aggregate.
  std::function<void(NodeId v, PartId j, std::uint64_t agg)> on_aggregate;
  /// Cross-edge message from part member v to same-part neighbor w over
  /// edge e; return std::nullopt to stay silent. May be null to skip the
  /// exchange round entirely.
  std::function<std::optional<std::uint64_t>(NodeId v, NodeId w, EdgeId e)>
      cross_message;
  /// Delivery of a cross-edge message.
  std::function<void(NodeId v, NodeId from, EdgeId e, std::uint64_t value)>
      on_cross;
};

/// Execute one superstep. Rounds are accounted in `net`; O(D + c) per call.
void run_superstep(congest::Network& net, const SpanningTree& tree,
                   const Partition& partition, const ShortcutState& state,
                   const NeighborParts& neighbor_parts,
                   const SuperstepHooks& hooks);

}  // namespace lcs
