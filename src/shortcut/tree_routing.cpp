#include "shortcut/tree_routing.h"

#include <map>
#include <queue>
#include <vector>

#include "congest/message.h"
#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/shortcut.h"
#include "tree/spanning_tree.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

using congest::Context;
using congest::Incoming;
using congest::Message;

/// One pending message on a contested edge with its scheduling key.
struct Pending {
  std::uint64_t key1 = 0;  // primary priority (smaller first)
  std::uint64_t key2 = 0;  // tie-break
  std::uint64_t seq = 0;   // FIFO tie-break / kFifo key
  PartId j = kNoPart;
  std::uint64_t value = 0;
  std::int32_t root_depth = 0;

  bool operator>(const Pending& o) const {
    if (key1 != o.key1) return key1 > o.key1;
    if (key2 != o.key2) return key2 > o.key2;
    return seq > o.seq;
  }
};

using PendingQueue =
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>;

Pending make_pending(RoutingPriority priority, std::uint64_t seq, PartId j,
                     std::uint64_t value, std::int32_t root_depth) {
  Pending p;
  p.seq = seq;
  p.j = j;
  p.value = value;
  p.root_depth = root_depth;
  switch (priority) {
    case RoutingPriority::kRootDepth:
      p.key1 = static_cast<std::uint64_t>(root_depth);
      p.key2 = static_cast<std::uint64_t>(j);
      break;
    case RoutingPriority::kPartId:
      p.key1 = static_cast<std::uint64_t>(j);
      break;
    case RoutingPriority::kFifo:
      p.key1 = seq;
      break;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Broadcast (root -> component)
// ---------------------------------------------------------------------------

class BroadcastProcess final : public congest::Process {
 public:
  BroadcastProcess(
      NodeId id, const SpanningTree& tree, const Shortcut& shortcut,
      const std::function<std::uint64_t(NodeId, PartId)>& root_value,
      const std::function<void(NodeId, PartId, std::uint64_t, std::int32_t)>&
          on_receive,
      RoutingPriority priority)
      : id_(id),
        tree_(tree),
        shortcut_(shortcut),
        root_value_(root_value),
        on_receive_(on_receive),
        priority_(priority) {}

  void on_start(Context& ctx) override {
    // Components rooted here: ids on child edges that are absent from the
    // parent edge (or the node is the tree root).
    const EdgeId pe = tree_.parent_edge[static_cast<std::size_t>(id_)];
    std::vector<PartId> rooted;
    for (const EdgeId ce :
         tree_.children_edges[static_cast<std::size_t>(id_)]) {
      for (const PartId j :
           shortcut_.parts_on_edge[static_cast<std::size_t>(ce)]) {
        if (pe == kNoEdge || !shortcut_.edge_used_by(pe, j))
          rooted.push_back(j);
      }
    }
    std::sort(rooted.begin(), rooted.end());
    rooted.erase(std::unique(rooted.begin(), rooted.end()), rooted.end());

    const std::int32_t my_depth = tree_.depth[static_cast<std::size_t>(id_)];
    for (const PartId j : rooted) {
      const std::uint64_t value = root_value_(id_, j);
      on_receive_(id_, j, value, my_depth);
      enqueue_down(j, value, my_depth);
    }
    flush(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      const auto j = util::checked_cast<PartId>(in.msg.words[0]);
      const std::uint64_t value = in.msg.words[1];
      const auto rd = util::checked_cast<std::int32_t>(in.msg.words[2]);
      on_receive_(id_, j, value, rd);
      enqueue_down(j, value, rd);
    }
    flush(ctx);
  }

 private:
  void enqueue_down(PartId j, std::uint64_t value, std::int32_t root_depth) {
    for (const EdgeId ce :
         tree_.children_edges[static_cast<std::size_t>(id_)]) {
      if (shortcut_.edge_used_by(ce, j)) {
        queues_[ce].push(make_pending(priority_, seq_++, j, value, root_depth));
      }
    }
  }

  void flush(Context& ctx) {
    bool more = false;
    for (auto& [edge, queue] : queues_) {
      if (queue.empty()) continue;
      const Pending top = queue.top();
      queue.pop();
      ctx.send(edge, Message(0, static_cast<std::uint64_t>(top.j), top.value,
                             static_cast<std::uint64_t>(top.root_depth)));
      if (!queue.empty()) more = true;
    }
    if (more) ctx.wake_next_round();
  }

  NodeId id_;
  const SpanningTree& tree_;
  const Shortcut& shortcut_;
  const std::function<std::uint64_t(NodeId, PartId)>& root_value_;
  const std::function<void(NodeId, PartId, std::uint64_t, std::int32_t)>&
      on_receive_;
  RoutingPriority priority_;
  // Ordered by EdgeId: flush() walks this map, so its iteration order is
  // the per-round send order across contested edges and must be a program
  // order, not a hash order.
  std::map<EdgeId, PendingQueue> queues_;
  std::uint64_t seq_ = 0;
};

// ---------------------------------------------------------------------------
// Convergecast (component -> root)
// ---------------------------------------------------------------------------

class ConvergecastProcess final : public congest::Process {
 public:
  ConvergecastProcess(
      NodeId id, const SpanningTree& tree, const Shortcut& shortcut,
      const std::vector<std::vector<std::int32_t>>& root_depth_on_edge,
      const std::function<std::uint64_t(NodeId, PartId)>& contribution,
      const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>&
          combine,
      const std::function<void(NodeId, PartId, std::uint64_t)>& on_root_result,
      RoutingPriority priority)
      : id_(id),
        tree_(tree),
        shortcut_(shortcut),
        root_depth_on_edge_(root_depth_on_edge),
        contribution_(contribution),
        combine_(combine),
        on_root_result_(on_root_result),
        priority_(priority) {}

  void on_start(Context& ctx) override {
    const auto me = static_cast<std::size_t>(id_);
    const EdgeId pe = tree_.parent_edge[me];

    // Gather the component ids this node participates in and the number of
    // child edges carrying each.
    for (const EdgeId ce : tree_.children_edges[me]) {
      for (const PartId j :
           shortcut_.parts_on_edge[static_cast<std::size_t>(ce)])
        ++state_[j].expected;
    }
    if (pe != kNoEdge) {
      const auto& list = shortcut_.parts_on_edge[static_cast<std::size_t>(pe)];
      const auto& depths =
          root_depth_on_edge_[static_cast<std::size_t>(pe)];
      LCS_CHECK(list.size() == depths.size(),
                "root depths misaligned with shortcut");
      for (std::size_t k = 0; k < list.size(); ++k) {
        auto& st = state_[list[k]];
        st.has_parent = true;
        st.parent_root_depth = depths[k];
      }
    }
    for (auto& [j, st] : state_) st.acc = contribution_(id_, j);

    check_ready(ctx);
    flush(ctx);
  }

  void on_round(Context& ctx, std::span<const Incoming> inbox) override {
    for (const auto& in : inbox) {
      const auto j = util::checked_cast<PartId>(in.msg.words[0]);
      auto it = state_.find(j);
      LCS_CHECK(it != state_.end(), "convergecast message for unknown id");
      it->second.acc = combine_(it->second.acc, in.msg.words[1]);
      ++it->second.received;
    }
    check_ready(ctx);
    flush(ctx);
  }

 private:
  struct CompState {
    int expected = 0;
    int received = 0;
    bool has_parent = false;
    bool dispatched = false;
    std::int32_t parent_root_depth = 0;
    std::uint64_t acc = 0;
  };

  void check_ready(Context&) {
    for (auto& [j, st] : state_) {
      if (st.dispatched || st.received < st.expected) continue;
      st.dispatched = true;
      if (st.has_parent) {
        queue_.push(
            make_pending(priority_, seq_++, j, st.acc, st.parent_root_depth));
      } else {
        on_root_result_(id_, j, st.acc);
      }
    }
  }

  void flush(Context& ctx) {
    if (queue_.empty()) return;
    const Pending top = queue_.top();
    queue_.pop();
    ctx.send(tree_.parent_edge[static_cast<std::size_t>(id_)],
             Message(0, static_cast<std::uint64_t>(top.j), top.value));
    if (!queue_.empty()) ctx.wake_next_round();
  }

  NodeId id_;
  const SpanningTree& tree_;
  const Shortcut& shortcut_;
  const std::vector<std::vector<std::int32_t>>& root_depth_on_edge_;
  const std::function<std::uint64_t(NodeId, PartId)>& contribution_;
  const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine_;
  const std::function<void(NodeId, PartId, std::uint64_t)>& on_root_result_;
  RoutingPriority priority_;
  // Ordered by PartId: check_ready() walks this map assigning seq_ — the
  // kFifo scheduling key — so simultaneously-ready components must
  // dispatch in part order, not hash order.
  std::map<PartId, CompState> state_;
  PendingQueue queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace

congest::PhaseStats run_component_broadcast(
    congest::Network& net, const SpanningTree& tree, const Shortcut& shortcut,
    const std::function<std::uint64_t(NodeId, PartId)>& root_value,
    const std::function<void(NodeId, PartId, std::uint64_t, std::int32_t)>&
        on_receive,
    RoutingPriority priority) {
  std::vector<BroadcastProcess> procs;
  procs.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, tree, shortcut, root_value, on_receive, priority);
  return congest::run_phase(net, procs);
}

congest::PhaseStats run_component_convergecast(
    congest::Network& net, const SpanningTree& tree, const Shortcut& shortcut,
    const std::vector<std::vector<std::int32_t>>& root_depth_on_edge,
    const std::function<std::uint64_t(NodeId, PartId)>& contribution,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine,
    const std::function<void(NodeId, PartId, std::uint64_t)>& on_root_result,
    RoutingPriority priority) {
  std::vector<ConvergecastProcess> procs;
  procs.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (NodeId v = 0; v < net.num_nodes(); ++v)
    procs.emplace_back(v, tree, shortcut, root_depth_on_edge, contribution,
                       combine, on_root_result, priority);
  return congest::run_phase(net, procs);
}

}  // namespace lcs
