/// \file part_routing.h
/// Part-level communication primitives on a computed tree-restricted
/// shortcut — Theorem 2: leader election, convergecast, and broadcast for
/// all parts in parallel, each in O(b(D + c)) rounds.
///
/// All three reduce to an idempotent *min-flood* over each part's
/// supergraph of block components: one superstep (cross-edge exchange +
/// intra-component aggregation, see superstep.h) propagates the minimum one
/// supernode-hop, so `b` supersteps suffice when the shortcut has block
/// parameter `b` (the supergraph has at most b supernodes).
///
///  * leader election  = min-flood of member node ids;
///  * convergecast     = min-flood of packed (value, origin) words — with
///    the (weight, edge-id) packing this is exactly the "minimum-weight
///    outgoing edge" step Boruvka needs;
///  * broadcast        = min-flood where only the source holds a non-sentinel
///    value.
#pragma once

#include <limits>

#include "congest/network.h"
#include "congest/process.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "shortcut/representation.h"
#include "shortcut/superstep.h"
#include "tree/spanning_tree.h"

namespace lcs {

/// Sentinel meaning "no value": the identity of the min-flood.
inline constexpr std::uint64_t kNoValue =
    std::numeric_limits<std::uint64_t>::max();

/// Min-flood: after the call, every member of every part holds the minimum
/// of `init` over the members of its part (entries of non-members are
/// ignored). `b_steps` must be at least the block parameter of the shortcut
/// described by `state`. O(b_steps · (D + c)) rounds.
congest::PerNode<std::uint64_t> part_min_flood(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps, const congest::PerNode<std::uint64_t>& init);

/// Theorem 2(i): every part member learns the smallest node id in its part.
congest::PerNode<NodeId> elect_part_leaders(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps);

/// Theorem 2(iii): flood `value_at_source[v]` (< kNoValue at exactly the
/// source member(s) of each part, kNoValue elsewhere) to every member.
congest::PerNode<std::uint64_t> part_broadcast(
    congest::Network& net, const SpanningTree& tree, const Partition& partition,
    const ShortcutState& state, const NeighborParts& neighbor_parts,
    std::int32_t b_steps, const congest::PerNode<std::uint64_t>& value_at_source);

}  // namespace lcs
