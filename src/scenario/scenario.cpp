#include "scenario/scenario.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <utility>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/partition.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs::scenario {

namespace {

template <class T>
T parse_number(std::string_view token, const std::string& key) {
  T value{};
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), value);
  LCS_CHECK(res.ec == std::errc() && res.ptr == token.data() + token.size(),
            "scenario parameter '" + key + "' has malformed value '" +
                std::string(token) + "'");
  return value;
}

NodeId as_node(std::int64_t v, const std::string& key) {
  LCS_CHECK(v >= 0 && v <= std::numeric_limits<NodeId>::max(),
            "scenario parameter '" + key + "' out of 32-bit id range");
  return util::checked_cast<NodeId>(v);
}

/// The registry-wide suggested part count: ~sqrt(n) connected blobs, the
/// scale at which shortcut quality is interesting (#parts ~ #per-part
/// nodes, as in the benches).
PartId suggested_parts(NodeId n) {
  const PartId k = std::max<PartId>(
      2, util::checked_trunc<PartId>(std::sqrt(static_cast<double>(n))));
  return std::min<PartId>(k, n);
}

}  // namespace

SpecArgs::SpecArgs(std::string family,
                   std::vector<std::pair<std::string, std::string>> params)
    : family_(std::move(family)),
      params_(std::move(params)),
      consumed_(params_.size(), false) {
  for (std::size_t i = 0; i < params_.size(); ++i)
    for (std::size_t j = i + 1; j < params_.size(); ++j)
      LCS_CHECK(params_[i].first != params_[j].first,
                "duplicate scenario parameter '" + params_[i].first + "'");
}

bool SpecArgs::has(std::string_view key) const {
  for (const auto& [k, v] : params_)
    if (k == key) return true;
  return false;
}

const std::string* SpecArgs::find(std::string_view key) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].first == key) {
      consumed_[i] = true;
      return &params_[i].second;
    }
  }
  return nullptr;
}

std::int64_t SpecArgs::get_int(std::string_view key, std::int64_t fallback) {
  const std::string* v = find(key);
  return v ? parse_number<std::int64_t>(*v, std::string(key)) : fallback;
}

std::int64_t SpecArgs::require_int(std::string_view key) {
  const std::string* v = find(key);
  LCS_CHECK(v != nullptr, "scenario family '" + family_ +
                              "' requires parameter '" + std::string(key) + "'");
  return parse_number<std::int64_t>(*v, std::string(key));
}

std::uint64_t SpecArgs::get_uint(std::string_view key, std::uint64_t fallback) {
  const std::string* v = find(key);
  return v ? parse_number<std::uint64_t>(*v, std::string(key)) : fallback;
}

double SpecArgs::get_double(std::string_view key, double fallback) {
  const std::string* v = find(key);
  return v ? parse_number<double>(*v, std::string(key)) : fallback;
}

double SpecArgs::require_double(std::string_view key) {
  const std::string* v = find(key);
  LCS_CHECK(v != nullptr, "scenario family '" + family_ +
                              "' requires parameter '" + std::string(key) + "'");
  return parse_number<double>(*v, std::string(key));
}

std::string SpecArgs::get_string(std::string_view key,
                                 std::string_view fallback) {
  const std::string* v = find(key);
  return v ? *v : std::string(fallback);
}

void SpecArgs::check_all_consumed() const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    LCS_CHECK(consumed_[i], "unknown parameter '" + params_[i].first +
                                "' for scenario family '" + family_ + "'");
}

void SpecArgs::check_all_consumed(
    const std::vector<std::string>& known_keys) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (consumed_[i]) continue;
    std::string msg = "unknown parameter '" + params_[i].first +
                      "' for scenario family '" + family_ + "'";
    if (!known_keys.empty()) {
      msg += " (accepted: ";
      for (std::size_t k = 0; k < known_keys.size(); ++k) {
        if (k > 0) msg += ", ";
        msg += known_keys[k];
      }
      msg += ")";
    }
    LCS_CHECK(false, msg);
  }
}

SpecArgs parse_spec(std::string_view spec) {
  LCS_CHECK(!spec.empty(), "empty scenario spec");
  const auto colon = spec.find(':');
  std::string family(spec.substr(0, colon));
  LCS_CHECK(!family.empty(), "scenario spec has no family name");

  std::vector<std::pair<std::string, std::string>> params;
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : spec.substr(colon + 1);
  bool first_token = true;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    LCS_CHECK(!token.empty(), "empty parameter in scenario spec");
    // The file family's first token is a bare path, not key=value.
    if (first_token && family == "file") {
      params.emplace_back("path", std::string(token));
      first_token = false;
      continue;
    }
    first_token = false;
    const auto eq = token.find('=');
    LCS_CHECK(eq != std::string_view::npos && eq > 0,
              "scenario parameter '" + std::string(token) +
                  "' is not of the form key=value");
    params.emplace_back(std::string(token.substr(0, eq)),
                        std::string(token.substr(eq + 1)));
  }
  return SpecArgs(std::move(family), std::move(params));
}

namespace {

std::vector<Family> make_builtin_families() {
  std::vector<Family> fams;

  fams.push_back({"grid", "w=32,h=w[,rows=r]",
                  "w x h grid, planar; rows= partitions into row bands",
                  [](SpecArgs& a) {
                    const NodeId w = as_node(a.get_int("w", 32), "w");
                    const NodeId h = as_node(a.get_int("h", w), "h");
                    FamilyResult r{make_grid(w, h), std::nullopt};
                    if (a.has("rows"))
                      r.partition = make_grid_rows_partition(
                          w, h, as_node(a.require_int("rows"), "rows"));
                    return r;
                  },
                  {"w", "h", "rows"}});

  fams.push_back({"torus", "w=16,h=w",
                  "w x h torus (genus 1)",
                  [](SpecArgs& a) {
                    const NodeId w = as_node(a.get_int("w", 16), "w");
                    const NodeId h = as_node(a.get_int("h", w), "h");
                    return FamilyResult{make_torus(w, h), std::nullopt};
                  },
                  {"w", "h"}});

  fams.push_back({"genus", "w=24,h=w,g=8,seed=1",
                  "grid plus g random chords (orientable genus <= g)",
                  [](SpecArgs& a) {
                    const NodeId w = as_node(a.get_int("w", 24), "w");
                    const NodeId h = as_node(a.get_int("h", w), "h");
                    const int g = util::checked_cast<int>(a.get_int("g", 8));
                    return FamilyResult{
                        make_genus_grid(w, h, g, a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"w", "h", "g", "seed"}});

  fams.push_back({"path", "n=1024",
                  "simple path (extreme high diameter)",
                  [](SpecArgs& a) {
                    return FamilyResult{
                        make_path(as_node(a.get_int("n", 1024), "n")),
                        std::nullopt};
                  },
                  {"n"}});

  fams.push_back({"cycle", "n=1024",
                  "simple cycle",
                  [](SpecArgs& a) {
                    return FamilyResult{
                        make_cycle(as_node(a.get_int("n", 1024), "n")),
                        std::nullopt};
                  },
                  {"n"}});

  fams.push_back({"tree", "n=1024,seed=1",
                  "uniform random attachment tree",
                  [](SpecArgs& a) {
                    return FamilyResult{
                        make_random_tree(as_node(a.get_int("n", 1024), "n"),
                                         a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"n", "seed"}});

  fams.push_back({"maze", "w=32,h=w,keep=0.3,seed=1",
                  "random planar maze: grid spanning tree + keep fraction",
                  [](SpecArgs& a) {
                    const NodeId w = as_node(a.get_int("w", 32), "w");
                    const NodeId h = as_node(a.get_int("h", w), "h");
                    return FamilyResult{
                        make_random_maze(w, h, a.get_double("keep", 0.3),
                                         a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"w", "h", "keep", "seed"}});

  fams.push_back({"er", "n=1024,deg=6|p=...,seed=1",
                  "connected Erdos-Renyi; p= explicit or deg= average degree",
                  [](SpecArgs& a) {
                    const NodeId n = as_node(a.get_int("n", 1024), "n");
                    const double p =
                        a.has("p") ? a.require_double("p")
                                   : a.get_double("deg", 6.0) /
                                         static_cast<double>(std::max<NodeId>(n, 1));
                    return FamilyResult{
                        make_erdos_renyi(n, std::min(p, 1.0),
                                         a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"n", "p", "deg", "seed"}});

  fams.push_back({"wheel", "n=513,arcs=8",
                  "cycle + hub (D = 2); parts = rim arcs, hub unassigned",
                  [](SpecArgs& a) {
                    const NodeId n = as_node(a.get_int("n", 513), "n");
                    const PartId arcs =
                        util::checked_cast<PartId>(as_node(a.get_int("arcs", 8), "arcs"));
                    return FamilyResult{make_wheel(n),
                                        make_cycle_arcs_partition(n, arcs)};
                  },
                  {"n", "arcs"}});

  fams.push_back({"lb", "paths=16,len=paths",
                  "Peleg-Rubinovich lower-bound graph; parts = the paths",
                  [](SpecArgs& a) {
                    const NodeId paths = as_node(a.get_int("paths", 16), "paths");
                    const NodeId len = as_node(a.get_int("len", paths), "len");
                    Graph g = make_lower_bound_graph(paths, len);
                    Partition p =
                        make_lower_bound_partition(paths, len, g.num_nodes());
                    return FamilyResult{std::move(g), std::move(p)};
                  },
                  {"paths", "len"}});

  fams.push_back({"rmat", "scale=10,deg=8|m=...,a=0.57,b=0.19,c=0.19,seed=1",
                  "R-MAT on 2^scale nodes: skewed power-law-like degrees",
                  [](SpecArgs& a) {
                    const int scale = util::checked_cast<int>(a.get_int("scale", 10));
                    LCS_CHECK(scale >= 1 && scale <= 30,
                              "rmat scale must be in [1, 30]");
                    const std::int64_t n = std::int64_t{1} << scale;
                    std::int64_t m;
                    if (a.has("m")) {
                      m = a.require_int("m");
                    } else {
                      m = static_cast<std::int64_t>(
                          static_cast<double>(n) * a.get_double("deg", 8.0) / 2.0);
                    }
                    return FamilyResult{
                        make_rmat(scale,
                                  util::checked_cast<EdgeId>(as_node(m, "m")),
                                  a.get_double("a", 0.57), a.get_double("b", 0.19),
                                  a.get_double("c", 0.19), a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"scale", "deg", "m", "a", "b", "c", "seed"}});

  fams.push_back({"ba", "n=1024,m=3,seed=1",
                  "Barabasi-Albert preferential attachment (power-law hubs)",
                  [](SpecArgs& a) {
                    const NodeId n = as_node(a.get_int("n", 1024), "n");
                    const NodeId m = as_node(a.get_int("m", 3), "m");
                    return FamilyResult{
                        make_barabasi_albert(n, m, a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"n", "m", "seed"}});

  fams.push_back({"rreg", "n=1024,d=4,seed=1",
                  "random d-regular expander (easy-shortcut control)",
                  [](SpecArgs& a) {
                    const NodeId n = as_node(a.get_int("n", 1024), "n");
                    const NodeId d = as_node(a.get_int("d", 4), "d");
                    return FamilyResult{
                        make_random_regular(n, d, a.get_uint("seed", 1)),
                        std::nullopt};
                  },
                  {"n", "d", "seed"}});

  fams.push_back({"ktree", "n=1024,k=3,seed=1",
                  "random k-tree: treewidth exactly k",
                  [](SpecArgs& a) {
                    const NodeId n = as_node(a.get_int("n", 1024), "n");
                    const NodeId k = as_node(a.get_int("k", 3), "k");
                    return FamilyResult{make_ktree(n, k, a.get_uint("seed", 1)),
                                        std::nullopt};
                  },
                  {"n", "k", "seed"}});

  fams.push_back({"file", "<path>[,...]  (.bin/.lcsg, .dimacs/.gr/.col, else edge list)",
                  "load a corpus graph; must be connected",
                  [](SpecArgs& a) {
                    const std::string path = a.get_string("path", "");
                    LCS_CHECK(!path.empty(),
                              "file: scenario needs a path, e.g. "
                              "\"file:graphs/road.bin\"");
                    Graph g = load_graph(path);
                    LCS_CHECK(is_connected(g),
                              "corpus graph '" + path +
                                  "' is not connected; scenarios require "
                                  "connected topologies");
                    return FamilyResult{std::move(g), std::nullopt};
                  },
                  {"path"}});

  return fams;
}

std::vector<Family>& registry() {
  static std::vector<Family> fams = make_builtin_families();
  return fams;
}

}  // namespace

void register_family(Family family) {
  LCS_CHECK(!family.name.empty() && family.build != nullptr,
            "scenario family needs a name and a builder");
  for (const Family& f : registry())
    LCS_CHECK(f.name != family.name,
              "scenario family '" + family.name + "' is already registered");
  registry().push_back(std::move(family));
}

const std::vector<Family>& families() { return registry(); }

const Family* find_family(std::string_view name) {
  for (const Family& f : registry())
    if (f.name == name) return &f;
  return nullptr;
}

const std::vector<std::string>& common_param_keys() {
  static const std::vector<std::string> keys = {"parts", "pseed", "weights",
                                                "wseed"};
  return keys;
}

std::vector<std::string> accepted_param_keys(const Family& family) {
  if (family.param_keys.empty()) return {};
  std::vector<std::string> keys = family.param_keys;
  keys.insert(keys.end(), common_param_keys().begin(),
              common_param_keys().end());
  return keys;
}

Scenario make_scenario(std::string_view spec) {
  SpecArgs args = parse_spec(spec);

  const Family* family = find_family(args.family());
  LCS_CHECK(family != nullptr,
            "unknown scenario family '" + args.family() +
                "' (run lcs_run --list for the registered families)");

  FamilyResult built = family->build(args);

  // Common re-weighting: weights=lo-hi with i.i.d. uniform weights.
  if (args.has("weights")) {
    const std::string range = args.get_string("weights", "");
    const auto dash = range.find('-');
    LCS_CHECK(dash != std::string::npos && dash > 0 && dash + 1 < range.size(),
              "weights= wants a 'lo-hi' range, got '" + range + "'");
    const Weight lo = parse_number<Weight>(
        std::string_view(range).substr(0, dash), "weights");
    const Weight hi = parse_number<Weight>(
        std::string_view(range).substr(dash + 1), "weights");
    built.graph =
        with_random_weights(built.graph, lo, hi, args.get_uint("wseed", 1));
  }

  // Partition: explicit parts= override beats the family suggestion beats
  // the ~sqrt(n) random-BFS default.
  Partition partition;
  if (args.has("parts")) {
    const PartId k =
        util::checked_cast<PartId>(as_node(args.require_int("parts"), "parts"));
    partition =
        make_random_bfs_partition(built.graph, k, args.get_uint("pseed", 1));
  } else if (built.partition.has_value()) {
    partition = std::move(*built.partition);
  } else {
    partition = make_random_bfs_partition(
        built.graph, suggested_parts(built.graph.num_nodes()),
        args.get_uint("pseed", 1));
  }

  args.check_all_consumed(accepted_param_keys(*family));
  return Scenario{std::move(built.graph), std::move(partition),
                  args.family(), std::string(spec)};
}

}  // namespace lcs::scenario
