/// \file scenario.h
/// The scenario registry: one string vocabulary for every workload.
///
/// A *scenario spec* names a graph family and its parameters in one
/// copy-pasteable token:
///
///     "grid:w=512,h=512"
///     "er:n=100000,p=2e-4,seed=7"          (or deg=6 for p = deg/n)
///     "rmat:scale=14,deg=8,seed=3"
///     "file:graphs/road.bin"
///
/// `make_scenario` resolves a spec to a `Graph` plus a suggested
/// `Partition` — the "disjoint connected parts" every shortcut workload
/// needs. Benches, examples, tests, CI, and the `lcs_run` driver all build
/// their instances through this registry, so a scenario named anywhere is
/// reproducible everywhere.
///
/// ## Spec grammar
///
///     spec   := family [ ":" params ]
///     params := param { "," param }
///     param  := key "=" value
///
/// For the `file` family the first token after the colon is the path
/// (which therefore must not contain a comma); any remaining tokens are
/// ordinary `key=value` params.
///
/// ## Common parameters (every family)
///
///   * `parts=<k>`, `pseed=<s>` — override the family's suggested
///     partition with k random connected BFS blobs grown from seed s.
///   * `weights=<lo>-<hi>`, `wseed=<s>` — re-weight edges i.i.d. uniform
///     in [lo, hi] (default unit weights), e.g. for MST workloads.
///
/// Unknown families and unknown/duplicate/malformed parameters are
/// diagnosed with CheckFailure naming the offender — a spec either
/// resolves exactly or fails loudly, never half-applies.
///
/// ## Determinism guarantee
///
/// A spec is a pure function: the same spec string always yields the same
/// graph (node ids, edge ids, weights) and the same partition, on every
/// platform. All randomness flows through the explicitly seeded `lcs::Rng`
/// (seed defaults to 1 everywhere); no global state, clocks, or
/// hardware-dependent paths are consulted. Combined with the engine's
/// thread-count determinism this makes (spec, algorithm, seed) a complete
/// reproducer — the golden-file CI gate depends on it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace lcs::scenario {

/// A resolved scenario: the topology plus a suggested partition.
struct Scenario {
  Graph graph;
  Partition partition;
  std::string family;  ///< resolved family name (e.g. "grid")
  std::string spec;    ///< the spec string as given
};

/// Parsed `key=value` parameters of one spec, with typed accessors that
/// diagnose malformed values and a consumption check that diagnoses
/// unknown keys. Family builders pull their parameters through this.
class SpecArgs {
 public:
  SpecArgs(std::string family,
           std::vector<std::pair<std::string, std::string>> params);

  const std::string& family() const { return family_; }

  bool has(std::string_view key) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback);
  std::int64_t require_int(std::string_view key);
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback);
  double get_double(std::string_view key, double fallback);
  double require_double(std::string_view key);
  std::string get_string(std::string_view key, std::string_view fallback);

  /// Throws unless every parameter was consumed by some accessor — a typo
  /// in a spec never silently falls back to a default. The overload taking
  /// `known_keys` appends the accepted keys to the diagnosis.
  void check_all_consumed() const;
  void check_all_consumed(const std::vector<std::string>& known_keys) const;

 private:
  const std::string* find(std::string_view key);

  std::string family_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<bool> consumed_;
};

/// What a family builder returns: the graph, and optionally a
/// family-specific partition (wheel arcs, lower-bound paths, grid rows).
/// When absent the registry supplies random BFS blobs of ~sqrt(n) parts.
struct FamilyResult {
  Graph graph;
  std::optional<Partition> partition;
};

/// A registered graph family.
struct Family {
  std::string name;
  std::string params_help;  ///< e.g. "w=32,h=w" — defaults shown inline
  std::string summary;      ///< one-line description for --list
  std::function<FamilyResult(SpecArgs&)> build;
  /// Machine-readable accepted keys, excluding the common keys every family
  /// takes (see `common_param_keys`). Drivers consult this to reject a
  /// `--sweep` over a key the family would never read *before* expanding the
  /// sweep. Externally registered families may leave it empty, which means
  /// "not declared" — key checks are then skipped, not failed.
  std::vector<std::string> param_keys;
};

/// Register an additional family (e.g. from an experiment binary). The
/// name must not collide with a built-in or previously registered family.
void register_family(Family family);

/// All registered families (built-ins first), for help output.
const std::vector<Family>& families();

/// Registered family by name, or nullptr.
const Family* find_family(std::string_view name);

/// Keys the registry handles for every family (partition and weight
/// overrides): parts, pseed, weights, wseed.
const std::vector<std::string>& common_param_keys();

/// Every key `family` accepts: its own `param_keys` plus the common keys.
/// Empty when the family did not declare its keys (see Family::param_keys).
std::vector<std::string> accepted_param_keys(const Family& family);

/// Parse without building: returns (family, params) or throws CheckFailure
/// with a grammar diagnosis.
SpecArgs parse_spec(std::string_view spec);

/// Resolve `spec` to a graph + partition. Throws CheckFailure on unknown
/// families, malformed or unknown parameters, and unloadable files.
Scenario make_scenario(std::string_view spec);

}  // namespace lcs::scenario
