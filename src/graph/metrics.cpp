#include "graph/metrics.h"

#include <algorithm>
#include <deque>

#include "graph/graph.h"
#include "graph/partition.h"
#include "util/check.h"

namespace lcs {

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src) {
  LCS_CHECK(src >= 0 && src < g.num_nodes(), "source out of range");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const auto& nb : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(nb.node)] < 0) {
        dist[static_cast<std::size_t>(nb.node)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(nb.node);
      }
    }
  }
  return dist;
}

std::vector<std::int32_t> bfs_distances_filtered(
    const Graph& g, NodeId src, const std::vector<bool>& allowed) {
  LCS_CHECK(src >= 0 && src < g.num_nodes(), "source out of range");
  LCS_CHECK(allowed.size() == static_cast<std::size_t>(g.num_nodes()),
            "filter size mismatch");
  LCS_CHECK(allowed[static_cast<std::size_t>(src)], "source filtered out");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const auto& nb : g.neighbors(v)) {
      if (allowed[static_cast<std::size_t>(nb.node)] &&
          dist[static_cast<std::size_t>(nb.node)] < 0) {
        dist[static_cast<std::size_t>(nb.node)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(nb.node);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d < 0; });
}

namespace {

/// (farthest node, its distance) from src; requires connectivity.
std::pair<NodeId, std::int32_t> farthest(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  NodeId best = src;
  std::int32_t best_d = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::int32_t d = dist[static_cast<std::size_t>(v)];
    LCS_CHECK(d >= 0, "graph must be connected for diameter computation");
    if (d > best_d) {
      best_d = d;
      best = v;
    }
  }
  return {best, best_d};
}

}  // namespace

std::int32_t diameter_exact(const Graph& g) {
  LCS_CHECK(g.num_nodes() > 0, "diameter of empty graph");
  std::int32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    best = std::max(best, farthest(g, v).second);
  return best;
}

std::int32_t diameter_double_sweep(const Graph& g) {
  LCS_CHECK(g.num_nodes() > 0, "diameter of empty graph");
  const auto [far1, d1] = farthest(g, 0);
  (void)d1;
  return farthest(g, far1).second;
}

std::int32_t part_diameter_exact(const Graph& g, const Partition& p,
                                 PartId i) {
  std::vector<bool> allowed(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (p.part(v) == i) {
      allowed[static_cast<std::size_t>(v)] = true;
      nodes.push_back(v);
    }
  }
  LCS_CHECK(!nodes.empty(), "part has no members");
  std::int32_t best = 0;
  for (const NodeId s : nodes) {
    const auto dist = bfs_distances_filtered(g, s, allowed);
    for (const NodeId v : nodes) {
      LCS_CHECK(dist[static_cast<std::size_t>(v)] >= 0,
                "part is not connected");
      best = std::max(best, dist[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

std::int32_t max_part_diameter(const Graph& g, const Partition& p) {
  std::int32_t best = 0;
  for (PartId i = 0; i < p.num_parts; ++i)
    best = std::max(best, part_diameter_exact(g, p, i));
  return best;
}

}  // namespace lcs
