/// \file partition.h
/// Node partitions — the "disjoint individually-connected parts" that
/// shortcut frameworks operate on (Definition 1 of the paper).
///
/// A `Partition` assigns each node to at most one part; nodes may be
/// unassigned (`kNoPart`), matching the paper's algorithms where a node
/// outside every part merely relays messages. Each part must be non-empty
/// and connected in the induced subgraph (`validate_partition` checks this).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace lcs {

using PartId = std::int32_t;
inline constexpr PartId kNoPart = -1;

struct Partition {
  /// part_of[v] in [0, num_parts) or kNoPart.
  std::vector<PartId> part_of;
  PartId num_parts = 0;

  PartId part(NodeId v) const {
    return part_of[static_cast<std::size_t>(v)];
  }

  /// Materialize the member list of every part (index = part id).
  std::vector<std::vector<NodeId>> members() const;
};

/// Throws CheckFailure unless every part is non-empty and induces a
/// connected subgraph of `g`, and all assignments are in range.
void validate_partition(const Graph& g, const Partition& p);

/// Every node its own part (the starting point of Boruvka).
Partition make_singleton_partition(NodeId n);

/// All nodes in one part.
Partition make_whole_graph_partition(NodeId n);

/// k random seeds grow connected blobs by randomized multi-source BFS.
/// Covers every node. Requires 1 <= k <= n and `g` connected.
Partition make_random_bfs_partition(const Graph& g, PartId k,
                                    std::uint64_t seed);

/// Remove k-1 random edges from a random spanning tree of `g`; parts are the
/// resulting forest components. Covers every node.
Partition make_forest_split_partition(const Graph& g, PartId k,
                                      std::uint64_t seed);

/// Grid-specific: each part is a horizontal band of `rows_per_part` rows.
/// Part diameter ~ width, which is Θ(D) on wide grids — the benign case.
Partition make_grid_rows_partition(NodeId width, NodeId height,
                                   NodeId rows_per_part);

/// Grid-specific: the boustrophedon (S-shaped) traversal of the grid is cut
/// into `num_parts` contiguous chunks; parts are connected bands with
/// irregular boundaries (useful as a covering partition distinct from rows).
Partition make_snake_partition(NodeId width, NodeId height, PartId num_parts);

/// Wheel-graph adversarial partition: the cycle is split into `num_parts`
/// arcs; the hub stays unassigned. Arc parts have induced diameter
/// ~ (n / num_parts) while the wheel's diameter is 2 — the motivating gap
/// from Section 1.2 that shortcuts close.
Partition make_cycle_arcs_partition(NodeId n, PartId num_parts);

/// Lower-bound graph partition: part i = the i-th path; binary-tree nodes
/// stay unassigned.
Partition make_lower_bound_partition(NodeId num_paths, NodeId path_len,
                                     NodeId total_nodes);

}  // namespace lcs
