/// \file metrics.h
/// Centralized graph measurements: BFS distances, diameters, connectivity,
/// and per-part induced diameters. These are *reference* computations used
/// to validate the distributed algorithms and to report workload parameters
/// (D, part diameters) in the benches — they are not part of any protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace lcs {

/// Hop distances from `src`; -1 for unreachable nodes.
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src);

/// BFS restricted to nodes where `allowed[v]` is true. `src` must be allowed.
std::vector<std::int32_t> bfs_distances_filtered(
    const Graph& g, NodeId src, const std::vector<bool>& allowed);

bool is_connected(const Graph& g);

/// Exact hop diameter by n BFS sweeps. O(n·m): use for n up to ~10⁴.
std::int32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter; exact on trees, within 2x
/// always. O(m). Use to report D on large instances.
std::int32_t diameter_double_sweep(const Graph& g);

/// Exact diameter of the subgraph induced by part `i`. O(|Pi|·m(Pi)).
std::int32_t part_diameter_exact(const Graph& g, const Partition& p, PartId i);

/// Max over all parts of the exact induced diameter.
std::int32_t max_part_diameter(const Graph& g, const Partition& p);

/// Deterministic BFS spanning forest of `g` (the "fresh construction"
/// baseline for dynamically maintained trees): each component is rooted at
/// its minimum node id and explored in adjacency order. Returns one flag per
/// edge id; flagged edges form a spanning forest.
std::vector<bool> bfs_forest_edges(const Graph& g);

/// Shortcut-style quality of a spanning forest as a routing skeleton for a
/// partition (the dynamic counterpart of `congestion` × `dilation_estimate`
/// in shortcut/shortcut.h, measured on an arbitrary tree structure instead
/// of a constructed shortcut):
///  * for every part, its members inside one forest component span a
///    *Steiner subtree* (the minimal subtree connecting them — under churn
///    a part may straddle several components, each fragment spanning its
///    own subtree);
///  * `congestion` = max over forest edges of the number of such subtrees
///    containing the edge;
///  * `dilation` = max over subtrees of the subtree diameter in hops.
/// Both are 0 when no part has two members in a common component.
struct ForestQuality {
  std::int32_t congestion = 0;
  std::int32_t dilation = 0;
  /// congestion * dilation — the figure of merit the paper's framework
  /// bounds (rounds ~ congestion + dilation; the product is the standard
  /// single-number summary used across the benches).
  std::int64_t product() const {
    return static_cast<std::int64_t>(congestion) *
           static_cast<std::int64_t>(dilation);
  }
  friend bool operator==(const ForestQuality&, const ForestQuality&) = default;
};

/// Requires: `forest_edge[e]` flags form a forest (no cycles — diagnosed),
/// `part_of[v]` in [-1, num parts). O(parts × n + m).
ForestQuality forest_part_quality(const Graph& g,
                                  const std::vector<PartId>& part_of,
                                  const std::vector<bool>& forest_edge);

}  // namespace lcs
