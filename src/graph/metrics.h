/// \file metrics.h
/// Centralized graph measurements: BFS distances, diameters, connectivity,
/// and per-part induced diameters. These are *reference* computations used
/// to validate the distributed algorithms and to report workload parameters
/// (D, part diameters) in the benches — they are not part of any protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace lcs {

/// Hop distances from `src`; -1 for unreachable nodes.
std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src);

/// BFS restricted to nodes where `allowed[v]` is true. `src` must be allowed.
std::vector<std::int32_t> bfs_distances_filtered(
    const Graph& g, NodeId src, const std::vector<bool>& allowed);

bool is_connected(const Graph& g);

/// Exact hop diameter by n BFS sweeps. O(n·m): use for n up to ~10⁴.
std::int32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter; exact on trees, within 2x
/// always. O(m). Use to report D on large instances.
std::int32_t diameter_double_sweep(const Graph& g);

/// Exact diameter of the subgraph induced by part `i`. O(|Pi|·m(Pi)).
std::int32_t part_diameter_exact(const Graph& g, const Partition& p, PartId i);

/// Max over all parts of the exact induced diameter.
std::int32_t max_part_diameter(const Graph& g, const Partition& p);

// The Steiner-subtree quality measures (ForestQuality, forest_part_quality,
// bfs_forest_edges) moved to shortcut/quality.h — the single home of the
// congestion × dilation vocabulary shared by the shortcut backends and the
// dynamic churn metrics.

}  // namespace lcs
