/// \file union_find.h
/// Disjoint-set forest with path halving and union by size.
/// Centralized helper used by generators, reference algorithms, and tests.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace lcs {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    LCS_CHECK(x < parent_.size(), "union-find index out of range");
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the two elements were in different sets (i.e. merged).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t component_size(std::size_t x) { return size_[find(x)]; }
  std::size_t num_components() const { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace lcs
