/// \file graph.h
/// Immutable undirected graph used as the network topology for the
/// CONGEST simulator and by all centralized reference algorithms.
///
/// Design notes:
///  * Nodes are dense ids `0..n-1`, edges dense ids `0..m-1`; adjacency is
///    stored CSR-style so `neighbors(v)` is a contiguous `std::span`.
///  * Edges carry integer weights. All weight comparisons in this library
///    are lexicographic on (weight, edge id), which makes the minimum
///    spanning tree unique and lets distributed results be compared
///    bit-for-bit against the centralized reference.
///  * The graph is immutable after construction; algorithms that "grow"
///    structure (trees, shortcuts, partitions) layer their own state on top.
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include "util/cast.h"

namespace lcs {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::uint64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

class Graph {
 public:
  /// An undirected edge. `u < v` is not required on input; the constructor
  /// normalizes endpoints so that `u <= v`.
  struct Edge {
    NodeId u = kNoNode;
    NodeId v = kNoNode;
    Weight w = 1;
  };

  /// One adjacency entry: the neighbor and the id of the connecting edge.
  struct Neighbor {
    NodeId node = kNoNode;
    EdgeId edge = kNoEdge;
  };

  /// Builds a graph over `num_nodes` nodes. Requirements (checked):
  /// endpoints in range, no self-loops, no parallel edges.
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return util::checked_cast<EdgeId>(edges_.size()); }

  const Edge& edge(EdgeId e) const;
  std::span<const Neighbor> neighbors(NodeId v) const;
  NodeId degree(NodeId v) const;

  /// The endpoint of `e` that is not `v`. Requires `v` to be an endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const;

  /// Comparison key making all edge weights distinct: (weight, edge id).
  /// The minimum spanning tree under this order is unique.
  std::pair<Weight, EdgeId> weight_key(EdgeId e) const {
    return {edges_[static_cast<std::size_t>(e)].w, e};
  }

  /// Sum of all edge weights (useful for sanity checks in tests).
  Weight total_weight() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<Neighbor> adjacency_;     // CSR payload
  std::vector<std::int64_t> offsets_;   // CSR offsets, size n+1
};

}  // namespace lcs
