#include "graph/partition.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/union_find.h"
#include "util/cast.h"
#include "util/check.h"
#include "util/random.h"

namespace lcs {

std::vector<std::vector<NodeId>> Partition::members() const {
  std::vector<std::vector<NodeId>> result(static_cast<std::size_t>(num_parts));
  for (NodeId v = 0; v < util::checked_cast<NodeId>(part_of.size()); ++v) {
    const PartId p = part_of[static_cast<std::size_t>(v)];
    if (p != kNoPart) result[static_cast<std::size_t>(p)].push_back(v);
  }
  return result;
}

void validate_partition(const Graph& g, const Partition& p) {
  LCS_CHECK(util::checked_cast<NodeId>(p.part_of.size()) == g.num_nodes(),
            "partition size does not match graph");
  LCS_CHECK(p.num_parts >= 0, "negative part count");
  for (const PartId id : p.part_of)
    LCS_CHECK(id == kNoPart || (id >= 0 && id < p.num_parts),
              "part id out of range");

  const auto groups = p.members();
  for (PartId i = 0; i < p.num_parts; ++i) {
    const auto& nodes = groups[static_cast<std::size_t>(i)];
    LCS_CHECK(!nodes.empty(), "empty part");
    // BFS inside the induced subgraph.
    std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
    std::deque<NodeId> queue{nodes.front()};
    seen[static_cast<std::size_t>(nodes.front())] = true;
    std::size_t reached = 0;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      ++reached;
      for (const auto& nb : g.neighbors(v)) {
        if (p.part(nb.node) == i && !seen[static_cast<std::size_t>(nb.node)]) {
          seen[static_cast<std::size_t>(nb.node)] = true;
          queue.push_back(nb.node);
        }
      }
    }
    LCS_CHECK(reached == nodes.size(), "part is not connected");
  }
}

Partition make_singleton_partition(NodeId n) {
  Partition p;
  p.num_parts = n;
  p.part_of.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) p.part_of[static_cast<std::size_t>(v)] = v;
  return p;
}

Partition make_whole_graph_partition(NodeId n) {
  Partition p;
  p.num_parts = n > 0 ? 1 : 0;
  p.part_of.assign(static_cast<std::size_t>(n), n > 0 ? 0 : kNoPart);
  return p;
}

Partition make_random_bfs_partition(const Graph& g, PartId k,
                                    std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  LCS_CHECK(k >= 1 && k <= n, "part count out of range");
  Rng rng(seed);

  Partition p;
  p.num_parts = k;
  p.part_of.assign(static_cast<std::size_t>(n), kNoPart);

  // Distinct random seeds.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  // Randomized multi-source growth: a frontier of (node, part) claims.
  std::vector<std::pair<NodeId, PartId>> frontier;
  for (PartId i = 0; i < k; ++i) {
    const NodeId s = order[static_cast<std::size_t>(i)];
    p.part_of[static_cast<std::size_t>(s)] = i;
    frontier.emplace_back(s, i);
  }
  while (!frontier.empty()) {
    // Pick a random claim to expand; keeps blob sizes balanced in
    // expectation and shapes irregular.
    const std::size_t pick = rng.next_below(frontier.size());
    const auto [v, part] = frontier[pick];
    bool expanded = false;
    for (const auto& nb : g.neighbors(v)) {
      if (p.part_of[static_cast<std::size_t>(nb.node)] == kNoPart) {
        p.part_of[static_cast<std::size_t>(nb.node)] = part;
        frontier.emplace_back(nb.node, part);
        expanded = true;
        break;
      }
    }
    if (!expanded) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
    }
  }
  return p;
}

Partition make_forest_split_partition(const Graph& g, PartId k,
                                      std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  LCS_CHECK(k >= 1 && k <= n, "part count out of range");
  Rng rng(seed);

  // Random spanning tree via randomized Kruskal.
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    order[static_cast<std::size_t>(e)] = e;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  UnionFind tree_uf(static_cast<std::size_t>(n));
  std::vector<EdgeId> tree_edges;
  tree_edges.reserve(static_cast<std::size_t>(n) - 1);
  for (EdgeId e : order) {
    const auto& ed = g.edge(e);
    if (tree_uf.unite(static_cast<std::size_t>(ed.u),
                      static_cast<std::size_t>(ed.v)))
      tree_edges.push_back(e);
  }
  LCS_CHECK(tree_edges.size() == static_cast<std::size_t>(n) - 1,
            "graph must be connected");

  // Drop k-1 random tree edges; components of the remainder are the parts.
  for (std::size_t i = tree_edges.size(); i > 1; --i)
    std::swap(tree_edges[i - 1], tree_edges[rng.next_below(i)]);
  UnionFind part_uf(static_cast<std::size_t>(n));
  for (std::size_t i = static_cast<std::size_t>(k) - 1; i < tree_edges.size();
       ++i) {
    const auto& ed = g.edge(tree_edges[i]);
    part_uf.unite(static_cast<std::size_t>(ed.u),
                  static_cast<std::size_t>(ed.v));
  }

  Partition p;
  p.part_of.assign(static_cast<std::size_t>(n), kNoPart);
  std::vector<PartId> root_to_part(static_cast<std::size_t>(n), kNoPart);
  PartId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t root = part_uf.find(static_cast<std::size_t>(v));
    if (root_to_part[root] == kNoPart) root_to_part[root] = next++;
    p.part_of[static_cast<std::size_t>(v)] = root_to_part[root];
  }
  p.num_parts = next;
  return p;
}

Partition make_grid_rows_partition(NodeId width, NodeId height,
                                   NodeId rows_per_part) {
  LCS_CHECK(rows_per_part >= 1, "rows_per_part must be positive");
  Partition p;
  p.num_parts = (height + rows_per_part - 1) / rows_per_part;
  p.part_of.resize(static_cast<std::size_t>(width) * height);
  for (NodeId r = 0; r < height; ++r)
    for (NodeId c = 0; c < width; ++c)
      p.part_of[static_cast<std::size_t>(r * width + c)] = r / rows_per_part;
  return p;
}

Partition make_snake_partition(NodeId width, NodeId height, PartId num_parts) {
  const NodeId n = width * height;
  LCS_CHECK(num_parts >= 1 && num_parts <= n, "part count out of range");
  Partition p;
  p.num_parts = num_parts;
  p.part_of.resize(static_cast<std::size_t>(n));
  const NodeId chunk = (n + num_parts - 1) / num_parts;
  NodeId index = 0;
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      // Boustrophedon order: even rows left-to-right, odd rows right-to-left,
      // so consecutive indices are always grid-adjacent.
      const NodeId col = (r % 2 == 0) ? c : width - 1 - c;
      p.part_of[static_cast<std::size_t>(r * width + col)] =
          std::min<PartId>(index / chunk, num_parts - 1);
      ++index;
    }
  }
  return p;
}

Partition make_cycle_arcs_partition(NodeId n, PartId num_parts) {
  const NodeId cycle_len = n - 1;  // node n-1 is the hub
  LCS_CHECK(num_parts >= 1 && num_parts <= cycle_len,
            "part count out of range");
  Partition p;
  p.num_parts = num_parts;
  p.part_of.assign(static_cast<std::size_t>(n), kNoPart);
  const NodeId chunk = (cycle_len + num_parts - 1) / num_parts;
  for (NodeId v = 0; v < cycle_len; ++v)
    p.part_of[static_cast<std::size_t>(v)] =
        std::min<PartId>(v / chunk, num_parts - 1);
  return p;
}

Partition make_lower_bound_partition(NodeId num_paths, NodeId path_len,
                                     NodeId total_nodes) {
  Partition p;
  p.num_parts = num_paths;
  p.part_of.assign(static_cast<std::size_t>(total_nodes), kNoPart);
  for (NodeId i = 0; i < num_paths; ++i)
    for (NodeId j = 0; j < path_len; ++j)
      p.part_of[static_cast<std::size_t>(
          lower_bound_path_node(path_len, i, j))] = i;
  return p;
}

}  // namespace lcs
