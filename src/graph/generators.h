/// \file generators.h
/// Synthetic graph families used throughout the benches and tests.
///
/// The paper's claims are parameterized by the node count `n`, the hop
/// diameter `D`, the genus `g`, and the part structure. These generators
/// sweep those parameters directly:
///
///  * grids and mazes — planar (genus 0) with tunable diameter;
///  * toruses — genus 1;
///  * `make_genus_grid` — a grid plus `g` extra chords. Adding one edge to a
///    graph raises its orientable genus by at most one, so the family has
///    genus at most `g` while remaining easy to generate (the paper needs
///    *no embedding*, so neither do we);
///  * Erdős–Rényi — non-planar control family;
///  * R-MAT and Barabási–Albert — skewed/power-law degree families whose
///    hubs concentrate shortcut traffic (the regime the minor-free
///    follow-up literature targets);
///  * random regular — an expander: diameter O(log n) and no structure to
///    exploit, the easy-shortcut control;
///  * k-trees — bounded treewidth (exactly k), the parameter family of
///    Kitamura et al., *Low-Congestion Shortcut and Graph Parameters*;
///  * `make_lower_bound_graph` — the Peleg–Rubinovich-style construction
///    behind the Ω̃(√n + D) lower bound: √n disjoint paths crossed by a
///    shallow binary tree. Any shortcut for the path parts must either ride
///    the tree (congestion) or stay on the path (dilation).
///
/// All generators produce connected simple graphs with unit weights;
/// `with_random_weights` re-weights for MST workloads.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace lcs {

/// `width x height` grid, 4-neighbor connectivity. Planar.
/// Diameter = width + height - 2.
Graph make_grid(NodeId width, NodeId height);

/// Grid with wrap-around in both dimensions. Genus 1.
/// Requires width, height >= 3 so no parallel edges arise.
Graph make_torus(NodeId width, NodeId height);

/// Grid plus `genus` random chords between non-adjacent nodes; the result
/// has orientable genus at most `genus`.
Graph make_genus_grid(NodeId width, NodeId height, int genus,
                      std::uint64_t seed);

/// Simple path on n nodes (diameter n-1). The extreme high-diameter case.
Graph make_path(NodeId n);

/// Simple cycle on n >= 3 nodes. The classic motivating example: one part
/// covering half the cycle has diameter ~n/2 while D ~ n/2 as well, but a
/// partition into arcs has parts whose *induced* diameter equals their size.
Graph make_cycle(NodeId n);

/// Uniform random labelled tree (via random attachment), diameter O(log n)
/// to O(n) depending on seed.
Graph make_random_tree(NodeId n, std::uint64_t seed);

/// Spanning tree of a `width x height` grid plus a `keep_fraction` of the
/// remaining grid edges: a connected random planar "maze" with diameter
/// anywhere between grid-like and tree-like. keep_fraction in [0, 1].
Graph make_random_maze(NodeId width, NodeId height, double keep_fraction,
                       std::uint64_t seed);

/// Connected Erdős–Rényi graph: G(n, p) plus a random spanning tree to
/// guarantee connectivity. Sampled with geometric skips over the C(n, 2)
/// pair slots (util/random.h `GeometricSkip`), so generation is O(n + m)
/// time and memory — `n = 10^6`-scale specs resolve in seconds, not hours.
/// The per-seed edge stream is deterministic and pinned by committed
/// checksums in tests/generators_test.cpp; p = 0 and p = 1 are exact
/// (spanning tree only / complete graph).
Graph make_erdos_renyi(NodeId n, double p, std::uint64_t seed);

/// Connected R-MAT graph on 2^scale nodes (recursive quadrant sampling with
/// probabilities a, b, c, 1-a-b-c): a skewed, scale-free-like degree
/// distribution. `edges` is the target edge count including the random
/// spanning tree that guarantees connectivity; duplicate draws are
/// rejected. Requires 1 <= scale <= 30, a, b, c >= 0, a + b + c <= 1, and
/// edges achievable within the simple-graph budget.
Graph make_rmat(int scale, EdgeId edges, double a, double b, double c,
                std::uint64_t seed);

/// Barabási–Albert preferential attachment: a complete graph on m+1 seed
/// nodes, then each new node attaches to `m` distinct existing nodes chosen
/// proportionally to degree. Connected by construction, power-law tail.
/// Requires 1 <= m < n.
Graph make_barabasi_albert(NodeId n, NodeId m, std::uint64_t seed);

/// Connected random d-regular graph by repeated stub matching (retrying
/// conflicted stubs, restarting on a stuck matching or a disconnected
/// result). W.h.p. an expander for d >= 3 — diameter O(log n) with no
/// exploitable structure, the easy-shortcut control family.
/// Requires 2 <= d < n and n*d even.
Graph make_random_regular(NodeId n, NodeId d, std::uint64_t seed);

/// Random k-tree: a (k+1)-clique, then each new node is joined to all
/// members of a uniformly random existing k-clique. Treewidth exactly k
/// (for n > k), so the family sweeps the treewidth parameter of the
/// shortcut literature directly. Requires k >= 1 and n >= k + 1.
Graph make_ktree(NodeId n, NodeId k, std::uint64_t seed);

/// Wheel: a cycle 0..n-2 plus a hub (node n-1) adjacent to every cycle node.
/// Planar with diameter 2 — the cleanest adversarial case for intra-part
/// communication: an arc part has induced diameter ~arc length >> D, yet a
/// perfect shortcut exists through the hub (congestion 1, block param 1).
Graph make_wheel(NodeId n);

/// Lower-bound construction: `num_paths` disjoint paths of `path_len`
/// columns; a balanced binary tree over the columns, whose leaf for column j
/// attaches to the j-th node of every path. Diameter O(log path_len).
/// With parts = the paths, congestion + dilation of any shortcut is
/// Ω(min(num_paths, path_len)).
Graph make_lower_bound_graph(NodeId num_paths, NodeId path_len);

/// Copy of `g` with i.i.d. uniform edge weights in [lo, hi].
Graph with_random_weights(const Graph& g, Weight lo, Weight hi,
                          std::uint64_t seed);

/// In the lower-bound graph, the j-th node of path i (0-based).
NodeId lower_bound_path_node(NodeId path_len, NodeId path, NodeId column);

}  // namespace lcs
