#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "util/bytes.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

namespace {

// ------------------------------------------------------------- text side --

/// Split `line` into whitespace-separated tokens, dropping a '#' comment.
std::vector<std::string_view> tokenize(std::string_view line) {
  if (const auto hash = line.find('#'); hash != std::string_view::npos)
    line = line.substr(0, hash);
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r'))
      ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '\r')
      ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

template <class T>
T parse_number(std::string_view token, int line_no, const char* what) {
  T value{};
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), value);
  LCS_CHECK(res.ec == std::errc() && res.ptr == token.data() + token.size(),
            "line " + std::to_string(line_no) + ": bad " + what + " '" +
                std::string(token) + "'");
  return value;
}

Graph finish_text_graph(NodeId declared_nodes, std::vector<Graph::Edge> edges,
                        NodeId max_id_seen) {
  NodeId n = declared_nodes;
  if (n < 0) n = max_id_seen + 1;
  LCS_CHECK(n >= 1, "graph has no nodes");
  return Graph(n, std::move(edges));
}

// ----------------------------------------------------------- binary side --

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = util::truncate_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = util::truncate_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= util::checked_cast<std::uint32_t>(b[i]) << (8 * i);
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return true;
}

constexpr char kMagic[4] = {'L', 'C', 'S', 'G'};

/// Hard caps on the section block, so a corrupt count is diagnosed instead
/// of driving a near-infinite read loop or a huge allocation.
constexpr std::uint32_t kMaxSections = 4096;
constexpr std::uint64_t kMaxSectionBytes = std::uint64_t{1} << 33;

/// Crash-injection modes for the atomic-save regression test
/// (tools/atomic_save_test.sh): `LCS_IO_CRASH=mid-write` kills the process
/// with a half-written temp file (a torn write), `before-rename` with a
/// complete temp file that was never renamed. Both must leave the final
/// path untouched.
int crash_mode() {
  const char* v = std::getenv("LCS_IO_CRASH");
  if (v == nullptr) return 0;
  if (std::strcmp(v, "mid-write") == 0) return 1;
  if (std::strcmp(v, "before-rename") == 0) return 2;
  return 0;
}

/// Write via `<path>.tmp` + atomic rename, so the final path only ever
/// holds a complete payload (see the io.h "Atomic writes" doc).
void save_stream_atomic(const std::string& path,
                        const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    LCS_CHECK(out.is_open(), "cannot open '" + tmp + "' for writing");
    writer(out);
    out.flush();
    LCS_CHECK(out.good(), "write error while saving '" + tmp + "'");
  }
  switch (crash_mode()) {
    case 1: {
      std::error_code ec;
      const auto size = std::filesystem::file_size(tmp, ec);
      if (!ec) std::filesystem::resize_file(tmp, size / 2, ec);
      std::_Exit(41);
    }
    case 2:
      std::_Exit(42);
    default:
      break;
  }
  LCS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot rename '" + tmp + "' onto '" + path + "'");
}

std::ifstream open_input(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  LCS_CHECK(in.is_open(), "cannot open graph file '" + path + "'");
  return in;
}

bool has_suffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         std::equal(suffix.rbegin(), suffix.rend(), s.rbegin());
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::vector<Graph::Edge> edges;
  NodeId declared_nodes = -1;
  NodeId max_id = -1;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "nodes") {
      LCS_CHECK(tokens.size() == 2,
                "line " + std::to_string(line_no) +
                    ": 'nodes' directive takes exactly one count");
      declared_nodes = parse_number<NodeId>(tokens[1], line_no, "node count");
      LCS_CHECK(declared_nodes >= 1,
                "line " + std::to_string(line_no) + ": node count must be >= 1");
      continue;
    }
    LCS_CHECK(tokens.size() == 2 || tokens.size() == 3,
              "line " + std::to_string(line_no) +
                  ": expected 'u v [w]', got " +
                  std::to_string(tokens.size()) + " fields");
    const NodeId u = parse_number<NodeId>(tokens[0], line_no, "node id");
    const NodeId v = parse_number<NodeId>(tokens[1], line_no, "node id");
    LCS_CHECK(u >= 0 && v >= 0,
              "line " + std::to_string(line_no) + ": node ids must be >= 0");
    Weight w = 1;
    if (tokens.size() == 3) w = parse_number<Weight>(tokens[2], line_no, "weight");
    max_id = std::max({max_id, u, v});
    edges.push_back({u, v, w});
  }
  return finish_text_graph(declared_nodes, std::move(edges), max_id);
}

Graph load_edge_list(const std::string& path) {
  auto in = open_input(path, std::ios::in);
  return read_edge_list(in);
}

Graph read_dimacs(std::istream& in) {
  std::vector<Graph::Edge> edges;
  NodeId n = -1;
  std::string line;
  int line_no = 0;
  // (u, v) pairs already seen, to collapse symmetric duplicates.
  std::vector<std::pair<NodeId, NodeId>> seen;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0] == "c") continue;
    if (tokens[0] == "p") {
      LCS_CHECK(n < 0, "line " + std::to_string(line_no) +
                           ": duplicate problem line");
      LCS_CHECK(tokens.size() >= 4,
                "line " + std::to_string(line_no) +
                    ": problem line needs 'p <type> <n> <m>'");
      n = parse_number<NodeId>(tokens[2], line_no, "node count");
      LCS_CHECK(n >= 1, "line " + std::to_string(line_no) +
                            ": node count must be >= 1");
      continue;
    }
    if (tokens[0] == "e" || tokens[0] == "a") {
      LCS_CHECK(n >= 0, "line " + std::to_string(line_no) +
                            ": edge before the problem line");
      LCS_CHECK(tokens.size() == 3 || tokens.size() == 4,
                "line " + std::to_string(line_no) +
                    ": expected '" + std::string(tokens[0]) + " u v [w]'");
      const NodeId u1 = parse_number<NodeId>(tokens[1], line_no, "node id");
      const NodeId v1 = parse_number<NodeId>(tokens[2], line_no, "node id");
      LCS_CHECK(u1 >= 1 && u1 <= n && v1 >= 1 && v1 <= n,
                "line " + std::to_string(line_no) +
                    ": node id out of range (DIMACS ids are 1..n)");
      Weight w = 1;
      if (tokens.size() == 4)
        w = parse_number<Weight>(tokens[3], line_no, "weight");
      const NodeId u = std::min(u1, v1) - 1;
      const NodeId v = std::max(u1, v1) - 1;
      seen.emplace_back(u, v);
      edges.push_back({u, v, w});
      continue;
    }
    LCS_CHECK(false, "line " + std::to_string(line_no) +
                         ": unknown DIMACS line type '" +
                         std::string(tokens[0]) + "'");
  }
  LCS_CHECK(n >= 0, "DIMACS input has no problem line");

  // Collapse symmetric duplicates, keeping the first occurrence's weight
  // (directed inputs commonly list both a u v and a v u). Edge ids follow
  // the order of first occurrence in the file.
  std::vector<std::size_t> order(seen.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return seen[a] != seen[b] ? seen[a] < seen[b] : a < b;
  });
  std::vector<std::size_t> firsts;
  firsts.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0 && seen[order[i]] == seen[order[i - 1]]) continue;
    firsts.push_back(order[i]);
  }
  std::sort(firsts.begin(), firsts.end());
  std::vector<Graph::Edge> unique;
  unique.reserve(firsts.size());
  for (const std::size_t i : firsts) unique.push_back(edges[i]);
  return Graph(n, std::move(unique));
}

Graph load_dimacs(const std::string& path) {
  auto in = open_input(path, std::ios::in);
  return read_dimacs(in);
}

const BundleSection* GraphBundle::find(std::uint32_t tag) const {
  for (const BundleSection& s : sections)
    if (s.tag == tag) return &s;
  return nullptr;
}

void write_binary_bundle(const Graph& g,
                         const std::vector<BundleSection>& sections,
                         std::ostream& out) {
  LCS_CHECK(sections.size() <= kMaxSections,
            "binary graph bundle has too many sections");
  out.write(kMagic, 4);
  put_u32(out, kBinaryGraphVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, static_cast<std::uint64_t>(g.num_nodes()));
  put_u64(out, static_cast<std::uint64_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    put_u32(out, util::checked_cast<std::uint32_t>(ed.u));
    put_u32(out, util::checked_cast<std::uint32_t>(ed.v));
    put_u64(out, ed.w);
  }
  put_u32(out, util::checked_cast<std::uint32_t>(sections.size()));
  for (const BundleSection& s : sections) {
    LCS_CHECK(s.bytes.size() <= kMaxSectionBytes,
              "binary graph bundle section too large");
    put_u32(out, s.tag);
    put_u64(out, s.bytes.size());
    out.write(s.bytes.data(), static_cast<std::streamsize>(s.bytes.size()));
  }
  LCS_CHECK(out.good(), "write error while saving binary graph");
}

void write_binary(const Graph& g, std::ostream& out) {
  write_binary_bundle(g, {}, out);
}

void save_binary_bundle(const Graph& g,
                        const std::vector<BundleSection>& sections,
                        const std::string& path) {
  save_stream_atomic(
      path, [&](std::ostream& out) { write_binary_bundle(g, sections, out); });
}

void save_binary(const Graph& g, const std::string& path) {
  save_binary_bundle(g, {}, path);
}

void save_bytes_atomic(const std::string& bytes, const std::string& path) {
  save_stream_atomic(path, [&](std::ostream& out) {
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  });
}

GraphBundle read_binary_bundle(std::istream& in) {
  char magic[4];
  LCS_CHECK(static_cast<bool>(in.read(magic, 4)) &&
                std::memcmp(magic, kMagic, 4) == 0,
            "not an LCS binary graph (bad magic)");
  std::uint32_t version = 0, reserved = 0;
  LCS_CHECK(get_u32(in, version), "binary graph truncated in header");
  LCS_CHECK(version >= 1 && version <= kBinaryGraphVersion,
            "unsupported binary graph version " + std::to_string(version) +
                " (this build reads versions 1.." +
                std::to_string(kBinaryGraphVersion) + ")");
  LCS_CHECK(get_u32(in, reserved) && reserved == 0,
            "binary graph header has nonzero reserved field");
  std::uint64_t n64 = 0, m64 = 0;
  LCS_CHECK(get_u64(in, n64) && get_u64(in, m64),
            "binary graph truncated in header");
  constexpr std::uint64_t kMaxCount =
      static_cast<std::uint64_t>(std::numeric_limits<NodeId>::max());
  LCS_CHECK(n64 >= 1 && n64 <= kMaxCount, "binary graph node count out of range");
  LCS_CHECK(m64 <= kMaxCount, "binary graph edge count out of range");

  std::vector<Graph::Edge> edges;
  // The header's edge count is untrusted until the payload proves it:
  // cap the up-front reservation so a corrupt count yields the truncation
  // diagnosis below, not a multi-gigabyte allocation attempt.
  edges.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(m64, 1u << 20)));
  for (std::uint64_t i = 0; i < m64; ++i) {
    std::uint32_t u = 0, v = 0;
    std::uint64_t w = 0;
    LCS_CHECK(get_u32(in, u) && get_u32(in, v) && get_u64(in, w),
              "binary graph truncated in edge payload (EOF at edge " +
                  std::to_string(i) + " of " + std::to_string(m64) +
                  " declared in the header)");
    LCS_CHECK(u < n64 && v < n64,
              "binary graph edge " + std::to_string(i) +
                  " endpoint out of range");
    edges.push_back({util::checked_cast<NodeId>(u), util::checked_cast<NodeId>(v), w});
  }

  GraphBundle bundle{Graph(util::checked_cast<NodeId>(n64), std::move(edges)), {}};
  if (version < 2) return bundle;  // v1 files end after the edge payload

  std::uint32_t count = 0;
  LCS_CHECK(get_u32(in, count), "binary graph truncated in section count");
  LCS_CHECK(count <= kMaxSections,
            "binary graph section count out of range (" +
                std::to_string(count) + ")");
  bundle.sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BundleSection s;
    std::uint64_t len = 0;
    LCS_CHECK(get_u32(in, s.tag) && get_u64(in, len),
              "binary graph truncated in section " + std::to_string(i) +
                  " header");
    LCS_CHECK(len <= kMaxSectionBytes,
              "binary graph section " + std::to_string(i) +
                  " length out of range");
    s.bytes.resize(static_cast<std::size_t>(len));
    LCS_CHECK(len == 0 ||
                  static_cast<bool>(in.read(
                      s.bytes.data(), static_cast<std::streamsize>(len))),
              "binary graph truncated in section " + std::to_string(i) +
                  " payload (" + std::to_string(len) +
                  " bytes declared in the header)");
    bundle.sections.push_back(std::move(s));
  }
  return bundle;
}

Graph read_binary(std::istream& in) {
  return std::move(read_binary_bundle(in).graph);
}

Graph load_binary(const std::string& path) {
  auto in = open_input(path, std::ios::in | std::ios::binary);
  return read_binary(in);
}

GraphBundle load_binary_bundle(const std::string& path) {
  auto in = open_input(path, std::ios::in | std::ios::binary);
  return read_binary_bundle(in);
}

std::string encode_partition(const Partition& p) {
  ByteWriter w;
  w.put_u32(1);  // partition codec version
  w.put_i64(p.num_parts);
  w.put_u64(p.part_of.size());
  for (const PartId id : p.part_of) w.put_i32(id);
  return w.take();
}

Partition decode_partition(std::string_view bytes, NodeId num_nodes) {
  ByteReader r(bytes, "partition section");
  const std::uint32_t version = r.get_u32("codec version");
  LCS_CHECK(version == 1,
            "unsupported partition section version " + std::to_string(version));
  Partition p;
  p.num_parts = util::checked_cast<PartId>(r.get_i64("part count"));
  LCS_CHECK(p.num_parts >= 0, "partition section has negative part count");
  const std::uint64_t n = r.get_u64("node count");
  LCS_CHECK(n == static_cast<std::uint64_t>(num_nodes),
            "partition section is for " + std::to_string(n) +
                " nodes, graph has " + std::to_string(num_nodes));
  p.part_of.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t v = 0; v < n; ++v) {
    const PartId id = r.get_i32("part assignment");
    LCS_CHECK(id == kNoPart || (id >= 0 && id < p.num_parts),
              "partition section assignment out of range at node " +
                  std::to_string(v));
    p.part_of.push_back(id);
  }
  r.expect_done();
  return p;
}

std::string encode_bundle_meta(const BundleMeta& meta) {
  ByteWriter w;
  w.put_u32(1);  // meta codec version
  w.put_string(meta.spec);
  w.put_string(meta.family);
  return w.take();
}

BundleMeta decode_bundle_meta(std::string_view bytes) {
  ByteReader r(bytes, "meta section");
  const std::uint32_t version = r.get_u32("codec version");
  LCS_CHECK(version == 1,
            "unsupported meta section version " + std::to_string(version));
  BundleMeta meta;
  meta.spec = std::string(r.get_string("spec"));
  meta.family = std::string(r.get_string("family"));
  r.expect_done();
  return meta;
}

Graph load_graph(const std::string& path) {
  if (has_suffix(path, ".bin") || has_suffix(path, ".lcsg"))
    return load_binary(path);
  if (has_suffix(path, ".dimacs") || has_suffix(path, ".gr") ||
      has_suffix(path, ".col"))
    return load_dimacs(path);
  return load_edge_list(path);
}

}  // namespace lcs
