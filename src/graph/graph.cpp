#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "util/cast.h"
#include "util/check.h"

namespace lcs {

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  LCS_CHECK(num_nodes_ >= 0, "negative node count");
  for (auto& e : edges_) {
    LCS_CHECK(e.u >= 0 && e.u < num_nodes_ && e.v >= 0 && e.v < num_nodes_,
              "edge endpoint out of range");
    LCS_CHECK(e.u != e.v, "self-loops are not allowed");
    if (e.u > e.v) std::swap(e.u, e.v);
  }

  // Reject parallel edges: sort a copy of endpoint pairs and scan.
  {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(edges_.size());
    for (const auto& e : edges_) pairs.emplace_back(e.u, e.v);
    std::sort(pairs.begin(), pairs.end());
    const auto dup = std::adjacent_find(pairs.begin(), pairs.end());
    LCS_CHECK(dup == pairs.end(), "parallel edges are not allowed");
  }

  // CSR construction (counting sort by endpoint).
  offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.resize(static_cast<std::size_t>(offsets_.back()));
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < num_edges(); ++id) {
    const auto& e = edges_[static_cast<std::size_t>(id)];
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
        Neighbor{e.v, id};
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] =
        Neighbor{e.u, id};
  }
}

const Graph::Edge& Graph::edge(EdgeId e) const {
  LCS_CHECK(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

std::span<const Graph::Neighbor> Graph::neighbors(NodeId v) const {
  LCS_CHECK(v >= 0 && v < num_nodes_, "node id out of range");
  const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  return {adjacency_.data() + begin, end - begin};
}

NodeId Graph::degree(NodeId v) const {
  return util::checked_cast<NodeId>(neighbors(v).size());
}

NodeId Graph::other_endpoint(EdgeId e, NodeId v) const {
  const Edge& ed = edge(e);
  LCS_CHECK(ed.u == v || ed.v == v, "node is not an endpoint of edge");
  return ed.u == v ? ed.v : ed.u;
}

Weight Graph::total_weight() const {
  Weight total = 0;
  for (const auto& e : edges_) total += e.w;
  return total;
}

}  // namespace lcs
