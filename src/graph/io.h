/// \file io.h
/// Graph corpus I/O: text readers for common interchange formats and a
/// versioned binary cache, so real-world graphs plug into the scenario
/// registry (`file:` specs) next to the synthetic generators.
///
/// Formats:
///  * **Edge list** — one edge per line, `u v [w]`, 0-based node ids,
///    optional integer weight (default 1); `#`-to-end-of-line comments and
///    blank lines are ignored. Node count is `max id + 1` unless a
///    `nodes <n>` directive appears (needed for trailing isolated nodes).
///  * **DIMACS** — `c` comment lines, one `p <type> <n> <m>` problem line,
///    then `e u v` or `a u v [w]` edge lines with **1-based** ids.
///    Symmetric duplicates (`a u v` plus `a v u`) collapse to one edge;
///    repeated edges with differing weights keep the first weight.
///  * **Binary cache** — magic `LCSG`, a format version, then fixed-width
///    little-endian fields (see io.cpp). Byte order is explicit, so a cache
///    written on any host loads on any other. Loading a million-edge cache
///    is one fread + one CSR build — milliseconds, against seconds for
///    re-parsing text or re-running a generator.
///
/// Every reader validates its input and throws CheckFailure with a
/// line-numbered (text) or field-named (binary) diagnosis; the Graph
/// constructor additionally enforces simplicity (no loops / parallels).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace lcs {

/// Parse an edge-list text stream (see header comment for the format).
Graph read_edge_list(std::istream& in);
Graph load_edge_list(const std::string& path);

/// Parse a DIMACS stream (`p`/`c`/`e`/`a` lines, 1-based ids).
Graph read_dimacs(std::istream& in);
Graph load_dimacs(const std::string& path);

/// Binary cache format version written by `write_binary`.
inline constexpr std::uint32_t kBinaryGraphVersion = 1;

/// Serialize `g` to the versioned little-endian binary cache format.
void write_binary(const Graph& g, std::ostream& out);
void save_binary(const Graph& g, const std::string& path);

/// Load a binary cache; rejects bad magic, unknown versions, out-of-range
/// counts, and truncated payloads with a named diagnosis.
Graph read_binary(std::istream& in);
Graph load_binary(const std::string& path);

/// Load by extension: `.bin`/`.lcsg` → binary cache, `.dimacs`/`.gr`/`.col`
/// → DIMACS, anything else → edge list.
Graph load_graph(const std::string& path);

}  // namespace lcs
