/// \file io.h
/// Graph corpus I/O: text readers for common interchange formats and a
/// versioned binary cache, so real-world graphs plug into the scenario
/// registry (`file:` specs) next to the synthetic generators — and so the
/// shortcut service (`lcs_serve`) can warm-start from pure I/O.
///
/// Formats:
///  * **Edge list** — one edge per line, `u v [w]`, 0-based node ids,
///    optional integer weight (default 1); `#`-to-end-of-line comments and
///    blank lines are ignored. Node count is `max id + 1` unless a
///    `nodes <n>` directive appears (needed for trailing isolated nodes).
///  * **DIMACS** — `c` comment lines, one `p <type> <n> <m>` problem line,
///    then `e u v` or `a u v [w]` edge lines with **1-based** ids.
///    Symmetric duplicates (`a u v` plus `a v u`) collapse to one edge;
///    repeated edges with differing weights keep the first weight.
///  * **Binary cache** — see the format documentation below. Byte order is
///    explicit little-endian, so a cache written on any host loads on any
///    other. Loading a million-edge cache is one read pass + one CSR
///    build — milliseconds, against seconds for re-parsing text or
///    re-running a generator.
///
/// ## Binary cache format (version 2)
///
///     magic 'LCSG' | u32 version | u32 reserved (0)
///     u64 n | u64 m
///     m x (u32 u | u32 v | u64 w)              edge payload
///     u32 section_count                         -- version >= 2 only
///     section_count x (u32 tag | u64 byte_len | payload bytes)
///
/// Version 1 files end after the edge payload and still load (a v1 file is
/// exactly a v2 file with no section block). Version 2 (this PR) appends
/// *tagged sections* so one cache file can carry the resolved partition and
/// other derived structures next to the graph — the persistence layer that
/// lets `lcs_serve` warm-start without re-running a generator. Readers skip
/// sections with unknown tags (forward compatibility within a version);
/// unknown *versions* are rejected by name, never guessed at.
///
/// Defined section tags:
///  * `kSectionPartition` ("PART") — the scenario's resolved partition:
///    `u32 codec_version (1) | i64 num_parts | u64 n | n x i32 part_of`.
///  * `kSectionMeta` ("META") — provenance of a cached scenario:
///    `u32 codec_version (1) | string spec | string family` (strings are
///    u64-length-prefixed raw bytes).
///  * `"SHCT"` — a constructed shortcut record; encoded and documented in
///    `src/shortcut/persist.h` (the graph layer treats it as opaque bytes).
///
/// ## Atomic writes
///
/// Every `save_*` entry point writes to `<path>.tmp` and atomically renames
/// onto `<path>` once the payload is complete and flushed: a crash, kill,
/// or full disk mid-write can leave a stale `<path>.tmp` behind but never a
/// torn file at the final path — a later run (or the daemon's warm start)
/// sees either the old complete cache or the new one. The regression test
/// drives this via crash-injection hooks (see io.cpp).
///
/// Every reader validates its input and throws CheckFailure with a
/// line-numbered (text) or field-named (binary) diagnosis; the Graph
/// constructor additionally enforces simplicity (no loops / parallels).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

namespace lcs {

/// Parse an edge-list text stream (see header comment for the format).
[[nodiscard]] Graph read_edge_list(std::istream& in);
[[nodiscard]] Graph load_edge_list(const std::string& path);

/// Parse a DIMACS stream (`p`/`c`/`e`/`a` lines, 1-based ids).
[[nodiscard]] Graph read_dimacs(std::istream& in);
[[nodiscard]] Graph load_dimacs(const std::string& path);

/// Binary cache format version written by `write_binary` /
/// `write_binary_bundle`. History: 1 = graph only; 2 = graph + tagged
/// trailing sections (partitions, scenario metadata, shortcut records).
/// Readers accept versions 1..2.
inline constexpr std::uint32_t kBinaryGraphVersion = 2;

/// Tags of the sections defined at the graph layer (ASCII, little-endian).
inline constexpr std::uint32_t kSectionPartition = 0x54524150;  // "PART"
inline constexpr std::uint32_t kSectionMeta = 0x4154454d;       // "META"

/// One tagged section of a binary cache file (opaque bytes at this layer).
struct BundleSection {
  std::uint32_t tag = 0;
  std::string bytes;
};

/// A binary cache file: the graph plus any trailing sections.
struct GraphBundle {
  Graph graph;
  std::vector<BundleSection> sections;

  /// First section with `tag`, or nullptr.
  [[nodiscard]] const BundleSection* find(std::uint32_t tag) const;
};

/// Serialize to the versioned binary cache format (version 2; a plain
/// graph gets an empty section block).
void write_binary(const Graph& g, std::ostream& out);
void write_binary_bundle(const Graph& g,
                         const std::vector<BundleSection>& sections,
                         std::ostream& out);

/// Atomic file variants (temp file + rename; see header comment).
void save_binary(const Graph& g, const std::string& path);
void save_binary_bundle(const Graph& g,
                        const std::vector<BundleSection>& sections,
                        const std::string& path);

/// Write `bytes` to `path` via the same temp-file + atomic-rename path the
/// binary caches use. For sibling persistence formats (shortcut records).
void save_bytes_atomic(const std::string& bytes, const std::string& path);

/// Load a binary cache; rejects bad magic, unknown versions, out-of-range
/// counts, and truncated payloads with a named diagnosis. `read_binary`
/// validates but discards any sections; `read_binary_bundle` returns them.
[[nodiscard]] Graph read_binary(std::istream& in);
[[nodiscard]] Graph load_binary(const std::string& path);
[[nodiscard]] GraphBundle read_binary_bundle(std::istream& in);
[[nodiscard]] GraphBundle load_binary_bundle(const std::string& path);

/// Partition section codec (`kSectionPartition`). Decoding validates the
/// node count against `num_nodes` and every assignment against num_parts.
[[nodiscard]] std::string encode_partition(const Partition& p);
[[nodiscard]] Partition decode_partition(std::string_view bytes, NodeId num_nodes);

/// Scenario-provenance section codec (`kSectionMeta`).
struct BundleMeta {
  std::string spec;
  std::string family;
};
[[nodiscard]] std::string encode_bundle_meta(const BundleMeta& meta);
[[nodiscard]] BundleMeta decode_bundle_meta(std::string_view bytes);

/// Load by extension: `.bin`/`.lcsg` → binary cache, `.dimacs`/`.gr`/`.col`
/// → DIMACS, anything else → edge list.
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace lcs
