#include "graph/reference.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/graph.h"
#include "graph/union_find.h"
#include "util/check.h"

namespace lcs {

MstResult kruskal_mst(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.weight_key(a) < g.weight_key(b);
  });

  MstResult result;
  UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  for (const EdgeId e : order) {
    const auto& ed = g.edge(e);
    if (uf.unite(static_cast<std::size_t>(ed.u),
                 static_cast<std::size_t>(ed.v))) {
      result.edges.push_back(e);
      result.total_weight += ed.w;
    }
  }
  LCS_CHECK(result.edges.size() ==
                static_cast<std::size_t>(g.num_nodes()) - 1 ||
            g.num_nodes() == 0,
            "graph must be connected for MST");
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

std::vector<NodeId> connected_components(const Graph& g,
                                         const std::vector<bool>& edge_alive) {
  LCS_CHECK(edge_alive.size() == static_cast<std::size_t>(g.num_edges()),
            "edge filter size mismatch");
  UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_alive[static_cast<std::size_t>(e)]) continue;
    const auto& ed = g.edge(e);
    uf.unite(static_cast<std::size_t>(ed.u), static_cast<std::size_t>(ed.v));
  }
  // Label = minimum node id in the component.
  std::vector<NodeId> label(static_cast<std::size_t>(g.num_nodes()), kNoNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t root = uf.find(static_cast<std::size_t>(v));
    if (label[root] == kNoNode) label[root] = v;
  }
  std::vector<NodeId> result(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    result[static_cast<std::size_t>(v)] =
        label[uf.find(static_cast<std::size_t>(v))];
  return result;
}

std::vector<NodeId> connected_components(const Graph& g) {
  const std::vector<bool> all(static_cast<std::size_t>(g.num_edges()), true);
  return connected_components(g, all);
}

Weight stoer_wagner_mincut(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  LCS_CHECK(n >= 2, "min cut needs at least two nodes");

  // Dense weight matrix; supernodes merge into lower index.
  std::vector<std::vector<Weight>> w(n, std::vector<Weight>(n, 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    w[static_cast<std::size_t>(ed.u)][static_cast<std::size_t>(ed.v)] += ed.w;
    w[static_cast<std::size_t>(ed.v)][static_cast<std::size_t>(ed.u)] += ed.w;
  }

  std::vector<std::size_t> active(n);
  std::iota(active.begin(), active.end(), std::size_t{0});

  Weight best = std::numeric_limits<Weight>::max();
  while (active.size() > 1) {
    // Maximum-adjacency order starting from active[0].
    std::vector<Weight> conn(n, 0);
    std::vector<bool> added(n, false);
    std::vector<std::size_t> order;
    order.reserve(active.size());
    std::size_t current = active[0];
    added[current] = true;
    order.push_back(current);
    for (std::size_t step = 1; step < active.size(); ++step) {
      for (const std::size_t v : active)
        if (!added[v]) conn[v] += w[current][v];
      std::size_t next = n;
      Weight next_conn = 0;
      for (const std::size_t v : active) {
        if (!added[v] && (next == n || conn[v] > next_conn)) {
          next = v;
          next_conn = conn[v];
        }
      }
      added[next] = true;
      order.push_back(next);
      current = next;
    }

    const std::size_t t = order.back();
    const std::size_t s = order[order.size() - 2];
    best = std::min(best, conn[t]);

    // Merge t into s.
    for (const std::size_t v : active) {
      if (v == s || v == t) continue;
      w[s][v] += w[t][v];
      w[v][s] += w[v][t];
    }
    active.erase(std::find(active.begin(), active.end(), t));
  }
  return best;
}

}  // namespace lcs
