/// \file pair_hash_set.h
/// Flat open-addressing set of unordered node pairs, keyed as one u64.
///
/// The generators' duplicate-edge checks used to go through
/// `std::set<std::pair<NodeId, NodeId>>` — a red-black tree that allocates
/// one node per edge and chases pointers on every probe, which dominated
/// generation time at the 10^6-edge scales the scaling studies need. This
/// set packs the normalized pair `(min, max)` into a single 64-bit key,
/// mixes it with SplitMix64, and probes linearly through a power-of-two
/// table kept at most half full: O(1) amortized insert/contains, one cache
/// line per probe, zero per-element allocation.
///
/// Only valid node ids (>= 0) may be stored, so the all-ones key can never
/// occur and serves as the empty-slot sentinel. The set is insert-only —
/// exactly the shape of a dedup filter during generation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/cast.h"
#include "util/check.h"

namespace lcs {

class PairHashSet {
 public:
  /// `expected` sizes the table so that inserting that many pairs never
  /// rehashes (the table is grown to keep load factor <= 1/2).
  explicit PairHashSet(std::size_t expected = 0) { rehash_for(expected); }

  std::size_t size() const { return size_; }

  /// Inserts the unordered pair {u, v}; returns true iff it was absent.
  /// Requires u != v and both ids >= 0.
  bool insert(NodeId u, NodeId v) {
    const std::uint64_t k = key(u, v);
    std::size_t i = slot_of(k);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == k) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = k;
    if (++size_ * 2 > slots_.size()) grow();
    return true;
  }

  /// True iff the unordered pair {u, v} was inserted before.
  bool contains(NodeId u, NodeId v) const {
    const std::uint64_t k = key(u, v);
    for (std::size_t i = slot_of(k); slots_[i] != kEmpty; i = (i + 1) & mask_)
      if (slots_[i] == k) return true;
    return false;
  }

  /// Drops all pairs but keeps the allocated table (restart loops).
  void clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::uint64_t key(NodeId u, NodeId v) {
    LCS_CHECK(u >= 0 && v >= 0 && u != v,
              "pair set requires two distinct non-negative node ids");
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(util::checked_cast<std::uint32_t>(u)) << 32) |
           util::checked_cast<std::uint32_t>(v);
  }

  /// SplitMix64 finalizer: full avalanche so consecutive ids spread.
  std::size_t slot_of(std::uint64_t k) const {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(k ^ (k >> 31)) & mask_;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap *= 2;
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    rehash_for(old.size());  // old.size() = 2x current element capacity
    for (const std::uint64_t k : old) {
      if (k == kEmpty) continue;
      std::size_t i = slot_of(k);
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = k;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lcs
